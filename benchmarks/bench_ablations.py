"""Ablation benches for the design choices DESIGN.md calls out.

1. Interval presolve: bounds-UNSAT queries (the bread and butter of
   directed exploration) must resolve without entering the SAT solver.
2. Memory-resolution limit: the single knob separating the one-level
   symbolic-array success from failure.
3. argv declaration model: padded-symbolic (angr-style) vs frozen
   seed length (triton-style) on the argv-length bomb.
4. Solver budgets: the clause cap is what turns the PRNG-inversion bomb
   into an E instead of a (wrong) long-running query.
"""

import pytest

from repro.bombs import get_bomb
from repro.concolic import ConcolicEngine
from repro.errors import SolverError
from repro.smt import Solver, mk_binop, mk_bool_not, mk_cmp, mk_const, mk_var, mk_zext
from repro.smt.intervals import presolve_unsat
from repro.symex import AngrEngine, SymexPolicy
from repro.tools.profiles import TRITONX
import dataclasses


def _bounds_unsat_query():
    """not(v < 0) && (9 < v) for v = -(10*d1 + d2), digits constrained."""
    b1, b2 = mk_var("ab_b1", 8), mk_var("ab_b2", 8)
    constraints = []
    for byte in (b1, b2):
        constraints.append(mk_cmp("ule", mk_const(48, 8), byte))
        constraints.append(mk_cmp("ule", byte, mk_const(57, 8)))
    d1 = mk_binop("sub", mk_zext(b1, 64), mk_const(48, 64))
    d2 = mk_binop("sub", mk_zext(b2, 64), mk_const(48, 64))
    v = mk_binop("sub", mk_const(0, 64),
                 mk_binop("add", mk_binop("mul", d1, mk_const(10, 64)), d2))
    constraints.append(mk_bool_not(mk_cmp("slt", v, mk_const(0, 64))))
    constraints.append(mk_cmp("slt", mk_const(9, 64), v))
    return constraints


class TestIntervalPresolve:
    def test_presolve_proves_bounds_unsat(self, once):
        constraints = _bounds_unsat_query()
        assert once(presolve_unsat, constraints) is True

    def test_without_presolve_the_sat_solver_struggles(self, benchmark):
        """The same query with a tiny conflict budget and no presolve:
        the CDCL core cannot prove it cheaply — which is exactly why the
        presolve exists."""
        constraints = _bounds_unsat_query()

        def attempt():
            solver = Solver(max_conflicts=200)
            # bypass presolve by querying the SAT path directly
            from repro.smt.bitblast import BitBlaster
            from repro.smt.sat import SatSolver

            sat = SatSolver(max_conflicts=200)
            blaster = BitBlaster(sat)
            for c in constraints:
                blaster.assert_true(c)
            try:
                return sat.solve()
            except SolverError:
                return "budget"

        result = benchmark.pedantic(attempt, rounds=1, iterations=1)
        assert result in (None, "budget")  # UNSAT if it finishes at all


class TestMemoryResolutionLimit:
    def test_limit_separates_l1_success_from_failure(self, once):
        bomb = get_bomb("sa_l1_array")

        def run(limit):
            policy = SymexPolicy(name=f"ablate_mem_{limit}", with_libs=True,
                                 mem_resolve_limit=limit, time_limit=80.0)
            engine = AngrEngine(bomb.image, policy)
            report = engine.explore(bomb.seed_argv, argv0=b"x")
            return any(bomb.triggers(c) for c in report.claimed_inputs)

        wide, narrow = once(lambda: (run(24), run(1)))
        assert wide is True       # 16-entry table fits: solved
        assert narrow is False    # everything concretizes: unsolved


class TestArgvModel:
    def test_padded_symbolic_solves_arglen(self, once):
        bomb = get_bomb("sv_arglen")

        def run():
            policy = SymexPolicy(name="ablate_argv", with_libs=True,
                                 time_limit=60.0)
            engine = AngrEngine(bomb.image, policy)
            report = engine.explore(bomb.seed_argv, argv0=b"x")
            return any(bomb.triggers(c) for c in report.claimed_inputs)

        assert once(run) is True

    def test_frozen_seed_length_fails_arglen(self, benchmark):
        bomb = get_bomb("sv_arglen")

        def run():
            return ConcolicEngine(TRITONX).run(
                bomb.image, bomb.seed_argv, bomb.base_env(), argv0=b"x"
            ).solved

        assert benchmark.pedantic(run, rounds=1, iterations=1) is False


class TestSolverBudget:
    def test_clause_cap_turns_prng_inversion_into_E(self, once):
        bomb = get_bomb("ef_srand")

        def run():
            policy = dataclasses.replace(TRITONX)
            report = ConcolicEngine(policy).run(
                bomb.image, bomb.seed_argv, bomb.base_env(), argv0=b"x"
            )
            return report.solved, report.aborted

        solved, aborted = once(run)
        assert not solved
        assert aborted is not None  # resource exhaustion, the paper's E
