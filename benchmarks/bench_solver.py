"""Microbenchmarks for the SMT substrate (real timing benchmarks).

Not tied to a paper table; these keep the solver's performance visible
so engine-level regressions are attributable.
"""

from repro.smt import Solver, mk_binop, mk_cmp, mk_const, mk_eq, mk_var
from repro.symex.simprocedures import sym_atoi


def test_bench_linear_equation(benchmark):
    x = mk_var("bs_x", 64)
    constraint = mk_eq(
        mk_binop("add", mk_binop("mul", x, mk_const(7, 64)), mk_const(13, 64)),
        mk_const(356, 64),
    )

    def solve():
        solver = Solver()
        solver.add(constraint)
        return solver.check()

    result = benchmark(solve)
    assert result.sat and (result.model["bs_x"] * 7 + 13) % 2**64 == 356


def test_bench_atoi_inversion(benchmark):
    """Solve atoi(s) == 4219 over a 6-byte symbolic string."""
    bts = [mk_var(f"bs_a{i}", 8) for i in range(6)]
    value = sym_atoi(bts)
    constraint = mk_eq(value, mk_const(4219, 64))

    def solve():
        solver = Solver()
        solver.add(constraint)
        return solver.check()

    result = benchmark(solve)
    assert result.sat
    text = bytearray()
    for i in range(6):
        byte = result.model.get(f"bs_a{i}", 0)
        if byte == 0 or not (48 <= byte <= 57 or byte == 45):
            break
        text.append(byte)
    assert int(text.decode()) == 4219


def test_bench_unsat_range_split(benchmark):
    """x < 100 && x > 200 over 64 bits (classic infeasible fork side)."""
    x = mk_var("bs_u", 64)
    constraints = [
        mk_cmp("ult", x, mk_const(100, 64)),
        mk_cmp("ult", mk_const(200, 64), x),
    ]

    def solve():
        solver = Solver()
        solver.extend(constraints)
        return solver.check()

    assert not benchmark(solve).sat


def test_bench_symbolic_shift(benchmark):
    """Barrel-shifter encoding: (1 << s) == 1024."""
    s = mk_var("bs_s", 64)
    constraint = mk_eq(
        mk_binop("shl", mk_const(1, 64), s), mk_const(1024, 64)
    )

    def solve():
        solver = Solver()
        solver.add(constraint)
        return solver.check()

    result = benchmark(solve)
    assert result.sat and result.model["bs_s"] == 10
