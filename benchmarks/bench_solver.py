"""Microbenchmarks for the SMT substrate (real timing benchmarks).

Not tied to a paper table; these keep the solver's performance visible
so engine-level regressions are attributable.
"""

from repro import obs
from repro.smt import (
    IncrementalSolver,
    Solver,
    mk_binop,
    mk_bool_not,
    mk_cmp,
    mk_const,
    mk_eq,
    mk_var,
)
from repro.symex.simprocedures import sym_atoi


def test_bench_linear_equation(benchmark):
    x = mk_var("bs_x", 64)
    constraint = mk_eq(
        mk_binop("add", mk_binop("mul", x, mk_const(7, 64)), mk_const(13, 64)),
        mk_const(356, 64),
    )

    def solve():
        solver = Solver()
        solver.add(constraint)
        return solver.check()

    result = benchmark(solve)
    assert result.sat and (result.model["bs_x"] * 7 + 13) % 2**64 == 356


def test_bench_atoi_inversion(benchmark):
    """Solve atoi(s) == 4219 over a 6-byte symbolic string."""
    bts = [mk_var(f"bs_a{i}", 8) for i in range(6)]
    value = sym_atoi(bts)
    constraint = mk_eq(value, mk_const(4219, 64))

    def solve():
        solver = Solver()
        solver.add(constraint)
        return solver.check()

    result = benchmark(solve)
    assert result.sat
    text = bytearray()
    for i in range(6):
        byte = result.model.get(f"bs_a{i}", 0)
        if byte == 0 or not (48 <= byte <= 57 or byte == 45):
            break
        text.append(byte)
    assert int(text.decode()) == 4219


def test_bench_unsat_range_split(benchmark):
    """x < 100 && x > 200 over 64 bits (classic infeasible fork side)."""
    x = mk_var("bs_u", 64)
    constraints = [
        mk_cmp("ult", x, mk_const(100, 64)),
        mk_cmp("ult", mk_const(200, 64), x),
    ]

    def solve():
        solver = Solver()
        solver.extend(constraints)
        return solver.check()

    assert not benchmark(solve).sat


def _growing_prefix_constraints(n: int = 24):
    """The concolic query shape: branch i negated under prefix [0, i)."""
    bts = [mk_var(f"bs_g{i}", 8) for i in range(6)]
    value = sym_atoi(bts)
    constraints = []
    for i in range(n):
        if i % 3 == 0:
            constraints.append(mk_cmp("ule", mk_const(48, 8), bts[i % 6]))
        elif i % 3 == 1:
            constraints.append(mk_cmp("ule", bts[i % 6], mk_const(57, 8)))
        else:
            constraints.append(
                mk_bool_not(mk_eq(value, mk_const(1000 + i, 64))))
    return constraints


def _fresh_per_negation(constraints):
    for i, target in enumerate(constraints):
        solver = Solver()
        solver.extend(constraints[:i])
        solver.add(mk_bool_not(target))
        solver.check()


def _incremental(constraints):
    inc = IncrementalSolver()
    for target in constraints:
        inc.check(mk_bool_not(target))
        inc.assert_expr(target)


def test_bench_incremental_vs_fresh_prefix(once):
    """The headline of the incremental layer: a growing prefix is
    re-encoded from scratch by the fresh-per-negation strategy but
    Tseitin-encoded once by :class:`IncrementalSolver` — total gate
    count (and with it encode time) collapses."""
    constraints = _growing_prefix_constraints()

    rec_fresh = obs.Recorder()
    with obs.recording(rec_fresh, close=False):
        _fresh_per_negation(constraints)
    rec_inc = obs.Recorder()
    with obs.recording(rec_inc, close=False):
        once(_incremental, constraints)

    fresh_gates = rec_fresh.snapshot()["counters"]["smt.gates"]
    inc_gates = rec_inc.snapshot()["counters"]["smt.gates"]
    once.benchmark.extra_info["fresh_gates"] = fresh_gates
    once.benchmark.extra_info["incremental_gates"] = inc_gates
    once.benchmark.extra_info["gate_ratio"] = round(fresh_gates / inc_gates, 2)
    # "Measurably fewer": the fresh strategy re-blasts the prefix per
    # query, so its total gate count must dominate by a wide margin.
    assert inc_gates > 0
    assert fresh_gates > 3 * inc_gates, (fresh_gates, inc_gates)


def test_bench_symbolic_shift(benchmark):
    """Barrel-shifter encoding: (1 << s) == 1024."""
    s = mk_var("bs_s", 64)
    constraint = mk_eq(
        mk_binop("shl", mk_const(1, 64), s), mk_const(1024, 64)
    )

    def solve():
        solver = Solver()
        solver.add(constraint)
        return solver.check()

    result = benchmark(solve)
    assert result.sat and result.model["bs_s"] == 10
