"""Fuzzing baselines over the dataset: random vs coverage-guided.

Section I motivates concolic execution as outperforming random testing
on small programs; the hybrid-fuzzing subsystem adds the third corner
of that comparison.  This benchmark runs both fuzzers — the blind
random baseline and the coverage-guided engine the ``hybridx`` column
drives — over the 22 Table II bombs with per-bomb budgets, prints the
comparison table, and writes ``BENCH_fuzz.json`` so ``bench_check.py``
can gate the solved sets and the executions-to-trigger counters across
revisions.
"""

import json
import time
from pathlib import Path

from repro.bombs import TABLE2_BOMB_IDS, get_bomb
from repro.fuzz import CoverageFuzzer, FuzzConfig, random_fuzz

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fuzz.json"

#: Environment-triggered bombs: no argv fuzzer can reach these.
ENV_BOMBS = ("sv_time", "sv_web", "sv_syscall")


def _fuzz_all():
    """Both campaigns per bomb; everything in here is deterministic."""
    results = {}
    for bomb_id in TABLE2_BOMB_IDS:
        bomb = get_bomb(bomb_id)
        rand = random_fuzz(
            bomb.image, budget=150, env=bomb.base_env(),
            argv0=bomb_id.encode(),
        )
        fuzzer = CoverageFuzzer(
            bomb.image, FuzzConfig(persist=False), bomb.base_env(),
            argv0=bomb_id.encode(), fixed_tail=tuple(bomb.seed_argv[1:]),
        )
        campaign = fuzzer.campaign(tuple(bomb.seed_argv[:1]))
        results[bomb_id] = (rand, campaign)
    return results


def _write_bench_json(results, wall_s) -> None:
    coverage_solved = sorted(b for b, (_, c) in results.items() if c.triggered)
    record = {
        "wall_s": round(wall_s, 3),
        "fuzz": {
            "random_solved": sorted(
                b for b, (r, _) in results.items() if r.triggered),
            "coverage_solved": coverage_solved,
            "executions_to_trigger": {
                b: c.executions for b, (_, c) in sorted(results.items())
                if c.triggered
            },
            "total_executions": sum(
                c.executions for _, c in results.values()),
            "corpus_edges": {
                b: c.corpus.coverage.edges
                for b, (_, c) in sorted(results.items())
            },
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")


def test_fuzz_baseline(once):
    wall0 = time.perf_counter()
    results = once(_fuzz_all)
    wall_s = time.perf_counter() - wall0

    print(f"\n{'bomb':20s} {'random':>10s} {'coverage':>10s}  "
          f"(executions to trigger)")
    for bomb_id, (rand, campaign) in results.items():
        rcell = f"{rand.executions:4d}" if rand.triggered else "-"
        ccell = f"{campaign.executions:4d}" if campaign.triggered else "-"
        print(f"{bomb_id:20s} {rcell:>10s} {ccell:>10s}")

    random_solved = {b for b, (r, _) in results.items() if r.triggered}
    coverage_solved = {b for b, (_, c) in results.items() if c.triggered}

    # The environment-triggered bombs are out of reach for any argv
    # fuzzer — that *is* the Es0 challenge.
    for bomb_id in ENV_BOMBS:
        assert bomb_id not in random_solved, bomb_id
        assert bomb_id not in coverage_solved, bomb_id

    # Coverage guidance + the cracking dictionary strictly dominates the
    # blind baseline: everything random finds, coverage finds too, plus
    # the crypto rows no random argv string ever hits.
    assert random_solved <= coverage_solved, \
        random_solved - coverage_solved
    for bomb_id in ("cf_sha1", "cf_aes"):
        assert bomb_id not in random_solved, bomb_id
        assert bomb_id in coverage_solved, bomb_id
    # Small-domain bombs fall to either fuzzer quickly.
    assert "sa_l1_array" in random_solved
    assert "sj_jump" in coverage_solved

    once.benchmark.extra_info["random_solved"] = sorted(random_solved)
    once.benchmark.extra_info["coverage_solved"] = sorted(coverage_solved)

    _write_bench_json(results, wall_s)
    record = json.loads(BENCH_JSON.read_text())
    assert set(record["fuzz"]["coverage_solved"]) == coverage_solved
    once.benchmark.extra_info["bench_json"] = str(BENCH_JSON.name)
