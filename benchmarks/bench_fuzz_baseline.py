"""Random-testing baseline over the dataset (Section I's comparison).

Concolic execution is motivated by beating random testing on small
programs; conversely the paper's challenges are exactly where concolic
tools stop beating it.  We give a random fuzzer a 150-execution budget
per bomb and compare its solve set with the tools'.
"""

from repro.bombs import TABLE2_BOMB_IDS, get_bomb
from repro.fuzz import random_fuzz


def _fuzz_all():
    results = {}
    for bomb_id in TABLE2_BOMB_IDS:
        bomb = get_bomb(bomb_id)
        results[bomb_id] = random_fuzz(
            bomb.image, budget=150, env=bomb.base_env(),
            argv0=bomb_id.encode(),
        )
    return results


def test_fuzz_baseline(once):
    results = once(_fuzz_all)
    solved = {b: r for b, r in results.items() if r.triggered}
    print(f"\nfuzzer solved {len(solved)}/22 bombs:")
    for bomb_id, res in solved.items():
        print(f"  {bomb_id:20s} after {res.executions:3d} executions "
              f"with input {res.trigger_input}")

    # The environment-triggered and long-input bombs are out of reach
    # for pure input fuzzing.
    for bomb_id in ("sv_time", "sv_web", "sv_syscall", "cf_sha1", "cf_aes"):
        assert not results[bomb_id].triggered, bomb_id
    # Small-domain bombs (array indexes in [0,15], jump offsets in
    # [0,9]) fall to brute force quickly — fuzzing complements concolic
    # execution exactly as the paper's discussion suggests.
    assert results["sa_l1_array"].triggered
    assert results["sj_jump"].triggered

    once.benchmark.extra_info["fuzz_solved"] = sorted(solved)
