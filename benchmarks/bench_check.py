"""Benchmark regression gate: compare two BENCH_table2.json records.

``bench_table2.py`` writes a cost profile of the full Table II run
(wall clock, solver counters, per-stage wall, solved counts).  This
script compares a freshly produced record against the committed
baseline and fails when the run got materially worse::

    python benchmarks/bench_check.py BASELINE.json CANDIDATE.json \
        [--wall-tolerance 0.20]

Gates (a *regression* is the bad direction only — getting faster or
reusing more prefixes never fails):

* ``solved_counts`` and ``agreement`` must match the baseline exactly —
  a correctness change is never acceptable collateral of a perf change;
* ``solver.queries`` may not grow by more than the tolerance;
* ``solver.prefix_reuse`` may not shrink by more than the tolerance;
* ``wall_s`` may not grow by more than the (separately settable) wall
  tolerance — CI runners are noisy, so the workflow passes a looser
  bound than the default;
* ``stage_wall_s.explore`` and ``stage_wall_s.solve`` (the two stages
  that dominate the run) may not grow by more than the wall tolerance
  either — a change can hold total wall steady while quietly shifting
  cost into one stage, and the per-stage gates catch that.

The same CLI also gates ``BENCH_fuzz.json`` records (the random vs
coverage-guided comparison): when both records carry a ``fuzz``
section, the coverage-guided solved set may not lose bombs, and the
executions-to-trigger counter may not grow past the tolerance for any
bomb both revisions solve — the fuzzer is deterministic, so growth
there is a real scheduling/mutation regression, not noise.

And ``BENCH_solverlab.json`` records (the captured solver workload):
when both records carry a ``solverlab`` section, the total query count
may not grow past the tolerance (query counts are deterministic — more
queries is a real exploration/solving change), and the per-class solve
wall may not grow past the wall tolerance for any constraint-shape
class present in both records — total wall can hide a workload shift
into one expensive class; the per-class gates cannot.

Exit status 0 when every gate holds, 1 otherwise (one line per
violation on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default relative tolerance for counter and wall-clock growth.
TOLERANCE = 0.20

#: Per-stage walls gated against the baseline (the dominant stages;
#: trace/lift/extract are too small and noisy to gate usefully).
GATED_STAGES = ("explore", "solve")


def _pct(old: float, new: float) -> str:
    if old == 0:
        return "from zero"
    return f"{(new - old) / old:+.1%}"


def compare(baseline: dict, candidate: dict,
            tolerance: float = TOLERANCE,
            wall_tolerance: float | None = None) -> list[str]:
    """The list of regression messages (empty when the candidate is ok)."""
    wall_tol = wall_tolerance if wall_tolerance is not None else tolerance
    problems: list[str] = []

    if candidate.get("solved_counts") != baseline.get("solved_counts"):
        problems.append(
            "solved_counts changed: "
            f"{baseline.get('solved_counts')} -> "
            f"{candidate.get('solved_counts')}")
    if candidate.get("agreement") != baseline.get("agreement"):
        problems.append(
            "agreement changed: "
            f"{baseline.get('agreement')} -> {candidate.get('agreement')}")

    base_solver = baseline.get("solver", {})
    cand_solver = candidate.get("solver", {})
    for key, worse_when in (("queries", "higher"),
                            ("prefix_reuse", "lower")):
        old, new = base_solver.get(key), cand_solver.get(key)
        if old is None or new is None:
            continue
        if worse_when == "higher":
            regressed = new > old * (1 + tolerance)
        else:
            regressed = new < old * (1 - tolerance)
        if regressed:
            problems.append(
                f"solver.{key} regressed: {old} -> {new} "
                f"({_pct(old, new)}, tolerance {tolerance:.0%}, "
                f"bad direction: {worse_when})")

    old_wall, new_wall = baseline.get("wall_s"), candidate.get("wall_s")
    if old_wall is not None and new_wall is not None:
        if new_wall > old_wall * (1 + wall_tol):
            problems.append(
                f"wall_s regressed: {old_wall} -> {new_wall} "
                f"({_pct(old_wall, new_wall)}, tolerance {wall_tol:.0%})")

    # Gate on exclusive self-time when both records carry it (solve
    # nests inside explore, so the inclusive walls double-count the
    # nested stage); fall back to the inclusive figures for records
    # written before ``stage_self_wall_s`` existed.
    key = ("stage_self_wall_s"
           if "stage_self_wall_s" in baseline
           and "stage_self_wall_s" in candidate
           else "stage_wall_s")
    base_stages = baseline.get(key, {})
    cand_stages = candidate.get(key, {})
    for stage in GATED_STAGES:
        old, new = base_stages.get(stage), cand_stages.get(stage)
        if old is None or new is None:
            continue
        if new > old * (1 + wall_tol):
            problems.append(
                f"{key}.{stage} regressed: {old} -> {new} "
                f"({_pct(old, new)}, tolerance {wall_tol:.0%})")

    base_lab = baseline.get("solverlab")
    cand_lab = candidate.get("solverlab")
    if base_lab is not None and cand_lab is not None:
        old, new = base_lab.get("queries"), cand_lab.get("queries")
        if old is not None and new is not None \
                and new > old * (1 + tolerance):
            problems.append(
                f"solverlab.queries regressed: {old} -> {new} "
                f"({_pct(old, new)}, tolerance {tolerance:.0%})")
        base_walls = base_lab.get("class_wall_s", {})
        cand_walls = cand_lab.get("class_wall_s", {})
        for cls in sorted(set(base_walls) & set(cand_walls)):
            old, new = base_walls[cls], cand_walls[cls]
            if new > old * (1 + wall_tol):
                problems.append(
                    f"solverlab.class_wall_s[{cls}] regressed: "
                    f"{old} -> {new} ({_pct(old, new)}, "
                    f"tolerance {wall_tol:.0%})")

    base_fuzz = baseline.get("fuzz")
    cand_fuzz = candidate.get("fuzz")
    if base_fuzz is not None and cand_fuzz is not None:
        lost = sorted(set(base_fuzz.get("coverage_solved", []))
                      - set(cand_fuzz.get("coverage_solved", [])))
        if lost:
            problems.append(
                f"fuzz.coverage_solved lost bomb(s): {', '.join(lost)}")
        base_execs = base_fuzz.get("executions_to_trigger", {})
        cand_execs = cand_fuzz.get("executions_to_trigger", {})
        for bomb in sorted(set(base_execs) & set(cand_execs)):
            old, new = base_execs[bomb], cand_execs[bomb]
            if new > old * (1 + tolerance):
                problems.append(
                    f"fuzz.executions_to_trigger[{bomb}] regressed: "
                    f"{old} -> {new} ({_pct(old, new)}, "
                    f"tolerance {tolerance:.0%})")

    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a Table II benchmark record regressed "
                    "against the committed baseline")
    parser.add_argument("baseline", help="committed BENCH_table2.json")
    parser.add_argument("candidate", help="freshly produced record")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        metavar="FRAC",
                        help="allowed relative counter growth/shrink "
                             "(default 0.20)")
    parser.add_argument("--wall-tolerance", type=float, default=None,
                        metavar="FRAC",
                        help="separate wall-clock tolerance (default: "
                             "same as --tolerance; CI uses a looser "
                             "bound for runner noise)")
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(Path(args.baseline).read_text())
        candidate = json.loads(Path(args.candidate).read_text())
    except (OSError, ValueError) as err:
        print(f"bench_check: {err}", file=sys.stderr)
        return 1

    problems = compare(baseline, candidate, tolerance=args.tolerance,
                       wall_tolerance=args.wall_tolerance)
    for problem in problems:
        print(f"bench_check: {problem}", file=sys.stderr)
    if problems:
        print(f"bench_check: {len(problems)} regression(s) vs "
              f"{args.baseline}", file=sys.stderr)
        return 1
    print(f"bench_check: ok ({args.candidate} within tolerance of "
          f"{args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
