"""Execution-cache benchmark: cold vs warm exploration of one image.

The shared :mod:`repro.ir.superblock` cache is process-wide, so running
the same cell twice in one process exercises both halves of the cache
contract:

* the *cold* pass lifts and compiles everything (``lift.instructions``
  > 0, superblock misses dominate);
* the *warm* pass must re-lift **nothing** (``lift.instructions`` == 0)
  and serve superblocks from cache (``cache.superblock_hits`` > 0),
  while producing a byte-identical cell result — the cache must be a
  pure performance layer, invisible in outcomes.

The benched cells are the two slowest symbolic-array bombs, where
exploration (enumeration + interpretation) dominates the matrix cost.
"""

import time

from repro import obs
from repro.bombs import get_bomb
from repro.eval.harness import run_cell
from repro.ir import superblock
from repro.service.store import encode_cell

CELLS = (("sa_l1_array", "angrx"), ("sa_l2_array", "angrx"))


def _comparable(cell) -> dict:
    """The cell document minus everything timing-dependent."""
    doc = encode_cell(cell)
    doc.pop("timings", None)
    doc.pop("timings_self", None)
    doc["report"].pop("elapsed", None)
    return doc


def _run_pass():
    recorder = obs.Recorder()
    cells = []
    wall0 = time.perf_counter()
    with obs.recording(recorder):
        for bomb_id, tool in CELLS:
            cells.append(run_cell(get_bomb(bomb_id), tool))
    wall_s = time.perf_counter() - wall0
    return cells, recorder.snapshot()["counters"], wall_s


def test_bench_explore_cold_then_warm(once):
    superblock.reset()  # guarantee a genuinely cold first pass

    def both_passes():
        cold = _run_pass()
        warm = _run_pass()
        return cold, warm

    (cold_cells, cold_counters, cold_s), (warm_cells, warm_counters, warm_s) \
        = once(both_passes)

    # The cache is invisible in outcomes: warm results are byte-identical.
    for cold_cell, warm_cell in zip(cold_cells, warm_cells):
        assert _comparable(cold_cell) == _comparable(warm_cell)

    # Cold pass did the lifting; warm pass re-lifted nothing at all.
    assert cold_counters.get("lift.instructions", 0) > 0
    assert warm_counters.get("lift.instructions", 0) == 0

    # Warm superblock dispatch comes from the shared cache.
    assert warm_counters.get("cache.superblock_hits", 0) > 0
    assert warm_counters.get("cache.superblock_misses", 0) == 0

    bench = once.benchmark
    bench.extra_info["cold_wall_s"] = round(cold_s, 3)
    bench.extra_info["warm_wall_s"] = round(warm_s, 3)
    for key in ("cache.superblock_hits", "cache.enum_hits", "symex.merges"):
        if key in warm_counters:
            bench.extra_info[key] = warm_counters[key]
