"""Benchmark configuration: every experiment runs once (pedantic mode);
the numbers of interest are the experiment *outputs*, which are attached
to the benchmark records as extra_info and printed."""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    runner.benchmark = benchmark
    return runner
