"""Section V.C's negative bomb: pow(x, 2) == -1 is constant-false.

The paper: "Angr aggressively assigns return values to the pow function,
and thinks the bomb path can be triggered" — a false positive unique to
the unconstrained-summary (no-library) configuration.  We also run the
REXX extension, whose honest-claims rule must NOT report it reachable.
"""

from repro.bombs import get_bomb
from repro.tools import get_tool


def _run_negative():
    bomb = get_bomb("neg_square")
    return {
        name: get_tool(name).analyze_bomb(bomb)
        for name in ("bapx", "tritonx", "angrx", "angrx_nolib", "rexx")
    }


def test_negative_bomb_false_positive(once):
    reports = once(_run_negative)
    print()
    for name, report in reports.items():
        print(f"  {name:12s} claimed={report.goal_claimed!s:5s} "
              f"solved={report.solved!s:5s} false_positive={report.false_positive}")

    # Nobody actually triggers it (it is unreachable).
    assert not any(r.solved for r in reports.values())
    # The no-library configuration *claims* it reachable: the paper's
    # false positive.
    assert reports["angrx_nolib"].false_positive
    # Trace-based tools never claim unvalidated reachability.
    assert not reports["bapx"].goal_claimed
    assert not reports["tritonx"].goal_claimed
    # The extension tool refuses to claim through an invented pow value.
    assert not reports["rexx"].false_positive
