"""Fleet identity: a 2-worker fleet run equals a single-process run.

The acceptance criterion of the fleet subsystem (ISSUE 7): a campaign
drained by detached lease-based workers renders exactly the Table II
slice a single-process ``campaign run`` produces — same labels, same
cells, no cell executed twice — and the fleet-produced store then
serves a ``table2 --cache`` rerun entirely from cache.
"""

import tempfile
from pathlib import Path

from repro import obs
from repro.eval import render_table2, run_table2
from repro.service import CampaignService, CampaignSpec, run_fleet

BOMBS = ("cp_stack", "sv_time", "cp_file", "sv_arglen")
TOOLS = ("tritonx", "bapx")


def _fleet_run(root) -> tuple[str, CampaignService]:
    service = CampaignService(root)
    cid = service.submit(CampaignSpec(bombs=BOMBS, tools=TOOLS))
    run_fleet(root, jobs=2, poll_s=0.02, drain=True)
    return cid, service


def test_fleet_matches_single_process(once):
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        root = Path(tmp) / "svc"
        cid, service = once(_fleet_run, root)

        status = service.status(cid)
        assert status["states"]["done"] == len(BOMBS) * len(TOOLS)
        assert status["states"]["exhausted"] == 0
        fleet_render = render_table2(service.results(cid))

        solo_svc = CampaignService(Path(tmp) / "solo")
        solo = solo_svc.run(solo_svc.submit(
            CampaignSpec(bombs=BOMBS, tools=TOOLS)))
        assert fleet_render == render_table2(solo.table)

        # The fleet-produced store serves a table2 rerun from cache:
        # zero analyses, every label already present.
        recorder = obs.Recorder()
        with obs.recording(recorder, close=False):
            cached = run_table2(bomb_ids=BOMBS, tools=TOOLS,
                                cache=str(root / "store"), verbose=False)
        counters = recorder.snapshot()["counters"]
        assert counters["service.cache_hits"] == len(BOMBS) * len(TOOLS)
        assert counters.get("service.cache_misses", 0) == 0
        assert render_table2(cached) == fleet_render

        once.benchmark.extra_info["cells"] = len(BOMBS) * len(TOOLS)
        once.benchmark.extra_info["results"] = status["results"]
