"""The extension dataset: new challenges "following our approach" (§IV).

Five bombs beyond the paper's 22, probing gaps the paper names but does
not evaluate (loops, stdin), composition of challenges, and a *weak*
crypto contrast case that separates "crypto is hard" from "dataflow
through crypto-shaped code is broken".
"""

from repro.bombs import get_bomb
from repro.concolic import ConcolicEngine
from repro.symex import AngrEngine
from repro.tools.profiles import ANGRX, TRITONX

EXT_BOMBS = ("ext_loop", "ext_stdin", "ext_xor_cipher", "ext_two_args",
             "ext_combo")


def _run_all():
    results = {}
    for bomb_id in EXT_BOMBS:
        bomb = get_bomb(bomb_id)
        trace_report = ConcolicEngine(TRITONX).run(
            bomb.image, bomb.seed_argv, bomb.base_env(),
            argv0=bomb_id.encode())
        engine = AngrEngine(bomb.image, ANGRX)
        raw = engine.explore(bomb.seed_argv, argv0=bomb_id.encode())
        symex_solved = any(bomb.triggers(c) for c in raw.claimed_inputs)
        results[bomb_id] = (trace_report.solved, symex_solved)
    return results


def test_extension_set(once):
    results = once(_run_all)
    print()
    for bomb_id, (trace_ok, symex_ok) in results.items():
        print(f"  {bomb_id:16s} tritonx={'ok' if trace_ok else 'fail':4s} "
              f"angrx={'ok' if symex_ok else 'fail'}")

    # Weak crypto falls to the static engine (single conjoined query)
    # even though real crypto does not — the contrast point.
    assert results["ext_xor_cipher"][1] is True
    # The split-argv trigger falls to the trace tool once both slots are
    # symbolized.
    assert results["ext_two_args"][0] is True
    # The loop-bound challenge (the paper's named omission) defeats both.
    assert results["ext_loop"] == (False, False)
    # stdin is outside both tools' symbolic-input declarations (Es0).
    assert results["ext_stdin"] == (False, False)
    # Challenge composition defeats both configurations.
    assert results["ext_combo"] == (False, False)
