"""Solver-workload benchmark: capture, replay, and record the corpus.

Runs the flight recorder over a small representative matrix slice —
one bomb per dominant constraint-shape class (stack maze, array
select, jump table, SHA1, FP) under both engine families — then
replays the corpus (asserting zero verdict drift, the lab's core
guarantee) and writes ``BENCH_solverlab.json`` so ``bench_check.py``
can gate the total query count and the per-class solve wall across
revisions: a change that quietly doubles the solver's workload, or
shifts it into an expensive class, fails the gate even when total
wall clock stays inside runner noise.
"""

import json
import time
from pathlib import Path

from repro.eval import solverlab

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_solverlab.json"

#: One bomb per dominant constraint shape (plus the crypto row).
BOMBS = ("cp_stack", "sa_l1_array", "sj_jump", "cf_sha1", "fp_float")
TOOLS = ("tritonx", "angrx")


def _run(cache_dir):
    capture = solverlab.capture_matrix(bombs=BOMBS, tools=TOOLS,
                                       cache=str(cache_dir), verbose=False)
    replay = solverlab.replay_corpus(str(cache_dir), mode="fresh")
    report = solverlab.report_corpus(str(cache_dir))
    return capture, replay, report


def _write_bench_json(capture, report, wall_s) -> None:
    record = {
        "wall_s": round(wall_s, 3),
        "solverlab": {
            "queries": report["queries"],
            "distinct": report["distinct"],
            "dedup_ratio": report["dedup_ratio"],
            "attributed_wall_fraction": report["attributed_wall_fraction"],
            "class_queries": {cls: row["n"]
                              for cls, row in sorted(
                                  report["by_class"].items())},
            "class_wall_s": {cls: row["wall_s"]
                             for cls, row in sorted(
                                 report["by_class"].items())},
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")


def test_solverlab_benchmark(once, tmp_path):
    wall0 = time.perf_counter()
    capture, replay, report = once(_run, tmp_path / "store")
    wall_s = time.perf_counter() - wall0

    print(f"\n{'class':16s}{'queries':>9s}{'wall s':>10s}")
    for cls, row in sorted(report["by_class"].items(),
                           key=lambda kv: -kv[1]["wall_s"]):
        print(f"{cls:16s}{row['n']:>9d}{row['wall_s']:>10.3f}")

    # The lab's acceptance criterion: the replay reproduces every
    # captured verdict exactly, and the report attributes all solve
    # wall to named classes.
    assert replay["drift"] == [], replay["drift"]
    assert replay["queries"] == capture["queries"]
    assert report["attributed_wall_fraction"] == 1.0
    assert capture["queries"] > 0
    # The slice spans multiple constraint shapes — a single-class
    # corpus would gate nothing interesting.
    assert len(report["by_class"]) >= 3, report["by_class"]

    once.benchmark.extra_info["queries"] = report["queries"]
    once.benchmark.extra_info["distinct"] = report["distinct"]
    once.benchmark.extra_info["classes"] = sorted(report["by_class"])

    _write_bench_json(capture, report, wall_s)
    record = json.loads(BENCH_JSON.read_text())
    assert record["solverlab"]["queries"] == report["queries"]
    once.benchmark.extra_info["bench_json"] = str(BENCH_JSON.name)
