"""The REXX extension tool over the full dataset.

DESIGN.md's "lessons learnt" experiment: with the challenges engineered
away (symbolic environment, faithful kernel models, two-level memory,
jump enumeration, FP search, honest claims), how much of the dataset
falls?  Expected: >= 15 of the 22 bombs solve, the crypto/PRNG rows
still fail (by design), and the negative bomb stays un-claimed.
"""

from repro.bombs import TABLE2_BOMB_IDS, get_bomb
from repro.tools import get_tool


def _run_rexx():
    tool = get_tool("rexx")
    return {b: tool.analyze_bomb(get_bomb(b)) for b in TABLE2_BOMB_IDS}


def test_rexx_extension(once):
    reports = once(_run_rexx)
    solved = sorted(b for b, r in reports.items() if r.solved)
    print(f"\nrexx solved {len(solved)}/22:")
    for bomb_id in TABLE2_BOMB_IDS:
        report = reports[bomb_id]
        status = "solved" if report.solved else "failed"
        extra = ""
        if report.solved and report.solution_env is not None:
            env = report.solution_env
            parts = []
            if env.network:
                parts.append(f"network={list(env.network)}")
            if env.files:
                parts.append(f"files={list(env.files)}")
            if "sv_time" in bomb_id:
                parts.append(f"time={env.time_value}")
            if "sv_syscall" in bomb_id:
                parts.append(f"pid={env.pid}")
            extra = " env: " + ", ".join(parts) if parts else ""
        print(f"  {bomb_id:20s} {status}{extra}")

    assert len(solved) >= 15
    # Environment bombs fall once the environment is symbolic.
    for bomb_id in ("sv_time", "sv_web", "sv_syscall"):
        assert reports[bomb_id].solved, bomb_id
    # The two-level array and jump-table bombs fall to the deeper model.
    for bomb_id in ("sa_l2_array", "sj_jump_array", "fp_float"):
        assert reports[bomb_id].solved, bomb_id
    # Crypto stays intractable — and REXX fails *honestly* (no wrong
    # claims certified as solutions).
    for bomb_id in ("cf_sha1", "cf_aes"):
        assert not reports[bomb_id].solved, bomb_id

    once.benchmark.extra_info["solved"] = len(solved)
