"""Figure 3: the external-function-call constraint blow-up.

The paper: without the printf, 5 instructions propagate the symbolic
value; enabling it pulls 61 more (including conditional ones) into the
trace, and solutions that ignored printf's constraints stop working.
We reproduce the shape: a small tainted count without printing, a much
larger one with it, plus extra symbolic branches in the model.
"""

from repro import obs
from repro.eval import run_figure3
from repro.obs import MemorySink


def test_figure3_printf_blowup(once):
    sink = MemorySink()
    recorder = obs.Recorder(sinks=(sink,))
    with obs.recording(recorder):
        result = once(run_figure3)
    print("\n" + result.render())

    off, on = result.off, result.on
    # Shape: printing must multiply the tainted-instruction count.
    assert off.tainted_instructions < 40
    assert on.tainted_instructions > 2 * off.tainted_instructions
    assert result.extra_tainted > 30  # paper: +61, ours: +37
    # And it must add data-dependent conditional constraints.
    assert result.extra_branches > 0
    assert on.model_nodes > 2 * off.model_nodes

    # The same numbers must be visible through the metrics path: each
    # variant's "figure3" span carries the taint counter deltas.
    deltas = {
        event["attrs"]["variant"]: event["counters"]
        for event in sink.events
        if event["t"] == "span" and event["name"] == "figure3"
    }
    assert deltas["fig3_printf_off"]["taint.instructions_tainted"] == \
        off.tainted_instructions
    assert deltas["fig3_printf_on"]["taint.instructions_tainted"] == \
        on.tainted_instructions

    once.benchmark.extra_info["tainted_off"] = off.tainted_instructions
    once.benchmark.extra_info["tainted_on"] = on.tainted_instructions
    once.benchmark.extra_info["extra"] = result.extra_tainted
    once.benchmark.extra_info["model_nodes_on"] = \
        deltas["fig3_printf_on"].get("taint.model_nodes", 0)
