"""Figure 3: the external-function-call constraint blow-up.

The paper: without the printf, 5 instructions propagate the symbolic
value; enabling it pulls 61 more (including conditional ones) into the
trace, and solutions that ignored printf's constraints stop working.
We reproduce the shape: a small tainted count without printing, a much
larger one with it, plus extra symbolic branches in the model.
"""

from repro.eval import run_figure3


def test_figure3_printf_blowup(once):
    result = once(run_figure3)
    print("\n" + result.render())

    off, on = result.off, result.on
    # Shape: printing must multiply the tainted-instruction count.
    assert off.tainted_instructions < 40
    assert on.tainted_instructions > 2 * off.tainted_instructions
    assert result.extra_tainted > 30  # paper: +61, ours: +37
    # And it must add data-dependent conditional constraints.
    assert result.extra_branches > 0
    assert on.model_nodes > 2 * off.model_nodes

    once.benchmark.extra_info["tainted_off"] = off.tainted_instructions
    once.benchmark.extra_info["tainted_on"] = on.tainted_instructions
    once.benchmark.extra_info["extra"] = result.extra_tainted
