"""Table I: challenge -> error-stage matrix, regenerated from metadata."""

from repro.bombs import CHALLENGE_ERROR_STAGES
from repro.errors import ErrorStage
from repro.eval import render_table1


def test_table1(once):
    text = once(render_table1)
    print("\n" + text)
    # Shape checks against the paper's Table I.
    assert len(CHALLENGE_ERROR_STAGES) == 7
    sv = CHALLENGE_ERROR_STAGES["Symbolic Variable Declaration"]
    assert sv == {ErrorStage.ES0, ErrorStage.ES1, ErrorStage.ES2, ErrorStage.ES3}
    for challenge in ("Symbolic Array", "Contextual Symbolic Value",
                      "Symbolic Jump", "Floating-point Number"):
        assert CHALLENGE_ERROR_STAGES[challenge] == {ErrorStage.ES3}
