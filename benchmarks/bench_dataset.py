"""Section V.A dataset statistics: 22 binaries, sizes in a narrow band.

The paper's binaries are 10-25 KB with a median of 14 KB (gcc-compiled
x86-64 with dynamic linking).  Ours are statically linked RX64 images,
so the absolute sizes differ slightly, but the *shape* holds: a tight
band of small binaries, each dominated by the shared runtime, with the
bomb logic contributing only a small delta.
"""

from repro.bombs import TABLE2_BOMB_IDS
from repro.eval import run_dataset_stats


def test_dataset_sizes(once):
    stats = once(run_dataset_stats)
    print("\n" + stats.render())
    for bomb_id, size in sorted(stats.sizes.items(), key=lambda kv: kv[1]):
        print(f"  {bomb_id:20s} {size:6d} B")

    assert len(stats.sizes) == len(TABLE2_BOMB_IDS) == 22
    # Paper band: [10 KB, 25 KB].
    assert 10_000 <= stats.minimum
    assert stats.maximum <= 25_000
    assert 10_000 <= stats.median <= 25_000
    # Small-size programs: the whole band is tight.
    assert stats.maximum - stats.minimum < 5_000

    once.benchmark.extra_info["median"] = stats.median
