"""Table II: the paper's headline experiment.

Runs all 22 logic bombs against the four evaluated tool configurations,
classifies every cell, and compares against the paper's reported
labels.  The shape criteria from the paper:

* every challenge retains at least one case no tool solves;
* headline solve counts: BAP 2, Triton 1, the Angr family 4;
* the per-cell agreement is reported (and must stay high).
"""

import json
import time
from pathlib import Path

from repro import obs
from repro.eval import render_table2, run_table2, verify_table1_against_observations

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_table2.json"


def _write_bench_json(result, snap, wall_s) -> None:
    """Persist the matrix cost profile for cross-revision comparison."""
    counters = snap["counters"]
    record = {
        "wall_s": round(wall_s, 3),
        "solved_counts": result.solved_counts(),
        "agreement": dict(zip(("matched", "labelled"), result.agreement())),
        "solver": {
            key.split(".", 1)[1]: counters[key]
            for key in ("smt.queries", "smt.assumption_queries",
                        "smt.prefix_reuse", "smt.conflicts", "smt.gates")
            if key in counters
        },
        "stage_wall_s": {
            name: round(stat["wall_s"], 4)
            for name, stat in sorted(snap["spans"].items())
            if name in ("trace", "lift", "extract", "solve", "replay",
                        "explore")
        },
        # Exclusive per-stage self-time: wall minus time spent in nested
        # child spans (solve nests inside explore, so the inclusive
        # figures above double-count and sum past the total wall).
        "stage_self_wall_s": {
            name: round(stat.get("self_s", stat["wall_s"]), 4)
            for name, stat in sorted(snap["spans"].items())
            if name in ("trace", "lift", "extract", "solve", "replay",
                        "explore")
        },
        "cache": {
            key.split(".", 1)[1]: counters[key]
            for key in ("cache.superblock_hits", "cache.superblock_misses",
                        "cache.lift_store_hits", "symex.merges")
            if key in counters
        },
        "cells": [
            {
                "bomb": cell.bomb_id,
                "tool": cell.tool,
                "outcome": cell.label,
                "wall_s": round(cell.report.elapsed, 4),
                "timings_s": {k: round(v, 4)
                              for k, v in sorted(cell.timings.items())},
                "timings_self_s": {
                    k: round(v, 4)
                    for k, v in sorted(getattr(cell, "timings_self",
                                               {}).items())},
            }
            for _, cell in sorted(result.cells.items())
        ],
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")


def test_table2_full_matrix(once):
    recorder = obs.Recorder()
    wall0 = time.perf_counter()
    with obs.recording(recorder):
        result = once(run_table2)
    wall_s = time.perf_counter() - wall0
    print("\n" + render_table2(result))

    counts = result.solved_counts()
    assert counts["bapx"] == 2, counts
    assert counts["tritonx"] == 1, counts
    assert result.solved_by_angr_family() == 4

    # Paper: "for all the challenges, there exist at least one test case
    # which cannot be handled by all the tools" — i.e. no challenge has a
    # case that *every* configuration solves (the paper's own parallel
    # rows each have one solving tool, so the stronger reading is false
    # even for the original data).
    from repro.bombs import CHALLENGES, TABLE2_BOMB_IDS, get_bomb
    from repro.errors import ErrorStage

    for prefix, challenge in CHALLENGES.items():
        rows = [b for b in TABLE2_BOMB_IDS if b.startswith(prefix + "_")]
        if not rows:
            continue  # the extension set is not part of Table II
        assert any(
            any(result.cells[(b, t)].outcome is not ErrorStage.OK
                for t in ("bapx", "tritonx", "angrx", "angrx_nolib"))
            for b in rows
        ), f"challenge {challenge} is fully solved by every tool"

    match, total = result.agreement()
    print(f"\ncell agreement with the paper: {match}/{total}")
    assert match >= int(total * 0.9), "cell agreement dropped below 90%"

    violations = verify_table1_against_observations(result)
    assert not violations, violations

    once.benchmark.extra_info["agreement"] = f"{match}/{total}"
    once.benchmark.extra_info["solved"] = counts

    # The per-stage cost profile of the whole matrix, from the recorder:
    # where the pipeline actually spends its time (trace/lift/extract/
    # solve/replay), plus the headline work counters.
    snap = recorder.snapshot()
    once.benchmark.extra_info["stage_wall_s"] = {
        name: round(stat["wall_s"], 4)
        for name, stat in sorted(snap["spans"].items())
        if name in ("trace", "lift", "extract", "solve", "replay", "explore")
    }
    for key in ("smt.queries", "smt.conflicts", "concolic.rounds",
                "vm.instructions", "taint.instructions_tainted"):
        if key in snap["counters"]:
            once.benchmark.extra_info[key] = snap["counters"][key]
    assert snap["counters"].get("smt.queries", 0) > 0
    assert "solve" in snap["spans"] and "trace" in snap["spans"]

    _write_bench_json(result, snap, wall_s)
    record = json.loads(BENCH_JSON.read_text())
    assert record["wall_s"] > 0 and len(record["cells"]) == len(result.cells)
    assert record["solver"]["gates"] > 0 and record["solver"]["conflicts"] >= 0
    once.benchmark.extra_info["bench_json"] = str(BENCH_JSON.name)
