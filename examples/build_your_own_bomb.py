#!/usr/bin/env python3
"""Extend the dataset: write, compile and evaluate your own logic bomb.

The paper invites exactly this ("users may extend the list with new
challenges following our approach").  This example plants a bomb behind
a *combination* of two challenges — covert propagation through the
kernel mailbox plus a symbolic array — and checks which tools survive.

Run:  python examples/build_your_own_bomb.py
"""

from repro.concolic import ConcolicEngine
from repro.lang import compile_single
from repro.symex import AngrEngine
from repro.tools.profiles import ANGRX, BAPX, TRITONX
from repro.vm import Machine

MY_BOMB = r'''
int lookup[8] = {13, 57, 21, 99, 45, 3, 88, 62};

int main(int argc, char **argv) {
    if (argc < 2) { return 1; }
    int v = atoi(argv[1]);
    if (v < 0 || v > 7) { return 1; }
    msgsend(lookup[v]);          // covert hop through the kernel...
    int w = msgrecv();           // ...and back
    if (w == 88) {               // lookup[6] == 88
        bomb();
    }
    return 0;
}
'''


def main() -> None:
    image = compile_single(MY_BOMB, "my_bomb.bc")
    print(f"compiled: {image.file_size} bytes")

    # Ground truth: the oracle input is 6.
    assert Machine(image, [b"b", b"6"]).run().bomb_triggered
    assert not Machine(image, [b"b", b"1"]).run().bomb_triggered
    print("oracle verified: argv[1] = 6 triggers\n")

    for policy in (BAPX, TRITONX):
        report = ConcolicEngine(policy).run(image, [b"1"], argv0=b"b")
        diags = sorted({d.kind.value for d in report.diagnostics})
        print(f"{policy.name:12s} solved={report.solved}  diagnostics={diags}")

    engine = AngrEngine(image, ANGRX)
    report = engine.explore([b"1"], argv0=b"b")
    validated = any(
        Machine(image, [b"b"] + claim).run().bomb_triggered
        for claim in report.claimed_inputs
    )
    print(f"{'angrx':12s} solved={validated}  "
          f"claimed={report.claimed_inputs}  "
          f"diagnostics={sorted({d.kind.value for d in report.diagnostics})}")
    print("\nThe combination defeats every classic tool: trace tools lose "
          "taint at the mailbox, and angr's simulated msgrecv invents a "
          "value the kernel never returns.")


if __name__ == "__main__":
    main()
