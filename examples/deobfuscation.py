#!/usr/bin/env python3
"""Opaque-predicate detection — the paper's deobfuscation scenario (§V.D.2).

Obfuscators guard bogus code behind *opaque predicates*: conditions with
a fixed truth value that static analysis cannot cheaply see through.
Concolic/symbolic execution deobfuscates by proving branch infeasibility
— dead-code elimination with a solver.

This example compiles a function protected by three opaque predicates,
then uses the static symbolic engine to check both sides of every
conditional branch.  Branches whose false (or true) side is UNSAT are
reported as opaque, together with the bogus blocks they guard.

Run:  python examples/deobfuscation.py
"""

from repro.errors import DiagnosticKind
from repro.lang import compile_single
from repro.symex import AngrEngine, SymexPolicy

OBFUSCATED = r'''
int real_work(int v) {
    return v * 3 + 7;
}

int main(int argc, char **argv) {
    if (argc < 2) { return 1; }
    int v = atoi(argv[1]);
    int result = 0;

    // Opaque predicate 1: x*x is never negative (mod arithmetic aside,
    // the guard range-checks first).
    int sq = v % 100;
    if (sq * sq < 0) {
        result = result + 666;        // bogus
    } else {
        result = real_work(v);        // real
    }

    // Opaque predicate 2: (x | 1) is always odd.
    if (((v | 1) & 1) == 0) {
        result = result ^ 0xdead;     // bogus
    }

    // A *real* (non-opaque) condition, for contrast.
    if (v > 50) {
        result = result + 1;
    }

    print_int(result);
    return 0;
}
'''


def main() -> None:
    image = compile_single(OBFUSCATED, "obfuscated.bc")
    policy = SymexPolicy(name="deobf", with_libs=True, max_states=256,
                         max_total_steps=60_000, time_limit=60.0)
    engine = AngrEngine(image, policy)

    # Instrument branch decisions: wrap the engine's branch handler to
    # record, per branch pc, which sides were ever feasible.
    feasible: dict[int, set[bool]] = {}
    original = engine._cond_branch

    def observing(state, stmt, instr):
        before = len(state.constraints)
        forks = original(state, stmt, instr)
        taken_side = state.pc == stmt.target
        feasible.setdefault(instr.addr, set()).add(taken_side)
        for fork in forks:
            feasible[instr.addr].add(fork.pc == stmt.target)
        del before
        return forks

    engine._cond_branch = observing
    engine.explore([b"7"], argv0=b"obf")

    symbols = image.symbols_by_addr()
    print("branch feasibility over all explored paths:")
    opaque = []
    for pc in sorted(feasible):
        sides = feasible[pc]
        kind = "OPAQUE" if len(sides) == 1 else "real  "
        if len(sides) == 1:
            opaque.append(pc)
        print(f"  branch @0x{pc:06x}: sides seen {sorted(sides)} -> {kind}")
    print(f"\n{len(opaque)} opaque predicates detected; the guarded blocks "
          "are dead code and can be eliminated.")
    print("(Note: library-internal branches also appear; a deobfuscator "
          "would scope this to the protected function.)")


if __name__ == "__main__":
    main()
