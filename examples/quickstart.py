#!/usr/bin/env python3
"""Quickstart: compile a crackme and solve it with concolic execution.

This walks the full pipeline the paper describes (Figure 1): a C-like
source is compiled to an RX64 binary, executed concretely under the
tracer, replayed symbolically, and the negated branch constraints are
solved to produce the password — all from scratch, no external tools.

Run:  python examples/quickstart.py
"""

from repro.concolic import ConcolicEngine
from repro.lang import compile_single
from repro.tools.profiles import TRITONX
from repro.vm import Machine

CRACKME = r'''
int main(int argc, char **argv) {
    if (argc < 2) {
        print_str("usage: crackme <password>\n");
        return 1;
    }
    int v = atoi(argv[1]);
    // The "license check": (v ^ 1337) * 3 == 9636  =>  v = 2485
    if ((v ^ 1337) * 3 == 9636) {
        print_str("ACCESS GRANTED\n");
        bomb();   // the code we want to reach
    } else {
        print_str("wrong password\n");
    }
    return 0;
}
'''


def main() -> None:
    print("== compiling the crackme to an RX64 binary ==")
    image = compile_single(CRACKME, "crackme.bc")
    print(f"binary size: {image.file_size} bytes, "
          f"entry at 0x{image.entry:x}, bomb symbol at "
          f"0x{image.symbol_addr('bomb'):x}")

    print("\n== a wrong guess, executed concretely ==")
    result = Machine(image, [b"crackme", b"1234"]).run()
    print(f"stdout: {result.stdout.decode()!r}  exit: {result.exit_code}")

    print("== concolic execution from seed '1234' ==")
    engine = ConcolicEngine(TRITONX)
    report = engine.run(image, [b"1234"], argv0=b"crackme")
    assert report.solved, "engine failed to crack it!"
    password = report.solution[0].decode()
    print(f"solved in {report.rounds} rounds / {report.queries} solver "
          f"queries: password = {password!r}")

    print("\n== verifying the found password concretely ==")
    result = Machine(image, [b"crackme", report.solution[0]]).run()
    print(f"stdout: {result.stdout.decode()!r}")
    assert result.bomb_triggered
    print("done: the target code was reached.")


if __name__ == "__main__":
    main()
