#!/usr/bin/env python3
"""Audit the logic-bomb dataset with one of the evaluated tools.

Reproduces one column of the paper's Table II on demand: pick a tool
(bapx / tritonx / angrx / angrx_nolib / rexx) and a set of bombs, run
the analysis, and print the classified outcome next to the label the
paper reports for that cell.

Run:  python examples/logic_bomb_audit.py tritonx sv_arglen cp_stack sa_l1_array
      python examples/logic_bomb_audit.py angrx            # a fast subset
"""

import sys

from repro.bombs import get_bomb
from repro.eval import classify, run_cell

FAST_SUBSET = [
    "sv_time", "sv_arglen", "cp_stack", "cp_syscall",
    "pp_pthread", "sa_l1_array", "cs_file_name", "sj_jump",
]


def main() -> None:
    tool = sys.argv[1] if len(sys.argv) > 1 else "tritonx"
    bomb_ids = sys.argv[2:] or FAST_SUBSET
    print(f"auditing {len(bomb_ids)} bombs with {tool!r}\n")
    print(f"{'bomb':20s} {'outcome':8s} {'paper':8s} {'time':>6s}  diagnostics")
    print("-" * 78)
    for bomb_id in bomb_ids:
        bomb = get_bomb(bomb_id)
        cell = run_cell(bomb, tool) if tool != "rexx" else None
        if cell is None:
            from repro.tools import get_tool

            report = get_tool("rexx").analyze_bomb(bomb)
            outcome = classify(report)
            expected = "-"
            elapsed = report.elapsed
            diags = sorted({d.kind.value for d in report.diagnostics})
        else:
            outcome = cell.outcome
            expected = cell.expected or "-"
            elapsed = cell.report.elapsed
            diags = sorted({d.kind.value for d in cell.report.diagnostics})
        print(f"{bomb_id:20s} {str(outcome):8s} {expected:8s} "
              f"{elapsed:5.1f}s  {', '.join(diags[:3])}")


if __name__ == "__main__":
    main()
