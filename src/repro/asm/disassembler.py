"""Linear-sweep disassembler for RX64 code."""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import VMError
from ..isa import Instruction, decode


def disassemble(data: bytes, base: int = 0) -> Iterator[Instruction]:
    """Yield instructions decoded linearly from *data* mapped at *base*.

    Stops at the first undecodable byte (data embedded in code).
    """
    view = memoryview(data)
    pos = 0
    while pos < len(view):
        try:
            instr = decode(view[pos:], base + pos)
        except VMError:
            return
        yield instr
        pos += instr.size


def format_listing(data: bytes, base: int = 0, symbols: dict[int, str] | None = None) -> str:
    """Render a human-readable listing, annotating symbol addresses."""
    symbols = symbols or {}
    lines = []
    for instr in disassemble(data, base):
        if instr.addr in symbols:
            lines.append(f"{symbols[instr.addr]}:")
        lines.append(f"  {instr.addr:#08x}: {instr}")
    return "\n".join(lines)
