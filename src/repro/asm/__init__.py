"""RX64 assembler and disassembler."""

from .assembler import Assembler, Module, Reloc, assemble
from .disassembler import disassemble, format_listing

__all__ = ["Assembler", "Module", "Reloc", "assemble", "disassemble", "format_listing"]
