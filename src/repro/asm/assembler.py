"""Two-phase assembler for RX64 assembly source.

The assembler turns one translation unit into a relocatable
:class:`Module`; the :mod:`repro.binfmt.linker` merges modules, lays out
sections and resolves relocations into a runnable REXF image.

Accepted syntax (one statement per line, ``;`` or ``#`` comments)::

    .text | .lib | .rodata | .data | .bss     ; section switch
    .global name                               ; export a symbol
    .align N | .space N
    .byte 1, 2, 'a'    .word ...   .long ...  .quad 1, label, ...
    .asciz "text\\n"
    label:                                     ; (labels starting with
    .Llocal:                                   ;  '.L' stay module-local)
        movi r1, 0x32
        movi r2, message                       ; absolute relocation
        ld   r3, [r2+8]
        jz   .Lout
        call strlen

The ``.lib`` section is executable code flagged as *library*: the
linker records its symbols with kind ``lib`` so analysis tools can
either analyze it ("with libraries") or hook it ("no-lib" mode),
mirroring the two Angr configurations evaluated in the paper.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass, field

from ..errors import AsmError
from ..isa import MNEMONICS, OPSPEC, Imm, Instruction, Mem, Reg, FReg, Target, encode
from ..isa import instruction_size, parse_fpr, parse_gpr

SECTIONS = (".text", ".lib", ".rodata", ".data", ".bss")


@dataclass
class Reloc:
    """A relocation to be resolved at link time.

    ``kind`` is ``abs64`` (8-byte absolute address, used by ``movi`` and
    ``.quad label``) or ``rel32`` (4-byte offset relative to the end of
    the referencing instruction, used by branch/call targets).
    """

    section: str
    offset: int
    kind: str
    symbol: str
    addend: int = 0
    insn_end: int = 0  # section-relative end of instruction, for rel32


@dataclass
class Module:
    """One assembled translation unit (relocatable)."""

    sections: dict[str, bytearray] = field(default_factory=dict)
    relocs: list[Reloc] = field(default_factory=list)
    symbols: dict[str, tuple[str, int]] = field(default_factory=dict)
    globals: set[str] = field(default_factory=set)
    bss_size: int = 0
    name: str = "<module>"

    def section(self, name: str) -> bytearray:
        return self.sections.setdefault(name, bytearray())


_STRING_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


def _unescape(body: str) -> bytes:
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            if nxt == "x":
                out.append(int(body[i + 2 : i + 4], 16))
                i += 4
                continue
            out.append(ord(_ESCAPES.get(nxt, nxt)))
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)


def _strip_comment(line: str) -> str:
    out = []
    in_str = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_str = not in_str
        if not in_str and ch in ";#":
            break
        out.append(ch)
        i += 1
    return "".join(out).strip()


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_SYM_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)\s*([+-]\s*\d+)?$")


class Assembler:
    """Assembles RX64 source text into a relocatable :class:`Module`."""

    def __init__(self, name: str = "<module>"):
        self.module = Module(name=name)
        self.current = ".text"
        self._lineno = 0
        self._local_counter = 0

    # -- public API ---------------------------------------------------

    def assemble(self, source: str) -> Module:
        """Assemble *source* and return the resulting module."""
        for lineno, raw in enumerate(source.splitlines(), start=1):
            self._lineno = lineno
            line = _strip_comment(raw)
            while line:
                match = _LABEL_RE.match(line)
                if match and match.group(1).lower() not in MNEMONICS:
                    self._define_label(match.group(1))
                    line = match.group(2).strip()
                    continue
                self._statement(line)
                break
        return self.module

    # -- internals ----------------------------------------------------

    def _err(self, msg: str) -> AsmError:
        return AsmError(f"{self.module.name}:{self._lineno}: {msg}")

    def _here(self) -> int:
        if self.current == ".bss":
            return self.module.bss_size
        return len(self.module.section(self.current))

    def _define_label(self, name: str) -> None:
        if name in self.module.symbols:
            raise self._err(f"duplicate label {name!r}")
        self.module.symbols[name] = (self.current, self._here())

    def _statement(self, line: str) -> None:
        if line.startswith("."):
            head, _, rest = line.partition(" ")
            self._directive(head.strip(), rest.strip())
        else:
            self._instruction(line)

    def _directive(self, head: str, rest: str) -> None:
        mod = self.module
        if head in SECTIONS:
            self.current = head
        elif head == ".global":
            for name in re.split(r"[,\s]+", rest):
                if name:
                    mod.globals.add(name)
        elif head == ".align":
            n = int(rest, 0)
            if self.current == ".bss":
                mod.bss_size = -(-mod.bss_size // n) * n
            else:
                sec = mod.section(self.current)
                while len(sec) % n:
                    sec.append(0)
        elif head == ".space":
            n = int(rest, 0)
            if self.current == ".bss":
                mod.bss_size += n
            else:
                mod.section(self.current).extend(b"\0" * n)
        elif head == ".asciz":
            match = _STRING_RE.match(rest)
            if not match:
                raise self._err(f"bad string {rest!r}")
            if self.current == ".bss":
                raise self._err(".asciz not allowed in .bss")
            mod.section(self.current).extend(_unescape(match.group(1)) + b"\0")
        elif head in (".byte", ".word", ".long", ".quad"):
            width = {".byte": 1, ".word": 2, ".long": 4, ".quad": 8}[head]
            if self.current == ".bss":
                raise self._err(f"{head} not allowed in .bss")
            sec = mod.section(self.current)
            for item in self._split_args(rest):
                value = self._parse_int_or_reloc(item, width, sec)
                sec.extend((value & ((1 << (8 * width)) - 1)).to_bytes(width, "little"))
        else:
            raise self._err(f"unknown directive {head}")

    def _parse_int_or_reloc(self, item: str, width: int, sec: bytearray) -> int:
        try:
            return self._parse_int(item)
        except ValueError:
            pass
        match = _SYM_RE.match(item)
        if not match or width != 8:
            raise self._err(f"bad data value {item!r}")
        addend = int(match.group(2).replace(" ", "")) if match.group(2) else 0
        self.module.relocs.append(
            Reloc(self.current, len(sec), "abs64", match.group(1), addend)
        )
        return 0

    @staticmethod
    def _split_args(text: str) -> list[str]:
        args, depth, cur, in_ch = [], 0, [], False
        for ch in text:
            if ch == "'" :
                in_ch = not in_ch
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
            if ch == "," and depth == 0 and not in_ch:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(ch)
        tail = "".join(cur).strip()
        if tail:
            args.append(tail)
        return args

    @staticmethod
    def _parse_int(text: str) -> int:
        text = text.strip()
        if len(text) >= 3 and text[0] == "'" and text[-1] == "'":
            body = _unescape(text[1:-1])
            if len(body) != 1:
                raise ValueError(text)
            return body[0]
        return int(text, 0)

    _MEM_RE = re.compile(r"^\[\s*(\w+)\s*(?:([+-])\s*(\w+))?\s*\]$")

    def _instruction(self, line: str) -> None:
        if self.current not in (".text", ".lib"):
            raise self._err(f"instruction outside code section: {line!r}")
        head, _, rest = line.partition(" ")
        mnem = head.strip().lower()
        if mnem not in MNEMONICS:
            raise self._err(f"unknown mnemonic {mnem!r}")
        op = MNEMONICS[mnem]
        spec = OPSPEC[op]
        args = self._split_args(rest) if rest.strip() else []
        if len(args) != len(spec):
            raise self._err(f"{mnem}: expected {len(spec)} operands, got {len(args)}")

        sec = self.module.section(self.current)
        offset = len(sec)
        size = instruction_size(op)
        operands = []
        pending: list[Reloc] = []
        pos = offset + 1  # operand byte position within the section
        for kind, arg in zip(spec, args):
            if kind == "R":
                operands.append(Reg(parse_gpr(arg)))
                pos += 1
            elif kind == "F":
                operands.append(FReg(parse_fpr(arg)))
                pos += 1
            elif kind == "I":
                try:
                    operands.append(Imm(self._parse_int(arg)))
                except ValueError:
                    match = _SYM_RE.match(arg)
                    if not match:
                        raise self._err(f"bad immediate {arg!r}") from None
                    addend = int(match.group(2).replace(" ", "")) if match.group(2) else 0
                    pending.append(
                        Reloc(self.current, pos, "abs64", match.group(1), addend)
                    )
                    operands.append(Imm(0))
                pos += 8
            elif kind == "M":
                match = self._MEM_RE.match(arg.strip())
                if not match:
                    raise self._err(f"bad memory operand {arg!r}")
                base = parse_gpr(match.group(1))
                disp = 0
                if match.group(3):
                    disp = int(match.group(3), 0)
                    if match.group(2) == "-":
                        disp = -disp
                operands.append(Mem(base, disp))
                pos += 5
            elif kind == "J":
                match = _SYM_RE.match(arg.strip())
                if not match or match.group(2):
                    raise self._err(f"bad branch target {arg!r}")
                pending.append(
                    Reloc(self.current, pos, "rel32", match.group(1),
                          insn_end=offset + size)
                )
                operands.append(Target(0))
                pos += 4

        instr = Instruction(op, tuple(operands), addr=offset)
        sec.extend(encode(instr))
        self.module.relocs.extend(pending)


def assemble(source: str, name: str = "<module>") -> Module:
    """Assemble RX64 *source* into a relocatable :class:`Module`."""
    return Assembler(name).assemble(source)
