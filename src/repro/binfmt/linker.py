"""Static linker: relocatable modules -> runnable REXF image.

Layout (all sections page-aligned):

========  ==========================  =============
section   contents                    base
========  ==========================  =============
.text     program code                ``0x1000``
.lib      library code (flag ``L``)   after .text
.rodata   constants, strings          after .lib
.data     initialized globals         after .rodata
.bss      zero-initialized globals    after .data
========  ==========================  =============

Symbols defined inside ``.lib`` get kind ``lib``; everything else in an
executable section is ``func``, data symbols are ``object``.  The entry
point is the ``_start`` symbol.
"""

from __future__ import annotations

import struct

from ..asm.assembler import Module
from ..errors import LinkError
from .image import FLAG_L, FLAG_W, FLAG_X, Image, Section, Symbol

PAGE = 0x1000
TEXT_BASE = 0x1000

_SECTION_FLAGS = {
    ".text": FLAG_X,
    ".lib": FLAG_X | FLAG_L,
    ".rodata": 0,
    ".data": FLAG_W,
    ".bss": FLAG_W,
}

_ORDER = (".text", ".lib", ".rodata", ".data", ".bss")


def _align(value: int, alignment: int) -> int:
    return -(-value // alignment) * alignment


def link(modules: list[Module], entry: str = "_start") -> Image:
    """Link *modules* into an executable image with entry symbol *entry*."""
    # Per-module placement: (module index, section) -> offset within the
    # merged section.
    merged: dict[str, bytearray] = {name: bytearray() for name in _ORDER}
    bss_total = 0
    placement: dict[tuple[int, str], int] = {}

    for mi, mod in enumerate(modules):
        for name in _ORDER:
            if name == ".bss":
                placement[(mi, name)] = bss_total
                bss_total += _align(mod.bss_size, 8)
            elif name in mod.sections:
                sec = merged[name]
                while len(sec) % 8:
                    sec.append(0)
                placement[(mi, name)] = len(sec)
                sec.extend(mod.sections[name])
            else:
                placement[(mi, name)] = len(merged[name])

    # Assign virtual base addresses.
    bases: dict[str, int] = {}
    cursor = TEXT_BASE
    for name in _ORDER:
        bases[name] = cursor
        size = bss_total if name == ".bss" else len(merged[name])
        cursor = _align(cursor + max(size, 0), PAGE)

    # Build the global symbol table.  A symbol defined in any module is
    # visible everywhere except module-local labels (starting with ".L").
    symbols: dict[str, Symbol] = {}
    module_locals: list[dict[str, int]] = []
    for mi, mod in enumerate(modules):
        locals_here: dict[str, int] = {}
        is_lib_module = ".lib" in mod.sections
        for name, (sec, off) in mod.symbols.items():
            addr = bases[sec] + placement[(mi, sec)] + off
            if name.startswith(".L"):
                locals_here[name] = addr
                continue
            if name in symbols:
                raise LinkError(f"duplicate symbol {name!r} (module {mod.name})")
            if sec == ".lib":
                kind = "lib"
            elif sec == ".text":
                kind = "func"
            elif is_lib_module:
                # Data owned by a library unit (e.g. the PRNG state):
                # tools that do not track taint through library-private
                # state key off this.
                kind = "lib_object"
            else:
                kind = "object"
            symbols[name] = Symbol(name, addr, kind)
        module_locals.append(locals_here)

    # Resolve relocations.
    for mi, mod in enumerate(modules):
        for reloc in mod.relocs:
            if reloc.symbol in module_locals[mi]:
                target = module_locals[mi][reloc.symbol]
            elif reloc.symbol in symbols:
                target = symbols[reloc.symbol].addr
            else:
                raise LinkError(
                    f"undefined symbol {reloc.symbol!r} referenced from {mod.name}"
                )
            target += reloc.addend
            sec_off = placement[(mi, reloc.section)]
            sec = merged[reloc.section]
            pos = sec_off + reloc.offset
            if reloc.kind == "abs64":
                sec[pos : pos + 8] = struct.pack("<Q", target & ((1 << 64) - 1))
            elif reloc.kind == "rel32":
                end_addr = bases[reloc.section] + sec_off + reloc.insn_end
                rel = target - end_addr
                if not -(1 << 31) <= rel < (1 << 31):
                    raise LinkError(f"rel32 overflow to {reloc.symbol!r}")
                sec[pos : pos + 4] = struct.pack("<i", rel)
            else:  # pragma: no cover - guarded by assembler
                raise LinkError(f"unknown reloc kind {reloc.kind}")

    sections = []
    for name in _ORDER:
        data = bytes(merged[name])
        mem_size = bss_total if name == ".bss" else len(data)
        if mem_size == 0:
            continue
        sections.append(Section(name, bases[name], data, _SECTION_FLAGS[name], mem_size))

    if entry not in symbols:
        raise LinkError(f"entry symbol {entry!r} not defined")
    return Image(symbols[entry].addr, sections, symbols)
