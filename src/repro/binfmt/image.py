"""REXF — the executable image format for RX64 binaries.

A REXF image is what the paper's dataset binaries are to the original
study: a self-contained executable with sections, a symbol table and an
entry point.  Images serialize to real bytes so the dataset-size
statistics of Section V.A (binaries of 10–25 KB, median 14 KB) are
measured on actual encoded files, not estimates.

Section flags:

* ``X`` — executable (``.text``, ``.lib``)
* ``W`` — writable (``.data``, ``.bss``)
* ``L`` — library code (``.lib``): analysis tools may either analyze it
  ("with libraries") or intercept calls into it ("no-lib" mode).

Symbol kinds: ``func`` (program code), ``object`` (data), ``lib``
(library function — the hookable surface for simprocedures).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import LinkError

MAGIC = b"REXF"
VERSION = 1

FLAG_X = 0x1
FLAG_W = 0x2
FLAG_L = 0x4


@dataclass(frozen=True)
class Symbol:
    """One symbol-table entry."""

    name: str
    addr: int
    kind: str  # "func" | "object" | "lib"


@dataclass
class Section:
    """One loadable section."""

    name: str
    vaddr: int
    data: bytes
    flags: int
    mem_size: int = 0  # >= len(data); the excess is zero-filled (.bss)

    def __post_init__(self):
        if self.mem_size < len(self.data):
            self.mem_size = len(self.data)

    @property
    def executable(self) -> bool:
        return bool(self.flags & FLAG_X)

    @property
    def library(self) -> bool:
        return bool(self.flags & FLAG_L)

    @property
    def end(self) -> int:
        return self.vaddr + self.mem_size


@dataclass
class Image:
    """A linked, runnable REXF executable."""

    entry: int
    sections: list[Section] = field(default_factory=list)
    symbols: dict[str, Symbol] = field(default_factory=dict)

    # -- queries -------------------------------------------------------

    def section(self, name: str) -> Section | None:
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    def symbol_addr(self, name: str) -> int:
        try:
            return self.symbols[name].addr
        except KeyError:
            raise LinkError(f"undefined symbol {name!r}") from None

    def symbols_by_addr(self) -> dict[int, str]:
        return {sym.addr: sym.name for sym in self.symbols.values()}

    def lib_symbols(self) -> dict[str, Symbol]:
        """Library function symbols — the no-lib hookable surface."""
        return {n: s for n, s in self.symbols.items() if s.kind == "lib"}

    def lib_object_ranges(self) -> list[tuple[int, int]]:
        """Address ranges of library-owned data objects.

        Each range runs from a ``lib_object`` symbol to the next data
        symbol (or its section's end) — the conservative span tools use
        to decide whether a store targets library-private state.
        """
        data_syms = sorted(
            (s.addr, s.kind) for s in self.symbols.values()
            if s.kind in ("object", "lib_object")
        )
        section_ends = sorted(sec.end for sec in self.sections)
        ranges = []
        for i, (addr, kind) in enumerate(data_syms):
            if kind != "lib_object":
                continue
            if i + 1 < len(data_syms):
                end = data_syms[i + 1][0]
            else:
                end = next((e for e in section_ends if e > addr), addr + 8)
            ranges.append((addr, end))
        return ranges

    def is_lib_addr(self, addr: int) -> bool:
        return any(sec.library and sec.vaddr <= addr < sec.end for sec in self.sections)

    def is_code_addr(self, addr: int) -> bool:
        return any(sec.executable and sec.vaddr <= addr < sec.end for sec in self.sections)

    def code_ranges(self, include_lib: bool = True) -> list[tuple[int, int]]:
        return [
            (sec.vaddr, sec.end)
            for sec in self.sections
            if sec.executable and (include_lib or not sec.library)
        ]

    @property
    def max_vaddr(self) -> int:
        return max((sec.end for sec in self.sections), default=0)

    # -- serialization ---------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk REXF byte format."""
        out = bytearray()
        out += MAGIC
        out += struct.pack("<HQHI", VERSION, self.entry, len(self.sections),
                           len(self.symbols))
        for sec in self.sections:
            name = sec.name.encode()
            out += struct.pack("<B", len(name)) + name
            out += struct.pack("<QQQB", sec.vaddr, len(sec.data), sec.mem_size,
                               sec.flags)
            out += sec.data
        for sym in self.symbols.values():
            name = sym.name.encode()
            kind = {"func": 0, "object": 1, "lib": 2, "lib_object": 3}[sym.kind]
            out += struct.pack("<H", len(name)) + name
            out += struct.pack("<QB", sym.addr, kind)
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Image":
        """Deserialize an image previously produced by :meth:`to_bytes`."""
        if blob[:4] != MAGIC:
            raise LinkError("not a REXF image")
        version, entry, nsect, nsym = struct.unpack_from("<HQHI", blob, 4)
        if version != VERSION:
            raise LinkError(f"unsupported REXF version {version}")
        pos = 4 + struct.calcsize("<HQHI")
        sections = []
        for _ in range(nsect):
            (nlen,) = struct.unpack_from("<B", blob, pos)
            pos += 1
            name = blob[pos : pos + nlen].decode()
            pos += nlen
            vaddr, dsize, msize, flags = struct.unpack_from("<QQQB", blob, pos)
            pos += struct.calcsize("<QQQB")
            data = bytes(blob[pos : pos + dsize])
            pos += dsize
            sections.append(Section(name, vaddr, data, flags, msize))
        symbols = {}
        for _ in range(nsym):
            (nlen,) = struct.unpack_from("<H", blob, pos)
            pos += 2
            name = blob[pos : pos + nlen].decode()
            pos += nlen
            addr, kind = struct.unpack_from("<QB", blob, pos)
            pos += struct.calcsize("<QB")
            symbols[name] = Symbol(name, addr, ("func", "object", "lib", "lib_object")[kind])
        return cls(entry, sections, symbols)

    @property
    def file_size(self) -> int:
        """Size in bytes of the serialized image (dataset statistic)."""
        return len(self.to_bytes())
