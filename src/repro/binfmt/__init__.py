"""REXF binary image format and static linker."""

from .image import FLAG_L, FLAG_W, FLAG_X, Image, Section, Symbol
from .linker import TEXT_BASE, link

__all__ = ["FLAG_L", "FLAG_W", "FLAG_X", "Image", "Section", "Symbol", "TEXT_BASE", "link"]
