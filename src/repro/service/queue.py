"""Durable on-disk job queue: a JSONL journal with claim/complete records.

The queue is an append-only journal (``queue.jsonl``).  Every state
transition is one flushed-and-fsynced line::

    {"t": "submit",  "id": ..., "bomb": ..., "tool": ...}
    {"t": "claim",   "id": ..., "worker": ..., "attempt": N,
                     "lease_until": T?}
    {"t": "renew",   "id": ..., "worker": ..., "lease_until": T}
    {"t": "requeue", "id": ..., "reason": ..., "not_before": T}
    {"t": "done",    "id": ..., "result": "computed"|"cached"|"timeout"|...}
    {"t": "exhaust", "id": ..., "reason": ...}

Opening a queue replays the journal to reconstruct the jobs.  The
recovery rule that makes workers crash-safe: a job whose last record is
a ``claim`` (claimed, never completed — the driver process died
mid-cell) reverts to *pending* with its attempt count preserved, so the
cell is re-run, never lost, and never double-counted.

``not_before`` implements retry backoff without a scheduler thread: a
requeued job is pending but unclaimable until its backoff deadline.
A truncated trailing line (torn write on power loss) is ignored.

One campaign driver owns a queue at a time — the journal serializes a
single writer's transitions across crashes.  Multi-writer coordination
(N worker processes sharing one journal over a filesystem) is layered
on top by :class:`repro.service.fleet.FleetQueue`, which adds an
exclusive lock around transitions and **lease-based claims**: a claim
carries a wall-clock ``lease_until`` deadline, a live worker renews it
with ``renew`` records, and a claim whose lease expired (the worker was
SIGKILLed, lost power, or vanished) is requeued by whichever worker
observes the expiry.  For that layering the single-driver recovery rule
(claimed → pending on replay) is optional: pass ``recover_claims=False``
and replay preserves claims so live workers' leases survive another
process opening the journal.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs

#: Job lifecycle states.
PENDING = "pending"
CLAIMED = "claimed"
DONE = "done"
EXHAUSTED = "exhausted"


@dataclass
class Job:
    """One (bomb, tool) cell evaluation to perform."""

    job_id: str
    bomb_id: str
    tool: str
    status: str = PENDING
    attempts: int = 0
    worker: str | None = None
    not_before: float = 0.0
    result: str | None = None
    reason: str | None = None
    #: Wall-clock deadline of the current claim's lease (fleet mode);
    #: None for unleased single-driver claims.
    lease_until: float | None = None

    @property
    def cell(self) -> tuple[str, str]:
        return (self.bomb_id, self.tool)


class JobQueue:
    """Journal-backed job queue (pass ``path=None`` for memory-only)."""

    def __init__(self, path: str | os.PathLike | None, *,
                 recover_claims: bool = True):
        self.path = Path(path) if path is not None else None
        self.jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._fp = None
        self._recover_claims = recover_claims
        if self.path is not None and self.path.exists():
            self._replay()
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fp = self.path.open("a", encoding="utf-8")

    # -- journal ---------------------------------------------------------

    def _replay(self) -> None:
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn trailing write
            self._apply(record)
        if not self._recover_claims:
            # Fleet mode: claims belong to live workers on other hosts;
            # lease expiry, not replay, decides when to take them back.
            return
        # Crash recovery: claimed-but-incomplete jobs revert to pending.
        for job in self.jobs.values():
            if job.status == CLAIMED:
                job.status = PENDING
                job.worker = None
                obs.count("service.jobs_recovered")

    def _apply(self, record: dict) -> None:
        kind = record.get("t")
        if kind == "submit":
            job = Job(record["id"], record["bomb"], record["tool"])
            if job.job_id not in self.jobs:
                self.jobs[job.job_id] = job
                self._order.append(job.job_id)
            return
        job = self.jobs.get(record.get("id"))
        if job is None:
            return
        if kind == "claim":
            job.status = CLAIMED
            job.worker = record.get("worker")
            job.attempts = record.get("attempt", job.attempts + 1)
            job.lease_until = record.get("lease_until")
        elif kind == "renew":
            # A lease extension is only honored while the renewing
            # worker still holds the claim; a renew that raced a
            # lease-expiry requeue is a no-op.
            if job.status == CLAIMED and job.worker == record.get("worker"):
                job.lease_until = record.get("lease_until")
        elif kind == "requeue":
            job.status = PENDING
            job.worker = None
            job.not_before = record.get("not_before", 0.0)
            job.reason = record.get("reason")
            job.lease_until = None
        elif kind == "done":
            job.status = DONE
            job.result = record.get("result")
            job.lease_until = None
        elif kind == "exhaust":
            job.status = EXHAUSTED
            job.reason = record.get("reason")
            job.lease_until = None

    def _append(self, record: dict) -> None:
        self._apply(record)
        if self._fp is None:
            return
        self._fp.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fp.flush()
        os.fsync(self._fp.fileno())

    # -- operations ------------------------------------------------------

    def submit(self, cells: list[tuple[str, str]],
               prefix: str = "job") -> list[Job]:
        """Enqueue one job per (bomb, tool) cell, in order."""
        jobs = []
        for index, (bomb_id, tool) in enumerate(cells):
            job_id = f"{prefix}-{index:04d}"
            self._append({"t": "submit", "id": job_id,
                          "bomb": bomb_id, "tool": tool})
            jobs.append(self.jobs[job_id])
        obs.count("service.jobs_submitted", len(jobs))
        return jobs

    def claim(self, worker: str, now: float | None = None,
              lease_until: float | None = None) -> Job | None:
        """Atomically claim the next ready pending job (FIFO), if any.

        *lease_until* (a wall-clock deadline, fleet mode) is recorded in
        the claim so other journal readers can detect a dead claimant.
        """
        now = time.monotonic() if now is None else now
        for job_id in self._order:
            job = self.jobs[job_id]
            if job.status == PENDING and job.not_before <= now:
                record = {"t": "claim", "id": job_id, "worker": worker,
                          "attempt": job.attempts + 1}
                if lease_until is not None:
                    record["lease_until"] = lease_until
                self._append(record)
                obs.count("service.jobs_claimed")
                obs.observe("service.queue_depth", float(self.depth()))
                return job
        return None

    def renew(self, job_id: str, worker: str, lease_until: float) -> None:
        """Extend *worker*'s lease on a claimed job (fleet heartbeat)."""
        self._append({"t": "renew", "id": job_id, "worker": worker,
                      "lease_until": lease_until})
        obs.count("service.lease_renewals")

    def complete(self, job_id: str, result: str = "computed") -> None:
        self._append({"t": "done", "id": job_id, "result": result})
        obs.count("service.jobs_completed")

    def requeue(self, job_id: str, reason: str,
                not_before: float = 0.0) -> None:
        """Return a claimed job to the pending set (worker crash path)."""
        self._append({"t": "requeue", "id": job_id, "reason": reason,
                      "not_before": not_before})
        obs.count("service.jobs_requeued")

    def exhaust(self, job_id: str, reason: str) -> None:
        """Give up on a job after bounded retries."""
        self._append({"t": "exhaust", "id": job_id, "reason": reason})
        obs.count("service.jobs_exhausted")

    # -- queries ---------------------------------------------------------

    def ordered_jobs(self) -> list[Job]:
        return [self.jobs[job_id] for job_id in self._order]

    def pending(self) -> list[Job]:
        return [j for j in self.ordered_jobs() if j.status == PENDING]

    def depth(self) -> int:
        """Jobs not yet terminally resolved."""
        return sum(1 for j in self.jobs.values()
                   if j.status in (PENDING, CLAIMED))

    def counts(self) -> dict[str, int]:
        out = {PENDING: 0, CLAIMED: 0, DONE: 0, EXHAUSTED: 0}
        for job in self.jobs.values():
            out[job.status] += 1
        return out

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
