"""Campaign client API: submit / run / status / results.

A *campaign* is a persisted evaluation request — bomb subset × tool
subset plus execution policy (worker count, per-cell timeout, crash
retries).  The service root is a directory::

    <root>/store/                     shared content-addressed result store
    <root>/campaigns/<cid>/spec.json  the campaign spec
    <root>/campaigns/<cid>/queue.jsonl  durable job journal

The store is shared by every campaign under the root, so re-submitting
an identical workload (a fresh campaign id) performs **zero** tool
analyses: every cell is served from the store and the Table II output
is byte-identical to the cold run.  Killing the driver (or a worker)
mid-campaign never loses or duplicates a cell: the journal's
claim/complete records replay on the next ``run``.

Campaign ids are content-derived (``c<digest8>`` of the workload) with
a numeric suffix per submission, so ``submit`` is cheap to script and
``status``/``results`` address any past submission.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..bombs import get_bomb
from .executor import DEFAULT_RETRIES, CellExecutor
from .fingerprint import cell_key
from .queue import JobQueue
from .store import ResultStore


@dataclass
class CampaignSpec:
    """One analysis workload: the cell matrix plus execution policy."""

    bombs: tuple[str, ...]
    tools: tuple[str, ...]
    jobs: int = 1
    timeout: float | None = None
    retries: int = DEFAULT_RETRIES
    name: str = ""
    #: Quota-accounting tag: submissions are budgeted per tenant (see
    #: :func:`repro.service.spec.check_quota`).  Not part of the
    #: workload digest — two tenants evaluating the same matrix share
    #: the content-addressed store.
    tenant: str = ""

    def cells(self) -> list[tuple[str, str]]:
        return [(b, t) for b in self.bombs for t in self.tools]

    def workload_digest(self) -> str:
        payload = json.dumps({"bombs": list(self.bombs),
                              "tools": list(self.tools)},
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_json(self) -> dict:
        return {
            "bombs": list(self.bombs),
            "tools": list(self.tools),
            "jobs": self.jobs,
            "timeout": self.timeout,
            "retries": self.retries,
            "name": self.name,
            "tenant": self.tenant,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "CampaignSpec":
        return cls(
            bombs=tuple(doc["bombs"]),
            tools=tuple(doc["tools"]),
            jobs=doc.get("jobs", 1),
            timeout=doc.get("timeout"),
            retries=doc.get("retries", DEFAULT_RETRIES),
            name=doc.get("name", ""),
            tenant=doc.get("tenant", ""),
        )


@dataclass
class CampaignReport:
    """Outcome of one ``run``: the matrix plus executor statistics."""

    campaign_id: str
    table: object  # Table2Result
    stats: dict = field(default_factory=dict)

    def summary(self) -> str:
        s = self.stats
        return (
            f"campaign {self.campaign_id}: cells={s.get('cells', 0)} "
            f"cache_hits={s.get('cache_hits', 0)} "
            f"computed={s.get('computed', 0)} "
            f"timeouts={s.get('timeouts', 0)} "
            f"requeued={s.get('requeued', 0)} "
            f"exhausted={s.get('exhausted', 0)}"
        )


class CampaignService:
    """Filesystem-rooted campaign service (the client API)."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.store = ResultStore(self.root / "store")
        self._campaigns_dir = self.root / "campaigns"
        self._campaigns_dir.mkdir(parents=True, exist_ok=True)

    # -- verbs -----------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> str:
        """Persist *spec*, enqueue its cells, return the campaign id.

        Raises :class:`repro.service.spec.QuotaExceeded` when the
        tenant's outstanding-cell budget (``<root>/quotas.json``) would
        be exceeded.
        """
        from .spec import check_quota

        check_quota(self, spec)
        base = f"c{spec.workload_digest()[:8]}"
        seq = 1
        while (self._campaigns_dir / f"{base}-{seq}").exists():
            seq += 1
        cid = f"{base}-{seq}"
        cdir = self._campaigns_dir / cid
        cdir.mkdir(parents=True)
        (cdir / "spec.json").write_text(
            json.dumps(spec.to_json(), indent=2) + "\n", encoding="utf-8")
        with JobQueue(cdir / "queue.jsonl") as queue:
            queue.submit(spec.cells())
        obs.count("service.campaigns_submitted")
        return cid

    def run(self, cid: str, jobs: int | None = None) -> CampaignReport:
        """Drive the campaign's queue to completion (resumable)."""
        from ..eval.harness import Table2Result

        spec = self.spec(cid)
        result = Table2Result()
        with obs.span("campaign", id=cid):
            with JobQueue(self._campaign_dir(cid) / "queue.jsonl") as queue:
                executor = CellExecutor(
                    queue,
                    jobs=jobs if jobs is not None else spec.jobs,
                    timeout=spec.timeout,
                    retries=spec.retries,
                    store=self.store,
                )
                stats = executor.run(result.add)
        return CampaignReport(campaign_id=cid, table=result, stats=stats)

    def status(self, cid: str) -> dict:
        """Queue-level progress snapshot (does not execute anything).

        Reads with ``recover_claims=False``: a claim held by a live
        fleet worker on another host must report as *claimed*, not be
        virtually reverted to pending the way a driver's crash-recovery
        replay would.
        """
        spec = self.spec(cid)
        with JobQueue(self._campaign_dir(cid) / "queue.jsonl",
                      recover_claims=False) as queue:
            counts = queue.counts()
            results: dict[str, int] = {}
            for job in queue.ordered_jobs():
                if job.result is not None:
                    results[job.result] = results.get(job.result, 0) + 1
        return {
            "campaign": cid,
            "name": spec.name,
            "tenant": spec.tenant,
            "cells": len(spec.cells()),
            "states": counts,
            "results": results,
        }

    def results(self, cid: str):
        """Assemble the campaign's matrix from the shared store.

        Cells not (yet) in the store are simply absent from the result
        — ``render_table2`` shows them as ``?``.
        """
        from ..eval.harness import Table2Result

        spec = self.spec(cid)
        result = Table2Result()
        for bomb_id, tool in spec.cells():
            bomb = get_bomb(bomb_id)
            cell = self.store.get(cell_key(bomb, tool), bomb)
            if cell is not None:
                result.add(cell)
        return result

    # -- helpers ---------------------------------------------------------

    def campaigns(self) -> list[str]:
        return sorted(p.name for p in self._campaigns_dir.iterdir()
                      if (p / "spec.json").exists())

    def spec(self, cid: str) -> CampaignSpec:
        path = self._campaign_dir(cid) / "spec.json"
        return CampaignSpec.from_json(
            json.loads(path.read_text(encoding="utf-8")))

    def _campaign_dir(self, cid: str) -> Path:
        cdir = self._campaigns_dir / cid
        if not cdir.exists():
            raise KeyError(f"unknown campaign {cid!r}; "
                           f"known: {self.campaigns()}")
        return cdir


def status_finished(status: dict) -> bool:
    """True when every job is terminal (done or exhausted)."""
    states = status["states"]
    return states["pending"] + states["claimed"] == 0


def status_events(service: CampaignService, cid: str,
                  max_polls: int | None = None):
    """Yield status snapshots until the campaign is terminal.

    The shared progress machinery behind both front doors: ``campaign
    status --watch`` prints one line per snapshot, the HTTP API streams
    each snapshot as one NDJSON line (``GET /campaigns/{id}/events``).
    The generator never sleeps — the consumer paces it (a blocking
    ``time.sleep`` or an ``await asyncio.sleep``) — and each snapshot
    carries a ``"final"`` flag so consumers need no duplicated
    termination logic.
    """
    polls = 0
    while True:
        status = service.status(cid)
        polls += 1
        done = status_finished(status) or \
            (max_polls is not None and polls >= max_polls)
        status["final"] = done
        yield status
        if done:
            return


def render_status_line(status: dict) -> str:
    """One-line progress rendering of a status snapshot."""
    states = status["states"]
    line = (f"{status['campaign']}: pending={states['pending']} "
            f"claimed={states['claimed']} done={states['done']} "
            f"exhausted={states['exhausted']}")
    if status["results"]:
        labels = " ".join(f"{k}={v}" for k, v
                          in sorted(status["results"].items()))
        line += f"  [{labels}]"
    return line


def watch_status(service: CampaignService, cid: str,
                 interval: float = 2.0, stream=None,
                 sleep=None, max_polls: int | None = None) -> dict:
    """Poll a campaign until no job is pending or claimed.

    Prints one progress line per poll to *stream* (default stdout) and
    returns the final status snapshot — check its
    ``states["exhausted"]`` to gate scripts/CI on cells that ended
    ``E`` after retries (``campaign status --watch`` exits non-zero on
    them).  *sleep* and *max_polls* exist for tests (inject a fake
    clock / bound the loop); the production path uses the real clock
    and no poll bound.
    """
    import sys
    import time

    out = stream if stream is not None else sys.stdout
    tick = sleep if sleep is not None else time.sleep
    status: dict = {}
    for status in status_events(service, cid, max_polls=max_polls):
        print(render_status_line(status), file=out, flush=True)
        if not status["final"]:
            tick(interval)
    return status
