"""Async HTTP front door for the campaign service (``repro serve``).

A dependency-free asyncio HTTP/1.1 server over one service root — the
control plane of a fleet whose data plane is ``repro worker``
processes.  Submitting here executes nothing: it persists the spec and
enqueues the cells; any worker sharing the root's filesystem picks them
up under lease-based claims.

Endpoints::

    GET  /                      endpoint index
    POST /campaigns             submit a declarative spec (JSON body)
    GET  /campaigns             all campaigns with state counts
    GET  /campaigns/{id}        one campaign's status snapshot
    GET  /campaigns/{id}/results  the assembled matrix as JSON
    GET  /campaigns/{id}/events   NDJSON progress stream: one status
                                  snapshot per poll until terminal
    GET  /metrics               Prometheus text exposition (the server
                                recorder's counters/spans/histograms +
                                live per-campaign job-state gauges)

Errors are JSON bodies: a malformed spec is 400 (the validator's
message names the offending field), an unknown campaign 404, an
over-quota submit 429 with the tenant's budget arithmetic.

The event stream reuses the ``watch_status`` machinery
(:func:`~repro.service.campaign.status_events`): same snapshots, same
termination rule, paced here by ``await asyncio.sleep`` so hundreds of
watchers cost one coroutine each, not a thread.  Responses are
connection-delimited (``Connection: close``), which keeps streaming
trivially correct for any HTTP client.
"""

from __future__ import annotations

import asyncio
import json
import os

from .. import obs
from ..obs.export import PROM_CONTENT_TYPE, prometheus_gauges, prometheus_text
from .campaign import CampaignService, status_events
from .spec import QuotaExceeded, SpecError, build_spec

_JSON = "application/json"
_NDJSON = "application/x-ndjson"


class ApiError(Exception):
    """An HTTP error response with a JSON body."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error"}


class CampaignAPI:
    """The HTTP handler over one :class:`CampaignService` root."""

    def __init__(self, root: str | os.PathLike, *,
                 recorder: obs.Recorder | None = None,
                 poll_s: float = 0.5):
        self.service = CampaignService(root)
        self.recorder = recorder
        self.poll_s = poll_s

    # -- plumbing --------------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection: parse, route, respond, close."""
        try:
            method, path, body = await self._read_request(reader)
        except (asyncio.IncompleteReadError, ValueError, ConnectionError):
            writer.close()
            return
        obs.count("service.http_requests")
        try:
            await self._route(method, path, body, writer)
        except ApiError as err:
            obs.count("service.http_errors")
            await self._respond(writer, err.status,
                                json.dumps({"error": err.message}) + "\n")
        except ConnectionError:
            pass  # client went away mid-stream
        except Exception as err:  # noqa: BLE001 - server must not die
            obs.count("service.http_errors")
            try:
                await self._respond(
                    writer, 500,
                    json.dumps({"error": f"{type(err).__name__}: {err}"})
                    + "\n")
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader):
        request_line = (await reader.readline()).decode("latin1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise ValueError(f"malformed request line {request_line!r}")
        method, target, _version = parts
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)
        return method.upper(), target.split("?", 1)[0], body

    async def _respond(self, writer, status: int, body: str,
                       content_type: str = _JSON) -> None:
        payload = body.encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin1") + payload)
        await writer.drain()

    async def _start_stream(self, writer, content_type: str) -> None:
        head = ("HTTP/1.1 200 OK\r\n"
                f"Content-Type: {content_type}\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode("latin1"))
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _route(self, method, path, body, writer) -> None:
        segments = [s for s in path.split("/") if s]
        if not segments:
            await self._respond(writer, 200, json.dumps({
                "service": "repro campaign fleet",
                "endpoints": [
                    "POST /campaigns", "GET /campaigns",
                    "GET /campaigns/{id}", "GET /campaigns/{id}/results",
                    "GET /campaigns/{id}/events", "GET /metrics",
                ]}, indent=2) + "\n")
            return
        if segments == ["metrics"]:
            if method != "GET":
                raise ApiError(405, "metrics is GET-only")
            await self._respond(writer, 200, self._metrics_text(),
                                content_type=PROM_CONTENT_TYPE)
            return
        if segments[0] != "campaigns" or len(segments) > 3:
            raise ApiError(404, f"no such endpoint {path!r}")
        if len(segments) == 1:
            if method == "POST":
                await self._submit(body, writer)
            elif method == "GET":
                await self._list(writer)
            else:
                raise ApiError(405, f"{method} not allowed on /campaigns")
            return
        if method != "GET":
            raise ApiError(405, f"{method} not allowed on {path!r}")
        cid = segments[1]
        try:
            self.service.spec(cid)
        except (KeyError, OSError):
            raise ApiError(404, f"unknown campaign {cid!r}")
        if len(segments) == 2:
            await self._respond(writer, 200,
                                json.dumps(self.service.status(cid),
                                           indent=2) + "\n")
        elif segments[2] == "results":
            await self._respond(writer, 200,
                                json.dumps(self.service.results(cid).to_json(),
                                           indent=2) + "\n")
        elif segments[2] == "events":
            await self._events(cid, writer)
        else:
            raise ApiError(404, f"no such endpoint {path!r}")

    # -- endpoints -------------------------------------------------------

    async def _submit(self, body: bytes, writer) -> None:
        try:
            doc = json.loads(body.decode("utf-8") or "{}")
        except (ValueError, UnicodeDecodeError) as err:
            raise ApiError(400, f"request body is not JSON: {err}")
        if not isinstance(doc, dict):
            raise ApiError(400, "spec must be a JSON object")
        try:
            spec = build_spec(doc)
        except SpecError as err:
            raise ApiError(400, str(err))
        try:
            cid = self.service.submit(spec)
        except QuotaExceeded as err:
            raise ApiError(429, str(err))
        await self._respond(writer, 201, json.dumps({
            "campaign": cid,
            "cells": len(spec.cells()),
            "bombs": list(spec.bombs),
            "tools": list(spec.tools),
            "tenant": spec.tenant,
        }, indent=2) + "\n")

    async def _list(self, writer) -> None:
        rows = [self.service.status(cid)
                for cid in self.service.campaigns()]
        await self._respond(writer, 200,
                            json.dumps({"campaigns": rows}, indent=2) + "\n")

    async def _events(self, cid: str, writer) -> None:
        """NDJSON progress: one status line per poll until terminal."""
        await self._start_stream(writer, _NDJSON)
        for status in status_events(self.service, cid):
            writer.write((json.dumps(status, separators=(",", ":"))
                          + "\n").encode("utf-8"))
            await writer.drain()
            obs.count("service.events_streamed")
            if not status["final"]:
                await asyncio.sleep(self.poll_s)

    def _metrics_text(self) -> str:
        text = ""
        if self.recorder is not None:
            text += prometheus_text(self.recorder.snapshot())
        samples = []
        for cid in self.service.campaigns():
            states = self.service.status(cid)["states"]
            for state, count in sorted(states.items()):
                samples.append(({"campaign": cid, "state": state},
                                float(count)))
        text += prometheus_gauges("campaign_jobs", samples)
        return text or "# no metrics yet\n"


async def start_api(root: str | os.PathLike, host: str = "127.0.0.1",
                    port: int = 8737, *,
                    recorder: obs.Recorder | None = None,
                    poll_s: float = 0.5):
    """Bind the API; returns ``(asyncio.Server, CampaignAPI)``.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.sockets[0].getsockname()``.
    """
    api = CampaignAPI(root, recorder=recorder, poll_s=poll_s)
    server = await asyncio.start_server(api.handle, host, port)
    return server, api


def serve_forever(root: str | os.PathLike, host: str = "127.0.0.1",
                  port: int = 8737, *,
                  recorder: obs.Recorder | None = None,
                  poll_s: float = 0.5, ready=None) -> None:
    """Blocking entry point behind ``repro serve`` (Ctrl-C to stop).

    *ready* (callable, optional) receives the bound ``(host, port)``
    once listening — the tests' synchronization hook.
    """

    async def _main():
        server, _api = await start_api(root, host, port,
                                       recorder=recorder, poll_s=poll_s)
        bound = server.sockets[0].getsockname()[:2]
        if ready is not None:
            ready(bound)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
