"""Fault-tolerant cell execution: per-job processes, timeouts, retries.

Every cell runs in its own forked worker process, which gives the
service three properties the PR-2 ``ProcessPoolExecutor`` fan-out could
not provide:

* **wall-clock timeouts** — the driver kills a worker that exceeds the
  per-cell budget and classifies the cell ``E`` with a
  ``resource-exhausted`` diagnostic (a stuck tool can never hang a
  campaign or ``repro table2 --timeout``);
* **crash isolation** — a worker dying mid-cell (OOM-kill, SIGKILL,
  interpreter abort) only loses that attempt: the job is requeued with
  exponential backoff and re-run, up to a bounded number of retries,
  after which the cell is classified ``E``;
* **exact metrics** — each worker records to a private JSONL stream the
  driver absorbs after a *successful* attempt, so merged counters and
  stage spans never double-count killed attempts.

Results travel through the filesystem (pickle written to a temp file,
then ``os.replace``): a killed worker can leave no torn result, and the
driver distinguishes "finished" (result file exists) from "died"
(no file) purely by what survived.

Infrastructure failures (timeout, crash exhaustion) are *not* written
to the result store — they depend on the run's timeout/retry settings,
which are not part of the cache key — while every genuinely computed
cell (including a tool's own in-budget ``E``) is cached.

Fault injection for tests: set ``REPRO_SERVICE_KILL_CELL=bomb:tool`` in
the environment and the worker SIGKILLs itself mid-cell on the first
attempt of that cell, exercising the requeue path end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from .. import obs
from ..obs import profile
from ..bombs import get_bomb
from ..bombs.suite import Bomb
from ..errors import DiagnosticKind, DiagnosticLog
from ..eval.classify import classify
from ..eval.harness import CellResult, run_cell
from ..tools.api import ToolReport
from .queue import JobQueue
from .store import ResultStore

#: Crash retries before a job is classified E (attempts = retries + 1).
DEFAULT_RETRIES = 2
#: Base of the exponential requeue backoff, in seconds.
DEFAULT_BACKOFF = 0.05
#: Driver poll interval while workers run.
_POLL_S = 0.02
#: Grace period between SIGTERM and SIGKILL on timeout: long enough for
#: the worker's handler to flush partial spans, short enough that a
#: wedged worker barely delays the driver.
_TERM_GRACE_S = 0.5

#: Environment variable for test fault injection ("<bomb>:<tool>").
KILL_CELL_ENV = "REPRO_SERVICE_KILL_CELL"


def _mp_context():
    """Fork when available: workers inherit compiled bomb images."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def infrastructure_failure_cell(bomb: Bomb, tool: str, detail: str,
                                elapsed: float) -> CellResult:
    """Synthesize the E cell for a timeout or an exhausted crash loop."""
    log = DiagnosticLog()
    log.emit(DiagnosticKind.RESOURCE_EXHAUSTED, detail)
    report = ToolReport(tool=tool, bomb_id=bomb.bomb_id, diagnostics=log,
                        aborted=detail, elapsed=elapsed)
    outcome = classify(report)
    return CellResult(
        bomb_id=bomb.bomb_id,
        tool=tool,
        outcome=outcome,
        expected=bomb.expected.get(tool),
        report=report,
        diagnostic=str(log.events[0]),
        infra_failure=True,
    )


def _worker_main(bomb_id: str, tool: str, attempt: int,
                 result_path: str, metrics_path: str | None,
                 trace_ctx: tuple | None = None,
                 store_root: str | None = None) -> None:
    """Worker process: evaluate one cell, persist the pickled result.

    *trace_ctx* is ``(trace_id, parent_span_id, profiling)`` from the
    driver, so the worker's spans join the campaign's trace and the
    attribution profiler mirrors the driver's state.  A SIGTERM (the
    driver's timeout path) flushes in-flight spans with an ``aborted``
    attribute and the profiler's buckets before exiting, so killed
    cells still appear in traces.
    """
    obs.uninstall()  # inherited recorder writes to the parent's fds
    profile.uninstall()
    from ..smt import querylog
    querylog.uninstall()  # inherited captures would be lost on exit
    if store_root is not None:
        from ..fuzz import corpus as fuzz_corpus
        from ..ir import superblock

        worker_store = ResultStore(store_root)
        superblock.attach_store(worker_store)
        fuzz_corpus.attach_store(worker_store)
        querylog.attach_store(worker_store)
    kill_spec = os.environ.get(KILL_CELL_ENV)
    if kill_spec == f"{bomb_id}:{tool}" and attempt == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    bomb = get_bomb(bomb_id)
    if metrics_path is not None:
        trace_id, parent_span_id, profiling_on = \
            trace_ctx or (None, None, False)
        recorder = obs.Recorder(sinks=[obs.JsonlSink(metrics_path)],
                                hist_values=True, trace_id=trace_id,
                                parent_span_id=parent_span_id)
        profiler = profile.Profiler() if profiling_on else None

        def _terminated(signum, frame):
            if profiler is not None:
                profiler.flush_to(recorder)
            recorder.abort_open_spans("sigterm")
            recorder.close()
            os._exit(128 + signal.SIGTERM)

        signal.signal(signal.SIGTERM, _terminated)
        with obs.recording(recorder):
            with profile.profiling(profiler):
                with obs.span("job", bomb=bomb_id, tool=tool,
                              attempt=attempt):
                    cell = run_cell(bomb, tool)
    else:
        cell = run_cell(bomb, tool)
    tmp = result_path + ".tmp"
    with open(tmp, "wb") as fp:
        pickle.dump(cell, fp)
    os.replace(tmp, result_path)


@dataclass
class _Attempt:
    """One in-flight worker process."""

    job: object
    proc: object
    result_path: str
    metrics_path: str | None
    started: float
    deadline: float | None


class CellExecutor:
    """Drives a :class:`JobQueue` of cells to completion.

    ``run()`` claims jobs, serves cache hits from *store*, fans misses
    out over up to *jobs* worker processes, and invokes *on_cell* with
    every finished :class:`CellResult` (cached, computed, or
    synthesized ``E``).  Terminal job results recorded in the queue:
    ``cached``, ``computed``, ``timeout``, ``crash-exhausted``.
    """

    def __init__(self, queue: JobQueue, *, jobs: int = 1,
                 timeout: float | None = None,
                 retries: int = DEFAULT_RETRIES,
                 backoff: float = DEFAULT_BACKOFF,
                 store: ResultStore | None = None,
                 key_for=None):
        from .fingerprint import cell_key

        self.queue = queue
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.store = store
        self._key_for = key_for or cell_key
        self._keys: dict[tuple[str, str], str] = {}
        self.stats = {"cells": 0, "cache_hits": 0, "computed": 0,
                      "timeouts": 0, "requeued": 0, "exhausted": 0}

    def _key(self, bomb: Bomb, tool: str) -> str:
        cell = (bomb.bomb_id, tool)
        if cell not in self._keys:
            self._keys[cell] = self._key_for(bomb, tool)
        return self._keys[cell]

    # -- driver loop -----------------------------------------------------

    def run(self, on_cell) -> dict:
        """Drain the queue; returns the run's summary stats."""
        recorder = obs.active()
        ctx = _mp_context()
        inflight: list[_Attempt] = []
        with tempfile.TemporaryDirectory(prefix="repro-service-") as tmpdir:
            with obs.span("campaign.drain", jobs=self.jobs):
                while True:
                    self._fill_slots(inflight, ctx, tmpdir, recorder, on_cell)
                    if not inflight and not self.queue.pending():
                        break
                    if inflight:
                        self._poll(inflight, recorder, on_cell)
                    else:
                        time.sleep(_POLL_S)  # backoff gap: pending not ready
        return dict(self.stats)

    def _fill_slots(self, inflight, ctx, tmpdir, recorder, on_cell) -> None:
        while len(inflight) < self.jobs:
            job = self.queue.claim(worker=f"w{len(inflight)}")
            if job is None:
                return
            bomb = get_bomb(job.bomb_id)
            if self.store is not None:
                cached = self.store.get(self._key(bomb, job.tool), bomb)
                if cached is not None:
                    self.queue.complete(job.job_id, result="cached")
                    self.stats["cells"] += 1
                    self.stats["cache_hits"] += 1
                    on_cell(cached)
                    continue
            result_path = str(Path(tmpdir) /
                              f"{job.job_id}-a{job.attempts}.pkl")
            metrics_path = (result_path + ".jsonl"
                            if recorder is not None else None)
            trace_ctx = None
            if recorder is not None:
                trace_ctx = (recorder.trace_id, recorder.current_span_id(),
                             profile.active() is not None)
            proc = ctx.Process(
                target=_worker_main,
                args=(job.bomb_id, job.tool, job.attempts,
                      result_path, metrics_path, trace_ctx,
                      str(self.store.root) if self.store is not None
                      else None),
            )
            proc.start()
            now = time.monotonic()
            deadline = now + self.timeout if self.timeout is not None else None
            inflight.append(_Attempt(job, proc, result_path,
                                     metrics_path, now, deadline))

    def _poll(self, inflight, recorder, on_cell) -> None:
        time.sleep(_POLL_S)
        now = time.monotonic()
        still = []
        for attempt in inflight:
            if attempt.proc.is_alive():
                if attempt.deadline is not None and now >= attempt.deadline:
                    self._on_timeout(attempt, recorder, on_cell)
                else:
                    still.append(attempt)
                continue
            attempt.proc.join()
            if os.path.exists(attempt.result_path):
                self._on_finished(attempt, recorder, on_cell)
            else:
                self._on_crash(attempt, on_cell)
        inflight[:] = still

    # -- attempt outcomes ------------------------------------------------

    def _on_finished(self, attempt, recorder, on_cell) -> None:
        with open(attempt.result_path, "rb") as fp:
            cell = pickle.load(fp)
        if recorder is not None and attempt.metrics_path is not None:
            from ..obs import read_events

            recorder.absorb(read_events(attempt.metrics_path))
        if self.store is not None:
            self.store.put(self._key(get_bomb(cell.bomb_id), cell.tool), cell)
        self.queue.complete(attempt.job.job_id, result="computed")
        self.stats["cells"] += 1
        self.stats["computed"] += 1
        on_cell(cell)

    def _on_timeout(self, attempt, recorder, on_cell) -> None:
        # SIGTERM first: the worker's handler flushes partial spans and
        # profiler buckets before exiting.  SIGKILL only a worker too
        # wedged to honor it within the grace period.
        attempt.proc.terminate()
        attempt.proc.join(_TERM_GRACE_S)
        if attempt.proc.is_alive():
            attempt.proc.kill()
            attempt.proc.join()
        if os.path.exists(attempt.result_path):
            # The worker finished right at the deadline: its result is
            # fully persisted (atomic rename), so honor it.
            self._on_finished(attempt, recorder, on_cell)
            return
        job = attempt.job
        elapsed = time.monotonic() - attempt.started
        obs.count("service.cells_timeout")
        # A timed-out job is terminal (never retried), so absorbing the
        # partial stream cannot double-count.  The last line may be torn
        # if SIGKILL raced the flush — skip it, keep the rest.
        if recorder is not None and attempt.metrics_path is not None \
                and os.path.exists(attempt.metrics_path):
            from ..obs import read_events

            recorder.absorb(read_events(attempt.metrics_path, strict=False))
        cell = infrastructure_failure_cell(
            get_bomb(job.bomb_id), job.tool,
            f"wall-clock timeout after {self.timeout:g}s", elapsed)
        self.queue.complete(job.job_id, result="timeout")
        self.stats["cells"] += 1
        self.stats["timeouts"] += 1
        on_cell(cell)

    def _on_crash(self, attempt, on_cell) -> None:
        job = attempt.job
        exitcode = attempt.proc.exitcode
        detail = f"worker died (exit {exitcode}) on attempt {job.attempts}"
        if job.attempts <= self.retries:
            obs.count("service.retries")
            delay = self.backoff * (2 ** (job.attempts - 1))
            self.queue.requeue(job.job_id, reason=detail,
                               not_before=time.monotonic() + delay)
            self.stats["requeued"] += 1
            return
        self.queue.exhaust(job.job_id, reason=detail)
        elapsed = time.monotonic() - attempt.started
        cell = infrastructure_failure_cell(
            get_bomb(job.bomb_id), job.tool,
            f"worker crashed on all {job.attempts} attempts "
            f"(last exit {exitcode})", elapsed)
        self.stats["cells"] += 1
        self.stats["exhausted"] += 1
        on_cell(cell)


def run_cell_isolated(bomb: Bomb, tool: str,
                      timeout: float | None) -> CellResult:
    """One cell in a killable worker process (serial ``--timeout`` path).

    Single attempt: an overrun or a worker death maps straight to ``E``
    — retries and backoff are the campaign executor's concern.
    """
    recorder = obs.active()
    ctx = _mp_context()
    with tempfile.TemporaryDirectory(prefix="repro-cell-") as tmpdir:
        result_path = str(Path(tmpdir) / "cell.pkl")
        metrics_path = (result_path + ".jsonl"
                        if recorder is not None else None)
        trace_ctx = None
        if recorder is not None:
            trace_ctx = (recorder.trace_id, recorder.current_span_id(),
                         profile.active() is not None)
        proc = ctx.Process(target=_worker_main,
                           args=(bomb.bomb_id, tool, 1,
                                 result_path, metrics_path, trace_ctx))
        started = time.monotonic()
        proc.start()
        proc.join(timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join(_TERM_GRACE_S)
            if proc.is_alive():
                proc.kill()
                proc.join()
            obs.count("service.cells_timeout")
            if recorder is not None and metrics_path is not None \
                    and os.path.exists(metrics_path):
                from ..obs import read_events

                recorder.absorb(read_events(metrics_path, strict=False))
            return infrastructure_failure_cell(
                bomb, tool, f"wall-clock timeout after {timeout:g}s",
                time.monotonic() - started)
        if not os.path.exists(result_path):
            return infrastructure_failure_cell(
                bomb, tool, f"worker died (exit {proc.exitcode})",
                time.monotonic() - started)
        with open(result_path, "rb") as fp:
            cell = pickle.load(fp)
        if recorder is not None and metrics_path is not None:
            from ..obs import read_events

            recorder.absorb(read_events(metrics_path))
        return cell


def execute_matrix(bomb_ids: tuple[str, ...], tools: tuple[str, ...],
                   *, jobs: int, timeout: float | None,
                   store: ResultStore | None,
                   retries: int = DEFAULT_RETRIES,
                   verbose: bool = False):
    """Service-backed Table II evaluation (the ``--cache``/``--timeout``
    route of :func:`repro.eval.harness.run_table2`).

    Runs the cell matrix on an ephemeral in-memory queue through
    :class:`CellExecutor` and reassembles a ``Table2Result``.  Cells are
    keyed by (bomb, tool), so completion order cannot change the
    rendered or JSON output.
    """
    from ..eval.harness import Table2Result, _print_cell

    queue = JobQueue(None)
    queue.submit([(b, t) for b in bomb_ids for t in tools])
    result = Table2Result()
    executor = CellExecutor(queue, jobs=jobs, timeout=timeout,
                            retries=retries, store=store)
    executor.run(result.add)
    if verbose:
        for bomb_id in bomb_ids:
            for tool in tools:
                cell = result.cells.get((bomb_id, tool))
                if cell is not None:
                    _print_cell(cell)
    return result
