"""Declarative campaign specs: validated JSON/TOML workload documents.

A campaign spec is a small document — the shape binrec-tob ships as
``campaign_schema.json`` — that names *what* to evaluate and under
*which* budget, without scripting how::

    {
      "name":    "nightly-symbolic-array",
      "tenant":  "ci",
      "bombs":   ["sa_*", "cp_stack"],
      "tools":   ["tritonx", "angrx"],
      "levels":  [1, 2],
      "jobs":    4,
      "timeout": 60.0,
      "retries": 2
    }

The same document is accepted as TOML (``repro campaign submit --spec
run.toml``) and over HTTP (``POST /campaigns``).  Selector semantics:

* **bombs** — each entry is an exact bomb id, the keyword ``table2``
  (the paper's 22-bomb matrix, the default) or ``all`` (every program
  in the dataset), or an ``fnmatch`` glob (``sa_*``, ``*_file*``).
  Selection preserves dataset order and dedupes.
* **tools** — exact tool names, ``all``, or globs over the registered
  tool columns.
* **levels** — challenge difficulty levels to keep, following the
  authors' two-level hierarchy: a bomb id carrying ``_l<N>_`` is level
  *N* (``sa_l2_array`` is level 2); every other bomb is level 1.

Validation is strict — unknown keys, wrong types, empty selections and
unmatched selectors are :class:`SpecError`\\ s naming the offending
field — so a typo'd spec fails at submit time, not after a fleet has
burned an hour on the wrong matrix.

Per-tenant quotas live in ``<root>/quotas.json``::

    {"tenants": {"ci": {"max_pending_cells": 200}},
     "default": {"max_pending_cells": 1000}}

:func:`check_quota` compares a tenant's outstanding (pending or
claimed) cells across every campaign under the root against its
budget; an over-quota submit raises :class:`QuotaExceeded` (HTTP 429
at the API, a counted ``service.quota_rejected`` either way).
"""

from __future__ import annotations

import fnmatch
import json
import os
from dataclasses import dataclass
from pathlib import Path

from .. import obs

#: Keys a spec document may carry; anything else is a SpecError.
SPEC_KEYS = frozenset({
    "name", "tenant", "bombs", "tools", "levels",
    "jobs", "timeout", "retries",
})

#: Name of the per-root quota configuration file.
QUOTAS_FILE = "quotas.json"


class SpecError(ValueError):
    """A campaign spec document failed validation."""


class QuotaExceeded(RuntimeError):
    """A submit would push a tenant past its configured cell budget."""


# -- parsing ----------------------------------------------------------------

def parse_spec_text(text: str, fmt: str = "json") -> dict:
    """Parse a spec document from *text* (``json`` or ``toml``)."""
    if fmt == "json":
        try:
            doc = json.loads(text)
        except ValueError as err:
            raise SpecError(f"invalid JSON spec: {err}")
    elif fmt == "toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10 fallback
            raise SpecError("TOML specs need Python >= 3.11 (tomllib); "
                            "use JSON instead")
        try:
            doc = tomllib.loads(text)
        except tomllib.TOMLDecodeError as err:
            raise SpecError(f"invalid TOML spec: {err}")
    else:
        raise SpecError(f"unknown spec format {fmt!r} (json or toml)")
    if not isinstance(doc, dict):
        raise SpecError("spec document must be a table/object, "
                        f"not {type(doc).__name__}")
    return doc


def load_spec_file(path: str | os.PathLike):
    """Load and validate a spec file; format chosen by extension."""
    path = Path(path)
    fmt = "toml" if path.suffix.lower() == ".toml" else "json"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        raise SpecError(f"cannot read spec {path}: {err.strerror}")
    return build_spec(parse_spec_text(text, fmt))


# -- selector resolution ----------------------------------------------------

def bomb_level(bomb_id: str) -> int:
    """The bomb's difficulty level: ``_l<N>_`` in the id, else 1."""
    for part in bomb_id.split("_"):
        if len(part) >= 2 and part[0] == "l" and part[1:].isdigit():
            return int(part[1:])
    return 1


def _select(entries: list[str], universe: list[str], default: list[str],
            keywords: dict[str, list[str]], field: str) -> list[str]:
    """Resolve id/keyword/glob selector entries against *universe*."""
    if not entries:
        return list(default)
    chosen: list[str] = []
    for entry in entries:
        if not isinstance(entry, str):
            raise SpecError(f"{field}: entries must be strings, "
                            f"got {entry!r}")
        if entry in keywords:
            matched = keywords[entry]
        elif entry in universe:
            matched = [entry]
        elif any(ch in entry for ch in "*?["):
            matched = [name for name in universe
                       if fnmatch.fnmatchcase(name, entry)]
            if not matched:
                raise SpecError(f"{field}: pattern {entry!r} matches "
                                "nothing in the dataset")
        else:
            raise SpecError(f"{field}: unknown id {entry!r} "
                            "(use an exact id, a glob, or a keyword)")
        for name in matched:
            if name not in chosen:
                chosen.append(name)
    # Dataset order, not mention order: campaigns stay byte-stable
    # however the selectors were spelled.
    return [name for name in universe if name in chosen]


def resolve_bombs(entries: list[str], levels: list[int]) -> list[str]:
    """Bomb ids selected by *entries*, filtered to *levels*."""
    from ..bombs import TABLE2_BOMB_IDS, all_bombs

    universe = [b.bomb_id for b in all_bombs()]
    keywords = {"table2": list(TABLE2_BOMB_IDS), "all": list(universe)}
    chosen = _select(entries, universe, list(TABLE2_BOMB_IDS),
                     keywords, "bombs")
    if levels:
        chosen = [b for b in chosen if bomb_level(b) in levels]
        if not chosen:
            raise SpecError(f"levels: {levels} leaves no bombs selected")
    return chosen


def resolve_tools(entries: list[str]) -> list[str]:
    """Tool names selected by *entries*.

    The universe, the ``all`` keyword and the default are all derived
    from the live :data:`~repro.bombs.suite.TOOL_COLUMNS` registry at
    resolve time, so a new Table II column is selectable (by name, glob
    or ``all``) with no spec-layer edits.  Selection order follows the
    column order, with non-column tools (``rexx``) after.
    """
    from ..bombs import TOOL_COLUMNS
    from ..tools.api import all_tool_names

    universe = list(TOOL_COLUMNS)
    for name in list(all_tool_names()) + ["rexx"]:
        if name not in universe:
            universe.append(name)
    keywords = {"all": list(TOOL_COLUMNS)}
    return _select(entries, universe, list(TOOL_COLUMNS), keywords, "tools")


# -- document validation ----------------------------------------------------

def _str_list(doc: dict, key: str) -> list[str]:
    value = doc.get(key, [])
    if isinstance(value, str):
        value = [value]
    if not isinstance(value, list):
        raise SpecError(f"{key}: expected a list of strings, "
                        f"got {type(value).__name__}")
    return value


def build_spec(doc: dict):
    """Validate a parsed document and resolve it to a CampaignSpec."""
    from .campaign import CampaignSpec
    from .executor import DEFAULT_RETRIES

    unknown = sorted(set(doc) - SPEC_KEYS)
    if unknown:
        raise SpecError(f"unknown spec key(s): {', '.join(unknown)} "
                        f"(allowed: {', '.join(sorted(SPEC_KEYS))})")

    levels = doc.get("levels", [])
    if not isinstance(levels, list) or \
            any(not isinstance(lv, int) or isinstance(lv, bool)
                for lv in levels):
        raise SpecError("levels: expected a list of integers")

    bombs = resolve_bombs(_str_list(doc, "bombs"), levels)
    tools = resolve_tools(_str_list(doc, "tools"))
    if not bombs or not tools:
        raise SpecError("spec selects an empty matrix")

    jobs = doc.get("jobs", 1)
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0:
        raise SpecError("jobs: expected an integer >= 0 (0 = auto-detect)")

    timeout = doc.get("timeout")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or isinstance(timeout, bool) \
                or timeout <= 0:
            raise SpecError("timeout: expected a positive number of seconds")
        timeout = float(timeout)

    retries = doc.get("retries", DEFAULT_RETRIES)
    if not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
        raise SpecError("retries: expected an integer >= 0")

    name = doc.get("name", "")
    tenant = doc.get("tenant", "")
    for key, value in (("name", name), ("tenant", tenant)):
        if not isinstance(value, str):
            raise SpecError(f"{key}: expected a string")

    return CampaignSpec(bombs=tuple(bombs), tools=tuple(tools), jobs=jobs,
                        timeout=timeout, retries=retries, name=name,
                        tenant=tenant)


# -- per-tenant quotas ------------------------------------------------------

@dataclass
class TenantQuota:
    """Budget for one tenant; ``None`` means unlimited."""

    max_pending_cells: int | None = None


def load_quotas(root: str | os.PathLike) -> dict[str, TenantQuota]:
    """Quota table from ``<root>/quotas.json`` (absent = no limits).

    Returns tenant name → :class:`TenantQuota`; the ``"default"`` entry
    (if present) applies to tenants without their own row.
    """
    path = Path(root) / QUOTAS_FILE
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError:
        return {}
    except ValueError as err:
        raise SpecError(f"invalid {QUOTAS_FILE}: {err}")
    quotas: dict[str, TenantQuota] = {}
    for tenant, row in {**doc.get("tenants", {}),
                        **({"default": doc["default"]}
                           if "default" in doc else {})}.items():
        if not isinstance(row, dict):
            raise SpecError(f"{QUOTAS_FILE}: entry for {tenant!r} must "
                            "be an object")
        limit = row.get("max_pending_cells")
        if limit is not None and (not isinstance(limit, int)
                                  or isinstance(limit, bool) or limit < 0):
            raise SpecError(f"{QUOTAS_FILE}: {tenant}.max_pending_cells "
                            "must be a non-negative integer or null")
        quotas[tenant] = TenantQuota(max_pending_cells=limit)
    return quotas


def quota_for(quotas: dict[str, TenantQuota], tenant: str) -> TenantQuota:
    return quotas.get(tenant, quotas.get("default", TenantQuota()))


def check_quota(service, spec) -> None:
    """Raise :class:`QuotaExceeded` if submitting *spec* would push its
    tenant past ``max_pending_cells`` outstanding (pending or claimed)
    cells across all campaigns under the service root."""
    quotas = load_quotas(service.root)
    if not quotas:
        return
    quota = quota_for(quotas, spec.tenant)
    if quota.max_pending_cells is None:
        return
    outstanding = 0
    for cid in service.campaigns():
        existing = service.spec(cid)
        if existing.tenant != spec.tenant:
            continue
        states = service.status(cid)["states"]
        outstanding += states["pending"] + states["claimed"]
    requested = len(spec.cells())
    if outstanding + requested > quota.max_pending_cells:
        obs.count("service.quota_rejected")
        tenant = spec.tenant or "(default tenant)"
        raise QuotaExceeded(
            f"tenant {tenant}: {outstanding} cell(s) outstanding + "
            f"{requested} requested exceeds quota of "
            f"{quota.max_pending_cells} pending cells")
