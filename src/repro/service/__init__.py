"""Campaign service: durable queue, fault-tolerant workers, result cache.

Turns the one-shot Table II harness into a durable analysis service:

* :mod:`~repro.service.fingerprint` — content addresses: a cell result
  is keyed by (REXF image digest, tool capability fingerprint, harness
  policy fingerprint);
* :mod:`~repro.service.store` — the content-addressed
  :class:`ResultStore` (atomic writes, schema-versioned documents);
* :mod:`~repro.service.queue` — the durable :class:`JobQueue` (JSONL
  journal with claim/complete records, crash recovery on replay);
* :mod:`~repro.service.executor` — the fault-tolerant
  :class:`CellExecutor` (per-cell wall-clock timeouts, crash requeue
  with backoff, bounded retries, exact metrics absorption);
* :mod:`~repro.service.campaign` — the :class:`CampaignService` client
  API behind ``repro campaign submit/run/status/results``;
* :mod:`~repro.service.spec` — declarative JSON/TOML campaign specs
  (selector resolution, strict validation, per-tenant quotas);
* :mod:`~repro.service.fleet` — lease-based multi-host workers over a
  shared journal (``repro worker``);
* :mod:`~repro.service.api` — the asyncio HTTP front door
  (``repro serve``): submit/status/results, NDJSON progress streams,
  Prometheus ``/metrics``.
"""

from .api import CampaignAPI, serve_forever, start_api
from .campaign import (
    CampaignReport,
    CampaignService,
    CampaignSpec,
    render_status_line,
    status_events,
    status_finished,
    watch_status,
)
from .executor import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    KILL_CELL_ENV,
    CellExecutor,
    execute_matrix,
    infrastructure_failure_cell,
    run_cell_isolated,
)
from .fingerprint import (
    CACHE_SCHEMA,
    bomb_fingerprint,
    cell_key,
    harness_fingerprint,
    image_digest,
)
from .fleet import (
    DEFAULT_LEASE_S,
    FleetQueue,
    FleetWorker,
    WorkerStats,
    auto_jobs,
    run_fleet,
    run_worker,
)
from .queue import Job, JobQueue
from .spec import (
    QuotaExceeded,
    SpecError,
    TenantQuota,
    build_spec,
    check_quota,
    load_quotas,
    load_spec_file,
    parse_spec_text,
)
from .store import ResultStore, decode_cell, encode_cell

__all__ = [
    "CACHE_SCHEMA",
    "CampaignAPI",
    "CampaignReport",
    "CampaignService",
    "CampaignSpec",
    "CellExecutor",
    "DEFAULT_BACKOFF",
    "DEFAULT_LEASE_S",
    "DEFAULT_RETRIES",
    "FleetQueue",
    "FleetWorker",
    "Job",
    "JobQueue",
    "KILL_CELL_ENV",
    "QuotaExceeded",
    "ResultStore",
    "SpecError",
    "TenantQuota",
    "WorkerStats",
    "auto_jobs",
    "bomb_fingerprint",
    "build_spec",
    "cell_key",
    "check_quota",
    "decode_cell",
    "encode_cell",
    "execute_matrix",
    "harness_fingerprint",
    "image_digest",
    "infrastructure_failure_cell",
    "load_quotas",
    "load_spec_file",
    "parse_spec_text",
    "render_status_line",
    "run_cell_isolated",
    "run_fleet",
    "run_worker",
    "serve_forever",
    "start_api",
    "status_events",
    "status_finished",
    "watch_status",
]
