"""Campaign service: durable queue, fault-tolerant workers, result cache.

Turns the one-shot Table II harness into a durable analysis service:

* :mod:`~repro.service.fingerprint` — content addresses: a cell result
  is keyed by (REXF image digest, tool capability fingerprint, harness
  policy fingerprint);
* :mod:`~repro.service.store` — the content-addressed
  :class:`ResultStore` (atomic writes, schema-versioned documents);
* :mod:`~repro.service.queue` — the durable :class:`JobQueue` (JSONL
  journal with claim/complete records, crash recovery on replay);
* :mod:`~repro.service.executor` — the fault-tolerant
  :class:`CellExecutor` (per-cell wall-clock timeouts, crash requeue
  with backoff, bounded retries, exact metrics absorption);
* :mod:`~repro.service.campaign` — the :class:`CampaignService` client
  API behind ``repro campaign submit/run/status/results``.
"""

from .campaign import CampaignReport, CampaignService, CampaignSpec, watch_status
from .executor import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    KILL_CELL_ENV,
    CellExecutor,
    execute_matrix,
    infrastructure_failure_cell,
    run_cell_isolated,
)
from .fingerprint import (
    CACHE_SCHEMA,
    bomb_fingerprint,
    cell_key,
    harness_fingerprint,
    image_digest,
)
from .queue import Job, JobQueue
from .store import ResultStore, decode_cell, encode_cell

__all__ = [
    "CACHE_SCHEMA",
    "CampaignReport",
    "CampaignService",
    "CampaignSpec",
    "CellExecutor",
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "Job",
    "JobQueue",
    "KILL_CELL_ENV",
    "ResultStore",
    "bomb_fingerprint",
    "cell_key",
    "decode_cell",
    "encode_cell",
    "execute_matrix",
    "harness_fingerprint",
    "image_digest",
    "infrastructure_failure_cell",
    "run_cell_isolated",
    "watch_status",
]
