"""Multi-host fleet workers: lease-based claims over a shared journal.

PR 3's :class:`~repro.service.queue.JobQueue` serializes one driver's
transitions across crashes; this module turns the same JSONL journal
into a **multi-writer coordination protocol** so N detached worker
processes (``repro worker --root DIR``, any number of hosts sharing the
filesystem) drain campaigns cooperatively without double-execution:

* every mutating transition happens under an exclusive lock on a
  sidecar ``queue.jsonl.lock`` file (``flock`` where available, an
  ``O_EXCL`` spin-lock elsewhere), and begins by **refreshing** — an
  incremental, offset-tracked replay of journal records other workers
  appended since the last look;
* a claim carries the worker id and a wall-clock ``lease_until``
  deadline; a live worker heartbeats ``renew`` records while its cell
  runs, so a long cell never loses its lease;
* a claim whose lease expired (the worker was SIGKILLed, OOM-killed, or
  its host died) is requeued — with ``service.lease_expired`` and
  ``service.requeues`` counted — by whichever worker observes the
  expiry at its next claim, and the cell is completed by a survivor;
* before recording ``done``/``requeue``/``exhaust``, a worker re-checks
  (under the lock) that it *still* holds the claim; a worker that
  stalled past its lease and lost the job to a survivor discards its
  transition (``service.lease_lost``) instead of double-completing.
  Results go through the content-addressed store, so even that
  pathological overlap converges on byte-identical output.

:class:`FleetWorker` is the pull loop: discover campaigns under the
service root, claim a leased cell, serve it from the shared store or
execute it in a killable subprocess (reusing the executor's worker
entry point, timeout mapping, and crash/retry classification), and
record the terminal transition.  ``repro worker --jobs N`` forks N such
loops; ``--jobs 0`` sizes the pack to the host's usable CPUs.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..obs import profile
from ..bombs import get_bomb
from .executor import DEFAULT_BACKOFF, _TERM_GRACE_S, _mp_context, _worker_main
from .fingerprint import cell_key
from .queue import CLAIMED, PENDING, Job, JobQueue

#: Default lease duration; a worker renews at half-life, so a lease is
#: only allowed to expire when the holder missed >= 2 heartbeats.
DEFAULT_LEASE_S = 30.0
#: Fraction of the lease after which the holder heartbeats a renewal.
RENEW_FRACTION = 0.5
#: Worker poll cadence while its cell subprocess runs.
_POLL_S = 0.05


def auto_jobs() -> int:
    """Usable CPU count: ``os.process_cpu_count()`` (3.13+) falling
    back to the scheduling affinity mask, then ``os.cpu_count()``."""
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        n = counter()
        if n:
            return n
    try:
        n = len(os.sched_getaffinity(0))
        if n:
            return n
    except (AttributeError, OSError):
        pass
    return os.cpu_count() or 1


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


class _FileLock:
    """Exclusive advisory lock on a sidecar file.

    ``flock`` where the platform has it (waits in the kernel, released
    automatically if the holder dies); otherwise an ``O_CREAT|O_EXCL``
    spin-lock with a staleness bound so a crashed holder cannot wedge
    the fleet forever.
    """

    _STALE_S = 60.0

    def __init__(self, path: Path):
        self.path = path
        self._fd: int | None = None
        try:
            import fcntl  # noqa: F401 - availability probe
            self._flock = True
        except ImportError:  # pragma: no cover - non-POSIX fallback
            self._flock = False

    def acquire(self) -> None:
        if self._flock:
            import fcntl

            self._fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
            return
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                self._fd = os.open(self.path,
                                   os.O_CREAT | os.O_EXCL | os.O_RDWR)
                return
            except FileExistsError:
                try:
                    if time.time() - self.path.stat().st_mtime > self._STALE_S:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    pass
                time.sleep(0.005)

    def release(self) -> None:
        if self._fd is None:
            return
        if self._flock:
            import fcntl

            fcntl.flock(self._fd, fcntl.LOCK_UN)
            os.close(self._fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(self._fd)
            self.path.unlink(missing_ok=True)
        self._fd = None

    @contextlib.contextmanager
    def held(self):
        self.acquire()
        try:
            yield
        finally:
            self.release()


class FleetQueue(JobQueue):
    """Multi-writer view of one campaign's journal.

    Layered on :class:`JobQueue`: same records, same replay, plus an
    exclusive lock around every transition, an incremental
    offset-tracked ``refresh`` so concurrent appenders' records are
    folded in before any decision, and lease bookkeeping on claims.
    """

    def __init__(self, path: str | os.PathLike, worker_id: str, *,
                 lease_s: float = DEFAULT_LEASE_S, clock=time.time):
        self.worker_id = worker_id
        self.lease_s = lease_s
        self.clock = clock
        self._offset = 0
        path = Path(path)
        self._lock = _FileLock(path.with_name(path.name + ".lock"))
        super().__init__(path, recover_claims=False)

    def _replay(self) -> None:
        # Initial state is just a refresh from offset 0; _apply'ing a
        # record twice converges, so refresh() after our own appends
        # (which base _append already applied in memory) is harmless.
        self.refresh()

    def refresh(self) -> int:
        """Fold in journal records appended since the last look.

        Reads complete lines from the stored byte offset; a torn tail
        (a writer mid-append on another host) is left for next time.
        Returns the number of records applied.
        """
        if self.path is None or not self.path.exists():
            return 0
        with self.path.open("rb") as fp:
            fp.seek(self._offset)
            data = fp.read()
        end = data.rfind(b"\n")
        if end < 0:
            return 0
        applied = 0
        for raw in data[:end].split(b"\n"):
            if not raw.strip():
                continue
            try:
                record = json.loads(raw.decode("utf-8"))
            except ValueError:
                continue  # corrupt line (torn write + later append)
            self._apply(record)
            applied += 1
        self._offset += end + 1
        return applied

    # -- leased transitions ---------------------------------------------

    def claim_leased(self) -> Job | None:
        """Claim the next ready job under the lock, with a fresh lease.

        Also the expiry sweep: any claim whose lease deadline passed is
        requeued first (``service.lease_expired``), making the dead
        worker's cell immediately claimable — possibly by us, in this
        very call.
        """
        with self._lock.held():
            self.refresh()
            now = self.clock()
            for job in self.ordered_jobs():
                if job.status == CLAIMED and job.lease_until is not None \
                        and job.lease_until <= now:
                    obs.count("service.lease_expired")
                    obs.count("service.requeues")
                    self.requeue(
                        job.job_id,
                        reason=f"lease expired (worker {job.worker})")
            return self.claim(self.worker_id, now=now,
                              lease_until=now + self.lease_s)

    def renew_lease(self, job: Job) -> None:
        """Heartbeat: extend our lease while the cell is still running."""
        with self._lock.held():
            self.refresh()
            self.renew(job.job_id, self.worker_id,
                       self.clock() + self.lease_s)

    def finish_leased(self, job: Job, transition: str, **kw) -> bool:
        """Record a terminal transition iff we still hold the claim.

        *transition* is ``complete`` / ``requeue`` / ``exhaust``.  A
        worker that stalled past its lease finds the job requeued or
        re-claimed by a survivor; it must drop its transition (the
        survivor owns the job now) — counted as ``service.lease_lost``.
        """
        with self._lock.held():
            self.refresh()
            current = self.jobs.get(job.job_id)
            if current is None or current.status != CLAIMED \
                    or current.worker != self.worker_id:
                obs.count("service.lease_lost")
                return False
            getattr(self, transition)(job.job_id, **kw)
            return True


@dataclass
class WorkerStats:
    """One worker loop's tally (mirrors the executor's stats dict)."""

    claimed: int = 0
    cached: int = 0
    computed: int = 0
    timeouts: int = 0
    requeued: int = 0
    exhausted: int = 0
    lease_lost: int = 0

    def to_json(self) -> dict:
        return dict(self.__dict__)


@dataclass
class FleetWorker:
    """Pull-loop worker over every campaign under a service root."""

    root: str | os.PathLike
    worker_id: str = field(default_factory=default_worker_id)
    lease_s: float = DEFAULT_LEASE_S
    poll_s: float = 0.2
    backoff: float = DEFAULT_BACKOFF
    clock: object = time.time

    def __post_init__(self):
        from .campaign import CampaignService

        self.service = CampaignService(self.root)
        self.store = self.service.store
        self.stats = WorkerStats()
        self._queues: dict[str, FleetQueue] = {}
        self._specs: dict[str, object] = {}
        self._stop = False

    # -- discovery -------------------------------------------------------

    def _queue_for(self, cid: str) -> FleetQueue:
        queue = self._queues.get(cid)
        if queue is None:
            path = self.service._campaign_dir(cid) / "queue.jsonl"
            queue = FleetQueue(path, self.worker_id,
                               lease_s=self.lease_s, clock=self.clock)
            self._queues[cid] = queue
        return queue

    def _spec_for(self, cid: str):
        spec = self._specs.get(cid)
        if spec is None:
            spec = self._specs[cid] = self.service.spec(cid)
        return spec

    def claim_next(self):
        """(cid, queue, job) for the first claimable cell, or None."""
        for cid in self.service.campaigns():
            queue = self._queue_for(cid)
            job = queue.claim_leased()
            if job is not None:
                self.stats.claimed += 1
                return cid, queue, job
        return None

    def drained(self) -> bool:
        """True when every job of every campaign is terminal."""
        for cid in self.service.campaigns():
            queue = self._queue_for(cid)
            with queue._lock.held():
                queue.refresh()
            if any(j.status in (PENDING, CLAIMED)
                   for j in queue.jobs.values()):
                return False
        return True

    # -- the loop --------------------------------------------------------

    def run(self, *, drain: bool = False,
            max_idle: float | None = None) -> WorkerStats:
        """Claim-and-execute until stopped.

        *drain*: exit once every campaign under the root is terminal
        (the CI / batch mode).  *max_idle*: exit after that many
        seconds without a successful claim.  With neither, poll until
        the process is signalled.
        """
        idle_since = time.monotonic()
        with obs.span("worker", worker=self.worker_id):
            while not self._stop:
                claimed = self.claim_next()
                if claimed is None:
                    if drain and self.drained():
                        break
                    if max_idle is not None and \
                            time.monotonic() - idle_since >= max_idle:
                        break
                    time.sleep(self.poll_s)
                    continue
                idle_since = time.monotonic()
                self._execute(*claimed)
        return self.stats

    def _execute(self, cid: str, queue: FleetQueue, job: Job) -> None:
        spec = self._spec_for(cid)
        bomb = get_bomb(job.bomb_id)
        key = cell_key(bomb, job.tool)
        cached = self.store.get(key, bomb)
        if cached is not None:
            if queue.finish_leased(job, "complete", result="cached"):
                self.stats.cached += 1
            else:
                self.stats.lease_lost += 1
            return
        outcome, cell = self._attempt(bomb, job, queue,
                                      timeout=spec.timeout)
        if outcome == "computed":
            # Store before completing: once the journal says done, any
            # reader must find the result.  (infra cells never cached.)
            if not cell.infra_failure:
                self.store.put(key, cell)
            if queue.finish_leased(job, "complete", result="computed"):
                self.stats.computed += 1
            else:
                self.stats.lease_lost += 1
        elif outcome == "timeout":
            obs.count("service.cells_timeout")
            if queue.finish_leased(job, "complete", result="timeout"):
                self.stats.timeouts += 1
            else:
                self.stats.lease_lost += 1
        else:  # crash
            detail = (f"worker subprocess died ({outcome}) on attempt "
                      f"{job.attempts}")
            if job.attempts <= spec.retries:
                obs.count("service.retries")
                obs.count("service.requeues")
                delay = self.backoff * (2 ** (job.attempts - 1))
                if queue.finish_leased(job, "requeue", reason=detail,
                                       not_before=self.clock() + delay):
                    self.stats.requeued += 1
                else:
                    self.stats.lease_lost += 1
            else:
                if queue.finish_leased(job, "exhaust", reason=detail):
                    self.stats.exhausted += 1
                else:
                    self.stats.lease_lost += 1

    def _attempt(self, bomb, job: Job, queue: FleetQueue, *,
                 timeout: float | None):
        """One cell attempt in a killable subprocess, heartbeating the
        lease while it runs.

        Returns ``("computed", cell)``, ``("timeout", None)``, or
        ``("exit <code>", None)`` for a crashed subprocess.
        """
        import pickle

        recorder = obs.active()
        ctx = _mp_context()
        with tempfile.TemporaryDirectory(prefix="repro-fleet-") as tmpdir:
            result_path = str(Path(tmpdir) / f"{job.job_id}.pkl")
            metrics_path = (result_path + ".jsonl"
                            if recorder is not None else None)
            trace_ctx = None
            if recorder is not None:
                trace_ctx = (recorder.trace_id, recorder.current_span_id(),
                             profile.active() is not None)
            proc = ctx.Process(
                target=_worker_main,
                args=(bomb.bomb_id, job.tool, job.attempts,
                      result_path, metrics_path, trace_ctx))
            started = time.monotonic()
            deadline = started + timeout if timeout is not None else None
            renew_at = self.clock() + self.lease_s * RENEW_FRACTION
            proc.start()
            timed_out = False
            while proc.is_alive():
                time.sleep(_POLL_S)
                if self.clock() >= renew_at:
                    queue.renew_lease(job)
                    renew_at = self.clock() + self.lease_s * RENEW_FRACTION
                if deadline is not None and time.monotonic() >= deadline:
                    proc.terminate()
                    proc.join(_TERM_GRACE_S)
                    if proc.is_alive():
                        proc.kill()
                    timed_out = True
                    break
            proc.join()
            if os.path.exists(result_path):
                # Finished (possibly right at the deadline — the atomic
                # rename means a persisted result is always whole).
                with open(result_path, "rb") as fp:
                    cell = pickle.load(fp)
                if recorder is not None and metrics_path is not None \
                        and os.path.exists(metrics_path):
                    from ..obs import read_events

                    recorder.absorb(read_events(metrics_path))
                return "computed", cell
            if recorder is not None and metrics_path is not None \
                    and os.path.exists(metrics_path):
                from ..obs import read_events

                recorder.absorb(read_events(metrics_path, strict=False))
            if timed_out:
                return "timeout", None
            return f"exit {proc.exitcode}", None


def run_worker(root: str | os.PathLike, *, worker_id: str | None = None,
               lease_s: float = DEFAULT_LEASE_S, poll_s: float = 0.2,
               drain: bool = False, max_idle: float | None = None,
               metrics_out: str | None = None) -> WorkerStats:
    """One worker loop, optionally with its own metrics stream.

    Module-level (picklable) so ``repro worker --jobs N`` and tests can
    fork it as a process target.
    """
    recorder = None
    if metrics_out is not None:
        recorder = obs.Recorder(sinks=[obs.JsonlSink(metrics_out)],
                                hist_values=True)
    worker = FleetWorker(root, worker_id=worker_id or default_worker_id(),
                         lease_s=lease_s, poll_s=poll_s)
    if recorder is not None:
        with obs.recording(recorder):
            return worker.run(drain=drain, max_idle=max_idle)
    return worker.run(drain=drain, max_idle=max_idle)


def run_fleet(root: str | os.PathLike, jobs: int, *,
              lease_s: float = DEFAULT_LEASE_S, poll_s: float = 0.2,
              drain: bool = False, max_idle: float | None = None,
              metrics_out: str | None = None) -> int:
    """Fork *jobs* worker loops over one root; returns the pack size.

    ``jobs == 0`` auto-sizes to :func:`auto_jobs`.  With a metrics
    path, each member writes ``<path>.<i>`` (concatenated streams feed
    ``repro stats`` directly).
    """
    jobs = auto_jobs() if jobs == 0 else jobs
    if jobs == 1:
        run_worker(root, lease_s=lease_s, poll_s=poll_s, drain=drain,
                   max_idle=max_idle, metrics_out=metrics_out)
        return 1
    ctx = _mp_context()
    procs = []
    for i in range(jobs):
        out = f"{metrics_out}.{i}" if metrics_out is not None else None
        procs.append(ctx.Process(
            target=run_worker, args=(str(root),),
            kwargs={"worker_id": f"{default_worker_id()}.{i}",
                    "lease_s": lease_s, "poll_s": poll_s, "drain": drain,
                    "max_idle": max_idle, "metrics_out": out}))
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
    return jobs
