"""Content-addressed cache keys for the campaign service.

A Table II cell is a pure function of three things:

1. **the bomb** — its compiled REXF image bytes plus the run context the
   harness feeds every tool (seed argv, fixed environment, whether the
   bomb is declared unreachable);
2. **the tool** — the engine family and the full capability/budget
   matrix of its policy (see :func:`repro.tools.capability_fingerprint`);
3. **the harness policy** — the classifier's rules and the cache schema
   itself (:data:`CACHE_SCHEMA`, bumped whenever the stored
   representation or the classification semantics change).

:func:`cell_key` hashes all three into one hex digest; the result store
files cells under that digest.  Editing a bomb source recompiles to a
different image and therefore a different key — only that bomb's cells
recompute — while an unchanged campaign is a 100% cache hit.

The paper's expected labels are deliberately *not* part of the key:
they only annotate agreement and are re-read from the live dataset when
a cached cell is decoded, so relabeling a row never invalidates results.
"""

from __future__ import annotations

import hashlib
import json

from ..bombs.suite import Bomb
from ..eval.classify import CONCRETIZATION_THRESHOLD
from ..tools.api import capability_fingerprint
from ..vm import Environment

#: Version of the stored cell representation + classification semantics.
#: Part of every cache key: bumping it cold-starts the store rather than
#: serving results computed under older semantics.
CACHE_SCHEMA = 2


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def environment_payload(env: Environment | None) -> dict | None:
    """Canonical JSON-able form of an :class:`Environment` (or None)."""
    if env is None:
        return None
    return {
        "time_value": env.time_value,
        "pid": env.pid,
        "magic": env.magic,
        "files": {path: data.decode("latin1")
                  for path, data in sorted(env.files.items())},
        "network": {url: data.decode("latin1")
                    for url, data in sorted(env.network.items())},
        "stdin": env.stdin.decode("latin1"),
    }


def image_digest(image) -> str:
    """Digest of the serialized REXF image — the bomb's content address."""
    return hashlib.sha256(image.to_bytes()).hexdigest()


def bomb_fingerprint(bomb: Bomb) -> str:
    """Digest of everything about *bomb* that a tool run can observe."""
    payload = {
        "image": image_digest(bomb.image),
        "seed_argv": [arg.decode("latin1") for arg in bomb.seed_argv],
        "fixed_env": environment_payload(bomb.fixed_env),
        "expected_unreachable": bomb.expected_unreachable,
    }
    return _sha256(_canonical(payload))


def harness_fingerprint() -> str:
    """Digest of the classification policy + cache schema."""
    payload = {
        "schema": CACHE_SCHEMA,
        "concretization_threshold": CONCRETIZATION_THRESHOLD,
    }
    return _sha256(_canonical(payload))


def cell_key(bomb: Bomb, tool_name: str) -> str:
    """The content address of one (bomb, tool) cell result."""
    payload = {
        "bomb": bomb_fingerprint(bomb),
        "tool": tool_name,
        "capabilities": capability_fingerprint(tool_name),
        "harness": harness_fingerprint(),
    }
    return _sha256(_canonical(payload))
