"""Content-addressed result store for Table II cells.

Layout (under the store root)::

    objects/<k[:2]>/<key>.json     one JSON document per cell result

Each document carries the full :class:`~repro.eval.harness.CellResult`
— outcome, per-stage timings, root-cause diagnostic, and the complete
:class:`~repro.tools.api.ToolReport` including the diagnostic log, the
validated solution bytes and any solution environment — so a cache hit
is indistinguishable from a fresh run (``table2 --json`` renders byte
for byte the same).

Writes are atomic (temp file + ``os.replace``) so a crashed writer can
never leave a torn object; a document that fails to parse or was stored
under a different :data:`~repro.service.fingerprint.CACHE_SCHEMA` is
treated as a miss, not an error.

The paper-expected label is *not* stored: :func:`decode_cell` re-reads
it from the live bomb, so annotating the dataset never invalidates the
store (see :mod:`repro.service.fingerprint`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from .. import obs
from ..bombs.suite import Bomb
from ..errors import Diagnostic, DiagnosticKind, DiagnosticLog, ErrorStage
from ..eval.harness import CellResult
from ..tools.api import ToolReport
from ..vm import Environment
from .fingerprint import CACHE_SCHEMA, environment_payload


def _encode_env(env: Environment | None) -> dict | None:
    return environment_payload(env)


def _decode_env(data: dict | None) -> Environment | None:
    if data is None:
        return None
    return Environment(
        time_value=data["time_value"],
        pid=data["pid"],
        magic=data["magic"],
        files={path: body.encode("latin1")
               for path, body in data["files"].items()},
        network={url: body.encode("latin1")
                 for url, body in data["network"].items()},
        stdin=data["stdin"].encode("latin1"),
    )


def _encode_argv(argv: list[bytes] | None) -> list[str] | None:
    if argv is None:
        return None
    return [arg.decode("latin1") for arg in argv]


def _decode_argv(data: list[str] | None) -> list[bytes] | None:
    if data is None:
        return None
    return [arg.encode("latin1") for arg in data]


def encode_cell(cell: CellResult) -> dict:
    """Serialize a cell result to a JSON-able document."""
    report = cell.report
    return {
        "schema": CACHE_SCHEMA,
        "bomb": cell.bomb_id,
        "tool": cell.tool,
        "outcome": cell.outcome.value,
        "timings": dict(cell.timings),
        "timings_self": dict(cell.timings_self),
        "diagnostic": cell.diagnostic,
        "report": {
            "solved": report.solved,
            "solution": _encode_argv(report.solution),
            "solution_env": _encode_env(report.solution_env),
            "goal_claimed": report.goal_claimed,
            "claimed_inputs": [_encode_argv(claim)
                               for claim in report.claimed_inputs],
            "diagnostics": [
                {"kind": d.kind.value, "detail": d.detail, "pc": d.pc}
                for d in report.diagnostics
            ],
            "aborted": report.aborted,
            "elapsed": report.elapsed,
            "false_positive": report.false_positive,
        },
    }


def decode_cell(doc: dict, bomb: Bomb) -> CellResult:
    """Rebuild a cell result, re-reading the paper label from *bomb*."""
    rep = doc["report"]
    report = ToolReport(
        tool=doc["tool"],
        bomb_id=doc["bomb"],
        solved=rep["solved"],
        solution=_decode_argv(rep["solution"]),
        solution_env=_decode_env(rep["solution_env"]),
        goal_claimed=rep["goal_claimed"],
        claimed_inputs=[_decode_argv(claim) for claim in rep["claimed_inputs"]],
        diagnostics=DiagnosticLog([
            Diagnostic(DiagnosticKind(d["kind"]), d["detail"], d["pc"])
            for d in rep["diagnostics"]
        ]),
        aborted=rep["aborted"],
        elapsed=rep["elapsed"],
        false_positive=rep["false_positive"],
    )
    return CellResult(
        bomb_id=doc["bomb"],
        tool=doc["tool"],
        outcome=ErrorStage(doc["outcome"]),
        expected=bomb.expected.get(doc["tool"]),
        report=report,
        timings=dict(doc["timings"]),
        timings_self=dict(doc.get("timings_self", {})),
        diagnostic=doc["diagnostic"],
    )


class ResultStore:
    """Content-addressed store of cell results on the local filesystem.

    Forensic diagnoses (:class:`~repro.eval.explain.CellDiagnosis`) live
    under a sibling ``diagnoses/`` tree keyed by the same cell key, so
    explaining a campaign leaves one explanation per cached result.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self._objects = self.root / "objects"
        self._objects.mkdir(parents=True, exist_ok=True)
        self._diagnoses = self.root / "diagnoses"
        self._lifts = self.root / "lift"
        self._corpora = self.root / "corpus"
        self._smtlog = self.root / "smtlog"

    def _path(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    def _diagnosis_path(self, key: str) -> Path:
        return self._diagnoses / key[:2] / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self._objects.glob("*/*.json"))

    def get(self, key: str, bomb: Bomb) -> CellResult | None:
        """The stored cell for *key*, or None (counted as hit/miss)."""
        path = self._path(key)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            obs.count("service.cache_misses")
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            obs.count("service.cache_misses")
            return None
        obs.count("service.cache_hits")
        return decode_cell(doc, bomb)

    def put(self, key: str, cell: CellResult) -> None:
        """Store *cell* under *key* atomically (last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = json.dumps(encode_cell(cell), sort_keys=True,
                         separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                fp.write(doc)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.count("service.cache_stores")

    # -- persisted lift caches ---------------------------------------------

    def _lift_path(self, digest: str) -> Path:
        return self._lifts / digest[:2] / f"{digest}.json"

    def put_lift(self, digest: str, payload: dict) -> None:
        """Store an image's serialized lift cache (last writer wins)."""
        path = self._lift_path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                fp.write(doc)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.count("service.lift_stores")

    def get_lift(self, digest: str) -> dict | None:
        """The persisted lift payload for an image digest, or None."""
        try:
            return json.loads(
                self._lift_path(digest).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    # -- persisted fuzzing corpora -----------------------------------------

    def _corpus_path(self, key: str) -> Path:
        return self._corpora / key[:2] / f"{key}.json"

    def put_corpus(self, key: str, payload: dict) -> None:
        """Store a finished fuzz campaign's corpus and verdict."""
        path = self._corpus_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = json.dumps({"schema": CACHE_SCHEMA, **payload},
                         sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                fp.write(doc)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.count("service.corpus_stores")

    def get_corpus(self, key: str) -> dict | None:
        """The persisted campaign for *key*, or None."""
        try:
            doc = json.loads(
                self._corpus_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            return None
        return doc

    # -- captured solver queries (the SMT flight recorder) -----------------

    def _query_path(self, digest: str) -> Path:
        return self._smtlog / digest[:2] / f"{digest}.json"

    def _manifest_path(self, bomb: str, tool: str) -> Path:
        key = hashlib.sha256(f"{bomb}\x00{tool}".encode()).hexdigest()
        return self._smtlog / "manifests" / f"{key}.json"

    def put_query(self, digest: str, body: dict) -> bool:
        """Store one content-addressed query record.

        Returns True when the record was written, False when *digest*
        was already present (records are immutable by construction, so
        an existing digest is a cross-campaign dedup hit, not a
        conflict).
        """
        path = self._query_path(digest)
        if path.exists():
            obs.count("service.query_dedup")
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = json.dumps(body, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                fp.write(doc)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.count("service.query_stores")
        return True

    def get_query(self, digest: str) -> dict | None:
        """The stored query record for *digest*, or None."""
        try:
            return json.loads(
                self._query_path(digest).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    def query_digests(self) -> list[str]:
        """Every stored query digest (sorted; manifests excluded)."""
        return sorted(p.stem for p in self._smtlog.glob("??/*.json"))

    def put_query_manifest(self, bomb: str, tool: str,
                           payload: dict) -> None:
        """Store one cell's query occurrence stream (last writer wins)."""
        path = self._manifest_path(bomb, tool)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = json.dumps({"schema": CACHE_SCHEMA, "bomb": bomb,
                          "tool": tool, **payload},
                         sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                fp.write(doc)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.count("service.manifest_stores")

    def get_query_manifest(self, bomb: str, tool: str) -> dict | None:
        """The stored manifest for one (bomb, tool) cell, or None."""
        try:
            doc = json.loads(
                self._manifest_path(bomb, tool).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            return None
        return doc

    def query_manifests(self) -> list[dict]:
        """Every stored cell manifest, sorted by (bomb, tool); torn or
        stale-schema documents are skipped like any other miss."""
        docs = []
        for path in (self._smtlog / "manifests").glob("*.json"):
            try:
                doc = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if doc.get("schema") != CACHE_SCHEMA:
                continue
            docs.append(doc)
        docs.sort(key=lambda d: (d.get("bomb") or "", d.get("tool") or ""))
        return docs

    # -- forensic diagnoses ------------------------------------------------

    def put_diagnosis(self, key: str, diagnosis) -> None:
        """Store a cell's forensic diagnosis next to its result."""
        path = self._diagnosis_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = json.dumps({"schema": CACHE_SCHEMA, **diagnosis.to_json()},
                         sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fp:
                fp.write(doc)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        obs.count("service.diagnosis_stores")

    def get_diagnosis(self, key: str):
        """The stored diagnosis for *key*, or None."""
        from ..eval.explain import CellDiagnosis

        try:
            doc = json.loads(
                self._diagnosis_path(key).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if doc.get("schema") != CACHE_SCHEMA:
            return None
        return CellDiagnosis.from_json(doc)
