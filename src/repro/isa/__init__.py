"""RX64 instruction set architecture.

Public surface: the :class:`~repro.isa.instruction.Instruction` object
model, the opcode table, the register conventions, and binary
encode/decode.
"""

from .encoding import decode, encode
from .instruction import FReg, Imm, Instruction, Mem, Operand, Reg, Target
from .opcodes import (
    BLOCK_ENDERS,
    COND_BRANCHES,
    FLOAT_OPS,
    LOAD_INFO,
    MNEMONICS,
    OPSPEC,
    STORE_INFO,
    Op,
    instruction_size,
)
from .registers import (
    ARG_REGS,
    FP,
    NUM_FPRS,
    NUM_GPRS,
    RET_REG,
    SP,
    gpr_name,
    parse_fpr,
    parse_gpr,
)

__all__ = [
    "ARG_REGS",
    "BLOCK_ENDERS",
    "COND_BRANCHES",
    "FLOAT_OPS",
    "FP",
    "FReg",
    "Imm",
    "Instruction",
    "LOAD_INFO",
    "MNEMONICS",
    "Mem",
    "NUM_FPRS",
    "NUM_GPRS",
    "OPSPEC",
    "Op",
    "Operand",
    "RET_REG",
    "Reg",
    "SP",
    "STORE_INFO",
    "Target",
    "decode",
    "encode",
    "gpr_name",
    "instruction_size",
    "parse_fpr",
    "parse_gpr",
]
