"""Instruction and operand object model for RX64."""

from __future__ import annotations

from dataclasses import dataclass

from .opcodes import OPSPEC, Op, instruction_size
from .registers import gpr_name

MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class Reg:
    """General-purpose register operand."""

    index: int

    def __str__(self) -> str:
        return gpr_name(self.index)


@dataclass(frozen=True)
class FReg:
    """Floating-point register operand."""

    index: int

    def __str__(self) -> str:
        return f"f{self.index}"


@dataclass(frozen=True)
class Imm:
    """64-bit immediate operand (stored as an unsigned value)."""

    value: int

    def __post_init__(self):
        object.__setattr__(self, "value", self.value & MASK64)

    @property
    def signed(self) -> int:
        v = self.value
        return v - (1 << 64) if v >= (1 << 63) else v

    def __str__(self) -> str:
        s = self.signed
        if -4096 < s < 4096:
            return str(s)
        return f"0x{self.value:x}"


@dataclass(frozen=True)
class Mem:
    """Memory operand ``[base + disp]``."""

    base: int
    disp: int

    def __str__(self) -> str:
        if self.disp == 0:
            return f"[{gpr_name(self.base)}]"
        sign = "+" if self.disp >= 0 else "-"
        return f"[{gpr_name(self.base)}{sign}{abs(self.disp)}]"


@dataclass(frozen=True)
class Target:
    """Branch target operand holding an absolute virtual address."""

    addr: int

    def __str__(self) -> str:
        return f"0x{self.addr:x}"


Operand = Reg | FReg | Imm | Mem | Target


@dataclass(frozen=True)
class Instruction:
    """One decoded RX64 instruction located at a virtual address."""

    op: Op
    operands: tuple[Operand, ...]
    addr: int = 0

    @property
    def size(self) -> int:
        return instruction_size(self.op)

    @property
    def next_addr(self) -> int:
        return self.addr + self.size

    def __str__(self) -> str:
        mnem = self.op.name.lower()
        if not self.operands:
            return mnem
        return f"{mnem} {', '.join(str(o) for o in self.operands)}"

    def validate(self) -> None:
        """Check the operand tuple matches the opcode's signature."""
        spec = OPSPEC[self.op]
        if len(spec) != len(self.operands):
            raise ValueError(f"{self.op.name}: expected {len(spec)} operands")
        for kind, operand in zip(spec, self.operands):
            expected = {"R": Reg, "F": FReg, "I": Imm, "M": Mem, "J": Target}[kind]
            if not isinstance(operand, expected):
                raise ValueError(
                    f"{self.op.name}: operand {operand!r} is not {expected.__name__}"
                )
