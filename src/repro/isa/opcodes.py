"""RX64 opcode table.

Each opcode has a one-byte code and a fixed operand signature.  Operand
kinds (used by the encoder, decoder, assembler and lifters):

====  =======================================  ========
kind  meaning                                  encoding
====  =======================================  ========
``R``  general-purpose register                1 byte
``F``  floating-point register                 1 byte
``I``  64-bit immediate (or absolute address)  8 bytes LE
``M``  memory operand ``[reg + disp]``         1 + 4 bytes (disp: signed LE)
``J``  branch target (encoded rel32)           4 bytes signed LE
====  =======================================  ========
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """All RX64 opcodes."""

    NOP = 0x00
    MOV = 0x01      # mov rd, rs
    MOVI = 0x02     # movi rd, imm64
    LD = 0x03       # ld rd, [rb+disp]      (64-bit)
    LD1U = 0x04
    LD1S = 0x05
    LD2U = 0x06
    LD2S = 0x07
    LD4U = 0x08
    LD4S = 0x09
    ST = 0x0A       # st [rb+disp], rs      (64-bit)
    ST1 = 0x0B
    ST2 = 0x0C
    ST4 = 0x0D
    LEA = 0x0E      # lea rd, [rb+disp]

    ADD = 0x10
    ADDI = 0x11
    SUB = 0x12
    SUBI = 0x13
    MUL = 0x14
    MULI = 0x15
    UDIV = 0x16
    SDIV = 0x17
    UREM = 0x18
    SREM = 0x19
    AND = 0x1A
    ANDI = 0x1B
    OR = 0x1C
    ORI = 0x1D
    XOR = 0x1E
    XORI = 0x1F
    SHL = 0x20
    SHLI = 0x21
    SHR = 0x22
    SHRI = 0x23
    SAR = 0x24
    SARI = 0x25
    NOT = 0x26
    NEG = 0x27

    CMP = 0x28
    CMPI = 0x29
    TEST = 0x2A

    JMP = 0x30
    JZ = 0x31
    JNZ = 0x32
    JL = 0x33
    JLE = 0x34
    JG = 0x35
    JGE = 0x36
    JB = 0x37
    JBE = 0x38
    JA = 0x39
    JAE = 0x3A
    JMPR = 0x3B     # jmpr rs — indirect jump (the symbolic-jump vector)
    CALL = 0x3C
    CALLR = 0x3D
    RET = 0x3E

    PUSH = 0x40
    POP = 0x41
    SYSCALL = 0x42
    HLT = 0x43

    FLD = 0x50      # fld fd, [rb+disp]     (64-bit raw)
    FST = 0x51      # fst [rb+disp], fs
    FMOV = 0x52     # fmov fd, fs
    FMOVR = 0x53    # fmovr fd, rs  (raw bits gpr -> fpr)
    RMOVF = 0x54    # rmovf rd, fs  (raw bits fpr -> gpr)
    FADDS = 0x55
    FSUBS = 0x56
    FMULS = 0x57
    FDIVS = 0x58
    FCMPS = 0x59
    FADDD = 0x5A
    FSUBD = 0x5B
    FMULD = 0x5C
    FDIVD = 0x5D
    FCMPD = 0x5E
    CVTIFS = 0x5F   # cvtifs fd, rs  (signed int64 -> f32)
    CVTFIS = 0x60   # cvtfis rd, fs  (f32 -> signed int64, truncating)
    CVTIFD = 0x61   # cvtifd fd, rs  (signed int64 -> f64)
    CVTFID = 0x62   # cvtfid rd, fs  (f64 -> signed int64, truncating)
    CVTSD = 0x63    # cvtsd fd, fs   (f32 -> f64)
    CVTDS = 0x64    # cvtds fd, fs   (f64 -> f32)


#: Operand signature per opcode.
OPSPEC: dict[Op, str] = {
    Op.NOP: "",
    Op.MOV: "RR",
    Op.MOVI: "RI",
    Op.LD: "RM",
    Op.LD1U: "RM",
    Op.LD1S: "RM",
    Op.LD2U: "RM",
    Op.LD2S: "RM",
    Op.LD4U: "RM",
    Op.LD4S: "RM",
    Op.ST: "MR",
    Op.ST1: "MR",
    Op.ST2: "MR",
    Op.ST4: "MR",
    Op.LEA: "RM",
    Op.ADD: "RR",
    Op.ADDI: "RI",
    Op.SUB: "RR",
    Op.SUBI: "RI",
    Op.MUL: "RR",
    Op.MULI: "RI",
    Op.UDIV: "RR",
    Op.SDIV: "RR",
    Op.UREM: "RR",
    Op.SREM: "RR",
    Op.AND: "RR",
    Op.ANDI: "RI",
    Op.OR: "RR",
    Op.ORI: "RI",
    Op.XOR: "RR",
    Op.XORI: "RI",
    Op.SHL: "RR",
    Op.SHLI: "RI",
    Op.SHR: "RR",
    Op.SHRI: "RI",
    Op.SAR: "RR",
    Op.SARI: "RI",
    Op.NOT: "R",
    Op.NEG: "R",
    Op.CMP: "RR",
    Op.CMPI: "RI",
    Op.TEST: "RR",
    Op.JMP: "J",
    Op.JZ: "J",
    Op.JNZ: "J",
    Op.JL: "J",
    Op.JLE: "J",
    Op.JG: "J",
    Op.JGE: "J",
    Op.JB: "J",
    Op.JBE: "J",
    Op.JA: "J",
    Op.JAE: "J",
    Op.JMPR: "R",
    Op.CALL: "J",
    Op.CALLR: "R",
    Op.RET: "",
    Op.PUSH: "R",
    Op.POP: "R",
    Op.SYSCALL: "",
    Op.HLT: "",
    Op.FLD: "FM",
    Op.FST: "MF",
    Op.FMOV: "FF",
    Op.FMOVR: "FR",
    Op.RMOVF: "RF",
    Op.FADDS: "FF",
    Op.FSUBS: "FF",
    Op.FMULS: "FF",
    Op.FDIVS: "FF",
    Op.FCMPS: "FF",
    Op.FADDD: "FF",
    Op.FSUBD: "FF",
    Op.FMULD: "FF",
    Op.FDIVD: "FF",
    Op.FCMPD: "FF",
    Op.CVTIFS: "FR",
    Op.CVTFIS: "RF",
    Op.CVTIFD: "FR",
    Op.CVTFID: "RF",
    Op.CVTSD: "FF",
    Op.CVTDS: "FF",
}

#: Operand kind -> encoded byte size. ``M`` is base reg + signed disp32.
OPERAND_SIZE = {"R": 1, "F": 1, "I": 8, "M": 5, "J": 4}

#: Conditional branch opcodes (excluding unconditional JMP/JMPR).
COND_BRANCHES = frozenset({
    Op.JZ, Op.JNZ, Op.JL, Op.JLE, Op.JG, Op.JGE, Op.JB, Op.JBE, Op.JA, Op.JAE,
})

#: Opcodes that end a basic block.
BLOCK_ENDERS = COND_BRANCHES | {Op.JMP, Op.JMPR, Op.CALL, Op.CALLR, Op.RET, Op.HLT}

#: Floating-point opcodes — the set real-world lifters circa 2016/2017
#: commonly lacked (the paper reports Triton missing ``cvtsi2sd`` and
#: ``ucomisd``; tool profiles exclude the analogous RX64 ops).
FLOAT_OPS = frozenset({
    Op.FLD, Op.FST, Op.FMOV, Op.FMOVR, Op.RMOVF,
    Op.FADDS, Op.FSUBS, Op.FMULS, Op.FDIVS, Op.FCMPS,
    Op.FADDD, Op.FSUBD, Op.FMULD, Op.FDIVD, Op.FCMPD,
    Op.CVTIFS, Op.CVTFIS, Op.CVTIFD, Op.CVTFID, Op.CVTSD, Op.CVTDS,
})

#: Load opcodes -> (byte width, signed).
LOAD_INFO = {
    Op.LD: (8, False),
    Op.LD1U: (1, False),
    Op.LD1S: (1, True),
    Op.LD2U: (2, False),
    Op.LD2S: (2, True),
    Op.LD4U: (4, False),
    Op.LD4S: (4, True),
}

#: Store opcodes -> byte width.
STORE_INFO = {Op.ST: 8, Op.ST1: 1, Op.ST2: 2, Op.ST4: 4}


def instruction_size(op: Op) -> int:
    """Encoded size in bytes of an instruction with opcode *op*."""
    return 1 + sum(OPERAND_SIZE[k] for k in OPSPEC[op])


#: Assembler mnemonic -> opcode (lower-case mnemonics).
MNEMONICS: dict[str, Op] = {op.name.lower(): op for op in Op}
# Friendly aliases.
MNEMONICS["je"] = Op.JZ
MNEMONICS["jne"] = Op.JNZ
