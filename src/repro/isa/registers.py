"""Register file definition for the RX64 architecture.

RX64 is the 64-bit register machine all logic bombs in this repository
are compiled to.  It plays the role x86-64 plays in the paper: it has
enough surface (stack traffic, indirect jumps, a flags register,
floating-point conversion/compare instructions, syscalls) for every
challenge in the paper's Table I to arise naturally in compiled code.

General-purpose registers ``r0``..``r15`` are 64-bit.  By convention:

===========  =====================================================
``r0``       syscall number / syscall+function return value
``r1..r6``   function / syscall arguments
``r7..r12``  caller-saved temporaries
``r13``      callee-saved scratch
``r14``      frame pointer (alias ``fp``)
``r15``      stack pointer (alias ``sp``)
===========  =====================================================

Floating-point registers ``f0``..``f7`` hold raw 64-bit patterns; the
``*S`` instructions interpret the low 32 bits as IEEE-754 single
precision and the ``*D`` instructions interpret all 64 bits as double
precision.
"""

from __future__ import annotations

NUM_GPRS = 16
NUM_FPRS = 8

#: Architectural aliases accepted by the assembler and printed by the
#: disassembler.
GPR_ALIASES = {"fp": 14, "sp": 15, "rv": 0}

GPR_NAMES = [f"r{i}" for i in range(NUM_GPRS)]
FPR_NAMES = [f"f{i}" for i in range(NUM_FPRS)]

#: Registers a called function must preserve.
CALLEE_SAVED = (13, 14, 15)

#: Registers used to pass the first six integer/pointer arguments.
ARG_REGS = (1, 2, 3, 4, 5, 6)

#: Register holding an integer return value.
RET_REG = 0

#: Floating-point argument / return registers.
FARG_REGS = (0, 1, 2, 3)
FRET_REG = 0

SP = 15
FP = 14


def gpr_name(index: int) -> str:
    """Canonical printed name for general-purpose register *index*."""
    if index == SP:
        return "sp"
    if index == FP:
        return "fp"
    return f"r{index}"


def parse_gpr(name: str) -> int:
    """Parse a general-purpose register name (``r3``, ``sp``, ``fp``).

    Returns the register index, or raises ``ValueError``.
    """
    name = name.lower()
    if name in GPR_ALIASES:
        return GPR_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_GPRS:
            return idx
    raise ValueError(f"unknown register {name!r}")


def parse_fpr(name: str) -> int:
    """Parse a floating-point register name (``f0``..``f7``)."""
    name = name.lower()
    if name.startswith("f") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_FPRS:
            return idx
    raise ValueError(f"unknown float register {name!r}")
