"""Binary encoding and decoding of RX64 instructions.

The encoding is byte-oriented: one opcode byte followed by the operands
in signature order.  Branch targets are encoded as a signed 32-bit
offset relative to the *end* of the instruction (like x86 rel32), so
code is position-dependent only through absolute ``MOVI`` relocations.
"""

from __future__ import annotations

import struct

from ..errors import VMError
from .instruction import FReg, Imm, Instruction, Mem, Reg, Target
from .opcodes import OPSPEC, Op, instruction_size
from .registers import NUM_FPRS, NUM_GPRS

MASK64 = (1 << 64) - 1


def encode(instr: Instruction) -> bytes:
    """Encode *instr* (whose ``addr`` must be set for branch operands)."""
    instr.validate()
    out = bytearray([int(instr.op)])
    end = instr.addr + instruction_size(instr.op)
    for kind, operand in zip(OPSPEC[instr.op], instr.operands):
        if kind == "R":
            out.append(operand.index)
        elif kind == "F":
            out.append(operand.index)
        elif kind == "I":
            out += struct.pack("<Q", operand.value & MASK64)
        elif kind == "M":
            out.append(operand.base)
            out += struct.pack("<i", operand.disp)
        elif kind == "J":
            rel = operand.addr - end
            out += struct.pack("<i", rel)
    return bytes(out)


def decode(data: bytes | memoryview, addr: int) -> Instruction:
    """Decode one instruction from *data* (a buffer starting at *addr*).

    Raises :class:`VMError` on an invalid opcode or truncated buffer —
    the concrete VM surfaces this as an illegal-instruction fault.
    """
    if len(data) < 1:
        raise VMError(f"decode: empty buffer at 0x{addr:x}")
    code = data[0]
    try:
        op = Op(code)
    except ValueError:
        raise VMError(f"decode: invalid opcode 0x{code:02x} at 0x{addr:x}") from None
    size = instruction_size(op)
    if len(data) < size:
        raise VMError(f"decode: truncated instruction at 0x{addr:x}")
    pos = 1
    operands: list = []
    end = addr + size
    for kind in OPSPEC[op]:
        if kind == "R":
            idx = data[pos]
            pos += 1
            if idx >= NUM_GPRS:
                raise VMError(f"decode: bad gpr {idx} at 0x{addr:x}")
            operands.append(Reg(idx))
        elif kind == "F":
            idx = data[pos]
            pos += 1
            if idx >= NUM_FPRS:
                raise VMError(f"decode: bad fpr {idx} at 0x{addr:x}")
            operands.append(FReg(idx))
        elif kind == "I":
            (value,) = struct.unpack_from("<Q", data, pos)
            pos += 8
            operands.append(Imm(value))
        elif kind == "M":
            base = data[pos]
            if base >= NUM_GPRS:
                raise VMError(f"decode: bad base reg {base} at 0x{addr:x}")
            (disp,) = struct.unpack_from("<i", data, pos + 1)
            pos += 5
            operands.append(Mem(base, disp))
        elif kind == "J":
            (rel,) = struct.unpack_from("<i", data, pos)
            pos += 4
            operands.append(Target((end + rel) & MASK64))
    return Instruction(op, tuple(operands), addr)
