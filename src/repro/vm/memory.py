"""Sparse flat memory for the concrete VM.

Memory is a zero-filled 64-bit address space backed by 4 KiB pages
allocated on first touch.  ``fork`` support relies on :meth:`Memory.clone`
performing a deep copy of all touched pages (copy-on-write is an
optimization the study does not need; bombs touch a few dozen pages).
"""

from __future__ import annotations

import struct

PAGE_SIZE = 0x1000
PAGE_MASK = PAGE_SIZE - 1
MASK64 = (1 << 64) - 1


class Memory:
    """Byte-addressable sparse memory."""

    __slots__ = ("_pages",)

    def __init__(self):
        self._pages: dict[int, bytearray] = {}

    # -- raw byte access ------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        addr &= MASK64
        out = bytearray(size)
        pos = 0
        while pos < size:
            page_no, off = divmod(addr + pos, PAGE_SIZE)
            chunk = min(size - pos, PAGE_SIZE - off)
            page = self._pages.get(page_no)
            if page is not None:
                out[pos : pos + chunk] = page[off : off + chunk]
            pos += chunk
        return bytes(out)

    def write(self, addr: int, data: bytes | bytearray) -> None:
        addr &= MASK64
        pos = 0
        size = len(data)
        while pos < size:
            page_no, off = divmod(addr + pos, PAGE_SIZE)
            chunk = min(size - pos, PAGE_SIZE - off)
            page = self._pages.get(page_no)
            if page is None:
                page = self._pages[page_no] = bytearray(PAGE_SIZE)
            page[off : off + chunk] = data[pos : pos + chunk]
            pos += chunk

    # -- integer helpers --------------------------------------------------

    def read_uint(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little")

    def read_sint(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read(addr, size), "little", signed=True)

    def write_uint(self, addr: int, value: int, size: int) -> None:
        self.write(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_u64(self, addr: int) -> int:
        return self.read_uint(addr, 8)

    def write_u64(self, addr: int, value: int) -> None:
        self.write_uint(addr, value, 8)

    def read_f64(self, addr: int) -> float:
        return struct.unpack("<d", self.read(addr, 8))[0]

    # -- strings -----------------------------------------------------------

    def read_cstr(self, addr: int, limit: int = 4096) -> bytes:
        """Read a NUL-terminated string (without the terminator)."""
        out = bytearray()
        while len(out) < limit:
            byte = self.read(addr + len(out), 1)[0]
            if byte == 0:
                break
            out.append(byte)
        return bytes(out)

    def write_cstr(self, addr: int, text: bytes) -> None:
        self.write(addr, text + b"\0")

    # -- lifecycle ----------------------------------------------------------

    def clone(self) -> "Memory":
        """Deep copy (used by ``fork``)."""
        other = Memory()
        other._pages = {no: bytearray(page) for no, page in self._pages.items()}
        return other

    @property
    def touched_pages(self) -> int:
        return len(self._pages)
