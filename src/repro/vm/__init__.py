"""Concrete RX64 virtual machine with an in-VM OS layer."""

from .cpu import Context, Flags, alu, bits_to_f32, bits_to_f64, f32_round, f32_to_bits, f64_to_bits, s64, sext, u64
from .env import Environment
from .filesystem import FileSystem, Pipe
from .machine import Machine, Process, RunResult, Thread, run_image
from .memory import Memory
from .syscalls import BOMB_EXIT_CODE, SIGFPE, Sys

__all__ = [
    "BOMB_EXIT_CODE",
    "Context",
    "Environment",
    "FileSystem",
    "Flags",
    "Machine",
    "Memory",
    "Pipe",
    "Process",
    "RunResult",
    "SIGFPE",
    "Sys",
    "Thread",
    "alu",
    "bits_to_f32",
    "bits_to_f64",
    "f32_round",
    "f32_to_bits",
    "f64_to_bits",
    "run_image",
    "s64",
    "sext",
    "u64",
    "run_image",
]
