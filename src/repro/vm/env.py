"""Execution environment for a VM run.

The environment bundles every input channel *other than* ``argv``: the
simulated wall clock, process id, the in-memory filesystem's initial
contents, simulated web content, and the kernel "magic" value used by
the symbolic-syscall bombs.

The paper's Es0 challenge is exactly that real tools only declare
``argv`` symbolic; the environment is the part they miss.  Bombs whose
trigger lives in the environment ship an *oracle environment* instead
of (or in addition to) an oracle ``argv``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Environment:
    """Non-argv inputs to a concrete execution."""

    #: Value returned by ``SYS_TIME`` (seconds since epoch, simulated).
    time_value: int = 1_700_000_000
    #: Value returned by ``SYS_GETPID``.
    pid: int = 4242
    #: Value returned by ``SYS_GETMAGIC``.
    magic: int = 42
    #: Initial filesystem contents: path -> bytes.
    files: dict[str, bytes] = field(default_factory=dict)
    #: Simulated web: url -> response body (missing url => HTTP_GET fails).
    network: dict[str, bytes] = field(default_factory=dict)
    #: Bytes available on the program's standard input.
    stdin: bytes = b""

    def clone(self) -> "Environment":
        return Environment(
            time_value=self.time_value,
            pid=self.pid,
            magic=self.magic,
            files=dict(self.files),
            network=dict(self.network),
            stdin=self.stdin,
        )

    def merged(self, other: "Environment | None") -> "Environment":
        """Overlay *other* (an oracle environment) onto this one."""
        if other is None:
            return self.clone()
        merged = other.clone()
        for path, data in self.files.items():
            merged.files.setdefault(path, data)
        for url, data in self.network.items():
            merged.network.setdefault(url, data)
        return merged
