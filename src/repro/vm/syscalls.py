"""RX64 system-call numbers and metadata.

Convention: syscall number in ``r0``, arguments in ``r1``..``r5``,
return value in ``r0``.  Negative returns signal errors (``-1``).

``SYS_BOMB`` is the oracle: executing it marks the logic bomb as
triggered.  All bombs call it through the ``bomb`` library routine, so
analysis tools can direct their search at the ``bomb`` symbol exactly
the way the paper's Angr scripts perform directed symbolic execution
toward the bomb path.
"""

from __future__ import annotations

import enum


class Sys(enum.IntEnum):
    EXIT = 0
    READ = 1
    WRITE = 2
    OPEN = 3
    CLOSE = 4
    UNLINK = 5
    TIME = 6
    GETPID = 7
    FORK = 8
    PIPE = 9
    WAITPID = 10
    THREAD_CREATE = 11
    THREAD_JOIN = 12
    YIELD = 13
    HTTP_GET = 14
    BRK = 15
    SIGNAL = 16
    MSGSEND = 17
    MSGRECV = 18
    GETMAGIC = 19
    LSEEK = 20
    BOMB = 60


#: open(2) flag bits.
O_RDONLY = 0x0
O_WRONLY = 0x1
O_RDWR = 0x2
O_CREAT = 0x40
O_EXCL = 0x80
O_TRUNC = 0x200
O_APPEND = 0x400

#: Signal numbers.
SIGFPE = 8
SIGSEGV = 11

#: Exit code a process terminates with after the bomb syscall.
BOMB_EXIT_CODE = 42

#: Magic addresses intercepted by the machine (never mapped).
SIGRETURN_ADDR = 0xFFFF_F000
THREAD_EXIT_ADDR = 0xFFFF_E000
