"""In-memory filesystem and file-descriptor objects for the VM kernel."""

from __future__ import annotations

from dataclasses import dataclass, field

from .syscalls import O_APPEND, O_CREAT, O_EXCL, O_RDWR, O_TRUNC, O_WRONLY


class FileSystem:
    """A flat, in-memory filesystem shared by all processes of a machine."""

    def __init__(self, initial: dict[str, bytes] | None = None):
        self.files: dict[str, bytearray] = {
            path: bytearray(data) for path, (data) in (initial or {}).items()
        }

    def exists(self, path: str) -> bool:
        return path in self.files

    def open(self, path: str, flags: int) -> "FileHandle | None":
        """Open *path*; returns None on failure (missing file, EXCL clash)."""
        exists = path in self.files
        if not exists:
            if not flags & O_CREAT:
                return None
            self.files[path] = bytearray()
        elif flags & O_CREAT and flags & O_EXCL:
            return None
        if flags & O_TRUNC:
            self.files[path] = bytearray()
        handle = FileHandle(fs=self, path=path, flags=flags)
        if flags & O_APPEND:
            handle.pos = len(self.files[path])
        return handle

    def unlink(self, path: str) -> int:
        if path in self.files:
            del self.files[path]
            return 0
        return -1

    def read_all(self, path: str) -> bytes:
        return bytes(self.files.get(path, b""))


@dataclass
class FileHandle:
    """An open regular file (one seek position per open)."""

    fs: FileSystem
    path: str
    flags: int
    pos: int = 0

    @property
    def writable(self) -> bool:
        return bool(self.flags & (O_WRONLY | O_RDWR | O_APPEND))

    @property
    def readable(self) -> bool:
        return not self.flags & O_WRONLY

    def read(self, size: int) -> bytes:
        data = self.fs.files.get(self.path)
        if data is None or not self.readable:
            return b""
        chunk = bytes(data[self.pos : self.pos + size])
        self.pos += len(chunk)
        return chunk

    def write(self, data: bytes) -> int:
        if not self.writable:
            return -1
        buf = self.fs.files.setdefault(self.path, bytearray())
        end = self.pos + len(data)
        if end > len(buf):
            buf.extend(b"\0" * (end - len(buf)))
        buf[self.pos : end] = data
        self.pos = end
        return len(data)

    def seek(self, pos: int) -> int:
        self.pos = max(0, pos)
        return self.pos


@dataclass
class Pipe:
    """A unidirectional kernel pipe shared between processes."""

    buffer: bytearray = field(default_factory=bytearray)
    writers: int = 1
    readers: int = 1

    def read(self, size: int) -> bytes | None:
        """Return data, b"" on EOF, or None when the caller must block."""
        if self.buffer:
            chunk = bytes(self.buffer[:size])
            del self.buffer[:size]
            return chunk
        if self.writers == 0:
            return b""
        return None

    def write(self, data: bytes) -> int:
        if self.readers == 0:
            return -1
        self.buffer.extend(data)
        return len(data)


@dataclass
class PipeEnd:
    """One end of a pipe, stored in a process fd table."""

    pipe: Pipe
    write_end: bool

    def close(self) -> None:
        if self.write_end:
            self.pipe.writers -= 1
        else:
            self.pipe.readers -= 1


@dataclass
class StdStream:
    """A standard stream (stdin/stdout/stderr) backed by byte buffers."""

    name: str
    out_buffer: bytearray | None = None  # for stdout/stderr
    in_buffer: bytearray | None = None   # for stdin

    def write(self, data: bytes) -> int:
        if self.out_buffer is None:
            return -1
        self.out_buffer.extend(data)
        return len(data)

    def read(self, size: int) -> bytes:
        if self.in_buffer is None:
            return b""
        chunk = bytes(self.in_buffer[:size])
        del self.in_buffer[:size]
        return chunk
