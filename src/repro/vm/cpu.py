"""Scalar semantics shared by the concrete VM and the analysis engines.

Pure helper functions over Python ints implementing RX64's ALU, flag
and floating-point behaviour.  Keeping these in one module guarantees
the concrete machine and every symbolic engine's concrete-evaluation
path agree bit-for-bit (the engines' test oracles depend on this).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

from ..errors import VMError
from ..isa import NUM_FPRS, NUM_GPRS

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63


def u64(value: int) -> int:
    return value & MASK64


def s64(value: int) -> int:
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


def sext(value: int, bits: int) -> int:
    """Sign-extend *bits*-wide *value* to 64 bits (unsigned repr)."""
    value &= (1 << bits) - 1
    if value & (1 << (bits - 1)):
        value |= MASK64 ^ ((1 << bits) - 1)
    return value


# -- IEEE-754 helpers ------------------------------------------------------

def bits_to_f64(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & MASK64))[0]


def f64_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_f32(bits: int) -> float:
    """Interpret the low 32 bits as IEEE single and widen to Python float."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def f32_to_bits(value: float) -> int:
    """Round *value* to IEEE single precision and return its 32-bit pattern."""
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def f32_round(value: float) -> float:
    """Round a Python float to the nearest representable IEEE single."""
    return bits_to_f32(f32_to_bits(value))


def f64_div(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf if (a > 0) == (math.copysign(1.0, b) > 0) else -math.inf
    return a / b


def f64_to_i64(value: float) -> int:
    """Truncating float->int conversion with x86-style saturation."""
    if math.isnan(value):
        return SIGN64
    if value >= 2.0**63:
        return SIGN64  # x86 returns INT_MIN on overflow
    if value <= -(2.0**63) - 1:
        return SIGN64
    return u64(int(value))


# -- flags ------------------------------------------------------------------

@dataclass
class Flags:
    """ZF/SF/CF/OF condition codes."""

    zf: bool = False
    sf: bool = False
    cf: bool = False
    of: bool = False

    def set_logic(self, result: int) -> None:
        """Flag update for AND/OR/XOR/TEST/NOT/shifts (CF=OF=0)."""
        result &= MASK64
        self.zf = result == 0
        self.sf = bool(result & SIGN64)
        self.cf = False
        self.of = False

    def set_add(self, a: int, b: int, result: int) -> None:
        a, b = u64(a), u64(b)
        result_full = a + b
        result &= MASK64
        self.zf = result == 0
        self.sf = bool(result & SIGN64)
        self.cf = result_full > MASK64
        self.of = ((a ^ result) & (b ^ result) & SIGN64) != 0

    def set_sub(self, a: int, b: int, result: int) -> None:
        a, b = u64(a), u64(b)
        result &= MASK64
        self.zf = result == 0
        self.sf = bool(result & SIGN64)
        self.cf = a < b
        self.of = ((a ^ b) & (a ^ result) & SIGN64) != 0

    def set_fcmp(self, a: float, b: float) -> None:
        """ucomisd-style compare: ZF/CF encode the ordering."""
        if math.isnan(a) or math.isnan(b):
            self.zf = self.cf = True
        else:
            self.zf = a == b
            self.cf = a < b
        self.sf = False
        self.of = False

    def condition(self, name: str) -> bool:
        """Evaluate a branch condition (jz/jnz/jl/jle/jg/jge/jb/jbe/ja/jae)."""
        zf, sf, cf, of = self.zf, self.sf, self.cf, self.of
        table = {
            "jz": zf,
            "jnz": not zf,
            "jl": sf != of,
            "jle": zf or (sf != of),
            "jg": not zf and (sf == of),
            "jge": sf == of,
            "jb": cf,
            "jbe": cf or zf,
            "ja": not cf and not zf,
            "jae": not cf,
        }
        return table[name]

    def snapshot(self) -> tuple[bool, bool, bool, bool]:
        return (self.zf, self.sf, self.cf, self.of)

    def restore(self, snap: tuple[bool, bool, bool, bool]) -> None:
        self.zf, self.sf, self.cf, self.of = snap


# -- ALU --------------------------------------------------------------------

def alu(op_name: str, a: int, b: int, flags: Flags | None = None) -> int:
    """Compute a 64-bit ALU result and optionally update *flags*.

    *op_name* is the lower-case base mnemonic without an ``i`` suffix
    (``add``, ``sub``, ``mul``, ``udiv``, ``sdiv``, ``urem``, ``srem``,
    ``and``, ``or``, ``xor``, ``shl``, ``shr``, ``sar``).

    Division by zero raises :class:`VMError` carrying ``signo=8`` —
    the machine converts it into a SIGFPE delivery.
    """
    a, b = u64(a), u64(b)
    if op_name == "add":
        result = u64(a + b)
        if flags:
            flags.set_add(a, b, result)
        return result
    if op_name == "sub":
        result = u64(a - b)
        if flags:
            flags.set_sub(a, b, result)
        return result
    if op_name == "mul":
        result = u64(a * b)
        if flags:
            flags.set_logic(result)
        return result
    if op_name in ("udiv", "sdiv", "urem", "srem"):
        if b == 0:
            err = VMError("integer division by zero")
            err.signo = 8
            raise err
        if op_name == "udiv":
            result = a // b
        elif op_name == "urem":
            result = a % b
        else:
            sa, sb = s64(a), s64(b)
            quotient = abs(sa) // abs(sb)
            if (sa < 0) != (sb < 0):
                quotient = -quotient
            if op_name == "sdiv":
                result = u64(quotient)
            else:
                result = u64(sa - quotient * sb)
        if flags:
            flags.set_logic(result)
        return u64(result)
    if op_name == "and":
        result = a & b
    elif op_name == "or":
        result = a | b
    elif op_name == "xor":
        result = a ^ b
    elif op_name == "shl":
        result = u64(a << (b & 63))
    elif op_name == "shr":
        result = a >> (b & 63)
    elif op_name == "sar":
        result = u64(s64(a) >> (b & 63))
    else:  # pragma: no cover
        raise VMError(f"unknown alu op {op_name}")
    if flags:
        flags.set_logic(result)
    return result


# -- thread context ----------------------------------------------------------

@dataclass
class Context:
    """Architectural state of one hardware thread."""

    pc: int = 0
    regs: list[int] = field(default_factory=lambda: [0] * NUM_GPRS)
    fregs: list[int] = field(default_factory=lambda: [0] * NUM_FPRS)
    flags: Flags = field(default_factory=Flags)

    def clone(self) -> "Context":
        other = Context(self.pc, list(self.regs), list(self.fregs), Flags())
        other.flags.restore(self.flags.snapshot())
        return other
