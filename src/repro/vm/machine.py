"""The concrete RX64 machine: CPU loop, kernel, processes and threads.

One :class:`Machine` executes one REXF image under a given
:class:`~repro.vm.env.Environment`.  It provides the whole OS surface
the logic bombs need — files, pipes, fork, threads, signals, a clock, a
simulated network — and the hook points the tracing layer uses to play
the role Intel Pin plays in the paper (instruction records, syscall
records, signal-delivery records).

Scheduling is deterministic: threads run round-robin in ``(pid, tid)``
order with a fixed instruction quantum, so a given (image, argv, env)
triple always produces the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .. import obs
from ..obs import profile
from ..binfmt import Image
from ..errors import VMError
from ..isa import (
    COND_BRANCHES,
    LOAD_INFO,
    STORE_INFO,
    FReg,
    Imm,
    Instruction,
    Mem,
    Op,
    Reg,
    Target,
    decode,
)
from . import cpu
from .cpu import Context, bits_to_f32, bits_to_f64, f32_round, f32_to_bits, f64_div, f64_to_bits, f64_to_i64, s64, u64
from .env import Environment
from .filesystem import FileHandle, FileSystem, Pipe, PipeEnd, StdStream
from .syscalls import (
    BOMB_EXIT_CODE,
    SIGFPE,
    SIGRETURN_ADDR,
    THREAD_EXIT_ADDR,
    Sys,
)

QUANTUM = 60
STACK_TOP = 0x7FF0_0000
STACK_RESERVE = 0x10_0000
_BLOCK = object()  # sentinel: syscall must retry after blocking
# Return address used by call_function(); never a valid code address, and
# checked *before* stepping so the sentinel is never fetched.
CALL_RETURN_ADDR = 0xCA11_0000
# Ops that end a basic block: every (src, dst) pair they produce is an
# edge for coverage purposes, including the fallthrough side of a
# conditional branch.
_EDGE_OPS = frozenset({Op.JMP, Op.JMPR, Op.CALL, Op.CALLR, Op.RET}) | COND_BRANCHES


@dataclass
class Thread:
    """One schedulable thread inside a process."""

    tid: int
    ctx: Context
    state: str = "run"  # run | blocked | dead
    wake: Callable[[], bool] | None = None
    sig_frames: list[tuple[Context, int]] = field(default_factory=list)


class Process:
    """One process: private memory, fd table, mailbox, signal handlers."""

    def __init__(self, pid: int, memory, parent: int | None = None):
        self.pid = pid
        self.memory = memory
        self.parent = parent
        self.threads: list[Thread] = []
        self.fds: dict[int, object] = {}
        self.next_fd = 3
        self.mailbox: list[int] = []
        self.sig_handlers: dict[int, int] = {}
        self.brk = 0
        self.alive = True
        self.exit_code: int | None = None

    def alloc_fd(self, handle) -> int:
        fd = self.next_fd
        self.next_fd += 1
        self.fds[fd] = handle
        return fd

    def live_threads(self) -> list[Thread]:
        return [t for t in self.threads if t.state != "dead"]


@dataclass
class RunResult:
    """Outcome of a machine run."""

    exit_code: int | None
    bomb_triggered: bool
    steps: int
    stdout: bytes
    timed_out: bool = False
    fault: str | None = None


class Machine:
    """A concrete RX64 machine executing one image."""

    def __init__(self, image: Image, argv: list[bytes], env: Environment | None = None):
        self.image = image
        self.env = env or Environment()
        self.fs = FileSystem(self.env.files)
        self.processes: dict[int, Process] = {}
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.bomb_triggered = False
        self.steps = 0
        self._next_pid = self.env.pid
        self._next_tid = 1
        self._decode_cache: dict[int, Instruction] = {}
        # Fast rejection bounds for decode-cache invalidation on stores
        # (self-modifying code): only writes into an executable section
        # can make a cached decode stale.
        ranges = image.code_ranges()
        self._code_lo = min((lo for lo, _ in ranges), default=0)
        self._code_hi = max((hi for _, hi in ranges), default=0)
        # Per-opcode/per-syscall tallies exist only while a recorder is
        # installed; the hot step loop then pays one None-check per
        # instruction when observability is off.
        recording = obs.active() is not None
        self._opcode_counts: dict[str, int] | None = {} if recording else None
        # Per-PC tallies exist only while an attribution profiler is
        # installed — same gate-at-construction discipline, so the step
        # loop stays one None-check when profiling is off.
        self._pc_counts: dict[int, int] | None = \
            {} if profile.active() is not None else None
        self._syscall_counts: dict[int, int] = {}
        self._signals_delivered = 0
        # Hooks (used by the tracing layer).
        self.on_step: Callable[[Process, Thread, Instruction], None] | None = None
        self.on_syscall: Callable[[Process, Thread, int, list[int], int], None] | None = None
        self.on_signal: Callable[[Process, Thread, int, int], None] | None = None
        # Edge hook (used by the coverage-guided fuzzer): fired once per
        # executed block-terminating instruction with (src, dst), where
        # src is the branch address and dst the address actually reached.
        self.on_edge: Callable[[int, int], None] | None = None

        self._setup_main_process(argv)

    # -- setup ----------------------------------------------------------

    def _setup_main_process(self, argv: list[bytes]) -> None:
        from .memory import Memory

        memory = Memory()
        max_end = 0
        for sec in self.image.sections:
            memory.write(sec.vaddr, sec.data)
            max_end = max(max_end, sec.end)

        proc = Process(self._alloc_pid(), memory)
        proc.brk = (max_end + 0xFFF) & ~0xFFF
        proc.fds[0] = StdStream("stdin", in_buffer=bytearray(self.env.stdin))
        proc.fds[1] = StdStream("stdout", out_buffer=self.stdout)
        proc.fds[2] = StdStream("stderr", out_buffer=self.stderr)

        # argv block just above the stack reserve.
        sp = STACK_TOP
        str_addrs = []
        cursor = STACK_TOP + 0x100
        self.argv_regions: list[tuple[int, int]] = []
        for arg in argv:
            memory.write_cstr(cursor, arg)
            str_addrs.append(cursor)
            self.argv_regions.append((cursor, len(arg)))
            cursor += len(arg) + 1
        argv_base = (cursor + 7) & ~7
        for i, addr in enumerate(str_addrs):
            memory.write_u64(argv_base + 8 * i, addr)
        memory.write_u64(argv_base + 8 * len(str_addrs), 0)

        ctx = Context(pc=self.image.entry)
        ctx.regs[15] = sp
        ctx.regs[1] = len(argv)
        ctx.regs[2] = argv_base
        thread = Thread(self._alloc_tid(), ctx)
        proc.threads.append(thread)
        self.processes[proc.pid] = proc
        self.main_pid = proc.pid

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _alloc_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- run loop ----------------------------------------------------------

    def run(self, max_steps: int = 2_000_000) -> RunResult:
        """Run to completion or until *max_steps* instructions executed."""
        fault = None
        steps0 = self.steps
        signals0 = self._signals_delivered
        while self.steps < max_steps:
            ran_any = False
            for proc in sorted(self.processes.values(), key=lambda p: p.pid):
                if not proc.alive:
                    continue
                for thread in list(proc.threads):
                    if thread.state == "blocked" and thread.wake and thread.wake():
                        thread.state = "run"
                        thread.wake = None
                    if thread.state != "run" or not proc.alive:
                        continue
                    ran_any = True
                    self._run_quantum(proc, thread, min(QUANTUM, max_steps - self.steps))
                    if self.steps >= max_steps:
                        break
                if self.steps >= max_steps:
                    break
            if not ran_any:
                break
        main = self.processes[self.main_pid]
        timed_out = self.steps >= max_steps and any(
            p.alive for p in self.processes.values()
        )
        self._flush_metrics(steps0, signals0)
        return RunResult(
            exit_code=main.exit_code,
            bomb_triggered=self.bomb_triggered,
            steps=self.steps,
            stdout=bytes(self.stdout),
            timed_out=timed_out,
            fault=fault,
        )

    def _flush_metrics(self, steps0: int, signals0: int) -> None:
        """Report this run's tallies to the installed recorder, if any."""
        if self._pc_counts:
            # One flush per run(): the profiler derives the stage (trace,
            # replay, ...) from the innermost open span.
            profile.record_vm(self._pc_counts)
            self._pc_counts = {}
        rec = obs.active()
        if rec is None:
            return
        rec.count("vm.instructions", self.steps - steps0)
        rec.count("vm.signals", self._signals_delivered - signals0)
        if self.bomb_triggered:
            rec.count("vm.bomb_triggered")
        if self._syscall_counts:
            from .syscalls import Sys

            total = 0
            for nr, n in self._syscall_counts.items():
                total += n
                try:
                    name = Sys(nr).name.lower()
                except ValueError:
                    name = str(nr)
                rec.count(f"vm.syscall.{name}", n)
            rec.count("vm.syscalls", total)
            self._syscall_counts.clear()
        if self._opcode_counts:
            for name, n in self._opcode_counts.items():
                rec.count(f"vm.op.{name.lower()}", n)
            self._opcode_counts.clear()

    def _run_quantum(self, proc: Process, thread: Thread, budget: int) -> None:
        for _ in range(budget):
            if thread.state != "run" or not proc.alive:
                return
            try:
                self._step(proc, thread)
            except VMError as err:
                signo = getattr(err, "signo", 11)
                self._deliver_signal(proc, thread, signo)
            self.steps += 1

    # -- instruction execution ------------------------------------------------

    def _evict_decoded(self, addr: int, width: int) -> None:
        """Self-modifying code: drop cached decodes overlapping the
        written range (an instruction starts at most 15 bytes before)."""
        cache = self._decode_cache
        for pc in range(addr - 15, addr + width):
            cache.pop(pc, None)

    def _fetch(self, proc: Process, pc: int) -> Instruction:
        instr = self._decode_cache.get(pc)
        if instr is None or instr.addr != pc:
            instr = decode(proc.memory.read(pc, 16), pc)
            self._decode_cache[pc] = instr
        return instr

    def _step(self, proc: Process, thread: Thread) -> None:
        ctx = thread.ctx
        pc = ctx.pc
        if pc == SIGRETURN_ADDR:
            self._sigreturn(thread)
            return
        if pc == THREAD_EXIT_ADDR:
            self._thread_exit(proc, thread)
            return
        if not self.image.is_code_addr(pc):
            raise VMError(f"pc 0x{pc:x} outside code")
        instr = self._fetch(proc, pc)
        counts = self._opcode_counts
        if counts is not None:
            name = instr.op.name
            counts[name] = counts.get(name, 0) + 1
        pcs = self._pc_counts
        if pcs is not None:
            pcs[pc] = pcs.get(pc, 0) + 1
        if self.on_step:
            self.on_step(proc, thread, instr)
        self._execute(proc, thread, instr)

    def _execute(self, proc: Process, thread: Thread, instr: Instruction) -> None:
        ctx = thread.ctx
        regs = ctx.regs
        mem = proc.memory
        op = instr.op
        ops = instr.operands
        next_pc = instr.next_addr

        if op is Op.NOP:
            pass
        elif op is Op.MOV:
            regs[ops[0].index] = regs[ops[1].index]
        elif op is Op.MOVI:
            regs[ops[0].index] = ops[1].value
        elif op in LOAD_INFO:
            width, signed = LOAD_INFO[op]
            addr = u64(regs[ops[1].base] + ops[1].disp)
            value = mem.read_uint(addr, width)
            regs[ops[0].index] = cpu.sext(value, width * 8) if signed else value
        elif op in STORE_INFO:
            width = STORE_INFO[op]
            addr = u64(regs[ops[0].base] + ops[0].disp)
            mem.write_uint(addr, regs[ops[1].index], width)
            if addr < self._code_hi and addr + width > self._code_lo:
                self._evict_decoded(addr, width)
        elif op is Op.LEA:
            regs[ops[0].index] = u64(regs[ops[1].base] + ops[1].disp)
        elif Op.ADD <= op <= Op.SARI:
            name = op.name.lower()
            if isinstance(ops[1], Imm):
                rhs = ops[1].value
                name = name[:-1]  # strip the 'i' immediate-form suffix
            else:
                rhs = regs[ops[1].index]
            regs[ops[0].index] = cpu.alu(name, regs[ops[0].index], rhs, ctx.flags)
        elif op is Op.NOT:
            regs[ops[0].index] = u64(~regs[ops[0].index])
            ctx.flags.set_logic(regs[ops[0].index])
        elif op is Op.NEG:
            regs[ops[0].index] = cpu.alu("sub", 0, regs[ops[0].index], ctx.flags)
        elif op in (Op.CMP, Op.CMPI):
            rhs = ops[1].value if isinstance(ops[1], Imm) else regs[ops[1].index]
            cpu.alu("sub", regs[ops[0].index], rhs, ctx.flags)
        elif op is Op.TEST:
            ctx.flags.set_logic(regs[ops[0].index] & regs[ops[1].index])
        elif op is Op.JMP:
            next_pc = ops[0].addr
        elif op in COND_BRANCHES:
            if ctx.flags.condition(op.name.lower()):
                next_pc = ops[0].addr
        elif op is Op.JMPR:
            next_pc = regs[ops[0].index]
        elif op is Op.CALL or op is Op.CALLR:
            regs[15] = u64(regs[15] - 8)
            mem.write_u64(regs[15], next_pc)
            next_pc = ops[0].addr if op is Op.CALL else regs[ops[0].index]
        elif op is Op.RET:
            next_pc = mem.read_u64(regs[15])
            regs[15] = u64(regs[15] + 8)
        elif op is Op.PUSH:
            regs[15] = u64(regs[15] - 8)
            mem.write_u64(regs[15], regs[ops[0].index])
        elif op is Op.POP:
            regs[ops[0].index] = mem.read_u64(regs[15])
            regs[15] = u64(regs[15] + 8)
        elif op is Op.SYSCALL:
            result = self._syscall(proc, thread)
            if result is _BLOCK:
                return  # do not advance pc; retry on wake
            if result is not None:
                regs[0] = u64(result)
        elif op is Op.HLT:
            self._exit_process(proc, 0)
            return
        else:
            self._execute_float(proc, thread, instr)
        ctx.pc = next_pc
        if self.on_edge is not None and op in _EDGE_OPS:
            self.on_edge(instr.addr, next_pc)

    def _execute_float(self, proc: Process, thread: Thread, instr: Instruction) -> None:
        ctx = thread.ctx
        regs, fregs = ctx.regs, ctx.fregs
        mem = proc.memory
        op = instr.op
        ops = instr.operands

        if op is Op.FLD:
            addr = u64(regs[ops[1].base] + ops[1].disp)
            fregs[ops[0].index] = mem.read_u64(addr)
        elif op is Op.FST:
            addr = u64(regs[ops[0].base] + ops[0].disp)
            mem.write_u64(addr, fregs[ops[1].index])
        elif op is Op.FMOV:
            fregs[ops[0].index] = fregs[ops[1].index]
        elif op is Op.FMOVR:
            fregs[ops[0].index] = regs[ops[1].index]
        elif op is Op.RMOVF:
            regs[ops[0].index] = fregs[ops[1].index]
        elif op in (Op.FADDS, Op.FSUBS, Op.FMULS, Op.FDIVS):
            a = bits_to_f32(fregs[ops[0].index])
            b = bits_to_f32(fregs[ops[1].index])
            fn = {Op.FADDS: lambda: a + b, Op.FSUBS: lambda: a - b,
                  Op.FMULS: lambda: a * b, Op.FDIVS: lambda: f64_div(a, b)}[op]
            fregs[ops[0].index] = f32_to_bits(f32_round(fn()))
        elif op in (Op.FADDD, Op.FSUBD, Op.FMULD, Op.FDIVD):
            a = bits_to_f64(fregs[ops[0].index])
            b = bits_to_f64(fregs[ops[1].index])
            fn = {Op.FADDD: lambda: a + b, Op.FSUBD: lambda: a - b,
                  Op.FMULD: lambda: a * b, Op.FDIVD: lambda: f64_div(a, b)}[op]
            fregs[ops[0].index] = f64_to_bits(fn())
        elif op is Op.FCMPS:
            ctx.flags.set_fcmp(bits_to_f32(fregs[ops[0].index]),
                               bits_to_f32(fregs[ops[1].index]))
        elif op is Op.FCMPD:
            ctx.flags.set_fcmp(bits_to_f64(fregs[ops[0].index]),
                               bits_to_f64(fregs[ops[1].index]))
        elif op is Op.CVTIFS:
            fregs[ops[0].index] = f32_to_bits(float(s64(regs[ops[1].index])))
        elif op is Op.CVTFIS:
            regs[ops[0].index] = f64_to_i64(bits_to_f32(fregs[ops[1].index]))
        elif op is Op.CVTIFD:
            fregs[ops[0].index] = f64_to_bits(float(s64(regs[ops[1].index])))
        elif op is Op.CVTFID:
            regs[ops[0].index] = f64_to_i64(bits_to_f64(fregs[ops[1].index]))
        elif op is Op.CVTSD:
            fregs[ops[0].index] = f64_to_bits(bits_to_f32(fregs[ops[1].index]))
        elif op is Op.CVTDS:
            fregs[ops[0].index] = f32_to_bits(f32_round(bits_to_f64(fregs[ops[1].index])))
        else:  # pragma: no cover
            raise VMError(f"unimplemented opcode {op.name}")

    # -- signals ----------------------------------------------------------------

    def _deliver_signal(self, proc: Process, thread: Thread, signo: int) -> None:
        self._signals_delivered += 1
        handler = proc.sig_handlers.get(signo)
        if handler is None:
            self._exit_process(proc, 128 + signo)
            return
        instr = self._fetch(proc, thread.ctx.pc)
        resume = instr.next_addr  # faulting instruction is skipped
        thread.sig_frames.append((thread.ctx.clone(), resume))
        if self.on_signal:
            self.on_signal(proc, thread, signo, handler)
        ctx = thread.ctx
        ctx.regs[15] = u64(ctx.regs[15] - 8)
        proc.memory.write_u64(ctx.regs[15], SIGRETURN_ADDR)
        ctx.regs[1] = signo
        ctx.pc = handler

    def _sigreturn(self, thread: Thread) -> None:
        saved, resume = thread.sig_frames.pop()
        thread.ctx = saved
        thread.ctx.pc = resume

    # -- threads & processes -------------------------------------------------------

    def _thread_exit(self, proc: Process, thread: Thread) -> None:
        thread.state = "dead"
        if not proc.live_threads():
            self._exit_process(proc, 0)

    def _exit_process(self, proc: Process, code: int) -> None:
        proc.alive = False
        proc.exit_code = code
        for thread in proc.threads:
            thread.state = "dead"
        for handle in proc.fds.values():
            if isinstance(handle, PipeEnd):
                handle.close()

    # -- syscalls -------------------------------------------------------------------

    def _syscall(self, proc: Process, thread: Thread):
        regs = thread.ctx.regs
        nr = regs[0]
        args = [regs[i] for i in range(1, 6)]
        if self._opcode_counts is not None:
            self._syscall_counts[nr] = self._syscall_counts.get(nr, 0) + 1
        result = self._dispatch_syscall(proc, thread, nr, args)
        if result is not _BLOCK and self.on_syscall:
            self.on_syscall(proc, thread, nr, args, result if result is not None else 0)
        return result

    def _dispatch_syscall(self, proc: Process, thread: Thread, nr: int, args: list[int]):
        mem = proc.memory
        if nr == Sys.EXIT:
            self._exit_process(proc, s64(args[0]) & 0xFF)
            return None
        if nr == Sys.BOMB:
            self.bomb_triggered = True
            self.stdout.extend(b"BOOM!!!\n")
            self._exit_process(proc, BOMB_EXIT_CODE)
            return None
        if nr == Sys.WRITE:
            handle = proc.fds.get(args[0])
            if handle is None:
                return -1
            data = mem.read(args[1], args[2])
            if isinstance(handle, PipeEnd):
                return handle.pipe.write(data) if handle.write_end else -1
            return handle.write(data)
        if nr == Sys.READ:
            handle = proc.fds.get(args[0])
            if handle is None:
                return -1
            if isinstance(handle, PipeEnd):
                if handle.write_end:
                    return -1
                chunk = handle.pipe.read(args[2])
                if chunk is None:
                    pipe = handle.pipe
                    thread.state = "blocked"
                    thread.wake = lambda: bool(pipe.buffer) or pipe.writers == 0
                    return _BLOCK
            else:
                chunk = handle.read(args[2])
            mem.write(args[1], chunk)
            return len(chunk)
        if nr == Sys.OPEN:
            path = mem.read_cstr(args[0]).decode("latin1")
            handle = self.fs.open(path, args[1])
            if handle is None:
                return -1
            return proc.alloc_fd(handle)
        if nr == Sys.CLOSE:
            handle = proc.fds.pop(args[0], None)
            if handle is None:
                return -1
            if isinstance(handle, PipeEnd):
                handle.close()
            return 0
        if nr == Sys.UNLINK:
            return self.fs.unlink(mem.read_cstr(args[0]).decode("latin1"))
        if nr == Sys.LSEEK:
            handle = proc.fds.get(args[0])
            if isinstance(handle, FileHandle):
                return handle.seek(s64(args[1]))
            return -1
        if nr == Sys.TIME:
            return self.env.time_value
        if nr == Sys.GETPID:
            return proc.pid
        if nr == Sys.GETMAGIC:
            return self.env.magic
        if nr == Sys.FORK:
            return self._do_fork(proc, thread)
        if nr == Sys.PIPE:
            pipe = Pipe()
            rfd = proc.alloc_fd(PipeEnd(pipe, write_end=False))
            wfd = proc.alloc_fd(PipeEnd(pipe, write_end=True))
            mem.write_uint(args[0], rfd, 8)
            mem.write_uint(args[0] + 8, wfd, 8)
            return 0
        if nr == Sys.WAITPID:
            target = self.processes.get(args[0])
            if target is None:
                return -1
            if target.alive:
                thread.state = "blocked"
                thread.wake = lambda: not target.alive
                return _BLOCK
            if args[1]:
                mem.write_uint(args[1], target.exit_code or 0, 8)
            return target.pid
        if nr == Sys.THREAD_CREATE:
            entry, arg, stack_top = args[0], args[1], args[2]
            ctx = Context(pc=entry)
            ctx.regs[1] = arg
            ctx.regs[15] = u64(stack_top - 8)
            mem.write_u64(ctx.regs[15], THREAD_EXIT_ADDR)
            new_thread = Thread(self._alloc_tid(), ctx)
            proc.threads.append(new_thread)
            return new_thread.tid
        if nr == Sys.THREAD_JOIN:
            tid = args[0]
            target = next((t for t in proc.threads if t.tid == tid), None)
            if target is None:
                return -1
            if target.state != "dead":
                thread.state = "blocked"
                thread.wake = lambda: target.state == "dead"
                return _BLOCK
            return 0
        if nr == Sys.YIELD:
            return 0
        if nr == Sys.HTTP_GET:
            url = mem.read_cstr(args[0]).decode("latin1")
            body = self.env.network.get(url)
            if body is None:
                return -1
            data = body[: args[2]]
            mem.write(args[1], data)
            return len(data)
        if nr == Sys.BRK:
            if args[0]:
                proc.brk = args[0]
            return proc.brk
        if nr == Sys.SIGNAL:
            proc.sig_handlers[args[0]] = args[1]
            return 0
        if nr == Sys.MSGSEND:
            proc.mailbox.append(args[0])
            return 0
        if nr == Sys.MSGRECV:
            if proc.mailbox:
                return proc.mailbox.pop(0)
            return 0
        return -1  # unknown syscall

    def _do_fork(self, proc: Process, thread: Thread) -> int:
        child = Process(self._alloc_pid(), proc.memory.clone(), parent=proc.pid)
        child.brk = proc.brk
        child.mailbox = list(proc.mailbox)
        child.sig_handlers = dict(proc.sig_handlers)
        child.next_fd = proc.next_fd
        for fd, handle in proc.fds.items():
            if isinstance(handle, PipeEnd):
                if handle.write_end:
                    handle.pipe.writers += 1
                else:
                    handle.pipe.readers += 1
                child.fds[fd] = PipeEnd(handle.pipe, handle.write_end)
            elif isinstance(handle, FileHandle):
                child.fds[fd] = FileHandle(handle.fs, handle.path, handle.flags, handle.pos)
            else:
                child.fds[fd] = handle
        # Child: one thread, a copy of the caller, already past the
        # syscall with return value 0.
        ctx = thread.ctx.clone()
        ctx.regs[0] = 0
        ctx.pc = self._fetch(proc, thread.ctx.pc).next_addr
        child.threads.append(Thread(self._alloc_tid(), ctx))
        self.processes[child.pid] = child
        return child.pid

    # -- direct calls -----------------------------------------------------------

    def scratch_alloc(self, size: int) -> int:
        """Carve *size* bytes off the main process's brk for call buffers."""
        proc = self.processes[self.main_pid]
        addr = proc.brk
        proc.brk = (proc.brk + size + 0xF) & ~0xF
        return addr

    def call_function(self, addr: int, args: list[int], max_steps: int = 200_000) -> int:
        """Execute the function at *addr* to completion and return r0.

        Arguments go in r1..rN per the VM calling convention (doubles are
        passed as raw 64-bit bit patterns).  The call runs on the main
        process's first thread with the sentinel return address checked
        *before* each step, so repeated calls on one machine work and
        process globals (e.g. a PRNG state cell) persist between calls.
        """
        proc = self.processes[self.main_pid]
        if not proc.alive:
            raise VMError("call_function: main process has exited")
        thread = proc.threads[0]
        saved = thread.ctx
        ctx = Context(pc=addr)
        for i, value in enumerate(args[:14], start=1):
            ctx.regs[i] = u64(value)
        ctx.regs[15] = u64(STACK_TOP - 8)
        proc.memory.write_u64(ctx.regs[15], CALL_RETURN_ADDR)
        thread.ctx = ctx
        thread.state = "run"
        try:
            for _ in range(max_steps):
                if ctx.pc == CALL_RETURN_ADDR:
                    return ctx.regs[0]
                if thread.state != "run" or not proc.alive:
                    raise VMError("call_function: callee exited the process")
                self._step(proc, thread)
                self.steps += 1
            raise VMError(f"call_function: no return within {max_steps} steps")
        finally:
            thread.ctx = saved
            thread.state = "run"


def run_image(
    image: Image,
    argv: list[bytes],
    env: Environment | None = None,
    max_steps: int = 2_000_000,
) -> RunResult:
    """Convenience: execute *image* with *argv* and return the result."""
    return Machine(image, argv, env).run(max_steps)
