"""Bitvector/boolean expression AST with hash-consing and folding.

The single expression language shared by every symbolic engine in the
package.  Booleans are width-1 bitvectors, which keeps bit-blasting
uniform.  Floating-point operations are first-class AST nodes that the
concrete evaluator understands but the bit-blaster deliberately does
not: an engine whose solver lacks FP theory raises exactly the
``unsupported theory`` condition the paper reports (Es3), while the
local-search solver (:mod:`repro.smt.fpsearch`) can still attack them.

Construction goes through the ``mk_*`` smart constructors, which fold
constants and apply cheap local rewrites, so concrete execution inside
a symbolic engine collapses to constants instead of growing terms.
"""

from __future__ import annotations

import math
import struct
from typing import Iterable

from ..errors import SolverError
from ..vm.cpu import bits_to_f32, bits_to_f64, f32_round, f32_to_bits, f64_div, f64_to_bits, f64_to_i64

_INTERN: dict[tuple, "Expr"] = {}

#: Operations and their arities (None = variadic).
_BV_BINOPS = frozenset({
    "add", "sub", "mul", "udiv", "urem", "and", "or", "xor",
    "shl", "lshr", "ashr",
})
_CMP_OPS = frozenset({"eq", "ult", "ule", "slt", "sle"})
_FP_BIN = frozenset({
    "fadd32", "fsub32", "fmul32", "fdiv32",
    "fadd64", "fsub64", "fmul64", "fdiv64",
})
_FP_CMP = frozenset({"feq32", "flt32", "fle32", "feq64", "flt64", "fle64"})
_FP_CVT = frozenset({"i2f32", "i2f64", "f2i32", "f2i64", "f32to64", "f64to32"})
#: Transcendental ops: evaluable (for local search) but never blastable.
_FP_TRANS = frozenset({"fsin64", "fcos64", "fpow64"})

FP_OPS = _FP_BIN | _FP_CMP | _FP_CVT | _FP_TRANS


class Expr:
    """An interned expression node.  Compare with ``is`` / ``==`` freely."""

    __slots__ = ("op", "width", "args", "value", "name", "_hash", "_size")

    def __init__(self, op: str, width: int, args: tuple["Expr", ...] = (),
                 value: int | None = None, name: str | None = None):
        self.op = op
        self.width = width
        self.args = args
        self.value = value
        self.name = name
        self._hash = hash((op, width, tuple(id(a) for a in args), value, name))
        self._size: int | None = None

    def __hash__(self) -> int:
        return self._hash

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def is_var(self) -> bool:
        return self.op == "var"

    def variables(self) -> set[str]:
        """Names of all variables occurring in this expression."""
        out: set[str] = set()
        stack = [self]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.is_var:
                out.add(node.name)
            stack.extend(node.args)
        return out

    def contains_fp(self) -> bool:
        """Does any node use floating-point theory?"""
        stack = [self]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if node.op in FP_OPS:
                return True
            stack.extend(node.args)
        return False

    def size(self) -> int:
        """Number of distinct nodes (the model-size metric for Figure 3).

        Memoized: sub-DAG sizes summed over children over-count shared
        nodes, so this computes the true distinct-node count once and
        caches it on the node (nodes are interned and immutable).
        """
        if self._size is not None:
            return self._size
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.extend(node.args)
        self._size = len(seen)
        return self._size

    def __repr__(self) -> str:
        if self.is_const:
            return f"0x{self.value:x}:{self.width}"
        if self.is_var:
            return f"{self.name}:{self.width}"
        inner = " ".join(repr(a) for a in self.args)
        return f"({self.op} {inner})"


def _intern(op: str, width: int, args: tuple[Expr, ...] = (),
            value: int | None = None, name: str | None = None) -> Expr:
    key = (op, width, tuple(id(a) for a in args), value, name)
    node = _INTERN.get(key)
    if node is None:
        node = _INTERN[key] = Expr(op, width, args, value, name)
    return node


def intern_node(op: str, width: int, args: tuple[Expr, ...] = (),
                value: int | None = None, name: str | None = None) -> Expr:
    """Codec hook: intern a node *exactly* as described, no rewrites.

    The ``mk_*`` smart constructors fold constants and normalize terms,
    so a decoder built on them could produce a different (if equivalent)
    DAG than the one encoded.  The query-log codec
    (:mod:`repro.smt.querylog`) rebuilds nodes through this hook
    instead, guaranteeing byte-exact round trips — decoded nodes still
    land in the intern table, so identity sharing with live terms is
    preserved.
    """
    return _intern(op, width, args, value, name)


def _mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    value &= _mask(width)
    if value >= 1 << (width - 1):
        value -= 1 << width
    return value


# -- constructors ------------------------------------------------------------

def mk_const(value: int, width: int) -> Expr:
    return _intern("const", width, value=value & _mask(width))


TRUE = mk_const(1, 1)
FALSE = mk_const(0, 1)


def mk_bool(flag: bool) -> Expr:
    return TRUE if flag else FALSE


def mk_var(name: str, width: int) -> Expr:
    return _intern("var", width, name=name)


def mk_binop(op: str, a: Expr, b: Expr) -> Expr:
    if a.width != b.width:
        raise SolverError(f"{op}: width mismatch {a.width} vs {b.width}")
    width = a.width
    if a.is_const and b.is_const:
        return mk_const(_fold_binop(op, a.value, b.value, width), width)
    # Local rewrites that keep concolic terms small.
    if b.is_const:
        if b.value == 0:
            if op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr"):
                return a
            if op in ("mul", "and"):
                return mk_const(0, width)
        if b.value == _mask(width) and op == "and":
            return a
        if b.value == 1 and op == "mul":
            return a
    if a.is_const:
        if a.value == 0:
            if op in ("add", "or", "xor"):
                return b
            if op in ("mul", "and", "shl", "lshr", "ashr", "udiv", "urem"):
                return mk_const(0, width)
        if a.value == _mask(width) and op == "and":
            return b
        if a.value == 1 and op == "mul":
            return b
    if op == "xor" and a is b:
        return mk_const(0, width)
    if op == "sub" and a is b:
        return mk_const(0, width)
    if op in ("and", "or") and a is b:
        return a
    if op in ("udiv", "urem") and not b.is_const:
        # The bit-blaster only supports constant divisors; building the
        # node is allowed (eval works), solving may raise later.
        pass
    return _intern(op, width, (a, b))


def _fold_binop(op: str, a: int, b: int, width: int) -> int:
    mask = _mask(width)
    if op == "add":
        return (a + b) & mask
    if op == "sub":
        return (a - b) & mask
    if op == "mul":
        return (a * b) & mask
    if op == "udiv":
        if b == 0:
            return mask  # SMT-LIB convention
        return (a // b) & mask
    if op == "urem":
        if b == 0:
            return a
        return (a % b) & mask
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op in ("shl", "lshr", "ashr"):
        # ISA semantics: the shift amount is taken modulo the width
        # (x86-style), keeping the SMT layer bit-identical to the VM.
        amount = b & (width - 1) if width & (width - 1) == 0 else b % width
        if op == "shl":
            return (a << amount) & mask
        if op == "lshr":
            return a >> amount
        return (to_signed(a, width) >> amount) & mask
    raise SolverError(f"unknown binop {op}")


def mk_not(a: Expr) -> Expr:
    if a.is_const:
        return mk_const(~a.value, a.width)
    if a.op == "bvnot":
        return a.args[0]
    return _intern("bvnot", a.width, (a,))


def mk_neg(a: Expr) -> Expr:
    return mk_binop("sub", mk_const(0, a.width), a)


def mk_cmp(op: str, a: Expr, b: Expr) -> Expr:
    if a.width != b.width:
        raise SolverError(f"{op}: width mismatch {a.width} vs {b.width}")
    if a.is_const and b.is_const:
        av, bv = a.value, b.value
        if op == "eq":
            return mk_bool(av == bv)
        if op == "ult":
            return mk_bool(av < bv)
        if op == "ule":
            return mk_bool(av <= bv)
        sa, sb = to_signed(av, a.width), to_signed(bv, b.width)
        if op == "slt":
            return mk_bool(sa < sb)
        if op == "sle":
            return mk_bool(sa <= sb)
    if op == "eq" and a is b:
        return TRUE
    if op in ("ule", "sle") and a is b:
        return TRUE
    if op in ("ult", "slt") and a is b:
        return FALSE
    return _intern(op, 1, (a, b))


def mk_eq(a: Expr, b: Expr) -> Expr:
    return mk_cmp("eq", a, b)


def mk_ite(cond: Expr, then: Expr, orelse: Expr) -> Expr:
    if cond.width != 1:
        raise SolverError("ite condition must be width 1")
    if then.width != orelse.width:
        raise SolverError("ite arm width mismatch")
    if cond.is_const:
        return then if cond.value else orelse
    if then is orelse:
        return then
    return _intern("ite", then.width, (cond, then, orelse))


def mk_bool_not(a: Expr) -> Expr:
    if a.width != 1:
        raise SolverError("bool not on non-boolean")
    if a.is_const:
        return mk_bool(not a.value)
    if a.op == "bvnot":
        return a.args[0]
    # width-1 bvnot == logical not
    return _intern("bvnot", 1, (a,))


def mk_bool_and(*terms: Expr) -> Expr:
    flat: list[Expr] = []
    for t in terms:
        if t.width != 1:
            raise SolverError("bool and on non-boolean")
        if t.is_const:
            if not t.value:
                return FALSE
            continue
        flat.append(t)
    if not flat:
        return TRUE
    node = flat[0]
    for t in flat[1:]:
        node = mk_binop("and", node, t)
    return node


def mk_bool_or(*terms: Expr) -> Expr:
    flat: list[Expr] = []
    for t in terms:
        if t.width != 1:
            raise SolverError("bool or on non-boolean")
        if t.is_const:
            if t.value:
                return TRUE
            continue
        flat.append(t)
    if not flat:
        return FALSE
    node = flat[0]
    for t in flat[1:]:
        node = mk_binop("or", node, t)
    return node


def mk_extract(a: Expr, hi: int, lo: int) -> Expr:
    if not 0 <= lo <= hi < a.width:
        raise SolverError(f"extract [{hi}:{lo}] out of range for width {a.width}")
    width = hi - lo + 1
    if width == a.width:
        return a
    if a.is_const:
        return mk_const(a.value >> lo, width)
    if a.op == "zext" and hi < a.args[0].width:
        return mk_extract(a.args[0], hi, lo)
    if a.op == "zext" and lo >= a.args[0].width:
        return mk_const(0, width)
    if a.op == "extract":
        base_lo = a.value & 0xFFFF
        return mk_extract(a.args[0], base_lo + hi, base_lo + lo)
    if a.op == "concat":
        lo_part = a.args[1]
        if hi < lo_part.width:
            return mk_extract(lo_part, hi, lo)
        if lo >= lo_part.width:
            return mk_extract(a.args[0], hi - lo_part.width, lo - lo_part.width)
    return _intern("extract", width, (a,), value=(hi << 16) | lo)


def _extract_span(node: Expr) -> tuple[Expr, int, int] | None:
    """View *node* as a contiguous bit span (base, hi, lo) if possible."""
    if node.op == "extract":
        return node.args[0], node.value >> 16, node.value & 0xFFFF
    return None


def mk_concat(hi: Expr, lo: Expr) -> Expr:
    """Concatenate: *hi* becomes the high bits."""
    if hi.is_const and lo.is_const:
        return mk_const((hi.value << lo.width) | lo.value, hi.width + lo.width)
    if hi.is_const and hi.value == 0:
        return mk_zext(lo, hi.width + lo.width)
    # Fuse adjacent extracts of the same base: collapses the
    # byte-granular store/load round trips symbolic memory produces
    # (concat of extracts of x re-assembles a slice of x).
    hi_span = _extract_span(hi)
    lo_span = _extract_span(lo)
    if hi_span and lo_span and hi_span[0] is lo_span[0] \
            and hi_span[2] == lo_span[1] + 1:
        return mk_extract(hi_span[0], hi_span[1], lo_span[2])
    return _intern("concat", hi.width + lo.width, (hi, lo))


def mk_concat_many(parts: Iterable[Expr]) -> Expr:
    """Concatenate parts listed most-significant first."""
    parts = list(parts)
    node = parts[0]
    for part in parts[1:]:
        node = mk_concat(node, part)
    return node


def mk_zext(a: Expr, width: int) -> Expr:
    if width == a.width:
        return a
    if width < a.width:
        raise SolverError("zext narrows")
    if a.is_const:
        return mk_const(a.value, width)
    if a.op == "zext":
        a = a.args[0]
    return _intern("zext", width, (a,))


def mk_sext(a: Expr, width: int) -> Expr:
    if width == a.width:
        return a
    if width < a.width:
        raise SolverError("sext narrows")
    if a.is_const:
        return mk_const(to_signed(a.value, a.width), width)
    return _intern("sext", width, (a,))


def mk_fp(op: str, *args: Expr) -> Expr:
    """Floating-point node (see module docstring for the op list)."""
    if op not in FP_OPS:
        raise SolverError(f"unknown fp op {op}")
    if all(a.is_const for a in args):
        return mk_const(eval_fp(op, [a.value for a in args]), _fp_width(op))
    return _intern(op, _fp_width(op), tuple(args))


def _fp_width(op: str) -> int:
    if op in _FP_CMP:
        return 1
    if op in _FP_TRANS:
        return 64
    if op.endswith("32") and op not in ("f32to64",):
        return 32 if op not in ("f2i32",) else 64
    if op == "f64to32":
        return 32
    return 64


# -- concrete evaluation ---------------------------------------------------------

def eval_fp(op: str, values: list[int]) -> int:
    """Evaluate one FP op on raw bit-pattern operands."""
    if op.endswith("32") and op not in ("f2i32", "i2f32", "f64to32"):
        a = bits_to_f32(values[0])
        b = bits_to_f32(values[1]) if len(values) > 1 else 0.0
    elif op.endswith("64") and op not in ("f2i64", "i2f64", "f32to64"):
        a = bits_to_f64(values[0])
        b = bits_to_f64(values[1]) if len(values) > 1 else 0.0
    if op == "fadd32":
        return f32_to_bits(f32_round(a + b))
    if op == "fsub32":
        return f32_to_bits(f32_round(a - b))
    if op == "fmul32":
        return f32_to_bits(f32_round(a * b))
    if op == "fdiv32":
        return f32_to_bits(f32_round(f64_div(a, b)))
    if op == "fadd64":
        return f64_to_bits(a + b)
    if op == "fsub64":
        return f64_to_bits(a - b)
    if op == "fmul64":
        return f64_to_bits(a * b)
    if op == "fdiv64":
        return f64_to_bits(f64_div(a, b))
    if op in ("feq32", "feq64"):
        return int(not (math.isnan(a) or math.isnan(b)) and a == b)
    if op in ("flt32", "flt64"):
        return int(not (math.isnan(a) or math.isnan(b)) and a < b)
    if op in ("fle32", "fle64"):
        return int(not (math.isnan(a) or math.isnan(b)) and a <= b)
    if op == "i2f32":
        return f32_to_bits(float(to_signed(values[0], 64)))
    if op == "i2f64":
        return f64_to_bits(float(to_signed(values[0], 64)))
    if op == "f2i32":
        return f64_to_i64(bits_to_f32(values[0]))
    if op == "f2i64":
        return f64_to_i64(bits_to_f64(values[0]))
    if op == "f32to64":
        return f64_to_bits(bits_to_f32(values[0]))
    if op == "f64to32":
        return f32_to_bits(f32_round(bits_to_f64(values[0])))
    if op == "fsin64":
        return f64_to_bits(math.sin(bits_to_f64(values[0])))
    if op == "fcos64":
        return f64_to_bits(math.cos(bits_to_f64(values[0])))
    if op == "fpow64":
        base = bits_to_f64(values[0])
        exp = bits_to_f64(values[1])
        try:
            return f64_to_bits(float(base ** exp))
        except (OverflowError, ZeroDivisionError, ValueError):
            return f64_to_bits(math.nan)
    raise SolverError(f"unknown fp op {op}")


def _eval_node(node: Expr, args: list[int], model: dict[str, int]) -> int:
    op = node.op
    if op == "const":
        return node.value
    if op == "var":
        return model.get(node.name, 0) & _mask(node.width)
    if op in _BV_BINOPS:
        return _fold_binop(op, args[0], args[1], node.width)
    if op == "bvnot":
        return ~args[0] & _mask(node.width)
    if op in _CMP_OPS:
        a, b = args
        w = node.args[0].width
        if op == "eq":
            return int(a == b)
        if op == "ult":
            return int(a < b)
        if op == "ule":
            return int(a <= b)
        if op == "slt":
            return int(to_signed(a, w) < to_signed(b, w))
        return int(to_signed(a, w) <= to_signed(b, w))
    if op == "ite":
        return args[1] if args[0] else args[2]
    if op == "extract":
        hi, lo = node.value >> 16, node.value & 0xFFFF
        return (args[0] >> lo) & _mask(hi - lo + 1)
    if op == "concat":
        return (args[0] << node.args[1].width) | args[1]
    if op == "zext":
        return args[0]
    if op == "sext":
        return to_signed(args[0], node.args[0].width) & _mask(node.width)
    if op in FP_OPS:
        return eval_fp(op, args)
    raise SolverError(f"eval: unknown op {op}")


def eval_expr(expr: Expr, model: dict[str, int]) -> int:
    """Concretely evaluate *expr* under *model* (var name -> unsigned int).

    Missing variables evaluate to 0 (the SMT 'don't care' completion).
    Iterative post-order walk: expression DAGs from long traces (SHA1,
    AES) are far deeper than Python's recursion limit.
    """
    cache: dict[int, int] = {}
    stack = [expr]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in cache:
            stack.pop()
            continue
        pending = [a for a in node.args if id(a) not in cache]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        cache[nid] = _eval_node(node, [cache[id(a)] for a in node.args], model)
    return cache[id(expr)]


def interned_count() -> int:
    """Diagnostics: number of live interned nodes."""
    return len(_INTERN)
