"""Solve-stage flight recorder: capture, address, and classify queries.

Two halves, mirroring the IL codec in :mod:`repro.ir.superblock`:

* **A canonical JSON codec for** :class:`~repro.smt.expr.Expr` **DAGs.**
  :func:`encode_exprs` walks a set of roots iteratively (constraint
  DAGs from long traces — SHA1, AES — are far deeper than Python's
  recursion limit) and emits one shared node table with child *indices*,
  so interned sharing survives the round trip byte for byte.
  :func:`decode_exprs` rebuilds through :func:`~repro.smt.expr.intern_node`
  — not the ``mk_*`` smart constructors — so decoding never re-folds
  and the decoded DAG is node-for-node identical to the encoded one.

* **A** :class:`QueryRecorder` **that captures every**
  :meth:`~repro.smt.solver.Solver.check` /
  :meth:`~repro.smt.solver.IncrementalSolver.check` as a
  content-addressed record: the full constraint set + assumptions with
  their ``(pc, kind)`` guard tags, the solver budget, structural
  features (node/var counts, depth, max width, ite density), a named
  feature class, the verdict, and the query's CDCL effort.  Identical
  queries dedup by digest, so a full-matrix capture stores each
  distinct query exactly once; per-cell manifests keep the occurrence
  stream (which cell issued which query, in order, at what cost).

The process-wide hook discipline is the same as
:mod:`repro.obs.profile`: one module-level ``_active`` slot, checked
once per query on the solver's existing telemetry slow path.  With no
recorder installed (and no metrics recorder / profiler either) the
solvers take their zero-cost fast path and this module adds nothing.
"""

from __future__ import annotations

import hashlib
import json

from .. import obs
from .expr import (
    _BV_BINOPS,
    _CMP_OPS,
    FP_OPS,
    Expr,
    intern_node,
)

#: Version stamp on every persisted query record and manifest.
QUERYLOG_SCHEMA = 1

#: Every op the codec round-trips (the full Expr vocabulary).
CODEC_OPS = frozenset(
    {"const", "var", "bvnot", "ite", "extract", "concat", "zext", "sext"}
    | _BV_BINOPS | _CMP_OPS | FP_OPS)

#: Feature-class thresholds (documented, deterministic: every query
#: lands in exactly one named class, so a workload report attributes
#: 100% of solve wall to named classes).
CRYPTO_NODES = 20_000     #: node count above which a query is crypto-scale
SELECT_ITES = 8           #: ite count that marks a symbolic-select tower
SELECT_ITE_DENSITY = 0.04  #: ... or ite share of all nodes
DEEP_CHAIN = 256          #: DAG depth that marks a serial/hash-chain query
SMALL_NODES = 64          #: node count at or below which a query is trivial


# -- Expr codec --------------------------------------------------------------

def encode_exprs(roots) -> tuple[list, list[int]]:
    """Encode *roots* (an iterable of :class:`Expr`) as one node table.

    Returns ``(nodes, root_indices)``.  ``nodes`` is a JSON-able list in
    dependency order (children strictly before parents); each entry is

    * ``["c", width, value]`` — constant,
    * ``["v", width, name]`` — variable,
    * ``["x", width, [arg], packed_hi_lo]`` — extract,
    * ``[op, width, [arg indices...]]`` — everything else.

    Shared subterms appear once: the walk indexes nodes by identity, so
    the encoded table has exactly ``size()`` entries per distinct node.
    Iterative, like :func:`~repro.smt.expr.eval_expr`.
    """
    nodes: list = []
    index: dict[int, int] = {}
    order: list[int] = []
    for root in roots:
        stack = [root]
        while stack:
            node = stack[-1]
            nid = id(node)
            if nid in index:
                stack.pop()
                continue
            pending = [a for a in node.args if id(a) not in index]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            index[nid] = len(nodes)
            if node.op == "const":
                nodes.append(["c", node.width, node.value])
            elif node.op == "var":
                nodes.append(["v", node.width, node.name])
            elif node.op == "extract":
                nodes.append(["x", node.width,
                              [index[id(node.args[0])]], node.value])
            else:
                nodes.append([node.op, node.width,
                              [index[id(a)] for a in node.args]])
        order.append(index[id(root)])
    return nodes, order


def decode_exprs(nodes: list) -> list[Expr]:
    """Rebuild the full node table; entry *i* is the :class:`Expr` for
    encoded node *i*.  Raises :class:`ValueError` on a malformed table
    (unknown op, forward reference)."""
    out: list[Expr] = []
    for i, rec in enumerate(nodes):
        kind, width = rec[0], rec[1]
        if kind == "c":
            node = intern_node("const", width, value=rec[2])
        elif kind == "v":
            node = intern_node("var", width, name=rec[2])
        else:
            if any(j >= i for j in rec[2]):
                raise ValueError(f"querylog: node {i} has a forward reference")
            args = tuple(out[j] for j in rec[2])
            if kind == "x":
                node = intern_node("extract", width, args, value=rec[3])
            elif kind in CODEC_OPS:
                node = intern_node(kind, width, args)
            else:
                raise ValueError(f"querylog: unknown op {kind!r}")
        out.append(node)
    return out


def encode_expr(expr: Expr) -> list:
    """Single-root convenience wrapper over :func:`encode_exprs`."""
    nodes, _ = encode_exprs([expr])
    return nodes


def decode_expr(nodes: list) -> Expr:
    """Inverse of :func:`encode_expr` (the root is the last node)."""
    table = decode_exprs(nodes)
    if not table:
        raise ValueError("querylog: empty node table")
    return table[-1]


# -- structural features -----------------------------------------------------

def query_features(nodes: list, n_constraints: int,
                   n_assumptions: int) -> dict:
    """Structural features of one encoded query (over its node table)."""
    var_names: set = set()
    max_width = 0
    ites = fp_ops = cmps = 0
    depth = [0] * len(nodes)
    max_depth = 0
    for i, rec in enumerate(nodes):
        kind, width = rec[0], rec[1]
        if width > max_width:
            max_width = width
        if kind == "v":
            var_names.add(rec[2])
            depth[i] = 1
        elif kind == "c":
            depth[i] = 1
        else:
            depth[i] = 1 + max(depth[j] for j in rec[2])
            if kind == "ite":
                ites += 1
            elif kind in FP_OPS:
                fp_ops += 1
            elif kind in _CMP_OPS:
                cmps += 1
        if depth[i] > max_depth:
            max_depth = depth[i]
    n = len(nodes)
    return {
        "nodes": n,
        "vars": len(var_names),
        "depth": max_depth,
        "max_width": max_width,
        "ites": ites,
        "ite_density": round(ites / n, 6) if n else 0.0,
        "fp_ops": fp_ops,
        "cmps": cmps,
        "constraints": n_constraints,
        "assumptions": n_assumptions,
    }


def feature_class(features: dict) -> str:
    """The named constraint-shape class of one query.

    Deterministic first-match rules over the structural features — the
    classes mirror the paper's challenge taxonomy: FP theory, crypto
    (one-way) scale, symbolic-select ite towers (arrays, jump tables),
    deep serial chains, and the trivial/linear remainder.
    """
    if features["fp_ops"] > 0:
        return "fp-theory"
    if features["nodes"] > CRYPTO_NODES:
        return "crypto-scale"
    if (features["ites"] >= SELECT_ITES
            or features["ite_density"] >= SELECT_ITE_DENSITY):
        return "select-ite"
    if features["depth"] >= DEEP_CHAIN:
        return "deep-serial"
    if features["nodes"] <= SMALL_NODES:
        return "small-linear"
    return "bitvector-mix"


#: Every class :func:`feature_class` can emit, for reports and gates.
FEATURE_CLASSES = ("fp-theory", "crypto-scale", "select-ite",
                   "deep-serial", "small-linear", "bitvector-mix")


# -- content-addressed records -----------------------------------------------

def _split_tag(tag) -> tuple:
    """Normalize a constraint tag to ``(pc, kind)`` (both JSON-able)."""
    if isinstance(tag, tuple) and len(tag) == 2:
        return tag[0], tag[1]
    if tag is None:
        return None, None
    return None, str(tag)


def build_record(tagged, extra, budget: dict) -> tuple[str, dict]:
    """Build the content-addressed record of one query.

    *tagged* is the solver's asserted ``(tag, expr)`` pairs, *extra*
    the per-query assumptions, *budget* the solver's effort caps (they
    shape the verdict — budget exhaustion is a recorded outcome — so
    they participate in the digest).  Returns ``(digest, body)``.
    """
    tagged = list(tagged)
    extra = list(extra or [])
    roots = [e for _, e in tagged] + extra
    nodes, order = encode_exprs(roots)
    constraints = []
    for (tag, _), root in zip(tagged, order):
        pc, kind = _split_tag(tag)
        constraints.append([root, pc, kind])
    assumptions = order[len(tagged):]
    addressed = {
        "schema": QUERYLOG_SCHEMA,
        "nodes": nodes,
        "constraints": constraints,
        "assumptions": assumptions,
        "budget": budget,
    }
    digest = hashlib.sha256(
        json.dumps(addressed, sort_keys=True,
                   separators=(",", ":")).encode()).hexdigest()
    features = query_features(nodes, len(constraints), len(assumptions))
    body = dict(addressed)
    body["features"] = features
    body["class"] = feature_class(features)
    return digest, body


def decode_record(body: dict):
    """Rebuild ``(tagged_constraints, assumptions)`` from a record body.

    ``tagged_constraints`` is a list of ``(tag, Expr)`` pairs ready for
    :meth:`Solver.add` / :meth:`IncrementalSolver.assert_expr`; tags
    are ``(pc, kind)`` tuples or ``None``.
    """
    if body.get("schema") != QUERYLOG_SCHEMA:
        raise ValueError(
            f"querylog: unsupported record schema {body.get('schema')!r}")
    table = decode_exprs(body["nodes"])
    tagged = []
    for root, pc, kind in body["constraints"]:
        tag = None if pc is None and kind is None else (pc, kind)
        tagged.append((tag, table[root]))
    assumptions = [table[i] for i in body["assumptions"]]
    return tagged, assumptions


# -- the recorder ------------------------------------------------------------

class QueryRecorder:
    """In-memory flight recorder for one capture session.

    ``records`` maps digest → record body (each distinct query once);
    ``occurrences`` maps ``(bomb, tool)`` → the cell's query stream in
    issue order, each entry naming the digest plus the per-occurrence
    verdict, latency, and CDCL effort.
    """

    def __init__(self):
        self.records: dict[str, dict] = {}
        self.occurrences: dict[tuple, list[dict]] = {}
        self.queries = 0
        self.dedup_hits = 0
        self._bomb: str | None = None
        self._tool: str | None = None
        # Interned Expr ids are stable for the process lifetime (the
        # intern table never evicts), so one encode per distinct
        # (constraint-set, budget) identity suffices.
        self._digest_memo: dict[tuple, str] = {}

    # -- cell context ----------------------------------------------------

    def set_cell(self, bomb: str | None, tool: str | None) -> None:
        self._bomb = bomb
        self._tool = tool

    # -- recording -------------------------------------------------------

    def record_check(self, tagged, extra, tag, status: str, wall_s: float,
                     stats: dict, solver: str = "oneshot",
                     budget: dict | None = None) -> str:
        """Capture one solver query; returns its content digest."""
        tagged = list(tagged)
        extra = list(extra or [])
        budget = budget or {}
        memo_key = (tuple(id(e) for _, e in tagged),
                    tuple(id(e) for e in extra),
                    tuple(sorted(budget.items())))
        digest = self._digest_memo.get(memo_key)
        if digest is None or digest not in self.records:
            digest, body = build_record(tagged, extra, budget)
            self._digest_memo[memo_key] = digest
            if digest not in self.records:
                self.records[digest] = body
                obs.count("smtlog.records")
            else:
                self.dedup_hits += 1
                obs.count("smtlog.dedup_hits")
        else:
            self.dedup_hits += 1
            obs.count("smtlog.dedup_hits")
        self.queries += 1
        obs.count("smtlog.queries")
        pc, kind = _split_tag(tag)
        self.occurrences.setdefault((self._bomb, self._tool), []).append({
            "digest": digest,
            "pc": pc,
            "kind": kind,
            "status": status,
            "wall_s": wall_s,
            "conflicts": stats.get("conflicts", 0),
            "gates": stats.get("gates", 0),
            "learnt": stats.get("learnt", 0),
            "solver": solver,
            "class": self.records[digest]["class"],
        })
        return digest

    # -- reading ---------------------------------------------------------

    def summary(self) -> dict:
        """Capture totals: query count, distinct records, dedup ratio
        (fraction of queries served by an already-stored record)."""
        distinct = len(self.records)
        return {
            "queries": self.queries,
            "distinct": distinct,
            "dedup_hits": self.dedup_hits,
            "dedup_ratio": (round(1.0 - distinct / self.queries, 6)
                            if self.queries else 0.0),
            "cells": len(self.occurrences),
        }

    # -- persistence -----------------------------------------------------

    def persist(self, store) -> dict:
        """Write records + per-cell manifests into a result store.

        Records dedup across campaigns too: a digest already present in
        the store is skipped.  Cells that issued no queries write no
        manifest (a warm cache-served cell never clobbers the manifest
        of the run that actually computed it).
        """
        stored = skipped = 0
        for digest, body in self.records.items():
            if store.put_query(digest, body):
                stored += 1
            else:
                skipped += 1
        cells = 0
        for (bomb, tool), occs in sorted(
                self.occurrences.items(),
                key=lambda kv: (str(kv[0][0]), str(kv[0][1]))):
            if not occs:
                continue
            store.put_query_manifest(bomb, tool, {
                "bomb": bomb,
                "tool": tool,
                "queries": occs,
            })
            cells += 1
        return {"stored": stored, "skipped": skipped, "cells": cells}


# -- process-wide scoping ----------------------------------------------------

_active: QueryRecorder | None = None
_store = None


def active() -> QueryRecorder | None:
    """The installed recorder, or None when query logging is off."""
    return _active


def install(recorder: QueryRecorder) -> None:
    global _active
    _active = recorder


def uninstall() -> None:
    global _active
    _active = None


def attach_store(store) -> None:
    """Register the campaign store that flag-driven captures persist to
    (wired next to the superblock/corpus store attachments when a run
    has a ``--cache``)."""
    global _store
    _store = store


def detach_store() -> None:
    global _store
    _store = None


def attached_store():
    return _store


class capturing:
    """``with capturing(rec):`` — install for the block, restore the
    previous recorder after.  ``capturing(None)`` is a no-op block, so
    call sites can gate on a flag without branching."""

    def __init__(self, recorder: QueryRecorder | None):
        self.recorder = recorder
        self._prev: QueryRecorder | None = None

    def __enter__(self) -> QueryRecorder | None:
        if self.recorder is not None:
            self._prev = _active
            install(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.recorder is not None:
            global _active
            _active = self._prev
        return False


class _cell_ctx:
    """Scopes the (bomb, tool) attribution context around one cell."""

    __slots__ = ("_bomb", "_tool", "_prev")

    def __init__(self, bomb, tool):
        self._bomb = bomb
        self._tool = tool

    def __enter__(self):
        rec = _active
        if rec is not None:
            self._prev = (rec._bomb, rec._tool)
            rec.set_cell(self._bomb, self._tool)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = _active
        if rec is not None:
            rec.set_cell(*self._prev)
        return False


def cell(bomb, tool) -> _cell_ctx:
    return _cell_ctx(bomb, tool)


def record_check(tagged, extra, tag, status: str, wall_s: float, stats: dict,
                 solver: str = "oneshot", budget: dict | None = None) -> None:
    """Module hook the solvers call from their telemetry slow path."""
    rec = _active
    if rec is not None:
        rec.record_check(tagged, extra, tag, status, wall_s, stats,
                         solver=solver, budget=budget)
