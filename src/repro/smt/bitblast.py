"""Bit-blasting: bitvector expressions -> CNF over a :class:`SatSolver`.

Every expression node maps to a little-endian list of SAT literals.
Constants map to the two reserved constant literals, so no clauses are
spent on them.  Floating-point nodes are *not* blastable: encountering
one raises :class:`SolverError` ("fp theory not supported"), which the
tool profiles surface as the paper's Es3 constraint-modeling error.

Division and remainder are supported for constant divisors via the
defining identity ``a == q*c + r  &&  r < c`` computed in extended
width (no wraparound), matching how the bombs use them (``v / 100``,
``v % 10``).
"""

from __future__ import annotations

from ..errors import SolverError
from .expr import Expr, FP_OPS, to_signed
from .sat import SatSolver


class BitBlaster:
    """Tseitin-encodes expressions into a :class:`SatSolver` instance."""

    def __init__(self, solver: SatSolver):
        self.solver = solver
        self._cache: dict[int, list[int]] = {}
        self.var_bits: dict[str, list[int]] = {}
        #: Tseitin gates introduced (fresh SAT variables) — the
        #: bit-blast size metric the observability layer reports.
        self.gates = 0
        # Reserved constant: variable 0 is forced true.
        const_var = solver.new_var()
        self.TRUE_LIT = const_var * 2
        self.FALSE_LIT = const_var * 2 + 1
        solver.add_clause([self.TRUE_LIT])

    # -- gate helpers -----------------------------------------------------

    def _fresh(self) -> int:
        self.gates += 1
        return self.solver.new_var() * 2

    def _gate_and(self, a: int, b: int) -> int:
        if a == self.FALSE_LIT or b == self.FALSE_LIT:
            return self.FALSE_LIT
        if a == self.TRUE_LIT:
            return b
        if b == self.TRUE_LIT:
            return a
        if a == b:
            return a
        if a == (b ^ 1):
            return self.FALSE_LIT
        out = self._fresh()
        add = self.solver.add_clause
        add([a, out ^ 1])
        add([b, out ^ 1])
        add([a ^ 1, b ^ 1, out])
        return out

    def _gate_or(self, a: int, b: int) -> int:
        return self._gate_and(a ^ 1, b ^ 1) ^ 1

    def _gate_xor(self, a: int, b: int) -> int:
        if a == self.FALSE_LIT:
            return b
        if b == self.FALSE_LIT:
            return a
        if a == self.TRUE_LIT:
            return b ^ 1
        if b == self.TRUE_LIT:
            return a ^ 1
        if a == b:
            return self.FALSE_LIT
        if a == (b ^ 1):
            return self.TRUE_LIT
        out = self._fresh()
        add = self.solver.add_clause
        add([a ^ 1, b ^ 1, out ^ 1])
        add([a, b, out ^ 1])
        add([a ^ 1, b, out])
        add([a, b ^ 1, out])
        return out

    def _gate_mux(self, sel: int, then: int, orelse: int) -> int:
        """out = sel ? then : orelse."""
        if sel == self.TRUE_LIT:
            return then
        if sel == self.FALSE_LIT:
            return orelse
        if then == orelse:
            return then
        out = self._fresh()
        add = self.solver.add_clause
        add([sel ^ 1, then ^ 1, out])
        add([sel ^ 1, then, out ^ 1])
        add([sel, orelse ^ 1, out])
        add([sel, orelse, out ^ 1])
        return out

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        s = self._gate_xor(self._gate_xor(a, b), cin)
        cout = self._gate_or(self._gate_and(a, b),
                             self._gate_and(cin, self._gate_xor(a, b)))
        return s, cout

    # -- word-level circuits ---------------------------------------------------

    def _add_bits(self, a: list[int], b: list[int], cin: int | None = None) -> list[int]:
        carry = cin if cin is not None else self.FALSE_LIT
        out = []
        for ai, bi in zip(a, b):
            s, carry = self._full_adder(ai, bi, carry)
            out.append(s)
        return out

    def _neg_bits(self, a: list[int]) -> list[int]:
        inv = [bit ^ 1 for bit in a]
        one = [self.TRUE_LIT] + [self.FALSE_LIT] * (len(a) - 1)
        return self._add_bits(inv, one)

    def _const_bits_value(self, bits: list[int]) -> int | None:
        """Recover the constant a literal vector denotes, or None."""
        value = 0
        for i, bit in enumerate(bits):
            if bit == self.TRUE_LIT:
                value |= 1 << i
            elif bit != self.FALSE_LIT:
                return None
        return value

    def _mul_bits(self, a: list[int], b: list[int]) -> list[int]:
        width = len(a)
        const_a = self._const_bits_value(a)
        if const_a is not None and self._const_bits_value(b) is None:
            a, b = b, a  # iterate over the constant's bits below
        const_b = self._const_bits_value(b)
        if const_b is not None:
            # x * c == -(x * (2^w - c)) mod 2^w: multiplying by the
            # two's complement and negating wins when it has fewer set
            # bits (e.g. c == -1 becomes a single negation instead of
            # width partial-product adder rows).
            comp = ((1 << width) - const_b) & ((1 << width) - 1)
            if const_b and comp.bit_count() + 1 < const_b.bit_count():
                comp_bits = [self.TRUE_LIT if (comp >> i) & 1 else self.FALSE_LIT
                             for i in range(width)]
                return self._neg_bits(self._mul_bits(a, comp_bits))
            b = [self.TRUE_LIT if (const_b >> i) & 1 else self.FALSE_LIT
                 for i in range(width)]
        acc = [self.FALSE_LIT] * width
        for i, bi in enumerate(b):
            if bi == self.FALSE_LIT:
                continue
            partial = [self.FALSE_LIT] * i + [
                self._gate_and(bi, a[j]) for j in range(width - i)
            ]
            acc = self._add_bits(acc, partial)
        return acc

    def _ult_bits(self, a: list[int], b: list[int]) -> int:
        """a < b unsigned: MSB-down comparator."""
        less = self.FALSE_LIT
        for ai, bi in zip(a, b):  # LSB to MSB, rebuild each step
            bit_lt = self._gate_and(ai ^ 1, bi)
            bit_eq = self._gate_xor(ai, bi) ^ 1
            less = self._gate_or(bit_lt, self._gate_and(bit_eq, less))
        return less

    def _eq_bits(self, a: list[int], b: list[int]) -> int:
        acc = self.TRUE_LIT
        for ai, bi in zip(a, b):
            acc = self._gate_and(acc, self._gate_xor(ai, bi) ^ 1)
        return acc

    def _shift_bits(self, a: list[int], amount: list[int], kind: str) -> list[int]:
        """Barrel shifter: kind in {shl, lshr, ashr}.

        The amount is taken modulo the width (ISA semantics): only the
        low log2(width) amount bits select shift stages.
        """
        width = len(a)
        fill = a[-1] if kind == "ashr" else self.FALSE_LIT
        bits = list(a)
        max_stages = max(1, (width - 1).bit_length())
        for stage in range(max_stages):
            sel = amount[stage] if stage < len(amount) else self.FALSE_LIT
            shift = 1 << stage
            new_bits = []
            for i in range(width):
                if kind == "shl":
                    src = bits[i - shift] if i >= shift else self.FALSE_LIT
                else:
                    src = bits[i + shift] if i + shift < width else fill
                new_bits.append(self._gate_mux(sel, src, bits[i]))
            bits = new_bits
        return bits

    def _divmod_const(self, a: list[int], c: int, width: int) -> tuple[list[int], list[int]]:
        """Return (quotient, remainder) bits for a / constant c (c > 0)."""
        ext = width + c.bit_length() + 1
        q = [self._fresh() for _ in range(width)]
        r = [self._fresh() for _ in range(width)]
        zeros = [self.FALSE_LIT] * (ext - width)
        a_ext = a + zeros
        q_ext = q + zeros
        r_ext = r + zeros
        # q*c via shift-add over the set bits of c.
        acc = [self.FALSE_LIT] * ext
        bit = 0
        cc = c
        while cc:
            if cc & 1:
                shifted = [self.FALSE_LIT] * bit + q_ext[: ext - bit]
                acc = self._add_bits(acc, shifted)
            cc >>= 1
            bit += 1
        total = self._add_bits(acc, r_ext)
        self.solver.add_clause([self._eq_bits(total, a_ext)])
        c_bits = [
            self.TRUE_LIT if (c >> i) & 1 else self.FALSE_LIT for i in range(ext)
        ]
        self.solver.add_clause([self._ult_bits(r_ext, c_bits)])
        return q, r

    # -- main dispatch -------------------------------------------------------------

    def blast(self, expr: Expr) -> list[int]:
        """Return the literal vector (LSB first) for *expr*.

        Iterative post-order: trace-length expression DAGs exceed the
        recursion limit.
        """
        cache = self._cache
        stack = [expr]
        while stack:
            node = stack[-1]
            if id(node) in cache:
                stack.pop()
                continue
            pending = [a for a in node.args if id(a) not in cache]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            bits = self._blast(node)
            assert len(bits) == node.width, (node.op, node.width, len(bits))
            cache[id(node)] = bits
        return cache[id(expr)]

    def _const_bits(self, value: int, width: int) -> list[int]:
        return [
            self.TRUE_LIT if (value >> i) & 1 else self.FALSE_LIT
            for i in range(width)
        ]

    def _blast(self, expr: Expr) -> list[int]:
        op = expr.op
        if op == "const":
            return self._const_bits(expr.value, expr.width)
        if op == "var":
            bits = self.var_bits.get(expr.name)
            if bits is None:
                bits = [self._fresh() for _ in range(expr.width)]
                self.var_bits[expr.name] = bits
            return bits
        if op in FP_OPS:
            raise SolverError(f"fp theory not supported by bit-blasting ({op})")
        # All children are already in the cache (post-order walk).
        args = [self._cache[id(a)] for a in expr.args]
        if op == "add":
            return self._add_bits(args[0], args[1])
        if op == "sub":
            return self._add_bits(args[0], [b ^ 1 for b in args[1]], self.TRUE_LIT)
        if op == "mul":
            return self._mul_bits(args[0], args[1])
        if op in ("udiv", "urem"):
            divisor = expr.args[1]
            if not divisor.is_const or divisor.value == 0:
                raise SolverError(f"{op}: non-constant or zero divisor unsupported")
            q, r = self._divmod_const(args[0], divisor.value, expr.width)
            return q if op == "udiv" else r
        if op == "and":
            return [self._gate_and(a, b) for a, b in zip(*args)]
        if op == "or":
            return [self._gate_or(a, b) for a, b in zip(*args)]
        if op == "xor":
            return [self._gate_xor(a, b) for a, b in zip(*args)]
        if op == "bvnot":
            return [a ^ 1 for a in args[0]]
        if op in ("shl", "lshr", "ashr"):
            amount = expr.args[1]
            if amount.is_const:
                return self._const_shift(args[0], amount.value, op)
            return self._shift_bits(args[0], args[1], op)
        if op == "eq":
            return [self._eq_bits(args[0], args[1])]
        if op == "ult":
            return [self._ult_bits(args[0], args[1])]
        if op == "ule":
            return [self._ult_bits(args[1], args[0]) ^ 1]
        if op in ("slt", "sle"):
            a = list(args[0])
            b = list(args[1])
            a[-1] ^= 1  # flip sign bits: signed compare == unsigned compare
            b[-1] ^= 1
            if op == "slt":
                return [self._ult_bits(a, b)]
            return [self._ult_bits(b, a) ^ 1]
        if op == "ite":
            sel = args[0][0]
            return [
                self._gate_mux(sel, t, e) for t, e in zip(args[1], args[2])
            ]
        if op == "extract":
            hi, lo = expr.value >> 16, expr.value & 0xFFFF
            return args[0][lo : hi + 1]
        if op == "concat":
            return args[1] + args[0]
        if op == "zext":
            return args[0] + [self.FALSE_LIT] * (expr.width - expr.args[0].width)
        if op == "sext":
            return args[0] + [args[0][-1]] * (expr.width - expr.args[0].width)
        raise SolverError(f"bitblast: unknown op {op}")

    def _const_shift(self, a: list[int], amount: int, kind: str) -> list[int]:
        width = len(a)
        amount = amount & (width - 1) if width & (width - 1) == 0 else amount % width
        if kind == "shl":
            return [self.FALSE_LIT] * amount + a[: width - amount]
        fill = a[-1] if kind == "ashr" else self.FALSE_LIT
        return a[amount:] + [fill] * amount

    # -- top level ------------------------------------------------------------------

    def assert_true(self, expr: Expr, activation: int | None = None) -> None:
        """Assert a width-1 expression.

        With *activation* (a SAT literal), the assertion is guarded:
        it only holds while the literal is assumed, the MiniSat idiom
        behind both incremental queries and unsat-core extraction.
        """
        if expr.width != 1:
            raise SolverError("assertions must be width 1")
        lit = self.blast(expr)[0]
        if activation is None:
            self.solver.add_clause([lit])
        else:
            self.solver.add_clause([activation ^ 1, lit])

    def extract_model(self, sat_model: list[int]) -> dict[str, int]:
        """Read back variable values from a SAT model."""
        out: dict[str, int] = {}
        for name, bits in self.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                var = lit >> 1
                bit = sat_model[var] ^ (lit & 1)
                value |= (bit & 1) << i
            out[name] = value
        return out
