"""Interval-analysis presolve for the solver.

Before bit-blasting, the solver runs a cheap two-phase analysis:

1. *Refinement*: unary constraints of the forms ``c <= zext(var)``,
   ``zext(var) <= c``, ``var == c`` (and their negations / strict
   variants) shrink the known range of each variable.  These are
   exactly the digit-bound constraints input-parsing code showers onto
   argv bytes.
2. *Evaluation*: every constraint is evaluated over the interval
   domain; a constraint that is *definitely false* proves the whole
   conjunction UNSAT without touching the SAT solver.

The domain tracks the **mathematical** value range ``[lo, hi]`` ⊆ ℤ of
an expression under the invariant that its bit pattern equals the math
value mod 2^width.  Signed comparisons are decidable when the range
fits in the signed domain, unsigned ones when it is non-negative; any
possible wrap widens to ⊤.  The analysis is sound for UNSAT detection
only — it never claims satisfiability.
"""

from __future__ import annotations

from .expr import Expr, to_signed

_TOP = None  # alias for readability: unknown interval


def _full(width: int) -> tuple[int, int]:
    return (0, (1 << width) - 1)


class IntervalAnalysis:
    """One presolve pass over a constraint conjunction."""

    def __init__(self, constraints: list[Expr]):
        self.constraints = constraints
        self.var_ranges: dict[str, tuple[int, int]] = {}
        self._cache: dict[int, tuple[int, int] | None] = {}

    # -- public -----------------------------------------------------------

    def definitely_unsat(self) -> bool:
        """True if some constraint is provably false over intervals."""
        for constraint in self.constraints:
            self._refine(constraint)
        # A variable narrowed to an empty range is already a proof.
        if any(lo > hi for lo, hi in self.var_ranges.values()):
            return True
        for constraint in self.constraints:
            if self._truth(constraint) is False:
                return True
        return False

    # -- refinement ----------------------------------------------------------

    def _var_of(self, node: Expr) -> tuple[str, int] | None:
        """Match ``var`` or ``zext(var)``; returns (name, var width)."""
        if node.is_var:
            return node.name, node.width
        if node.op in ("zext",) and node.args[0].is_var:
            return node.args[0].name, node.args[0].width
        return None

    def _narrow(self, name: str, width: int, lo: int, hi: int) -> None:
        full = _full(width)
        cur = self.var_ranges.get(name, full)
        self.var_ranges[name] = (max(cur[0], lo, 0), min(cur[1], hi, full[1]))

    def _refine(self, constraint: Expr, negated: bool = False) -> None:
        op = constraint.op
        if op == "bvnot" and constraint.width == 1:
            self._refine(constraint.args[0], not negated)
            return
        if op == "and" and constraint.width == 1 and not negated:
            self._refine(constraint.args[0])
            self._refine(constraint.args[1])
            return
        if op not in ("sle", "slt", "ule", "ult", "eq"):
            return
        a, b = constraint.args
        # Only small positive constants refine soundly (their signed and
        # unsigned interpretations agree at every involved width).
        # var-on-right: c OP var
        var = self._var_of(b)
        if var is not None and a.is_const and a.value < (1 << 31):
            name, width = var
            c = a.value
            if op in ("sle", "ule"):
                if not negated:
                    self._narrow(name, width, c, (1 << width) - 1)
                else:  # not (c <= v)  ->  v <= c-1
                    self._narrow(name, width, 0, c - 1)
            elif op in ("slt", "ult"):
                if not negated:
                    self._narrow(name, width, c + 1, (1 << width) - 1)
                else:
                    self._narrow(name, width, 0, c)
            elif op == "eq" and not negated:
                self._narrow(name, width, c, c)
            return
        var = self._var_of(a)
        if var is not None and b.is_const and b.value < (1 << 31):
            name, width = var
            c = b.value
            if op in ("sle", "ule"):
                if not negated:
                    self._narrow(name, width, 0, c)
                else:  # not (v <= c) -> v >= c+1
                    self._narrow(name, width, c + 1, (1 << width) - 1)
            elif op in ("slt", "ult"):
                if not negated:
                    self._narrow(name, width, 0, c - 1)
                else:
                    self._narrow(name, width, c, (1 << width) - 1)
            elif op == "eq" and not negated:
                self._narrow(name, width, c, c)

    # -- interval evaluation ------------------------------------------------------

    def _range(self, node: Expr) -> tuple[int, int] | None:
        """Iterative post-order interval evaluation (deep DAG safe)."""
        cache = self._cache
        if id(node) in cache:
            return cache[id(node)]
        stack = [node]
        while stack:
            cur = stack[-1]
            if id(cur) in cache:
                stack.pop()
                continue
            pending = [a for a in cur.args if id(a) not in cache]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            cache[id(cur)] = self._range_uncached(cur)
        return cache[id(node)]

    def _range_uncached(self, node: Expr) -> tuple[int, int] | None:
        op = node.op
        width = node.width
        if op == "const":
            # Use the signed view so constants like -48 stay small.
            value = to_signed(node.value, width)
            return (value, value)
        if op == "var":
            return self.var_ranges.get(node.name, _full(width))
        if op == "zext":
            inner = self._cache[id(node.args[0])]
            if inner is None or inner[0] < 0:
                return _full(node.args[0].width) if inner is None else None
            return inner
        args = [self._cache[id(a)] for a in node.args]
        if op == "add":
            if None in args:
                return _TOP
            (alo, ahi), (blo, bhi) = args
            return self._fit(alo + blo, ahi + bhi, width)
        if op == "sub":
            if None in args:
                return _TOP
            (alo, ahi), (blo, bhi) = args
            return self._fit(alo - bhi, ahi - blo, width)
        if op == "mul":
            if None in args:
                return _TOP
            (alo, ahi), (blo, bhi) = args
            products = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
            return self._fit(min(products), max(products), width)
        if op == "ite":
            then_r, else_r = self._range(node.args[1]), self._range(node.args[2])
            if then_r is None or else_r is None:
                return _TOP
            return (min(then_r[0], else_r[0]), max(then_r[1], else_r[1]))
        if op == "and" and node.args[1].is_const and width > 1:
            inner = self._range(node.args[0])
            mask = node.args[1].value
            if inner is not None and inner[0] >= 0:
                return (0, min(inner[1], mask))
            return (0, mask)
        if op == "lshr" and node.args[1].is_const:
            inner = self._range(node.args[0])
            shift = node.args[1].value & (width - 1)
            if inner is not None and inner[0] >= 0:
                return (inner[0] >> shift, inner[1] >> shift)
            return _TOP
        if op == "shl" and node.args[1].is_const:
            inner = self._range(node.args[0])
            if inner is None:
                return _TOP
            shift = node.args[1].value & (width - 1)
            return self._fit(inner[0] << shift, inner[1] << shift, width)
        if op in ("urem",) and node.args[1].is_const and node.args[1].value:
            return (0, node.args[1].value - 1)
        return _TOP

    @staticmethod
    def _fit(lo: int, hi: int, width: int) -> tuple[int, int] | None:
        """Keep an interval only if no mod-2^width wrap can occur."""
        bound = 1 << (width - 1)
        if -bound <= lo and hi < (1 << width):
            # Representable without ambiguity: the math value matches
            # either the signed or unsigned interpretation throughout.
            if lo >= 0 or hi < bound:
                return (lo, hi)
        return _TOP

    # -- constraint truth ------------------------------------------------------------

    def _truth(self, constraint: Expr) -> bool | None:
        """Tri-state evaluation of a width-1 expression."""
        op = constraint.op
        if op == "const":
            return bool(constraint.value)
        if op == "bvnot":
            inner = self._truth(constraint.args[0])
            return None if inner is None else not inner
        if op == "and" and constraint.width == 1:
            a, b = (self._truth(x) for x in constraint.args)
            if a is False or b is False:
                return False
            if a is True and b is True:
                return True
            return None
        if op == "or" and constraint.width == 1:
            a, b = (self._truth(x) for x in constraint.args)
            if a is True or b is True:
                return True
            if a is False and b is False:
                return False
            return None
        if op in ("sle", "slt", "ule", "ult", "eq"):
            ra = self._range(constraint.args[0])
            rb = self._range(constraint.args[1])
            if ra is None or rb is None:
                return None
            width = constraint.args[0].width
            bound = 1 << (width - 1)
            signed_safe = ra[0] >= -bound and ra[1] < bound \
                and rb[0] >= -bound and rb[1] < bound
            unsigned_safe = ra[0] >= 0 and rb[0] >= 0
            (alo, ahi), (blo, bhi) = ra, rb
            if op in ("slt", "sle") and not signed_safe:
                return None
            if op in ("ult", "ule") and not unsigned_safe:
                return None
            if op == "eq":
                if not (signed_safe or unsigned_safe):
                    return None
                if ahi < blo or bhi < alo:
                    return False
                if alo == ahi == blo == bhi:
                    return True
                return None
            if op in ("slt", "ult"):
                if ahi < blo:
                    return True
                if alo >= bhi:
                    return False
            else:  # sle / ule
                if ahi <= blo:
                    return True
                if alo > bhi:
                    return False
            return None
        return None


def presolve_unsat(constraints: list[Expr], max_nodes: int = 150_000) -> bool:
    """True if the conjunction is provably UNSAT by interval analysis.

    Skipped for huge constraint sets — those either fold under the
    node-budget guard or genuinely need the SAT solver.
    """
    if sum(c.size() for c in constraints) > max_nodes:
        return False
    return IntervalAnalysis(constraints).definitely_unsat()
