"""CDCL SAT solver.

A from-scratch conflict-driven clause-learning solver with two-watched
literals, VSIDS-style activities, first-UIP learning and Luby restarts.
It is the engine under the bit-blaster and stands in for MiniSat/STP/Z3
in the paper's tool stacks.

Literal encoding: variable ``v`` (0-based) has positive literal ``2v``
and negative literal ``2v+1``; ``lit ^ 1`` negates.
"""

from __future__ import annotations

import heapq

from ..errors import SolverError

UNASSIGNED = -1


def _luby(x: int) -> int:
    """The Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed."""
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) // 2
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """One-shot CDCL solver: add clauses, then :meth:`solve`."""

    def __init__(self, max_conflicts: int = 200_000, max_clauses: int = 2_000_000):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.watches: list[list[int]] = []  # lit -> clause indices
        self.values: list[int] = []         # var -> 0/1/UNASSIGNED
        self.levels: list[int] = []
        self.reasons: list[int] = []        # var -> clause idx or -1
        self.activity: list[float] = []
        self.trail: list[int] = []          # assigned literals in order
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.max_conflicts = max_conflicts
        self.max_clauses = max_clauses
        self._var_inc = 1.0
        self._ok = True
        # Lifetime search statistics (across re-invocations of solve),
        # read by the observability layer after each query.
        self.decisions = 0
        self.conflicts = 0
        self.restarts = 0
        self.learnt = 0
        #: Lazy max-heap of (-activity, var); stale entries are skipped
        #: at pop time (standard VSIDS order-heap trick).
        self._order: list[tuple[float, int]] = []

    # -- construction -----------------------------------------------------

    def new_var(self) -> int:
        var = self.num_vars
        self.num_vars += 1
        self.values.append(UNASSIGNED)
        self.levels.append(0)
        self.reasons.append(-1)
        self.activity.append(0.0)
        self.watches.append([])
        self.watches.append([])
        heapq.heappush(self._order, (0.0, var))
        return var

    def add_clause(self, lits: list[int]) -> None:
        """Add a clause of literals (see module docstring for encoding)."""
        if not self._ok:
            return
        if len(self.clauses) >= self.max_clauses:
            raise SolverError("clause budget exceeded")
        # Deduplicate and detect tautologies.
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if lit ^ 1 in seen:
                return  # tautology
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return
        if len(out) == 1:
            if not self._enqueue(out[0], -1):
                self._ok = False
            return
        idx = len(self.clauses)
        self.clauses.append(out)
        self.watches[out[0]].append(idx)
        self.watches[out[1]].append(idx)

    # -- assignment ---------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self.values[lit >> 1]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int) -> bool:
        var = lit >> 1
        desired = (lit & 1) ^ 1
        value = self.values[var]
        if value != UNASSIGNED:
            return value == desired
        self.values[var] = desired
        self.levels[var] = len(self.trail_lim)
        self.reasons[var] = reason
        self.trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    # -- propagation ----------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation; returns conflicting clause index or -1."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            false_lit = lit ^ 1
            watch_list = self.watches[false_lit]
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = self.clauses[ci]
                # Ensure false_lit is at position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._lit_value(first) == 1:
                    i += 1
                    continue
                # Find a new literal to watch.
                moved = False
                for k in range(2, len(clause)):
                    if self._lit_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[clause[1]].append(ci)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._lit_value(first) == 0:
                    self.qhead = len(self.trail)
                    return ci
                self._enqueue(first, ci)
                i += 1
        return -1

    # -- conflict analysis --------------------------------------------------------

    def _bump(self, var: int) -> None:
        self.activity[var] += self._var_inc
        if self.activity[var] > 1e100:
            for v in range(self.num_vars):
                self.activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heapq.heappush(self._order, (-self.activity[var], var))

    def _analyze(self, conflict: int) -> tuple[list[int], int]:
        """First-UIP learning; returns (learnt clause, backtrack level)."""
        learnt = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        lit = -1
        index = len(self.trail) - 1
        clause_idx = conflict
        while True:
            clause = self.clauses[clause_idx]
            start = 1 if lit != -1 else 0
            for q in clause[start:]:
                var = q >> 1
                if not seen[var] and self.levels[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.levels[var] == self._decision_level():
                        counter += 1
                    else:
                        learnt.append(q)
            # Find the next literal to resolve on.
            while True:
                lit = self.trail[index]
                index -= 1
                if seen[lit >> 1]:
                    break
            counter -= 1
            seen[lit >> 1] = False
            if counter == 0:
                break
            clause_idx = self.reasons[lit >> 1]
        learnt[0] = lit ^ 1
        if len(learnt) == 1:
            return learnt, 0
        # Backtrack to the second-highest level in the clause.
        max_i = 1
        for i in range(2, len(learnt)):
            if self.levels[learnt[i] >> 1] > self.levels[learnt[max_i] >> 1]:
                max_i = i
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, self.levels[learnt[1] >> 1]

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self.trail_lim[level]
        for lit in reversed(self.trail[limit:]):
            var = lit >> 1
            self.values[var] = UNASSIGNED
            self.reasons[var] = -1
            heapq.heappush(self._order, (-self.activity[var], var))
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.qhead = len(self.trail)

    # -- decisions --------------------------------------------------------------

    def _decide(self) -> int:
        order = self._order
        while order:
            _, var = heapq.heappop(order)
            if self.values[var] == UNASSIGNED:
                return var * 2 + 1  # default polarity: false
        # Heap exhausted by staleness: fall back to a scan once.
        for var in range(self.num_vars):
            if self.values[var] == UNASSIGNED:
                heapq.heappush(order, (-self.activity[var], var))
                return var * 2 + 1
        return -1

    # -- main loop ------------------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> list[int] | None:
        """Solve; returns a model (var -> 0/1 list) or None if UNSAT.

        Raises :class:`SolverError` when the conflict budget is exhausted
        (counted per call, so a persistent solver gets a fresh budget
        each query).

        The solver may be re-invoked after :meth:`add_clause` calls (e.g.
        blocking clauses for model enumeration); it restarts from the
        root decision level with all learnt clauses retained.

        *assumptions* are literals enqueued as pseudo-decisions (MiniSat
        style: one decision level per assumption, installed before any
        real decision).  A conflict that depends on them yields ``None``
        without poisoning the instance — the next call, under different
        assumptions, sees all learnt clauses and VSIDS activity from
        this one.  On return the solver is backtracked to level 0, so
        clauses may be added and the solver re-queried freely.
        """
        assumptions = list(assumptions or [])
        self._backtrack(0)
        self.qhead = 0  # re-propagate the root trail over any new clauses
        if not self._ok:
            return None
        conflicts = 0
        restart_i = 1
        restart_budget = 100 * _luby(restart_i)
        since_restart = 0
        if self._propagate() != -1:
            return None
        while True:
            conflict = self._propagate()
            if conflict != -1:
                conflicts += 1
                self.conflicts += 1
                since_restart += 1
                if conflicts > self.max_conflicts:
                    raise SolverError(
                        f"conflict budget exceeded ({self.max_conflicts})"
                    )
                if self._decision_level() == 0:
                    return None
                learnt, back_level = self._analyze(conflict)
                self.learnt += 1
                # Backtracking below the assumption prefix is fine: the
                # decision loop re-installs the missing assumptions.
                self._backtrack(back_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], -1):
                        return None
                else:
                    idx = len(self.clauses)
                    if idx >= self.max_clauses:
                        raise SolverError("clause budget exceeded")
                    self.clauses.append(learnt)
                    self.watches[learnt[0]].append(idx)
                    self.watches[learnt[1]].append(idx)
                    self._enqueue(learnt[0], idx)
                self._var_inc *= 1.05
                continue
            if since_restart >= restart_budget:
                since_restart = 0
                restart_i += 1
                restart_budget = 100 * _luby(restart_i)
                self.restarts += 1
                self._backtrack(0)
                continue
            if self._decision_level() < len(assumptions):
                lit = assumptions[self._decision_level()]
                value = self._lit_value(lit)
                if value == 0:
                    # Assumption contradicts the current (learnt) state:
                    # UNSAT under these assumptions only.
                    self._backtrack(0)
                    return None
                self.trail_lim.append(len(self.trail))
                if value == UNASSIGNED:
                    self._enqueue(lit, -1)
                # Already-true assumptions still get a (dummy) level so
                # that level index == assumption index stays invariant.
                continue
            lit = self._decide()
            if lit == -1:
                model = [1 if v == 1 else 0 for v in self.values]
                self._backtrack(0)
                return model
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, -1)
