"""Solver facade: satisfiability checking over expression constraints.

:class:`Solver` is the Z3/STP stand-in the tool profiles call.  Each
:meth:`check` builds a fresh SAT instance from the asserted constraints
(plus optional extra assumptions), so the object behaves like an
incremental solver without the bookkeeping.

Budgets are first-class: ``max_conflicts`` and ``max_clauses`` bound
the work per query, and exhausting them raises :class:`SolverError`,
which the evaluation harness classifies as the paper's ``E`` outcome
(abnormal exit / no feedback within the time budget).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import obs
from ..errors import SolverError
from .bitblast import BitBlaster
from .expr import Expr, eval_expr, mk_bool_and
from .sat import SatSolver


@dataclass
class CheckResult:
    """Outcome of one satisfiability query."""

    status: str                      # "sat" | "unsat"
    model: dict[str, int] | None = None

    @property
    def sat(self) -> bool:
        return self.status == "sat"


class Solver:
    """Accumulates boolean (width-1) constraints and answers queries."""

    def __init__(self, max_conflicts: int = 100_000, max_clauses: int = 1_500_000,
                 max_nodes: int | None = None):
        self.constraints: list[Expr] = []
        self.max_conflicts = max_conflicts
        self.max_clauses = max_clauses
        #: Optional cap on the constraint DAG size; queries over it fail
        #: immediately with a budget error (cheap detection of
        #: crypto-scale formulas before any encoding work).
        self.max_nodes = max_nodes
        self.queries = 0

    def add(self, expr: Expr) -> None:
        if expr.width != 1:
            raise SolverError("constraints must be width 1")
        self.constraints.append(expr)

    def extend(self, exprs) -> None:
        for expr in exprs:
            self.add(expr)

    def clone(self) -> "Solver":
        other = Solver(self.max_conflicts, self.max_clauses)
        other.constraints = list(self.constraints)
        return other

    # -- queries -------------------------------------------------------------

    def check(self, extra: list[Expr] | None = None) -> CheckResult:
        """Check satisfiability of the asserted constraints (+ *extra*).

        Raises :class:`SolverError` on budget exhaustion or when a
        constraint needs a theory the bit-blaster lacks (FP, symbolic
        divisors).
        """
        self.queries += 1
        if obs.active() is None:
            return self._check(extra)
        t0 = time.perf_counter()
        status = "error"
        try:
            result = self._check(extra)
            status = result.status
            return result
        finally:
            obs.count("smt.queries")
            obs.count(f"smt.{status}")
            obs.observe("smt.solve_s", time.perf_counter() - t0)

    def _check(self, extra: list[Expr] | None = None) -> CheckResult:
        todo = self.constraints + list(extra or [])
        # Fast constant paths.
        pending = []
        for expr in todo:
            if expr.is_const:
                if not expr.value:
                    return CheckResult("unsat")
                continue
            pending.append(expr)
        if not pending:
            return CheckResult("sat", {})
        from .intervals import presolve_unsat

        if presolve_unsat(pending):
            return CheckResult("unsat")
        if self.max_nodes is not None:
            total = sum(e.size() for e in pending)
            if total > self.max_nodes:
                raise SolverError(
                    f"constraint model too large ({total} nodes > {self.max_nodes})"
                )
        sat = SatSolver(self.max_conflicts, self.max_clauses)
        blaster = BitBlaster(sat)
        try:
            try:
                for expr in pending:
                    blaster.assert_true(expr)
            except RecursionError:
                raise SolverError("formula too deep to encode") from None
            model = sat.solve()
        finally:
            report_sat_stats(sat, blaster)
        if model is None:
            return CheckResult("unsat")
        return CheckResult("sat", blaster.extract_model(model))

    def check_with_cache(self, extra: list[Expr], cached_model: dict[str, int] | None
                         ) -> CheckResult:
        """Like :meth:`check`, but first test *cached_model* by evaluation.

        Concolic engines keep the concrete input of the current round
        around; if it already satisfies the new constraint set, no SAT
        query is needed — the standard "concretization cache" trick.
        """
        if cached_model is not None:
            todo = self.constraints + list(extra)
            try:
                if all(eval_expr(e, cached_model) for e in todo):
                    return CheckResult("sat", dict(cached_model))
            except SolverError:
                pass
        return self.check(extra)

    def conjunction(self, extra: list[Expr] | None = None) -> Expr:
        """The asserted constraints as a single boolean expression."""
        return mk_bool_and(*(self.constraints + list(extra or [])))


def report_sat_stats(sat: SatSolver, blaster: BitBlaster | None = None) -> None:
    """Flush one SAT instance's search statistics to the recorder.

    Called after every query from :meth:`Solver.check` and from engines
    that drive a :class:`SatSolver` directly (model enumeration); the
    counters accumulate across queries, so ``smt.conflicts`` is the
    total CDCL conflict work of a whole run.
    """
    rec = obs.active()
    if rec is None:
        return
    rec.count("smt.conflicts", sat.conflicts)
    rec.count("smt.decisions", sat.decisions)
    rec.count("smt.restarts", sat.restarts)
    rec.observe("smt.clauses", len(sat.clauses))
    if blaster is not None:
        rec.count("smt.gates", blaster.gates)
        rec.observe("smt.gates_per_query", blaster.gates)


def solve(constraints: list[Expr], max_conflicts: int = 100_000,
          max_clauses: int = 1_500_000) -> CheckResult:
    """One-shot satisfiability check of *constraints*."""
    solver = Solver(max_conflicts, max_clauses)
    solver.extend(constraints)
    return solver.check()
