"""Solver facade: satisfiability checking over expression constraints.

:class:`Solver` is the Z3/STP stand-in the tool profiles call.  Each
:meth:`check` builds a fresh SAT instance from the asserted constraints
(plus optional extra assumptions), so the object behaves like an
incremental solver without the bookkeeping.

Budgets are first-class: ``max_conflicts`` and ``max_clauses`` bound
the work per query, and exhausting them raises :class:`SolverError`,
which the evaluation harness classifies as the paper's ``E`` outcome
(abnormal exit / no feedback within the time budget).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .. import obs
from ..obs import profile
from ..errors import SolverError
from . import querylog
from .bitblast import BitBlaster
from .expr import Expr, eval_expr, mk_bool_and
from .sat import SatSolver


@dataclass
class CheckResult:
    """Outcome of one satisfiability query."""

    status: str                      # "sat" | "unsat"
    model: dict[str, int] | None = None

    @property
    def sat(self) -> bool:
        return self.status == "sat"


class Solver:
    """Accumulates boolean (width-1) constraints and answers queries."""

    def __init__(self, max_conflicts: int = 100_000, max_clauses: int = 1_500_000,
                 max_nodes: int | None = None):
        self.constraints: list[Expr] = []
        #: Provenance tag per asserted constraint (``(pc, kind)`` from
        #: the concolic engine, or None) — consumed by :func:`unsat_core`.
        self.tags: list = []
        self.max_conflicts = max_conflicts
        self.max_clauses = max_clauses
        #: Optional cap on the constraint DAG size; queries over it fail
        #: immediately with a budget error (cheap detection of
        #: crypto-scale formulas before any encoding work).
        self.max_nodes = max_nodes
        self.queries = 0
        # CDCL effort of the most recent query (conflicts/gates/learnt),
        # consumed by the attribution profiler's query telemetry.
        self._last_query_stats: dict[str, int] = {}

    def add(self, expr: Expr, tag=None) -> None:
        if expr.width != 1:
            raise SolverError("constraints must be width 1")
        self.constraints.append(expr)
        self.tags.append(tag)

    def extend(self, exprs) -> None:
        for expr in exprs:
            self.add(expr)

    def clone(self) -> "Solver":
        other = Solver(self.max_conflicts, self.max_clauses, self.max_nodes)
        other.constraints = list(self.constraints)
        other.tags = list(self.tags)
        return other

    def tagged(self) -> list:
        """The asserted constraints as ``(tag, expr)`` pairs."""
        return list(zip(self.tags, self.constraints))

    # -- queries -------------------------------------------------------------

    def check(self, extra: list[Expr] | None = None,
              tag=None) -> CheckResult:
        """Check satisfiability of the asserted constraints (+ *extra*).

        *tag* is the ``(pc, kind)`` constraint tag of the guard this
        query decides; when an attribution profiler is installed the
        query's latency and CDCL effort are bucketed under it.

        Raises :class:`SolverError` on budget exhaustion or when a
        constraint needs a theory the bit-blaster lacks (FP, symbolic
        divisors).
        """
        self.queries += 1
        if obs.active() is None and profile.active() is None \
                and querylog.active() is None:
            return self._check(extra)
        t0 = time.perf_counter()
        status = "error"
        try:
            result = self._check(extra)
            status = result.status
            return result
        finally:
            wall = time.perf_counter() - t0
            obs.count("smt.queries")
            obs.count(f"smt.{status}")
            obs.observe("smt.solve_s", wall)
            stats = self._last_query_stats
            profile.record_query(tag, wall, status,
                                 conflicts=stats.get("conflicts", 0),
                                 gates=stats.get("gates", 0),
                                 learnt=stats.get("learnt", 0))
            querylog.record_check(
                self.tagged(), extra, tag, status, wall, stats,
                solver="oneshot", budget=self._budget())

    def _budget(self) -> dict:
        """The effort caps that shape this solver's verdicts (part of a
        recorded query's content address)."""
        return {"max_conflicts": self.max_conflicts,
                "max_clauses": self.max_clauses,
                "max_nodes": self.max_nodes}

    def _check(self, extra: list[Expr] | None = None) -> CheckResult:
        self._last_query_stats = {}
        todo = self.constraints + list(extra or [])
        # Fast constant paths.
        pending = []
        for expr in todo:
            if expr.is_const:
                if not expr.value:
                    return CheckResult("unsat")
                continue
            pending.append(expr)
        if not pending:
            return CheckResult("sat", {})
        from .intervals import presolve_unsat

        if presolve_unsat(pending):
            return CheckResult("unsat")
        if self.max_nodes is not None:
            total = sum(e.size() for e in pending)
            if total > self.max_nodes:
                raise SolverError(
                    f"constraint model too large ({total} nodes > {self.max_nodes})"
                )
        sat = SatSolver(self.max_conflicts, self.max_clauses)
        blaster = BitBlaster(sat)
        try:
            try:
                for expr in pending:
                    blaster.assert_true(expr)
            except RecursionError:
                raise SolverError("formula too deep to encode") from None
            model = sat.solve()
        finally:
            self._last_query_stats = report_sat_stats(sat, blaster)
        if model is None:
            return CheckResult("unsat")
        return CheckResult("sat", blaster.extract_model(model))

    def check_with_cache(self, extra: list[Expr], cached_model: dict[str, int] | None
                         ) -> CheckResult:
        """Like :meth:`check`, but first test *cached_model* by evaluation.

        Concolic engines keep the concrete input of the current round
        around; if it already satisfies the new constraint set, no SAT
        query is needed — the standard "concretization cache" trick.
        """
        if cached_model is not None:
            todo = self.constraints + list(extra)
            try:
                if all(eval_expr(e, cached_model) for e in todo):
                    return CheckResult("sat", dict(cached_model))
            except SolverError:
                pass
        return self.check(extra)

    def conjunction(self, extra: list[Expr] | None = None) -> Expr:
        """The asserted constraints as a single boolean expression."""
        return mk_bool_and(*(self.constraints + list(extra or [])))


class IncrementalSolver:
    """Incremental satisfiability over a growing path prefix.

    Keeps one persistent :class:`SatSolver` + :class:`BitBlaster` pair
    alive across queries.  Prefix constraints added with
    :meth:`assert_expr` are Tseitin-encoded exactly once (the blaster's
    cache is keyed by interned-node ``id``, so shared subterms are also
    shared across queries) and asserted as permanent unit clauses.  Each
    :meth:`check` encodes only the *extra* constraints, guards them
    behind a fresh activation literal, and answers via
    ``SatSolver.solve(assumptions=[activation])`` — learnt clauses and
    VSIDS activity carry over from query to query.  After the query the
    activation literal is permanently negated, retiring the extra
    constraints while keeping every clause learnt under them sound.

    Budget/staging semantics deliberately mirror :class:`Solver.check`
    query for query (constant short-circuits, interval presolve, the
    ``max_nodes`` guard, sticky encode errors), so driving the concolic
    engine with either solver yields the same outcomes.
    """

    def __init__(self, max_conflicts: int = 100_000, max_clauses: int = 1_500_000,
                 max_nodes: int | None = None):
        self.max_conflicts = max_conflicts
        self.max_clauses = max_clauses
        self.max_nodes = max_nodes
        self.queries = 0
        self._sat: SatSolver | None = None
        self._blaster: BitBlaster | None = None
        #: Non-constant prefix constraints, in assertion order; the
        #: first ``_encoded`` of them are already in the SAT instance.
        self._prefix: list[Expr] = []
        self._prefix_tags: list = []
        #: Constant-false assertions, kept (with their tags) only so
        #: :meth:`tagged` can name them in an unsat core.
        self._const_false: list = []
        self._encoded = 0
        self._prefix_nodes = 0
        self._prefix_false = False
        #: First encode failure over the prefix (fp theory, symbolic
        #: divisor, depth): re-raised verbatim on every later query,
        #: matching the one-shot solver re-hitting it per query.
        self._encode_error: str | None = None
        # Stat snapshots so the observability counters report per-query
        # deltas even though the underlying instance accumulates.
        self._last_conflicts = 0
        self._last_decisions = 0
        self._last_restarts = 0
        self._last_gates = 0
        self._last_learnt = 0
        self._last_query_stats: dict[str, int] = {}

    # -- prefix ------------------------------------------------------------

    def assert_expr(self, expr: Expr, tag=None) -> None:
        """Permanently assert a width-1 constraint (lazily encoded)."""
        if expr.width != 1:
            raise SolverError("constraints must be width 1")
        if expr.is_const:
            if not expr.value:
                self._prefix_false = True
                self._const_false.append((tag, expr))
            return
        self._prefix.append(expr)
        self._prefix_tags.append(tag)
        self._prefix_nodes += expr.size()

    def extend(self, exprs) -> None:
        for expr in exprs:
            self.assert_expr(expr)

    def tagged(self) -> list:
        """The asserted prefix as ``(tag, expr)`` pairs (incl. constants)."""
        return list(self._const_false) + list(zip(self._prefix_tags, self._prefix))

    # -- queries -----------------------------------------------------------

    def check(self, extra: list[Expr] | Expr | None = None,
              tag=None) -> CheckResult:
        """Check the asserted prefix plus *extra* (this query only).

        *tag* is the ``(pc, kind)`` tag of the negated guard, fed to
        the attribution profiler's per-query telemetry when installed.

        Raises :class:`SolverError` exactly where :meth:`Solver.check`
        would: budget exhaustion or an unsupported theory anywhere in
        prefix + extra.
        """
        if isinstance(extra, Expr):
            extra = [extra]
        self.queries += 1
        if obs.active() is None and profile.active() is None \
                and querylog.active() is None:
            return self._check(list(extra or []))
        t0 = time.perf_counter()
        status = "error"
        try:
            result = self._check(list(extra or []))
            status = result.status
            return result
        finally:
            wall = time.perf_counter() - t0
            obs.count("smt.queries")
            obs.count(f"smt.{status}")
            obs.observe("smt.solve_s", wall)
            stats = self._last_query_stats
            profile.record_query(tag, wall, status,
                                 conflicts=stats.get("conflicts", 0),
                                 gates=stats.get("gates", 0),
                                 learnt=stats.get("learnt", 0))
            querylog.record_check(
                self.tagged(), list(extra or []), tag, status, wall, stats,
                solver="incremental",
                budget={"max_conflicts": self.max_conflicts,
                        "max_clauses": self.max_clauses,
                        "max_nodes": self.max_nodes})

    def _check(self, extra: list[Expr]) -> CheckResult:
        self._last_query_stats = {}
        if self._prefix_false:
            return CheckResult("unsat")
        pending: list[Expr] = []
        for expr in extra:
            if expr.width != 1:
                raise SolverError("constraints must be width 1")
            if expr.is_const:
                if not expr.value:
                    return CheckResult("unsat")
                continue
            pending.append(expr)
        if not self._prefix and not pending:
            return CheckResult("sat", {})
        from .intervals import presolve_unsat

        if presolve_unsat(self._prefix + pending):
            return CheckResult("unsat")
        if self.max_nodes is not None:
            total = self._prefix_nodes + sum(e.size() for e in pending)
            if total > self.max_nodes:
                raise SolverError(
                    f"constraint model too large ({total} nodes > {self.max_nodes})"
                )
        obs.count("smt.assumption_queries")
        sat, blaster = self._materialize()
        try:
            bits: list[int] = []
            try:
                for expr in pending:
                    bits.append(blaster.blast(expr)[0])
            except RecursionError:
                raise SolverError("formula too deep to encode") from None
            assumptions: list[int] = []
            activation = None
            if bits:
                activation = sat.new_var() * 2
                for lit in bits:
                    sat.add_clause([activation ^ 1, lit])
                assumptions.append(activation)
            model = sat.solve(assumptions)
            if activation is not None:
                # Retire this query's constraints for good; clauses
                # learnt under the activation stay sound (they contain
                # its negation and are now satisfied).
                sat.add_clause([activation ^ 1])
        finally:
            self._last_query_stats = self._report_stats()
        if model is None:
            return CheckResult("unsat")
        return CheckResult("sat", blaster.extract_model(model))

    # -- internals ---------------------------------------------------------

    def _materialize(self) -> tuple[SatSolver, BitBlaster]:
        """Encode any still-pending prefix constraints, exactly once."""
        if self._sat is None:
            self._sat = SatSolver(self.max_conflicts, self.max_clauses)
            self._blaster = BitBlaster(self._sat)
        if self._encode_error is not None:
            raise SolverError(self._encode_error)
        obs.count("smt.prefix_reuse", self._encoded)
        while self._encoded < len(self._prefix):
            expr = self._prefix[self._encoded]
            try:
                try:
                    self._blaster.assert_true(expr)
                except RecursionError:
                    raise SolverError("formula too deep to encode") from None
            except SolverError as err:
                self._encode_error = str(err)
                raise
            self._encoded += 1
        return self._sat, self._blaster

    def _report_stats(self) -> dict[str, int]:
        sat, blaster = self._sat, self._blaster
        stats = {
            "conflicts": sat.conflicts - self._last_conflicts,
            "decisions": sat.decisions - self._last_decisions,
            "restarts": sat.restarts - self._last_restarts,
            "gates": blaster.gates - self._last_gates,
            "learnt": sat.learnt - self._last_learnt,
        }
        self._last_conflicts = sat.conflicts
        self._last_decisions = sat.decisions
        self._last_restarts = sat.restarts
        self._last_gates = blaster.gates
        self._last_learnt = sat.learnt
        rec = obs.active()
        if rec is None:
            return stats
        rec.count("smt.conflicts", stats["conflicts"])
        rec.count("smt.decisions", stats["decisions"])
        rec.count("smt.restarts", stats["restarts"])
        rec.count("smt.learnt", stats["learnt"])
        rec.observe("smt.clauses", len(sat.clauses))
        rec.count("smt.gates", stats["gates"])
        rec.observe("smt.gates_per_query", stats["gates"])
        return stats


def report_sat_stats(sat: SatSolver,
                     blaster: BitBlaster | None = None) -> dict[str, int]:
    """Flush one SAT instance's search statistics to the recorder.

    Called after every query from :meth:`Solver.check` and from engines
    that drive a :class:`SatSolver` directly (model enumeration); the
    counters accumulate across queries, so ``smt.conflicts`` is the
    total CDCL conflict work of a whole run.  Returns the stats so the
    caller can attach them to per-query telemetry.
    """
    stats = {
        "conflicts": sat.conflicts,
        "decisions": sat.decisions,
        "restarts": sat.restarts,
        "learnt": sat.learnt,
        "gates": blaster.gates if blaster is not None else 0,
    }
    rec = obs.active()
    if rec is None:
        return stats
    rec.count("smt.conflicts", sat.conflicts)
    rec.count("smt.decisions", sat.decisions)
    rec.count("smt.restarts", sat.restarts)
    rec.count("smt.learnt", sat.learnt)
    rec.observe("smt.clauses", len(sat.clauses))
    if blaster is not None:
        rec.count("smt.gates", blaster.gates)
        rec.observe("smt.gates_per_query", blaster.gates)
    return stats


def solve(constraints: list[Expr], max_conflicts: int = 100_000,
          max_clauses: int = 1_500_000) -> CheckResult:
    """One-shot satisfiability check of *constraints*."""
    solver = Solver(max_conflicts, max_clauses)
    solver.extend(constraints)
    return solver.check()


def unsat_core(tagged, max_conflicts: int = 100_000,
               max_clauses: int = 1_500_000):
    """Minimized unsat core over *tagged* ``(tag, expr)`` constraints.

    Returns the tags of an unsatisfiable subset (deletion-minimized:
    dropping any single member makes it satisfiable), or ``None`` when
    the conjunction is satisfiable.  Assumption-based: each constraint
    is guarded behind its own activation literal and queried via
    ``SatSolver.solve(assumptions=)``, so the deletion loop reuses one
    SAT instance and every clause learnt along the way.

    Raises :class:`SolverError` on budget exhaustion or an
    unencodable theory, like any other query.
    """
    guarded: list = []  # (tag, activation literal)
    sat = SatSolver(max_conflicts, max_clauses)
    blaster = BitBlaster(sat)
    for tag, expr in tagged:
        if expr.width != 1:
            raise SolverError("constraints must be width 1")
        if expr.is_const:
            if not expr.value:
                return [tag]  # constant false is a core by itself
            continue
        activation = sat.new_var() * 2
        try:
            blaster.assert_true(expr, activation)
        except RecursionError:
            raise SolverError("formula too deep to encode") from None
        guarded.append((tag, activation))
    obs.count("prov.core_queries")
    if sat.solve([act for _, act in guarded]) is not None:
        return None
    # Deletion minimization: try dropping each member; keep the drop
    # whenever the rest stays UNSAT.
    core = guarded
    i = 0
    while i < len(core):
        trial = core[:i] + core[i + 1:]
        obs.count("prov.core_queries")
        if sat.solve([act for _, act in trial]) is None:
            core = trial
        else:
            i += 1
    return [tag for tag, _ in core]
