"""Local-search solver for constraint sets containing floating-point ops.

Bit-blasting IEEE semantics is out of reach for the 2017-era tool
stacks the paper evaluates (their Table II shows E/Es3 on the FP rows).
This module implements the pragmatic alternative the extension tool
(REXX) uses: treat the path constraint as an executable predicate (the
concrete evaluator understands every node, FP included) and search the
input space for a model.

The search is deterministic: a seeded xorshift generator drives
sampling, and a fixed battery of boundary patterns (0, denormals, ULP
neighborhoods of powers of two, small integers) is tried first —
boundary values are where FP-only solutions live, e.g. the paper's
``1024 + x == 1024 && x > 0``.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable

from .expr import Expr, eval_expr

#: Single-precision boundary bit patterns tried first.  Ordered so that
#: *decimal-renderable* values come before denormals: a found model is
#: often rendered back into a decimal argv string, and 1e-45 survives
#: that round trip as 0.0.
_F32_SPECIALS = [
    0x3727C5AC,             # 1e-5
    0x38D1B717,             # 1e-4
    0x3A83126F,             # 1e-3
    0x358637BD,             # 1e-6
    0x33D6BF95,             # 1e-7
    0x00000000,             # +0
    0x3F800000,             # 1.0
    0x44800000,             # 1024.0
    0x7F7FFFFF,             # max finite
    0x00000001,             # smallest denormal
    0x80000001,             # -denormal
    0xBF800000,             # -1.0
]


def _f64_from_f32(bits32: int) -> int:
    (value,) = struct.unpack("<f", struct.pack("<I", bits32 & 0xFFFFFFFF))
    return struct.unpack("<Q", struct.pack("<d", value))[0]


class _XorShift:
    """Deterministic 64-bit xorshift* generator (no global RNG use)."""

    def __init__(self, seed: int):
        self.state = (seed or 1) & ((1 << 64) - 1)

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & ((1 << 64) - 1)
        x ^= x >> 7
        x ^= (x << 17) & ((1 << 64) - 1)
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & ((1 << 64) - 1)


def _satisfied(constraints: list[Expr], model: dict[str, int]) -> int:
    count = 0
    for expr in constraints:
        if eval_expr(expr, model):
            count += 1
    return count


def search_fp_model(
    constraints: list[Expr],
    var_widths: dict[str, int],
    candidates: Iterable[dict[str, int]] = (),
    budget: int = 4000,
    seed: int = 0x5EED,
) -> dict[str, int] | None:
    """Search for a model of *constraints* (FP nodes allowed).

    *candidates* are caller-supplied starting points (e.g. models of the
    non-FP part of the path constraint); they are evaluated first, then
    boundary patterns, then seeded random sampling with greedy bit-flip
    refinement.  Returns a model dict or None within *budget* evaluations.
    """
    if not constraints:
        return {}
    target = len(constraints)
    rng = _XorShift(seed)
    evals = 0

    def good(model: dict[str, int]) -> bool:
        nonlocal evals
        evals += 1
        return _satisfied(constraints, model) == target

    pool: list[dict[str, int]] = [dict(c) for c in candidates]
    pool.append({name: 0 for name in var_widths})
    # Boundary battery: one variable at a time gets a special pattern.
    for name, width in var_widths.items():
        for pattern in _F32_SPECIALS:
            value = pattern if width <= 32 else _f64_from_f32(pattern)
            pool.append({name: value & ((1 << width) - 1)})

    best: dict[str, int] | None = None
    best_score = -1
    for model in pool:
        full = {n: model.get(n, 0) for n in var_widths}
        if evals >= budget:
            return None
        score = _satisfied(constraints, full)
        evals += 1
        if score == target:
            return full
        if score > best_score:
            best_score = score
            best = full

    # Random sampling + greedy single-bit refinement from the best point.
    while evals < budget:
        model = {
            name: rng.next() & ((1 << width) - 1)
            for name, width in var_widths.items()
        }
        if good(model):
            return model
        if best is not None:
            candidate = dict(best)
            name = sorted(var_widths)[rng.next() % max(len(var_widths), 1)]
            bit = rng.next() % var_widths[name]
            candidate[name] ^= 1 << bit
            score = _satisfied(constraints, candidate)
            evals += 1
            if score == target:
                return candidate
            if score >= best_score:
                best_score = score
                best = candidate
    return None
