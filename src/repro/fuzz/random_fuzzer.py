"""Random-testing baseline (the paper's Section I comparison point).

Concolic execution is motivated as outperforming random testing on
small programs; this module provides the counterpart: a deterministic
random fuzzer that throws argv strings at a binary and reports whether
(and after how many executions) the bomb fires.  The benchmark suite
runs it over the dataset with a budget comparable to the concolic
tools' round budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binfmt import Image
from ..vm import Environment, Machine

_PRINTABLE = bytes(range(0x20, 0x7F))
_DIGITS = b"0123456789"


class _XorShift:
    def __init__(self, seed: int):
        self.state = (seed or 1) & ((1 << 64) - 1)

    def next(self) -> int:
        x = self.state
        x ^= (x << 13) & ((1 << 64) - 1)
        x ^= x >> 7
        x ^= (x << 17) & ((1 << 64) - 1)
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & ((1 << 64) - 1)

    def choice(self, pool: bytes) -> int:
        return pool[self.next() % len(pool)]

    def below(self, n: int) -> int:
        return self.next() % n


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign."""

    triggered: bool
    executions: int
    trigger_input: list[bytes] | None = None


def random_fuzz(
    image: Image,
    budget: int = 200,
    env: Environment | None = None,
    argv0: bytes = b"prog",
    seed: int = 0xF00D,
    max_len: int = 10,
    digit_bias: float = 0.5,
    max_steps: int = 300_000,
) -> FuzzResult:
    """Fuzz *image* with random argv[1] strings.

    *digit_bias* is the probability of drawing a numeric string (most
    bombs parse their input with atoi, and a fuzzer author would know
    that much).  Deterministic for a given *seed*.
    """
    rng = _XorShift(seed)
    for execution in range(1, budget + 1):
        length = 1 + rng.below(max_len)
        numeric = (rng.next() % 1000) < digit_bias * 1000
        pool = _DIGITS if numeric else _PRINTABLE
        arg = bytes(rng.choice(pool) for _ in range(length))
        if numeric and rng.below(8) == 0:
            arg = b"-" + arg
        run_env = env.clone() if env else None
        result = Machine(image, [argv0, arg], run_env).run(max_steps)
        if result.bomb_triggered:
            return FuzzResult(True, execution, [arg])
    return FuzzResult(False, budget)
