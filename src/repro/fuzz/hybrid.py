"""Hybrid fuzzing: alternate coverage-guided fuzzing with concolic runs.

The ``hybridx`` tool column drives a Legion-style loop: a deterministic
coverage-guided campaign first (cheap concrete executions, dictionary +
havoc), then the trace-based concolic engine replayed from the
campaign's highest-coverage corpus entries.  Inputs the solver derives
by branch negation (``claimed_inputs``) seed the next fuzzing round;
corpus entries with the widest coverage seed the next concolic round.
The loop ends at the first validated trigger, after ``rounds``
alternations, or as soon as a round goes *dry* — no trigger, no new
coverage and no fresh solver inputs.

Determinism: the fuzzer is seeded, the concolic engine is deterministic
up to its wall-clock budget, and corpus digests are order-sensitive —
the hybridx determinism tests assert identical digests across repeated
runs and across ``--jobs 2``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from .. import obs
from ..binfmt import Image
from ..concolic.engine import ConcolicEngine
from ..concolic.policy import ToolPolicy
from ..errors import DiagnosticLog
from ..vm import Environment
from .engine import CoverageFuzzer, FuzzConfig


def _default_concolic() -> ToolPolicy:
    """The concolic half: Triton-era capabilities, tightened budgets.

    The fuzzer carries the brute-force load, so each concolic phase gets
    a short leash; what matters is branch negation from good seeds, not
    exhaustive generational search.
    """
    return ToolPolicy(
        name="hybridx-concolic",
        supports_fp=False,
        lifts_stack_memory=True,
        signal_trace=False,
        cross_thread_taint=False,
        div_guard=False,
        lib_data_taint=True,
        env_arg_diag="es3",
        argv_model="per-byte",
        rounds=8,
        max_queries=24,
        time_limit=45.0,
    )


@dataclass
class HybridPolicy:
    """Capability/budget profile for the hybrid fuzzing driver."""

    name: str = "hybridx"
    seed: int = 0x5EED
    #: fuzz -> concolic alternations
    rounds: int = 2
    #: executions per fuzzing campaign
    fuzz_budget: int = 900
    fuzz_max_steps: int = 120_000
    fuzz_total_steps: int = 8_000_000
    dry_limit: int = 100
    #: highest-coverage corpus entries replayed concolically per round
    concolic_seeds: int = 2
    concolic: ToolPolicy = field(default_factory=_default_concolic)

    def fuzz_config(self) -> FuzzConfig:
        return FuzzConfig(
            seed=self.seed,
            budget=self.fuzz_budget,
            max_steps=self.fuzz_max_steps,
            total_steps=self.fuzz_total_steps,
            dry_limit=self.dry_limit,
        )

    def fingerprint(self) -> str:
        """Stable digest of the whole driver configuration."""
        fields = dataclasses.asdict(self)
        fields["concolic"] = {
            k: v for k, v in fields["concolic"].items()
            if k not in ToolPolicy._NON_SEMANTIC
        }
        blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class HybridReport:
    """Outcome of one hybrid analysis: both halves, normalized."""

    tool: str
    solved: bool = False
    solution: list[bytes] | None = None
    solved_by: str | None = None  # "fuzz" | "concolic"
    claimed_inputs: list[list[bytes]] = field(default_factory=list)
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    aborted: str | None = None
    rounds: int = 0
    fuzz_executions: int = 0
    corpus_digests: list[str] = field(default_factory=list)


def run_hybrid(
    image: Image,
    policy: HybridPolicy,
    seed_argv: list[bytes],
    env: Environment | None = None,
    argv0: bytes = b"prog",
) -> HybridReport:
    """Run the alternating fuzz/concolic loop on *image*."""
    report = HybridReport(tool=policy.name)
    first_arg = seed_argv[0] if seed_argv else b"0"
    fixed_tail = tuple(seed_argv[1:])
    fuzz_seeds: list[bytes] = [first_arg]
    engine = ConcolicEngine(policy.concolic)

    with obs.span("hybrid", tool=policy.name):
        for _ in range(policy.rounds):
            report.rounds += 1
            obs.count("fuzz.hybrid_rounds")

            fuzzer = CoverageFuzzer(image, policy.fuzz_config(), env,
                                    argv0=argv0, fixed_tail=fixed_tail)
            campaign = fuzzer.campaign(tuple(fuzz_seeds))
            report.fuzz_executions += campaign.executions
            report.corpus_digests.append(campaign.corpus.digest())
            if campaign.triggered:
                report.solved = True
                report.solved_by = "fuzz"
                report.solution = [campaign.trigger_input, *fixed_tail]
                report.claimed_inputs.append(report.solution)
                return report

            fresh: list[bytes] = []
            for entry in campaign.corpus.best(policy.concolic_seeds):
                raw = engine.run(image, [entry.data, *fixed_tail], env,
                                 argv0=argv0)
                report.diagnostics.events.extend(raw.diagnostics.events)
                report.claimed_inputs.extend(raw.claimed_inputs)
                if raw.solved:
                    report.solved = True
                    report.solved_by = "concolic"
                    report.solution = raw.solution
                    return report
                if raw.aborted and report.aborted is None:
                    report.aborted = raw.aborted
                for claim in raw.claimed_inputs:
                    if claim and claim[0] not in fuzz_seeds \
                            and claim[0] not in fresh:
                        fresh.append(claim[0])

            if not fresh:
                break  # dry: nothing new for the fuzzer to chew on
            fuzz_seeds.extend(fresh)
    return report
