"""Deterministic mutation strategies for the coverage-guided fuzzer.

Two layers, both fully deterministic for a given PRNG seed:

* :func:`cracking_candidates` — the *deterministic stage* a practitioner
  would run first: a short numeric sweep (most bombs atoi their input)
  followed by a cracking dictionary of common passwords expanded through
  leetspeak substitutions and suffixes.  This is how real hybrid tools
  crack the paper's crypto bombs: the SHA-1/AES preimages are not found
  by inverting the cipher but by trying dictionary words against the
  concretely executed library code.
* :class:`Mutator` — AFL-style havoc: bit flips, arithmetic nudges,
  interesting-value substitution, dictionary splices and corpus splices,
  driven by the shared xorshift PRNG from the random baseline.
"""

from __future__ import annotations

from typing import Iterator

from .random_fuzzer import _XorShift

MAX_INPUT_LEN = 32

_INTERESTING_BYTES = (0x00, 0x01, 0x20, 0x30, 0x39, 0x41, 0x7F, 0xFF)
_INTERESTING_WORDS = (b"0", b"1", b"-1", b"42", b"44556", b"100000", b"120")

# Leetspeak substitution table: each occurrence may flip independently,
# so "secret" expands to s3cret, secr3t, s3cr3t, $ecret, ...
_LEET = {"a": "4", "e": "3", "i": "1", "o": "0", "s": "$"}

_WORDLIST = (
    "key", "secret", "password", "passwd", "letmein", "admin",
    "guess", "dawn", "attack", "magic", "bomb", "open", "sesame",
)

_SUFFIXES = ("", "!", "1", "123", "?")

_NUMERIC_SWEEP_MAX = 120


def _leet_variants(word: str) -> Iterator[str]:
    positions = [i for i, ch in enumerate(word) if ch in _LEET]
    for mask in range(1 << len(positions)):
        chars = list(word)
        for bit, pos in enumerate(positions):
            if mask >> bit & 1:
                chars[pos] = _LEET[word[pos]]
        yield "".join(chars)


def _numeric_candidates() -> Iterator[bytes]:
    for n in range(_NUMERIC_SWEEP_MAX + 1):
        yield str(n).encode()
    for n in range(1, _NUMERIC_SWEEP_MAX + 1):
        yield str(-n).encode()


def _word_candidates() -> Iterator[bytes]:
    for word in _WORDLIST:
        for variant in _leet_variants(word):
            for suffix in _SUFFIXES:
                yield (variant + suffix).encode()


def cracking_candidates() -> Iterator[bytes]:
    """The deterministic candidate stream, likeliest guesses first.

    Interleaves the two families — dictionary words (most frequent
    first, expanded through leet substitution subsets and common
    suffixes) and the numeric sweep 0..120 then -1..-120 (most bombs
    atoi their input) — so both a password check and a magic number
    fall within the first ~100 executions.
    """
    words = _word_candidates()
    numbers = _numeric_candidates()
    while True:
        emitted = False
        for stream in (words, numbers):
            item = next(stream, None)
            if item is not None:
                emitted = True
                yield item
        if not emitted:
            return


def dictionary_tokens() -> list[bytes]:
    """Tokens for havoc splicing: base words and their full-leet forms."""
    tokens = []
    for word in _WORDLIST:
        tokens.append(word.encode())
        full = "".join(_LEET.get(ch, ch) for ch in word)
        if full != word:
            tokens.append(full.encode())
    tokens.extend(_INTERESTING_WORDS)
    return tokens


class Mutator:
    """Havoc-stage mutator over a corpus, driven by one xorshift PRNG."""

    def __init__(self, rng: _XorShift):
        self.rng = rng
        self.tokens = dictionary_tokens()

    def mutate(self, data: bytes, corpus: list[bytes]) -> bytes:
        """One havoc mutation of *data* (1-4 stacked operations)."""
        out = bytearray(data or b"0")
        for _ in range(1 + self.rng.below(4)):
            self._mutate_once(out, corpus)
        if not out:
            out = bytearray(b"0")
        return bytes(out[:MAX_INPUT_LEN])

    def _mutate_once(self, out: bytearray, corpus: list[bytes]) -> None:
        rng = self.rng
        if not out:
            out.extend(b"0")
        op = rng.below(7)
        if op == 0:  # flip one bit
            pos = rng.below(len(out))
            out[pos] ^= 1 << rng.below(8)
        elif op == 1:  # arithmetic nudge on one byte
            pos = rng.below(len(out))
            delta = 1 + rng.below(16)
            if rng.below(2):
                delta = -delta
            out[pos] = (out[pos] + delta) & 0xFF
        elif op == 2:  # interesting byte substitution
            pos = rng.below(len(out))
            out[pos] = _INTERESTING_BYTES[rng.below(len(_INTERESTING_BYTES))]
        elif op == 3:  # insert a dictionary token
            token = self.tokens[rng.below(len(self.tokens))]
            pos = rng.below(len(out) + 1)
            out[pos:pos] = token
        elif op == 4:  # overwrite with a dictionary token
            token = self.tokens[rng.below(len(self.tokens))]
            pos = rng.below(len(out) + 1)
            out[pos:pos + len(token)] = token
        elif op == 5:  # delete a span
            if len(out) > 1:
                pos = rng.below(len(out))
                count = 1 + rng.below(len(out) - pos)
                del out[pos:pos + count]
        else:  # splice with another corpus entry
            if corpus:
                other = corpus[rng.below(len(corpus))]
                if other:
                    cut = rng.below(len(out) + 1)
                    take = rng.below(len(other)) + 1
                    out[cut:] = other[:take]
        del out[MAX_INPUT_LEN:]
