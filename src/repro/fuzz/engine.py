"""The coverage-guided fuzzing engine.

One :class:`CoverageFuzzer` campaign runs three deterministic phases
against a single bomb image, all under one step budget:

1. caller-provided seeds (the bomb's seed argv, or branch-flip inputs
   handed over by the concolic engine in hybrid mode),
2. the deterministic cracking stage (:func:`~repro.fuzz.mutator.
   cracking_candidates`): numeric sweep + leetspeak dictionary,
3. AFL-style havoc over the corpus, scheduling entries round-robin.

Every execution feeds the VM's ``on_edge`` hook into a per-run slot
map; inputs that light new (slot, bucket) coverage bits join the
corpus.  The campaign stops at the first trigger, when the execution or
step budget runs out, or when havoc goes *dry* (a full stretch of
executions with no new coverage).

With a result store attached (:func:`~repro.fuzz.corpus.attach_store`)
finished campaigns persist under ``corpus/`` and an identical campaign
restores its corpus and verdict without executing anything — the warm
half of the cache contract the CI smoke asserts.

Observability: the campaign runs inside a ``fuzz`` span and reports
``fuzz.executions``, ``fuzz.corpus_adds``, ``fuzz.triggers``,
``fuzz.campaign_restores`` and a ``fuzz.edges`` histogram through
:mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field

from .. import obs
from ..binfmt import Image
from ..vm import Environment, Machine
from . import corpus as corpus_mod
from .corpus import Corpus, campaign_key, edge_slot
from .mutator import Mutator, cracking_candidates
from .random_fuzzer import _XorShift


@dataclass(frozen=True)
class FuzzConfig:
    """Semantic knobs of one campaign; hashed into its corpus key."""

    seed: int = 0xF00D
    budget: int = 900  # executions
    max_steps: int = 120_000  # per execution
    total_steps: int = 8_000_000  # campaign-wide
    dry_limit: int = 200  # havoc executions with no new coverage
    persist: bool = True

    def fingerprint_payload(self) -> dict:
        payload = asdict(self)
        payload.pop("persist")  # operational, not semantic
        return payload


@dataclass
class CampaignResult:
    """Outcome of one coverage-guided campaign."""

    triggered: bool
    executions: int
    trigger_input: bytes | None
    corpus: Corpus = field(default_factory=Corpus)
    steps: int = 0
    restored: bool = False


class CoverageFuzzer:
    """Deterministic coverage-guided fuzzer for one image."""

    def __init__(
        self,
        image: Image,
        config: FuzzConfig | None = None,
        env: Environment | None = None,
        argv0: bytes = b"prog",
        fixed_tail: tuple[bytes, ...] = (),
    ):
        self.image = image
        self.config = config or FuzzConfig()
        self.env = env
        self.argv0 = argv0
        # Arguments after argv[1] stay fixed; only argv[1] is fuzzed.
        self.fixed_tail = tuple(fixed_tail)

    def _campaign_key(self, seeds: tuple[bytes, ...]) -> str:
        image_digest = hashlib.sha256(self.image.to_bytes()).hexdigest()
        payload = self.config.fingerprint_payload()
        payload["argv0"] = self.argv0.decode("latin1")
        payload["fixed_tail"] = [arg.decode("latin1") for arg in self.fixed_tail]
        payload["seeds"] = [arg.decode("latin1") for arg in seeds]
        return campaign_key(image_digest, payload)

    def execute(self, arg: bytes) -> tuple[bool, int, dict[int, int]]:
        """One monitored run: (triggered, steps, per-run edge counts)."""
        run_env = self.env.clone() if self.env else None
        machine = Machine(self.image, [self.argv0, arg, *self.fixed_tail], run_env)
        run_counts: dict[int, int] = {}

        def on_edge(src: int, dst: int) -> None:
            slot = edge_slot(src, dst)
            run_counts[slot] = run_counts.get(slot, 0) + 1

        machine.on_edge = on_edge
        result = machine.run(self.config.max_steps)
        obs.count("fuzz.executions")
        return result.bomb_triggered, result.steps, run_counts

    def campaign(self, seeds: tuple[bytes, ...] = ()) -> CampaignResult:
        """Run one campaign (restoring a persisted identical one)."""
        seeds = tuple(seeds)
        key = self._campaign_key(seeds)
        if self.config.persist:
            payload = corpus_mod.load_campaign(key)
            if payload is not None:
                obs.count("fuzz.campaign_restores")
                trigger = payload["trigger_input"]
                return CampaignResult(
                    triggered=payload["triggered"],
                    executions=payload["executions"],
                    trigger_input=None if trigger is None
                    else trigger.encode("latin1"),
                    corpus=Corpus.from_payload(payload["corpus"]),
                    steps=payload["steps"],
                    restored=True,
                )
        with obs.span("fuzz"):
            result = self._campaign(seeds)
        if self.config.persist:
            trigger = result.trigger_input
            corpus_mod.persist_campaign(key, {
                "triggered": result.triggered,
                "executions": result.executions,
                "trigger_input": None if trigger is None
                else trigger.decode("latin1"),
                "corpus": result.corpus.to_payload(),
                "steps": result.steps,
            })
        return result

    def _campaign(self, seeds: tuple[bytes, ...]) -> CampaignResult:
        config = self.config
        corpus = Corpus()
        rng = _XorShift(config.seed)
        mutator = Mutator(rng)
        tried: set[bytes] = set()
        executions = 0
        total_steps = 0

        def budget_left() -> bool:
            return (executions < config.budget
                    and total_steps < config.total_steps)

        def run_one(arg: bytes) -> bytes | None:
            """Execute *arg*; the trigger input if the bomb fired."""
            nonlocal executions, total_steps
            executions += 1
            triggered, steps, run_counts = self.execute(arg)
            total_steps += steps
            corpus.add(arg, run_counts, executions)
            if triggered:
                obs.count("fuzz.triggers")
                return arg
            return None

        def finish(trigger: bytes | None) -> CampaignResult:
            obs.observe("fuzz.edges", corpus.coverage.edges)
            return CampaignResult(
                triggered=trigger is not None,
                executions=executions,
                trigger_input=trigger,
                corpus=corpus,
                steps=total_steps,
            )

        # Phase 1+2: seeds, then the deterministic cracking stage.
        for arg in (*seeds, *cracking_candidates()):
            if not budget_left():
                return finish(None)
            if arg in tried:
                continue
            tried.add(arg)
            trigger = run_one(arg)
            if trigger is not None:
                return finish(trigger)

        # Phase 3: havoc over the corpus until dry or out of budget.
        dry = 0
        cursor = 0
        while budget_left() and dry < config.dry_limit:
            if not corpus.entries:
                base = b"0"
            else:
                base = corpus.entries[cursor % len(corpus.entries)].data
                cursor += 1
            arg = mutator.mutate(base, corpus.datas())
            if arg in tried:
                dry += 1
                continue
            tried.add(arg)
            before = len(corpus)
            trigger = run_one(arg)
            if trigger is not None:
                return finish(trigger)
            dry = 0 if len(corpus) > before else dry + 1
        return finish(None)
