"""Random-testing baseline."""

from .random_fuzzer import FuzzResult, random_fuzz

__all__ = ["FuzzResult", "random_fuzz"]
