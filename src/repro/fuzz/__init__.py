"""Fuzzing subsystem: random baseline, coverage-guided engine, hybrid driver."""

from .corpus import Corpus, EdgeCoverage, attach_store
from .engine import CampaignResult, CoverageFuzzer, FuzzConfig
from .hybrid import HybridPolicy, HybridReport, run_hybrid
from .random_fuzzer import FuzzResult, random_fuzz

__all__ = [
    "CampaignResult",
    "Corpus",
    "CoverageFuzzer",
    "EdgeCoverage",
    "FuzzConfig",
    "FuzzResult",
    "HybridPolicy",
    "HybridReport",
    "attach_store",
    "random_fuzz",
    "run_hybrid",
]
