"""Edge-coverage bitmap and the deterministic seed corpus.

The coverage model is AFL's: every executed ``(src, dst)`` control-flow
edge (reported by the VM's ``on_edge`` hook) hashes into a fixed-size
slot map, per-run hit counts collapse into power-of-two buckets, and an
input is *interesting* — worth keeping as a corpus entry — exactly when
it lights a (slot, bucket) pair no earlier input lit.

Everything here is deterministic: corpus entries keep insertion order,
the corpus digest hashes entry bytes in that order, and no wall-clock
or OS randomness is consulted.  Two campaigns with the same image,
seeds and budget produce byte-identical corpora.

Campaign artifacts persist in the content-addressed result store under
a ``corpus/`` tree (see :class:`~repro.service.store.ResultStore`),
keyed by image digest x campaign fingerprint, mirroring how lifted IR
persists under ``lift/``.  A campaign whose key hits the store restores
the recorded corpus and verdict without re-executing anything.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from .. import obs

MAP_SIZE = 1 << 16

# AFL hit-count buckets: a slot's per-run count collapses into the bit
# index of the first threshold it does not exceed.
_BUCKET_THRESHOLDS = (1, 2, 3, 4, 8, 16, 32)


def edge_slot(src: int, dst: int) -> int:
    """Hash one (src, dst) edge into its bitmap slot."""
    return ((src * 0x9E3779B1) ^ dst) & (MAP_SIZE - 1)


def bucket_index(count: int) -> int:
    """The hit-count bucket (0..7) for a per-run edge count."""
    for i, threshold in enumerate(_BUCKET_THRESHOLDS):
        if count <= threshold:
            return i
    return 7


class EdgeCoverage:
    """Cumulative (slot, bucket) map across a whole campaign."""

    def __init__(self) -> None:
        # slot -> bitmask of hit-count buckets seen so far
        self._virgin: dict[int, int] = {}

    @property
    def edges(self) -> int:
        return len(self._virgin)

    @property
    def bits(self) -> int:
        return sum(mask.bit_count() for mask in self._virgin.values())

    def merge(self, run_counts: dict[int, int]) -> bool:
        """Fold one run's raw slot counts in; True if anything was new."""
        new = False
        virgin = self._virgin
        for slot, count in run_counts.items():
            bit = 1 << bucket_index(count)
            seen = virgin.get(slot, 0)
            if not seen & bit:
                virgin[slot] = seen | bit
                new = True
        return new

    def to_payload(self) -> dict:
        return {str(slot): mask for slot, mask in sorted(self._virgin.items())}

    @classmethod
    def from_payload(cls, payload: dict) -> "EdgeCoverage":
        cov = cls()
        cov._virgin = {int(slot): mask for slot, mask in payload.items()}
        return cov


@dataclass
class CorpusEntry:
    """One interesting input and the coverage evidence that kept it."""

    data: bytes
    execution: int  # 1-based campaign execution that produced it
    edges: int  # distinct slots this input touched in its own run


@dataclass
class Corpus:
    """Insertion-ordered seed corpus guided by :class:`EdgeCoverage`."""

    entries: list[CorpusEntry] = field(default_factory=list)
    coverage: EdgeCoverage = field(default_factory=EdgeCoverage)

    def add(self, data: bytes, run_counts: dict[int, int], execution: int) -> bool:
        """Keep *data* if its run lit new coverage bits."""
        if not self.coverage.merge(run_counts):
            return False
        self.entries.append(CorpusEntry(data, execution, len(run_counts)))
        obs.count("fuzz.corpus_adds")
        return True

    def __len__(self) -> int:
        return len(self.entries)

    def datas(self) -> list[bytes]:
        return [entry.data for entry in self.entries]

    def best(self, n: int) -> list[CorpusEntry]:
        """The *n* entries with the widest own-run coverage (stable)."""
        ranked = sorted(enumerate(self.entries),
                        key=lambda pair: (-pair[1].edges, pair[0]))
        return [entry for _, entry in ranked[:n]]

    def digest(self) -> str:
        """Order-sensitive content digest of the whole corpus."""
        h = hashlib.sha256()
        for entry in self.entries:
            h.update(len(entry.data).to_bytes(4, "big"))
            h.update(entry.data)
        return h.hexdigest()

    def to_payload(self) -> dict:
        return {
            "entries": [
                {"data": e.data.decode("latin1"), "execution": e.execution,
                 "edges": e.edges}
                for e in self.entries
            ],
            "coverage": self.coverage.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Corpus":
        corpus = cls()
        corpus.entries = [
            CorpusEntry(e["data"].encode("latin1"), e["execution"], e["edges"])
            for e in payload["entries"]
        ]
        corpus.coverage = EdgeCoverage.from_payload(payload["coverage"])
        return corpus


def campaign_key(image_digest: str, fingerprint_payload: dict) -> str:
    """Content key for a campaign's persisted corpus.

    Hashes the image digest with the campaign's semantic configuration
    (seed, budget, mutation limits, ...) so any change to either runs a
    fresh campaign instead of restoring a stale one.
    """
    doc = json.dumps({"image": image_digest, "campaign": fingerprint_payload},
                     sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


# -- store attachment ------------------------------------------------------
#
# Mirrors superblock.attach_store(): the harness attaches its result
# store before a cached matrix run and campaigns transparently persist
# and restore through it; everything works storeless too.

_STORE = None


def attach_store(store) -> None:
    """Route campaign persistence through *store* (None detaches)."""
    global _STORE
    _STORE = store


def attached_store():
    return _STORE


def persist_campaign(key: str, payload: dict) -> None:
    if _STORE is not None:
        _STORE.put_corpus(key, payload)


def load_campaign(key: str) -> dict | None:
    if _STORE is None:
        return None
    return _STORE.get_corpus(key)
