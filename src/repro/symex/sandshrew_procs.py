"""Sandshrew-style concretizing simprocedures (the ``sandshrewx`` tool).

Where the default catalogue summarizes computational externals (``sin``,
``rand``, ``sha1``, ``aes128_encrypt``, ...) with *unconstrained* return
values, this table runs the real ``.lib`` implementation **concretely in
the VM** on the current model's argument values and re-injects the
concrete result into the symbolic state.  The move is honest: every
symbolic argument is first *pinned* to its model value (a recorded
concretization, Es2 evidence when the cell stays unsolved), so the
injected result is sound for the path actually explored.

Stateful externals (``srand``/``rand`` share a PRNG cell in library
data) are handled by logging every opaque call on the state and
replaying the whole per-path log in a fresh machine, so forked paths
keep independent, correctly-evolved library state.

Concretizing through the crypto functions does not invert them — it
turns the engine into an oracle for *checking* candidate inputs, which
is exactly what the tools layer's bounded concrete search exploits
(see ``concrete_fallback_budget`` in the policy).
"""

from __future__ import annotations

from .. import obs
from ..errors import DiagnosticKind, SolverError, VMError
from ..smt import eval_expr, mk_const, mk_eq
from ..vm import Machine
from .simprocedures import SIMPROCEDURES, _unconstrained

_MAX_MSG = 64  # cap on pinned message buffers (sha1 inputs)


class OpaqueRunner:
    """Executes logged opaque calls concretely in scratch machines.

    One fresh :class:`Machine` per distinct call log: library globals
    (e.g. ``rand_state``) evolve exactly as they would along the path,
    and memoization keeps forked paths with shared prefixes cheap.
    """

    def __init__(self, image):
        self.image = image
        self._addrs = {name: sym.addr
                       for name, sym in image.lib_symbols().items()}
        self._memo: dict[tuple, tuple[int, tuple[bytes, ...]]] = {}

    def supports(self, name: str) -> bool:
        return name in self._addrs

    def run(self, log: tuple) -> tuple[int, tuple[bytes, ...]]:
        """Replay *log*; the last call's (r0, out-buffer contents)."""
        cached = self._memo.get(log)
        if cached is not None:
            return cached
        machine = Machine(self.image, [b"opaque"])
        memory = machine.processes[machine.main_pid].memory
        result: tuple[int, tuple[bytes, ...]] = (0, ())
        for call in log:
            name, *spec = call
            args: list[int] = []
            outs: list[tuple[int, int]] = []
            for kind, payload in spec:
                if kind == "i":
                    args.append(payload)
                elif kind == "buf":
                    addr = machine.scratch_alloc(len(payload) + 1)
                    memory.write(addr, payload + b"\x00")
                    args.append(addr)
                else:  # "out": payload is the buffer length
                    addr = machine.scratch_alloc(payload)
                    args.append(addr)
                    outs.append((addr, payload))
            r0 = machine.call_function(self._addrs[name], args)
            result = (r0, tuple(bytes(memory.read(addr, length))
                                for addr, length in outs))
        self._memo[log] = result
        return result


# -- pinning helpers -------------------------------------------------------

def _pin(engine, state, expr, what: str) -> int:
    """A concrete value for *expr*, pinning symbolic ones to the model."""
    if expr.is_const:
        return expr.value
    return engine._concretize(
        state, expr, DiagnosticKind.CONCRETIZED_ENV,
        f"sandshrew: {what} pinned to the model value for concrete execution",
    )


def _pin_bytes(engine, state, addr: int, count: int, what: str) -> bytes:
    """Concrete buffer contents at *addr*, pinning symbolic bytes."""
    out = bytearray()
    pinned = False
    for i in range(count):
        byte = state.read_byte(addr + i)
        if byte.is_const:
            out.append(byte.value)
            continue
        value = eval_expr(byte, state.model) & 0xFF
        state.add_constraint(mk_eq(byte, mk_const(value, 8)))
        out.append(value)
        pinned = True
    if pinned:
        engine.diags.emit(
            DiagnosticKind.CONCRETIZED_ENV,
            f"sandshrew: {what} buffer pinned to the model bytes "
            f"for concrete execution",
        )
    return bytes(out)


def _run_opaque(engine, state, call: tuple) -> tuple[int, tuple[bytes, ...]]:
    state.opaque_calls = state.opaque_calls + (call,)
    engine.opaque_concretized = True
    obs.count("symex.opaque_calls")
    return engine.opaque_runner.run(state.opaque_calls)


def _concretizer(name: str, n_args: int):
    """A concretizing proc for a pure scalar external (sin, pow, ...)."""

    def proc(engine, state, args):
        if not engine.opaque_runner.supports(name):
            return SIMPROCEDURES[name](engine, state, args)
        try:
            spec = tuple(
                ("i", _pin(engine, state, args[i], f"{name} argument {i}"))
                for i in range(n_args)
            )
            r0, _ = _run_opaque(engine, state, (name, *spec))
            return mk_const(r0, 64)
        except (VMError, SolverError):
            return _unconstrained(engine, state, name)

    return proc


def sp_srand_conc(engine, state, args):
    if not engine.opaque_runner.supports("srand"):
        return SIMPROCEDURES["srand"](engine, state, args)
    try:
        seed = _pin(engine, state, args[0], "srand seed")
        _run_opaque(engine, state, ("srand", ("i", seed)))
        return mk_const(0, 64)
    except (VMError, SolverError):
        return mk_const(0, 64)


def sp_sha1_conc(engine, state, args):
    if not engine.opaque_runner.supports("sha1"):
        return SIMPROCEDURES["sha1"](engine, state, args)
    try:
        msg_addr = _pin(engine, state, args[0], "sha1 message pointer")
        length = min(_pin(engine, state, args[1], "sha1 length"), _MAX_MSG)
        out = args[2]
        msg = _pin_bytes(engine, state, msg_addr, length, "sha1 message")
        _, bufs = _run_opaque(
            engine, state,
            ("sha1", ("buf", msg), ("i", length), ("out", 20)),
        )
        if out.is_const and bufs:
            for i, byte in enumerate(bufs[0]):
                state.write_byte(out.value + i, mk_const(byte, 8))
        return mk_const(0, 64)
    except (VMError, SolverError):
        return SIMPROCEDURES["sha1"](engine, state, args)


def sp_aes_conc(engine, state, args):
    if not engine.opaque_runner.supports("aes128_encrypt"):
        return SIMPROCEDURES["aes128_encrypt"](engine, state, args)
    try:
        key_addr = _pin(engine, state, args[0], "aes key pointer")
        msg_addr = _pin(engine, state, args[1], "aes plaintext pointer")
        out = args[2]
        key = _pin_bytes(engine, state, key_addr, 16, "aes key")
        msg = _pin_bytes(engine, state, msg_addr, 16, "aes plaintext")
        _, bufs = _run_opaque(
            engine, state,
            ("aes128_encrypt", ("buf", key), ("buf", msg), ("out", 16)),
        )
        if out.is_const and bufs:
            for i, byte in enumerate(bufs[0]):
                state.write_byte(out.value + i, mk_const(byte, 8))
        return mk_const(0, 64)
    except (VMError, SolverError):
        return SIMPROCEDURES["aes128_encrypt"](engine, state, args)


#: The sandshrew catalogue: the default table with computational
#: externals swapped for concretizing versions.
SANDSHREW_SIMPROCEDURES = dict(SIMPROCEDURES)
SANDSHREW_SIMPROCEDURES.update({
    "sin": _concretizer("sin", 1),
    "cos": _concretizer("cos", 1),
    "pow": _concretizer("pow", 2),
    "fabs": _concretizer("fabs", 1),
    "rand": _concretizer("rand", 0),
    "srand": sp_srand_conc,
    "sha1": sp_sha1_conc,
    "aes128_encrypt": sp_aes_conc,
})
