"""System-call model for the static symbolic engine (SimuVEX's role).

The model is deliberately *partial*, matching the 2016-era support
matrix the paper diagnoses:

* pipes are modeled in-engine with symbolic contents;
* files are modeled with **concrete** contents — symbolic writes are
  concretized (Es2 on the covert-file bombs);
* ``getpid``/``getmagic``/``msgrecv`` return fresh unconstrained values
  (the paper's P cells);
* ``fork`` is unsupported at syscall level (returns -1; the no-lib
  *simprocedure* is what follows the child);
* ``brk``, ``signal`` and the simulated network have **no model**:
  reaching them aborts the analysis — the paper's E cells.
"""

from __future__ import annotations

from ..errors import DiagnosticKind, EngineError
from ..smt import Expr, eval_expr, mk_const, mk_eq, mk_var
from ..vm.env import Environment
from ..vm.syscalls import O_CREAT, O_TRUNC, Sys
from .state import EngineFile, EnginePipe, EngineSymFile, SymState

MASK64 = (1 << 64) - 1


class SyscallModel:
    """Dispatches SYSCALL instructions against the engine environment."""

    def __init__(self, engine):
        self.engine = engine

    def dispatch(self, state: SymState) -> None:
        engine = self.engine
        nr_expr = state.get_reg(0)
        if not nr_expr.is_const:
            # The engine cannot know *which* kernel service this is, so
            # it models no effect at all and invents the return value —
            # the contextual-symbolic-value failure (Es2).
            engine.diags.emit(
                DiagnosticKind.CONCRETIZED_ENV,
                "input-dependent syscall number: effect unmodeled, "
                "return value unconstrained",
            )
            name = engine.fresh_name("sysdyn")
            engine.computation_vars.add(name)
            state.set_reg(0, mk_var(name, 64))
            return
        nr = nr_expr.value
        args = [state.get_reg(i) for i in range(1, 6)]
        ret = self._syscall(state, nr, args)
        if ret is not None:
            state.set_reg(0, ret)

    # -- helpers ----------------------------------------------------------

    def _conc(self, state: SymState, expr: Expr) -> int:
        if expr.is_const:
            return expr.value
        return eval_expr(expr, state.model) & MASK64

    def _alloc_fd(self, state: SymState, handle) -> int:
        fd = state.next_fd
        state.next_fd += 1
        state.fds[fd] = handle
        return fd

    def _open_faithful(self, state: SymState, path: str, flags: int):
        """REXX's filesystem model: files hold expressions, and opening a
        missing path succeeds against a symbolic environment file whose
        required contents are reported with the claim."""
        from ..vm.syscalls import O_CREAT as _C, O_TRUNC as _T

        engine = self.engine
        exists = path in state.files
        if not exists and not flags & _C:
            if not engine.policy.env_symbolic:
                return mk_const(-1 & MASK64, 64)
            var_names = []
            content = []
            for i in range(8):
                name = f"env_file_{len(engine.env_requirements.get('files', {}))}_{i}"
                engine.input_vars.add(name)
                var_names.append(name)
                content.append(mk_var(name, 8))
            engine.env_requirements.setdefault("files", {})[path] = var_names
            state.files[path] = EngineSymFile(content, 0)
        elif not exists or flags & _T:
            state.files[path] = EngineSymFile()
        handle = state.files[path]
        handle = EngineSymFile(list(handle.data), 0)
        state.files[path] = handle
        return mk_const(self._alloc_fd(state, handle), 64)

    # -- dispatch -------------------------------------------------------------

    def _syscall(self, state: SymState, nr: int, args: list[Expr]) -> Expr | None:
        engine = self.engine
        diags = engine.diags

        if nr == Sys.BOMB:
            state.goal = True
            state.alive = False
            return None
        if nr == Sys.EXIT:
            state.alive = False
            return None
        if nr == Sys.WRITE:
            fd = self._conc(state, args[0])
            buf = self._conc(state, args[1])
            length = min(self._conc(state, args[2]), 4096)
            handle = state.fds.get(fd)
            if isinstance(handle, EnginePipe):
                for i in range(length):
                    handle.data.append(state.read_byte(buf + i))
                return mk_const(length, 64)
            if isinstance(handle, EngineSymFile):
                for i in range(length):
                    end = handle.pos + i
                    while end >= len(handle.data):
                        handle.data.append(mk_const(0, 8))
                    handle.data[end] = state.read_byte(buf + i)
                handle.pos += length
                return mk_const(length, 64)
            if isinstance(handle, EngineFile):
                symbolic = False
                for i in range(length):
                    byte = state.read_byte(buf + i)
                    if not byte.is_const:
                        symbolic = True
                        byte = mk_const(eval_expr(byte, state.model) & 0xFF, 8)
                    end = handle.pos + i
                    if end >= len(handle.data):
                        handle.data.extend(b"\0" * (end - len(handle.data) + 1))
                    handle.data[end] = byte.value
                handle.pos += length
                if symbolic:
                    diags.emit(
                        DiagnosticKind.CONCRETIZED_ENV,
                        "symbolic data concretized on write into the modeled filesystem",
                    )
                return mk_const(length, 64)
            # stdout/stderr/unknown: data leaves the analysis.
            if state.range_has_symbolic(buf, length):
                state.env_escaped = True
            return mk_const(length, 64)
        if nr == Sys.READ:
            fd = self._conc(state, args[0])
            buf = self._conc(state, args[1])
            length = min(self._conc(state, args[2]), 4096)
            handle = state.fds.get(fd)
            if isinstance(handle, EnginePipe):
                count = min(length, len(handle.data))
                for i in range(count):
                    state.write_byte(buf + i, handle.data[i])
                del handle.data[:count]
                return mk_const(count, 64)
            if isinstance(handle, EngineSymFile):
                chunk = handle.data[handle.pos : handle.pos + length]
                for i, byte in enumerate(chunk):
                    state.write_byte(buf + i, byte)
                handle.pos += len(chunk)
                return mk_const(len(chunk), 64)
            if isinstance(handle, EngineFile):
                chunk = bytes(handle.data[handle.pos : handle.pos + length])
                for i, value in enumerate(chunk):
                    state.write_byte(buf + i, mk_const(value, 8))
                handle.pos += len(chunk)
                return mk_const(len(chunk), 64)
            return mk_const(0, 64)
        if nr == Sys.OPEN:
            path_addr = self._conc(state, args[0])
            path_symbolic = state.cstr_has_symbolic(path_addr)
            if path_symbolic:
                diags.emit(
                    DiagnosticKind.CONCRETIZED_ENV,
                    "symbolic file name concretized against the empty modeled filesystem",
                )
            path = state.read_cstr_concrete(path_addr).decode("latin1")
            flags = self._conc(state, args[1])
            if engine.policy.faithful_fs:
                if path_symbolic:
                    # Pin the name so the claimed argv and the claimed
                    # environment file agree.
                    for i, ch in enumerate(path.encode("latin1") + b"\0"):
                        byte = state.read_byte(path_addr + i)
                        if not byte.is_const:
                            state.add_constraint(mk_eq(byte, mk_const(ch, 8)))
                return self._open_faithful(state, path, flags)
            exists = path in state.files
            if not exists and not flags & O_CREAT:
                return mk_const(-1 & MASK64, 64)
            if not exists or flags & O_TRUNC:
                state.files[path] = EngineFile()
            handle = state.files[path]
            handle = EngineFile(handle.data, 0)
            state.files[path] = handle
            return mk_const(self._alloc_fd(state, handle), 64)
        if nr == Sys.CLOSE:
            state.fds.pop(self._conc(state, args[0]), None)
            return mk_const(0, 64)
        if nr == Sys.UNLINK:
            path = state.read_cstr_concrete(self._conc(state, args[0])).decode("latin1")
            return mk_const(0 if state.files.pop(path, None) else -1 & MASK64, 64)
        if nr == Sys.LSEEK:
            handle = state.fds.get(self._conc(state, args[0]))
            if isinstance(handle, EngineFile):
                handle.pos = self._conc(state, args[1])
                return mk_const(handle.pos, 64)
            return mk_const(-1 & MASK64, 64)
        if nr == Sys.TIME:
            if engine.policy.env_symbolic:
                engine.env_requirements["time"] = "env_time"
                engine.input_vars.add("env_time")
                return mk_var("env_time", 64)
            # angr-style: the analysis host's clock, a concrete value.
            return mk_const(Environment().time_value, 64)
        if nr == Sys.GETPID and engine.policy.env_symbolic:
            engine.env_requirements["pid"] = "env_pid"
            engine.input_vars.add("env_pid")
            return mk_var("env_pid", 64)
        if nr == Sys.GETMAGIC and engine.policy.env_symbolic:
            engine.env_requirements["magic"] = "env_magic"
            engine.input_vars.add("env_magic")
            return mk_var("env_magic", 64)
        if nr == Sys.MSGRECV and engine.policy.model_mailbox:
            if state.mailbox:
                return state.mailbox.pop(0)
            return mk_const(0, 64)
        if nr in (Sys.GETPID, Sys.GETMAGIC, Sys.MSGRECV):
            name = engine.fresh_name(f"sys{nr}")
            engine.computation_vars.add(name)
            diags.emit(
                DiagnosticKind.SIMULATED_SYSCALL_VALUE,
                f"syscall {Sys(nr).name.lower()} simulated with an unconstrained return",
            )
            return mk_var(name, 64)
        if nr == Sys.MSGSEND:
            if engine.policy.model_mailbox:
                state.mailbox.append(args[0])
                return mk_const(0, 64)
            if not args[0].is_const:
                state.env_escaped = True
            return mk_const(0, 64)
        if nr == Sys.FORK:
            diags.emit(
                DiagnosticKind.CROSS_PROCESS_LOST,
                "fork unsupported at syscall level; child never followed",
            )
            return mk_const(-1 & MASK64, 64)
        if nr == Sys.PIPE:
            pipe = EnginePipe()
            rfd = self._alloc_fd(state, pipe)
            wfd = self._alloc_fd(state, pipe)
            base = self._conc(state, args[0])
            state.write_concrete_mem(base, mk_const(rfd, 64), 8)
            state.write_concrete_mem(base + 8, mk_const(wfd, 64), 8)
            return mk_const(0, 64)
        if nr == Sys.WAITPID:
            status = self._conc(state, args[1])
            if status:
                state.write_concrete_mem(status, mk_const(0, 64), 8)
            return args[0]
        if nr == Sys.THREAD_CREATE:
            diags.emit(
                DiagnosticKind.CROSS_THREAD_LOST,
                "thread creation modeled as a no-op; body never executed",
            )
            return mk_const(2, 64)
        if nr == Sys.THREAD_JOIN or nr == Sys.YIELD:
            return mk_const(0, 64)
        if nr == Sys.HTTP_GET and engine.policy.env_symbolic:
            url = state.read_cstr_concrete(self._conc(state, args[0])).decode("latin1")
            cap = min(self._conc(state, args[2]), 16)
            var_names = []
            for i in range(cap):
                name = f"env_web_{len(engine.env_requirements.get('network', {}))}_{i}"
                engine.input_vars.add(name)
                var_names.append(name)
                state.write_byte(self._conc(state, args[1]) + i, mk_var(name, 8))
            engine.env_requirements.setdefault("network", {})[url] = var_names
            return mk_const(cap, 64)
        if nr == Sys.SIGNAL and engine.policy.model_signals:
            state.sig_handler = self._conc(state, args[1])
            return mk_const(0, 64)
        if nr == Sys.BRK and not engine.policy.with_libs:
            # (REXX runs no-lib; malloc is hooked, but be permissive.)
            return mk_const(state.heap_next, 64)
        # No model: brk, signal, the simulated network, anything unknown.
        raise EngineError(
            DiagnosticKind.UNSUPPORTED_SYSCALL,
            f"no model for syscall {nr}",
        )
