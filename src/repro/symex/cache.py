"""Execution-cache support for the symbolic explorer.

Three pieces, all serving the same goal — stop re-deriving work the
engine has already done once:

* :func:`compile_stmts` turns a straight-line IL statement list into a
  list of handler closures (one bound callable per statement, operand
  accessors specialized at compile time), so superblock execution
  dispatches ``handler(engine, state, tmps)`` instead of walking an
  ``isinstance`` chain per statement.

* :class:`PathSolver` keeps one persistent SAT instance + bit-blaster
  per engine.  Every distinct path constraint is Tseitin-encoded
  exactly once behind its own activation literal (sound because
  expressions are interned: ``id()`` is stable for the process
  lifetime), and a query assumes the activation literals of the
  querying state's constraints.  DFS siblings share encodings, learnt
  clauses and variable activity; budget staging mirrors
  :meth:`repro.smt.Solver.check` query for query.

* :func:`merge_states` ite-merges two states that rejoined at a
  post-dominator with identical call stacks (behind
  ``SymexPolicy.merge_states``), collapsing the symbolic-array bombs'
  path blow-up.
"""

from __future__ import annotations

from .. import obs
from ..errors import SolverError
from ..ir import il
from ..ir.lifter import apply_binop, apply_fp_op
from ..smt import (
    BitBlaster,
    Expr,
    SatSolver,
    eval_expr,
    mk_bool_and,
    mk_bool_or,
    mk_const,
    mk_ite,
)
from ..smt.solver import CheckResult
from .state import SymState

MASK64 = (1 << 64) - 1

#: Differing memory bytes beyond which a merge is not worth the ite
#: tower it would build.
MERGE_MEM_LIMIT = 256


# -- compiled statement handlers -------------------------------------------

def _getter(src):
    """Operand reader specialized on the reference kind."""
    if isinstance(src, il.ConstRef):
        const = mk_const(src.value, 64)
        return lambda eng, state, tmps: const
    if isinstance(src, il.RegRef):
        index = src.index
        return lambda eng, state, tmps: state.regs[index]
    if isinstance(src, il.FRegRef):
        index = src.index
        return lambda eng, state, tmps: state.fregs[index]
    index = src.index
    return lambda eng, state, tmps: tmps[index]


def _setter(dst):
    """Operand writer specialized on the reference kind."""
    if isinstance(dst, il.RegRef):
        index = dst.index

        def set_reg(eng, state, tmps, expr):
            state.regs[index] = expr
        return set_reg
    if isinstance(dst, il.FRegRef):
        index = dst.index

        def set_freg(eng, state, tmps, expr):
            state.fregs[index] = expr
        return set_freg
    index = dst.index

    def set_tmp(eng, state, tmps, expr):
        tmps[index] = expr
    return set_tmp


def _c_move(stmt):
    get, put = _getter(stmt.src), _setter(stmt.dst)

    def h(eng, state, tmps):
        put(eng, state, tmps, get(eng, state, tmps))
    return h


def _c_binop(stmt):
    get_a, get_b, put = _getter(stmt.a), _getter(stmt.b), _setter(stmt.dst)
    op, set_flags = stmt.op, stmt.set_flags

    def h(eng, state, tmps):
        result = eng._binop(state, op, get_a(eng, state, tmps),
                            get_b(eng, state, tmps))
        if set_flags:
            state.flags = ("logic", result, None)
        put(eng, state, tmps, result)
    return h


def _c_unop(stmt):
    get, put = _getter(stmt.a), _setter(stmt.dst)
    set_flags = stmt.set_flags
    ones = mk_const(MASK64, 64)

    def h(eng, state, tmps):
        result = apply_binop("xor", get(eng, state, tmps), ones)
        if set_flags:
            state.flags = ("logic", result, None)
        put(eng, state, tmps, result)
    return h


def _c_lea(stmt):
    get, put = _getter(stmt.base), _setter(stmt.dst)
    disp = mk_const(stmt.disp, 64)

    def h(eng, state, tmps):
        put(eng, state, tmps, apply_binop("add", get(eng, state, tmps), disp))
    return h


def _c_load(stmt):
    get, put = _getter(stmt.addr), _setter(stmt.dst)
    width, signed = stmt.width, stmt.signed

    def h(eng, state, tmps):
        put(eng, state, tmps,
            eng._load(state, get(eng, state, tmps), width, signed))
    return h


def _c_store(stmt):
    get_addr, get_val = _getter(stmt.addr), _getter(stmt.value)
    width = stmt.width

    def h(eng, state, tmps):
        eng._store(state, get_addr(eng, state, tmps),
                   get_val(eng, state, tmps), width)
    return h


def _c_setflags(stmt):
    get_a, get_b = _getter(stmt.a), _getter(stmt.b)
    kind = stmt.kind

    def h(eng, state, tmps):
        state.flags = (kind, get_a(eng, state, tmps), get_b(eng, state, tmps))
    return h


def _c_push(stmt):
    get = _getter(stmt.src)

    def h(eng, state, tmps):
        value = get(eng, state, tmps)
        sp = eng._conc_sp(state)
        state.regs[15] = mk_const((sp - 8) & MASK64, 64)
        state.write_concrete_mem(sp - 8, value, 8)
    return h


def _c_pop(stmt):
    put = _setter(stmt.dst)

    def h(eng, state, tmps):
        sp = eng._conc_sp(state)
        value = state.read_concrete_mem(sp, 8)
        state.regs[15] = mk_const((sp + 8) & MASK64, 64)
        put(eng, state, tmps, value)
    return h


def _c_fpop(stmt):
    getters = [_getter(s) for s in stmt.srcs]
    put = _setter(stmt.dst)
    op = stmt.op

    def h(eng, state, tmps):
        args = [g(eng, state, tmps) for g in getters]
        put(eng, state, tmps, apply_fp_op(op, args))
    return h


def _c_fpflags(stmt):
    get_a, get_b = _getter(stmt.a), _getter(stmt.b)
    kind = stmt.kind

    def h(eng, state, tmps):
        state.flags = (kind, get_a(eng, state, tmps), get_b(eng, state, tmps))
    return h


_COMPILERS = {
    il.Move: _c_move,
    il.BinOp: _c_binop,
    il.UnOp: _c_unop,
    il.Lea: _c_lea,
    il.Load: _c_load,
    il.Store: _c_store,
    il.SetFlags: _c_setflags,
    il.Push: _c_push,
    il.Pop: _c_pop,
    il.FpOp: _c_fpop,
    il.FpFlags: _c_fpflags,
}


def compile_stmts(stmts) -> list | None:
    """Handler closures for a straight-line statement list.

    Returns ``None`` when any statement needs the generic
    per-instruction path (control flow, syscalls, division guards).
    """
    handlers = []
    for stmt in stmts:
        compiler = _COMPILERS.get(type(stmt))
        if compiler is None:
            return None
        handlers.append(compiler(stmt))
    return handlers


# -- per-engine solving front-end -------------------------------------------

class PathSolver:
    """The engine's solver front-end: satisfiability checks on fresh
    instances, symbolic-read enumeration on one shared instance that
    follows the DFS path.

    Expressions are interned (structural equality is identity, ``id()``
    is stable for the process lifetime), which buys three things here:

    * an enumeration is fully determined by the identity tuple of the
      *relevant* path constraints (see :meth:`_slice`) and the address
      expression, so repeats are served from a memo;
    * a state's constraint list extends its ancestors' element-for-
      element, so the enumeration instance can keep its asserted prefix
      across queries along one DFS dive and only re-blast the delta --
      it is rebuilt from scratch when exploration backtracks to a
      diverging sibling (asserting a dead branch's constraints into a
      live instance would be unsound);
    * per-expression variable sets memoize by ``id``.
    """

    def __init__(self, policy):
        self.max_conflicts = policy.solver_conflicts
        self.max_clauses = policy.solver_clauses
        self.max_nodes = policy.solver_nodes
        #: (sliced constraint id tuple, id(addr), limit) -> values | None.
        self._enum_memo: dict[tuple, list[int] | None] = {}
        #: Strong refs keeping every memo key's exprs interned-alive.
        self._enum_refs: list = []
        #: id(expr) -> frozenset of variable names (exprs are immutable).
        self._vars_memo: dict[int, frozenset] = {}
        self._vars_refs: list[Expr] = []
        # The enumeration instance and the (ordered) constraints it has
        # permanently asserted; rebuilt when the path diverges.
        self._enum_sat: SatSolver | None = None
        self._enum_blaster: BitBlaster | None = None
        self._enum_asserted: list[Expr] = []
        self._last_stats = dict.fromkeys(
            ("conflicts", "decisions", "restarts", "learnt", "gates"), 0)

    def _vars_of(self, expr: Expr) -> frozenset:
        key = id(expr)
        hit = self._vars_memo.get(key)
        if hit is None:
            hit = frozenset(expr.variables())
            self._vars_memo[key] = hit
            self._vars_refs.append(expr)
        return hit

    def _slice(self, constraints: list[Expr], addr: Expr) -> list[Expr]:
        """The constraints transitively sharing variables with *addr*.

        Constraint-independence slicing (angr's trick): the feasible
        values of ``addr`` are unaffected by constraints over disjoint
        variables, provided the rest of the path condition is
        satisfiable -- which the explorer guarantees (every constraint
        is added with a witnessing model in hand).
        """
        needed = set(self._vars_of(addr))
        pending = [(c, self._vars_of(c)) for c in constraints
                   if not c.is_const]
        relevant: set[int] = set()
        while True:
            added = False
            rest = []
            for c, cv in pending:
                if cv & needed:
                    relevant.add(id(c))
                    needed |= cv
                    added = True
                else:
                    rest.append((c, cv))
            if not added:
                break
            pending = rest
        return [c for c in constraints if id(c) in relevant]

    def check(self, constraints: list[Expr], extra: list[Expr],
              tag=None) -> CheckResult:
        """Satisfiability of *constraints* + *extra* (fresh instance)."""
        from ..smt import Solver

        solver = Solver(self.max_conflicts, self.max_clauses, self.max_nodes)
        solver.extend(constraints)
        return solver.check(extra, tag=tag)

    def _enum_instance(self, constraints: list[Expr]):
        """The enumeration instance with *constraints* asserted.

        Reuses the live instance when *constraints* extends its asserted
        prefix (identity-wise); otherwise the DFS backtracked past the
        prefix and the instance is rebuilt.  The clause budget gets 4x
        headroom because the instance hosts a whole dive's constraints,
        not one query's.
        """
        asserted = self._enum_asserted
        sat = self._enum_sat
        if sat is not None:
            n = len(asserted)
            if n > len(constraints):
                sat = None
            else:
                for i in range(n):
                    if constraints[i] is not asserted[i]:
                        sat = None
                        break
        if sat is None:
            sat = SatSolver(self.max_conflicts, self.max_clauses * 4)
            self._enum_sat = sat
            self._enum_blaster = BitBlaster(sat)
            self._enum_asserted = asserted = []
            self._last_stats = dict.fromkeys(self._last_stats, 0)
            obs.count("cache.enum_rebuilds")
        blaster = self._enum_blaster
        for c in constraints[len(asserted):]:
            blaster.assert_true(c)
            asserted.append(c)
        return sat, blaster

    def _report_stats(self) -> None:
        """Delta version of :func:`repro.smt.solver.report_sat_stats`:
        the shared instance's lifetime counters only flush what this
        query added."""
        sat, blaster = self._enum_sat, self._enum_blaster
        now = {"conflicts": sat.conflicts, "decisions": sat.decisions,
               "restarts": sat.restarts, "learnt": sat.learnt,
               "gates": blaster.gates}
        last, self._last_stats = self._last_stats, now
        rec = obs.active()
        if rec is None:
            return
        for key in ("conflicts", "decisions", "restarts", "learnt"):
            rec.count(f"smt.{key}", now[key] - last[key])
        rec.observe("smt.clauses", len(sat.clauses))
        rec.count("smt.gates", now["gates"] - last["gates"])
        rec.observe("smt.gates_per_query", now["gates"] - last["gates"])

    def enumerate_values(self, constraints: list[Expr], addr: Expr,
                         limit: int, model: dict | None = None) -> list[int] | None:
        """Feasible values of *addr* under *constraints* (<= *limit*).

        Misses run on the shared enumeration instance: only the delta
        since the last query on this path is blasted, each found value
        is excluded with a blocking clause over the address bits, and
        the blocking clauses are guarded by a per-enumeration activation
        literal that is retired afterwards (so they never leak into
        later enumerations).  A state *model* satisfying the constraints
        seeds the first value without a solver call -- the common
        pinned-address read then costs a single UNSAT proof.  ``None``
        means more than *limit* values.  The memo is keyed on the slice
        of constraints relevant to the address, so sibling states whose
        extra constraints don't touch it share one enumeration.
        """
        sliced = self._slice(constraints, addr)
        key = (tuple(id(c) for c in sliced), id(addr), limit)
        hit = self._enum_memo.get(key, _MISS)
        if hit is not _MISS:
            obs.count("cache.enum_hits")
            return None if hit is None else list(hit)

        sat, blaster = self._enum_instance(constraints)
        values: list[int] | None = []
        query_act = None
        try:
            addr_bits = blaster.blast(addr)
            query_act = sat.new_var() * 2
            if model is not None and self._model_holds(constraints, model):
                values.append(eval_expr(addr, model) & ((1 << addr.width) - 1))
                sat.add_clause([query_act ^ 1] + [
                    lit ^ ((values[0] >> i) & 1)
                    for i, lit in enumerate(addr_bits)
                ])
            while len(values) <= limit:
                found = sat.solve([query_act])
                if found is None:
                    break
                value = 0
                for i, lit in enumerate(addr_bits):
                    bit = found[lit >> 1] ^ (lit & 1)
                    value |= (bit & 1) << i
                values.append(value)
                # Block this value: at least one address bit must
                # differ (clause void once the activation retires).
                sat.add_clause([query_act ^ 1] + [
                    lit ^ ((value >> i) & 1)
                    for i, lit in enumerate(addr_bits)
                ])
            else:
                values = None  # too many values
        finally:
            if query_act is not None:
                sat.add_clause([query_act ^ 1])
            self._report_stats()
        self._enum_memo[key] = values
        self._enum_refs.append((tuple(sliced), addr))
        return None if values is None else list(values)

    @staticmethod
    def _model_holds(constraints: list[Expr], model: dict) -> bool:
        try:
            return all(bool(eval_expr(c, model)) for c in constraints)
        except SolverError:
            return False


_MISS = object()


# -- post-dominator state merging ------------------------------------------

def _mergeable(a: SymState, b: SymState) -> bool:
    return (a.pc == b.pc
            and a.callstack == b.callstack
            and a.alive and b.alive
            and not a.goal and not b.goal
            and a.flags == b.flags
            and not a.fds and not b.fds
            and not a.files and not b.files
            and not a.mailbox and not b.mailbox
            and a.next_fd == b.next_fd
            and a.heap_next == b.heap_next
            and a.env_escaped == b.env_escaped
            and a.fp_dropped == b.fp_dropped
            and a.sig_handler == b.sig_handler
            and a.fp_constraints == b.fp_constraints)


def merge_states(a: SymState, b: SymState) -> SymState | None:
    """ite-merge *b* into *a* at a post-dominator rejoin, or ``None``.

    Both states must sit at the same pc with identical call stacks and
    compatible environments.  The merged state keeps the common
    constraint prefix, replaces the two diverging suffixes with their
    disjunction, and rewrites every differing register/memory byte as
    ``ite(guard_a, value_a, value_b)`` — the classic veritesting move,
    sound because the merged path condition is exactly the union of the
    two merged paths.
    """
    if not _mergeable(a, b):
        return None
    shared = 0
    limit = min(len(a.constraints), len(b.constraints))
    while shared < limit and a.constraints[shared] is b.constraints[shared]:
        shared += 1
    suffix_a = a.constraints[shared:]
    suffix_b = b.constraints[shared:]
    guard_a = mk_bool_and(*suffix_a) if suffix_a else mk_const(1, 1)
    guard_b = mk_bool_and(*suffix_b) if suffix_b else mk_const(1, 1)

    # Bound the ite tower before building anything.
    diff_mem = [addr for addr in set(a.mem) | set(b.mem)
                if a.mem.get(addr) is not b.mem.get(addr)]
    if len(diff_mem) > MERGE_MEM_LIMIT:
        return None

    merged = a.fork()
    merged.pc = a.pc
    merged.constraints = a.constraints[:shared]
    if suffix_a and suffix_b:
        merged.add_constraint(mk_bool_or(guard_a, guard_b))
    for i in range(16):
        if a.regs[i] is not b.regs[i]:
            merged.regs[i] = mk_ite(guard_a, a.regs[i], b.regs[i])
    for i in range(8):
        if a.fregs[i] is not b.fregs[i]:
            merged.fregs[i] = mk_ite(guard_a, a.fregs[i], b.fregs[i])
    for addr in diff_mem:
        val_a = a.mem.get(addr)
        if val_a is None:
            val_a = mk_const(a._image_byte(addr), 8)
        val_b = b.mem.get(addr)
        if val_b is None:
            val_b = mk_const(b._image_byte(addr), 8)
        merged.mem[addr] = mk_ite(guard_a, val_a, val_b)
    merged.read_marks = {**b.read_marks, **a.read_marks}
    merged.resolutions = max(a.resolutions, b.resolutions)
    merged.steps = max(a.steps, b.steps)
    # a's cached model satisfies the common prefix and guard_a, hence
    # the disjunction: still a valid model of the merged state.
    merged.model = dict(a.model)
    return merged
