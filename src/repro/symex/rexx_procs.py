"""REXX simprocedures: faithful library summaries.

Where the 2016-era tools hook computational externals with invented
values (the source of the paper's Es2/P failures and the negative-bomb
false positive), REXX's summaries preserve the input/output *relation*:

* ``sin``/``cos``/``pow`` build transcendental expression nodes the
  local-search solver can evaluate;
* ``atof`` returns a tracked input-conversion variable that is rendered
  back into the argv string when a model is found;
* ``pthread_create`` inlines the thread body at the call site
  (run-to-completion schedule);
* ``signal`` records the handler so the engine can model fault edges;
* crypto remains unconstrained — and REXX's honest-claims rule means it
  simply *fails* on those bombs instead of hallucinating.
"""

from __future__ import annotations

from ..smt import mk_const, mk_fp, mk_var
from .simprocedures import SIMPROCEDURES


def rexx_sin(engine, state, args):
    return mk_fp("fsin64", args[0])


def rexx_cos(engine, state, args):
    return mk_fp("fcos64", args[0])


def rexx_pow(engine, state, args):
    return mk_fp("fpow64", args[0], args[1])


def rexx_fabs(engine, state, args):
    # |x| = x * sign; model via pow(x*x, 0.5)-free route: keep it as a
    # transcendental-ish relation using multiplication then sqrt via pow.
    squared = mk_fp("fmul64", args[0], args[0])
    half = mk_const(0x3FE0000000000000, 64)  # 0.5
    return mk_fp("fpow64", squared, half)


def rexx_atof(engine, state, args):
    """Tracked input-conversion variable: the claim renderer turns the
    found double back into a decimal argv string."""
    name = engine.fresh_name("atof")
    engine.input_vars.add(name)
    ptr = args[0]
    if ptr.is_const and ptr.value in engine._argv_addrs:
        engine.render_requests[name] = engine._argv_addrs[ptr.value]
    return mk_var(name, 64)


def rexx_pthread_create(engine, state, args):
    """Inline the thread body (run-to-completion): jump straight into
    the entry function; its RET returns to the pthread_create call site."""
    entry = args[0]
    if not entry.is_const:
        return mk_const(-1 & ((1 << 64) - 1), 64)
    state.set_reg(1, args[1])  # the thread argument
    return ("jump", entry.value)


def rexx_pthread_join(engine, state, args):
    return mk_const(0, 64)


def rexx_signal(engine, state, args):
    signo = args[0]
    handler = args[1]
    if signo.is_const and signo.value == 8 and handler.is_const:
        state.sig_handler = handler.value
    return mk_const(0, 64)


def rexx_fork(engine, state, args):
    return mk_const(0, 64)  # follow the child


REXX_SIMPROCEDURES = {
    **SIMPROCEDURES,
    "sin": rexx_sin,
    "cos": rexx_cos,
    "pow": rexx_pow,
    "fabs": rexx_fabs,
    "atof": rexx_atof,
    "pthread_create": rexx_pthread_create,
    "pthread_join": rexx_pthread_join,
    "signal": rexx_signal,
    "fork": rexx_fork,
}
