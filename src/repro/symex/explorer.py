"""The static symbolic executor (AngrX): whole-program lift + dynamic
symbolic execution over REX IL, with forking, directed search toward the
``bomb`` symbol, simprocedures (no-lib mode) and the partial syscall
model.

The engine's report carries *claimed* inputs only; the tools layer
replays each claim on the concrete VM before granting a success —
exactly the paper's criterion ("if the bomb can be triggered by a
correct test case").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .. import obs
from ..obs import profile, provenance
from ..binfmt import Image
from ..errors import DiagnosticKind, DiagnosticLog, EngineError, SolverError
from ..ir import il, superblock
from ..ir.lifter import apply_binop, apply_fp_op, flag_condition
from ..isa import Instruction, decode
from ..smt import (
    Expr,
    Solver,
    eval_expr,
    mk_bool_not,
    mk_bool_or,
    mk_const,
    mk_eq,
    mk_var,
)
from ..vm.machine import STACK_TOP
from .cache import PathSolver, compile_stmts, merge_states
from .policy import SymexPolicy
from .simprocedures import SIMPROCEDURES
from .state import SymState
from .syscall_model import SyscallModel

MASK64 = (1 << 64) - 1

_MISSING = object()


class EngineAbort(Exception):
    """The whole analysis dies (the paper's E outcome)."""

    def __init__(self, kind: DiagnosticKind, detail: str):
        super().__init__(detail)
        self.kind = kind
        self.detail = detail


@dataclass
class SymexReport:
    """Result of one directed symbolic-execution run."""

    tool: str
    goal_claimed: bool = False
    claimed_inputs: list[list[bytes]] = field(default_factory=list)
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    aborted: str | None = None
    states_explored: int = 0
    steps: int = 0
    queries: int = 0


class AngrEngine:
    """Directed symbolic execution on a REXF image."""

    def __init__(self, image: Image, policy: SymexPolicy,
                 diagnostics: DiagnosticLog | None = None):
        self.image = image
        self.policy = policy
        self.diags = diagnostics if diagnostics is not None else DiagnosticLog()
        self.syscalls = SyscallModel(self)
        self._decode_cache: dict[int, Instruction] = {}
        self._code_blob: dict[int, bytes] = {}
        # Shared execution cache: lifted IL and superblocks live for the
        # process, keyed by the image digest; compiled handler lists are
        # engine-local (they close over nothing but are truncated at this
        # engine's hook addresses).
        self._cache = superblock.cache_for(image)
        self._compiled: dict[int, list | None] = {}
        self._solver = PathSolver(policy)
        self._sb_hits = 0
        self._sb_misses = 0
        self._merges = 0
        # Per-PC symbolic step tally; exists only while an attribution
        # profiler is installed so the step loop pays one None check.
        self._prof_pcs: dict[int, int] | None = \
            {} if profile.active() is not None else None
        self._fresh = 0
        self.computation_vars: set[str] = set()
        self.input_vars: set[str] = set()
        self.var_layout: dict[str, tuple[int, int]] = {}
        self.seed_argv: list[bytes] = []
        self.queries = 0
        self.resolutions = 0
        self.claim_env = None
        # No-lib hooks by address.
        self.hooks: dict[int, object] = {}
        self.env_requirements: dict[str, object] = {}
        self.render_requests: dict[str, int] = {}   # fp var -> argv index
        self._argv_addrs: dict[int, int] = {}       # region addr -> argv index
        # Sandshrew mode: opaque externals execute concretely in scratch
        # machines; the tools layer reads ``opaque_concretized`` to decide
        # whether a bounded concrete search is warranted.
        self.opaque_runner = None
        self.opaque_concretized = False
        if not policy.with_libs:
            table = SIMPROCEDURES
            table_name = getattr(policy, "simproc_table", "default")
            if table_name == "rexx":
                from .rexx_procs import REXX_SIMPROCEDURES

                table = REXX_SIMPROCEDURES
            elif table_name == "sandshrew":
                from .sandshrew_procs import SANDSHREW_SIMPROCEDURES, OpaqueRunner

                table = SANDSHREW_SIMPROCEDURES
                self.opaque_runner = OpaqueRunner(image)
            for name, symbol in image.lib_symbols().items():
                proc = table.get(name)
                if proc is not None:
                    self.hooks[symbol.addr] = proc

    # -- public ----------------------------------------------------------

    def explore(self, seed_argv: list[bytes], argv0: bytes = b"prog") -> SymexReport:
        """Directed search for the ``bomb`` symbol from a symbolic argv."""
        lifts_before = self._cache.fresh_lifts
        with obs.span("explore", tool=self.policy.name):
            report = self._explore(seed_argv, argv0)
        if self._prof_pcs:
            profile.record_pcs("explore", self._prof_pcs)
            self._prof_pcs = {}
        obs.count("symex.states", report.states_explored)
        obs.count("symex.steps", report.steps)
        obs.count("symex.queries", report.queries)
        obs.count("cache.superblock_hits", self._sb_hits)
        obs.count("cache.superblock_misses", self._sb_misses)
        fresh = self._cache.fresh_lifts - lifts_before
        if fresh:
            obs.count("lift.instructions", fresh)
        if self._merges:
            obs.count("symex.merges", self._merges)
        superblock.persist(self._cache)
        return report

    def _explore(self, seed_argv: list[bytes], argv0: bytes) -> SymexReport:
        report = SymexReport(tool=self.policy.name, diagnostics=self.diags)
        self.seed_argv = [argv0] + list(seed_argv)
        try:
            initial = self._initial_state()
        except EngineError as err:
            self.diags.events.append(err.diagnostic)
            report.aborted = err.diagnostic.detail
            return report

        import time as _time

        deadline = _time.monotonic() + self.policy.time_limit
        worklist: deque[SymState] = deque([initial])
        total_steps = 0
        states_seen = 1
        merging = self.policy.merge_states
        try:
            while worklist:
                if _time.monotonic() > deadline:
                    raise EngineAbort(
                        DiagnosticKind.RESOURCE_EXHAUSTED,
                        f"no result within the {self.policy.time_limit:.0f}s budget",
                    )
                if (total_steps > self.policy.max_total_steps
                        or states_seen > self.policy.max_states
                        or self.queries > self.policy.max_queries):
                    raise EngineAbort(
                        DiagnosticKind.RESOURCE_EXHAUSTED,
                        f"exploration budget exhausted "
                        f"(steps={total_steps}, states={states_seen}, "
                        f"queries={self.queries})",
                    )
                state = worklist.pop()  # DFS: dive on the newest fork
                forks = self._run_quantum(state)
                total_steps += state.steps
                state.steps = 0
                if forks:
                    obs.count("symex.states_forked", len(forks))
                for new_state in forks:
                    states_seen += 1
                    worklist.append(new_state)
                for candidate in ([state] + forks):
                    if candidate.goal:
                        claim = self._accept_goal(candidate)
                        if claim is None:
                            continue  # rejected; keep exploring
                        report.goal_claimed = True
                        report.claimed_inputs.append(claim)
                        report.states_explored = states_seen
                        report.steps = total_steps
                        report.queries = self.queries
                        return report
                if state.alive:
                    if merging and self._try_merge(worklist, state):
                        pass  # absorbed into a waiting sibling
                    elif forks:
                        worklist.insert(0, state)
                    else:
                        worklist.append(state)
                elif not state.goal:
                    obs.count("symex.states_pruned")
        except EngineAbort as err:
            self.diags.emit(err.kind, err.detail)
            report.aborted = err.detail
        except SolverError as err:
            self.diags.emit(DiagnosticKind.RESOURCE_EXHAUSTED, str(err))
            report.aborted = f"solver: {err}"
        except EngineError as err:
            self.diags.events.append(err.diagnostic)
            report.aborted = err.diagnostic.detail
        report.states_explored = states_seen
        report.steps = total_steps
        report.queries = self.queries
        return report

    def _try_merge(self, worklist, state: SymState) -> bool:
        """ite-merge *state* into a waiting sibling at the same rejoin
        point (same pc, same call stack); True when absorbed."""
        for i, other in enumerate(worklist):
            if other.pc != state.pc or other.callstack != state.callstack:
                continue
            merged = merge_states(other, state)
            if merged is not None:
                worklist[i] = merged
                self._merges += 1
                return True
        return False

    # -- setup -------------------------------------------------------------

    def fresh_name(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}_{self._fresh}"

    def _initial_state(self) -> SymState:
        state = SymState(self.image)
        policy = self.policy
        sp = STACK_TOP
        state.set_reg(15, mk_const(sp, 64))
        cursor = STACK_TOP + 0x100
        str_addrs = []
        for k, seed in enumerate(self.seed_argv):
            str_addrs.append(cursor)
            self._argv_addrs[cursor] = k
            if k == 0:
                for i, byte in enumerate(seed):
                    state.write_byte(cursor + i, mk_const(byte, 8))
                state.write_byte(cursor + len(seed), mk_const(0, 8))
                cursor += len(seed) + 1
                continue
            width = policy.argv_bytes
            prev = None
            for i in range(width):
                name = f"arg{k}_{i}"
                var = mk_var(name, 8)
                self.var_layout[name] = (k, i)
                state.write_byte(cursor + i, var)
                state.model[name] = seed[i] if i < len(seed) else 0
                if prev is not None:
                    # NUL-contiguity: once the string ends, it stays ended.
                    state.add_constraint(
                        mk_bool_or(
                            mk_bool_not(mk_eq(prev, mk_const(0, 8))),
                            mk_eq(var, mk_const(0, 8)),
                        )
                    )
                prev = var
            state.write_byte(cursor + width, mk_const(0, 8))
            prov = provenance.active()
            if prov is not None:
                prov.introduce(
                    f"argv[{k}] declared symbolic: {width} byte(s) at "
                    f"0x{cursor:x} as arg{k}_0..arg{k}_{width - 1}")
            cursor += width + 1
        argv_base = (cursor + 7) & ~7
        for i, addr in enumerate(str_addrs):
            state.write_concrete_mem(argv_base + 8 * i, mk_const(addr, 64), 8)
        state.write_concrete_mem(argv_base + 8 * len(str_addrs), mk_const(0, 64), 8)
        state.set_reg(1, mk_const(len(self.seed_argv), 64))
        state.set_reg(2, mk_const(argv_base, 64))
        state.pc = self.image.entry
        return state

    def _claim(self, state: SymState) -> list[bytes]:
        """Build the claimed argv tail from the goal state's model."""
        args: list[bytes] = []
        rendered: dict[int, bytes] = {}
        for var, k in self.render_requests.items():
            if var in state.model:
                rendered[k] = _render_double(state.model[var])
        for k in range(1, len(self.seed_argv)):
            if k in rendered:
                args.append(rendered[k])
                continue
            raw = bytearray()
            for i in range(self.policy.argv_bytes):
                raw.append(state.model.get(f"arg{k}_{i}", 0) & 0xFF)
            nul = raw.find(b"\0")
            if nul >= 0:
                raw = raw[:nul]
            args.append(bytes(raw))
        return args

    # -- solving -----------------------------------------------------------------

    def _check(self, state: SymState, extra: list[Expr]):
        self.queries += 1
        solver = Solver(self.policy.solver_conflicts, self.policy.solver_clauses,
                        self.policy.solver_nodes)
        solver.extend(state.constraints)
        with obs.span("solve", pc=state.pc, tool=self.policy.name):
            return solver.check(extra, tag=(state.pc, "explore"))

    def _ensure_model(self, state: SymState) -> None:
        for c in state.constraints:
            if not state.model_satisfies(c):
                outcome = self._check(state, [])
                if outcome.sat:
                    state.model.update(outcome.model)
                return

    def _mark_level(self, state: SymState, expr: Expr) -> int:
        """Highest dereference level of any symbolic-read result in *expr*."""
        level = 0
        stack = [expr]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            level = max(level, state.read_marks.get(id(node), 0))
            stack.extend(node.args)
        return level

    def _contains_vars(self, expr: Expr, names: set[str]) -> bool:
        return bool(expr.variables() & names) if names else False

    def _concretize(self, state: SymState, expr: Expr, diag: DiagnosticKind,
                    detail: str, avoid_zero: bool = False) -> int:
        """Pin *expr* to its model value (the angr concretization move)."""
        value = eval_expr(expr, state.model) & MASK64
        if avoid_zero and value == 0:
            outcome = self._check(
                state, [mk_bool_not(mk_eq(expr, mk_const(0, expr.width)))]
            )
            if outcome.sat:
                state.model.update(outcome.model)
                value = eval_expr(expr, state.model) & MASK64
        self.diags.emit(diag, detail)
        state.add_constraint(mk_eq(expr, mk_const(value, expr.width)))
        return value

    def _resolve_read_values(self, state: SymState, addr: Expr) -> list[int] | None:
        """Enumerate feasible values of a symbolic address (<= limit).

        The engine's shared :class:`PathSolver` instance does the work:
        the path condition and the address are encoded at most once for
        the whole exploration; each found value is excluded with a
        blocking clause guarded by a per-enumeration activation literal.
        """
        limit = self.policy.mem_resolve_limit
        self.queries += 1
        obs.count("symex.enum_queries")
        return self._solver.enumerate_values(state.constraints, addr, limit,
                                             model=state.model)

    # -- execution ---------------------------------------------------------------------

    def _fetch(self, pc: int) -> Instruction:
        instr = self._decode_cache.get(pc)
        if instr is None:
            if not self.image.is_code_addr(pc):
                raise EngineAbort(
                    DiagnosticKind.ENGINE_CRASH,
                    f"execution left mapped code at 0x{pc:x}",
                )
            blob = self._read_code(pc, 16)
            instr = decode(blob, pc)
            self._decode_cache[pc] = instr
        return instr

    def _read_code(self, addr: int, size: int) -> bytes:
        out = bytearray(size)
        for sec in self.image.sections:
            lo = max(sec.vaddr, addr)
            hi = min(sec.vaddr + len(sec.data), addr + size)
            if lo < hi:
                out[lo - addr : hi - addr] = sec.data[lo - sec.vaddr : hi - sec.vaddr]
        return bytes(out)

    def _block_fetch(self, pc: int) -> Instruction | None:
        """Non-raising fetch used while *building* superblocks: a pc
        outside mapped code just ends the block (the generic path raises
        if execution actually reaches it)."""
        if not self.image.is_code_addr(pc):
            return None
        try:
            return self._fetch(pc)
        except EngineAbort:
            return None

    def _block_at(self, pc: int) -> list | None:
        """Compiled handler entries for the superblock at *pc*, or None.

        Entries are ``(pc, next_pc, handlers)`` triples; the list is
        truncated before the first hooked address (no-lib mode) so the
        per-instruction path runs the simprocedure.
        """
        compiled = self._compiled.get(pc, _MISSING)
        if compiled is not _MISSING:
            return compiled
        if pc not in self._cache.blocks:
            self._sb_misses += 1  # shared-cache build, not a local recompile
        block = self._cache.block_at(pc, self._block_fetch)
        entries: list | None = None
        if block is not None:
            hooks = self.hooks
            acc = []
            for epc, enext, stmts in block.entries:
                if hooks and epc in hooks:
                    break
                handlers = compile_stmts(stmts)
                if handlers is None:
                    break
                acc.append((epc, enext, handlers))
            entries = acc or None
        self._compiled[pc] = entries
        return entries

    def _exec_block(self, state: SymState, entries: list, budget: int) -> int:
        """Dispatch up to *budget* cached instructions; returns how many
        actually ran (a dying state stops the block mid-way)."""
        executed = 0
        pcs = self._prof_pcs
        for pc, next_pc, handlers in entries:
            if executed >= budget:
                break
            if pcs is not None:
                pcs[pc] = pcs.get(pc, 0) + 1
            tmps: dict[int, Expr] = {}
            for handler in handlers:
                handler(self, state, tmps)
                if not state.alive:
                    state.steps += 1
                    return executed + 1
            state.steps += 1
            executed += 1
            state.pc = next_pc
        return executed

    def _run_quantum(self, state: SymState) -> list[SymState]:
        forks: list[SymState] = []
        remaining = self.policy.step_quantum
        while remaining > 0:
            if not state.alive or state.goal:
                break
            hook = self.hooks.get(state.pc)
            if hook is not None:
                self._run_hook(state, hook)
                remaining -= 1
                continue
            entries = self._block_at(state.pc)
            if entries is not None:
                self._sb_hits += 1
                remaining -= self._exec_block(state, entries, remaining)
                continue
            pcs = self._prof_pcs
            if pcs is not None:
                pcs[state.pc] = pcs.get(state.pc, 0) + 1
            instr = self._fetch(state.pc)
            new_forks = self._execute(state, instr)
            state.steps += 1
            remaining -= 1
            if new_forks:
                forks.extend(new_forks)
                break  # let the scheduler rotate after a fork
        return forks

    def _run_hook(self, state: SymState, proc) -> None:
        obs.count("symex.simproc_hits")
        args = [state.get_reg(i) for i in range(1, 7)]
        ret = proc(self, state, args)
        if isinstance(ret, tuple) and ret[0] == "jump":
            # The simprocedure redirects control (e.g. inlining a thread
            # body); the target function's own RET uses the caller's
            # return slot.
            state.pc = ret[1]
            state.steps += 1
            return
        if ret is not None:
            state.set_reg(0, ret)
        # Simulate the RET the hooked function would perform.
        sp_expr = state.get_reg(15)
        sp = sp_expr.value if sp_expr.is_const else eval_expr(sp_expr, state.model)
        ret_addr = state.read_concrete_mem(sp, 8)
        if not ret_addr.is_const:
            raise EngineAbort(DiagnosticKind.ENGINE_CRASH, "symbolic return address")
        state.set_reg(15, mk_const((sp + 8) & MASK64, 64))
        if state.callstack:
            state.callstack = state.callstack[:-1]
        state.pc = ret_addr.value
        state.steps += 1

    # -- IL interpretation ------------------------------------------------------------

    def _execute(self, state: SymState, instr: Instruction) -> list[SymState]:
        tmps: dict[int, Expr] = {}
        next_pc = instr.next_addr
        forks: list[SymState] = []

        stmts, _fresh = self._cache.lift_for(instr)
        for stmt in stmts:
            if isinstance(stmt, il.Move):
                self._set(state, tmps, stmt.dst, self._get(state, tmps, stmt.src))
            elif isinstance(stmt, il.BinOp):
                a = self._get(state, tmps, stmt.a)
                b = self._get(state, tmps, stmt.b)
                result = self._binop(state, stmt.op, a, b)
                if stmt.set_flags:
                    state.flags = ("logic", result, None)
                self._set(state, tmps, stmt.dst, result)
            elif isinstance(stmt, il.UnOp):
                a = self._get(state, tmps, stmt.a)
                result = apply_binop("xor", a, mk_const(MASK64, 64))
                if stmt.set_flags:
                    state.flags = ("logic", result, None)
                self._set(state, tmps, stmt.dst, result)
            elif isinstance(stmt, il.Lea):
                base = self._get(state, tmps, stmt.base)
                self._set(state, tmps, stmt.dst,
                          apply_binop("add", base, mk_const(stmt.disp, 64)))
            elif isinstance(stmt, il.Load):
                addr = self._get(state, tmps, stmt.addr)
                self._set(state, tmps, stmt.dst,
                          self._load(state, addr, stmt.width, stmt.signed))
            elif isinstance(stmt, il.Store):
                addr = self._get(state, tmps, stmt.addr)
                value = self._get(state, tmps, stmt.value)
                self._store(state, addr, value, stmt.width)
            elif isinstance(stmt, il.SetFlags):
                a = self._get(state, tmps, stmt.a)
                b = self._get(state, tmps, stmt.b)
                state.flags = (stmt.kind, a, b)
            elif isinstance(stmt, il.CondBranch):
                return self._cond_branch(state, stmt, instr)
            elif isinstance(stmt, il.Jump):
                target = self._get(state, tmps, stmt.target)
                if not target.is_const and self.policy.enumerate_jumps:
                    return self._enumerated_jump(state, target)
                next_pc = self._jump_target(state, target)
            elif isinstance(stmt, il.Call):
                target = self._get(state, tmps, stmt.target)
                resolved = self._jump_target(state, target)
                sp = self._conc_sp(state)
                state.set_reg(15, mk_const((sp - 8) & MASK64, 64))
                state.write_concrete_mem(sp - 8, mk_const(stmt.return_addr, 64), 8)
                state.callstack = state.callstack + (stmt.return_addr,)
                next_pc = resolved
            elif isinstance(stmt, il.Ret):
                sp = self._conc_sp(state)
                target = state.read_concrete_mem(sp, 8)
                state.set_reg(15, mk_const((sp + 8) & MASK64, 64))
                if state.callstack:
                    state.callstack = state.callstack[:-1]
                next_pc = self._jump_target(state, target)
            elif isinstance(stmt, il.Push):
                value = self._get(state, tmps, stmt.src)
                sp = self._conc_sp(state)
                state.set_reg(15, mk_const((sp - 8) & MASK64, 64))
                state.write_concrete_mem(sp - 8, value, 8)
            elif isinstance(stmt, il.Pop):
                sp = self._conc_sp(state)
                value = state.read_concrete_mem(sp, 8)
                state.set_reg(15, mk_const((sp + 8) & MASK64, 64))
                self._set(state, tmps, stmt.dst, value)
            elif isinstance(stmt, il.Syscall):
                self.syscalls.dispatch(state)
                if not state.alive:
                    return forks
            elif isinstance(stmt, il.Halt):
                state.alive = False
                return forks
            elif isinstance(stmt, il.FpOp):
                args = [self._get(state, tmps, s) for s in stmt.srcs]
                self._set(state, tmps, stmt.dst, apply_fp_op(stmt.op, args))
            elif isinstance(stmt, il.FpFlags):
                a = self._get(state, tmps, stmt.a)
                b = self._get(state, tmps, stmt.b)
                state.flags = (stmt.kind, a, b)
            elif isinstance(stmt, il.DivGuard):
                divisor = self._get(state, tmps, stmt.divisor)
                if (not divisor.is_const and self.policy.model_signals
                        and state.sig_handler is not None):
                    fault = self._fork_fault_state(state, divisor, instr)
                    if fault is not None:
                        forks.append(fault)
                    state.add_constraint(
                        mk_bool_not(mk_eq(divisor, mk_const(0, 64)))
                    )
                    self._ensure_model(state)
                elif not divisor.is_const:
                    self.diags.emit(
                        DiagnosticKind.CONCRETIZED_ENV,
                        "division fault edge dropped (divisor constrained nonzero)",
                        instr.addr,
                    )
                    state.add_constraint(
                        mk_bool_not(mk_eq(divisor, mk_const(0, 64)))
                    )
                    self._ensure_model(state)
                elif divisor.value == 0:
                    # Concrete fault with no signal modeling: dead path.
                    self.diags.emit(
                        DiagnosticKind.CONCRETIZED_ENV,
                        "concrete division fault; state killed",
                        instr.addr,
                    )
                    state.alive = False
                    return forks
            else:  # pragma: no cover
                raise EngineAbort(DiagnosticKind.ENGINE_CRASH,
                                  f"unhandled IL stmt {stmt}")
            if not state.alive:
                return forks
        state.pc = next_pc
        return forks

    # -- operand plumbing ---------------------------------------------------------

    def _get(self, state: SymState, tmps: dict, src) -> Expr:
        if isinstance(src, il.ConstRef):
            return mk_const(src.value, 64)
        if isinstance(src, il.RegRef):
            return state.regs[src.index]
        if isinstance(src, il.FRegRef):
            return state.fregs[src.index]
        return tmps[src.index]

    def _set(self, state: SymState, tmps: dict, dst, expr: Expr) -> None:
        if isinstance(dst, il.RegRef):
            state.regs[dst.index] = expr
        elif isinstance(dst, il.FRegRef):
            state.fregs[dst.index] = expr
        else:
            tmps[dst.index] = expr

    def _conc_sp(self, state: SymState) -> int:
        sp = state.get_reg(15)
        if sp.is_const:
            return sp.value
        return self._concretize(
            state, sp, DiagnosticKind.CONCRETIZED_READ,
            "symbolic stack pointer concretized",
        )

    # -- operations ------------------------------------------------------------------

    def _binop(self, state: SymState, op: str, a: Expr, b: Expr) -> Expr:
        try:
            return apply_binop(op, a, b)
        except SolverError:
            if op in ("sdiv", "srem", "udiv", "urem") and not b.is_const:
                value = self._concretize(
                    state, b, DiagnosticKind.CONCRETIZED_ENV,
                    "symbolic divisor concretized", avoid_zero=True,
                )
                if value == 0:
                    state.alive = False
                    return mk_const(0, 64)
                return apply_binop(op, a, mk_const(value, b.width))
            raise

    def _load(self, state: SymState, addr: Expr, width: int, signed: bool) -> Expr:
        from ..smt import mk_sext, mk_zext

        if addr.is_const:
            value = state.read_concrete_mem(addr.value, width)
        else:
            value = self._symbolic_read(state, addr, width)
        if width < 8:
            value = mk_sext(value, 64) if signed else mk_zext(value, 64)
        return value

    def _symbolic_read(self, state: SymState, addr: Expr, width: int) -> Expr:
        level = self._mark_level(state, addr)
        if level >= self.policy.sym_mem_levels:
            # One dereference level too deep for the memory map: the
            # inner array never enters the constraint model — the
            # paper's Es3 on the two-level bombs — and the read pins to
            # the cached model's address.
            target = self._concretize(
                state, addr, DiagnosticKind.UNMODELED_MEMORY_REF,
                "second-level symbolic dereference not modeled; concretized",
            )
            return state.read_concrete_mem(target, width)
        if state.resolutions >= self.policy.max_resolutions:
            target = self._concretize(
                state, addr, DiagnosticKind.CONCRETIZED_READ,
                "symbolic-read resolution budget spent; address concretized",
            )
            return state.read_concrete_mem(target, width)
        values = self._resolve_read_values(state, addr)
        state.resolutions += 1
        if values is None:
            target = self._concretize(
                state, addr, DiagnosticKind.CONCRETIZED_READ,
                "symbolic address resolves to too many cells; concretized",
            )
            return state.read_concrete_mem(target, width)
        from ..smt import mk_ite

        result = state.read_concrete_mem(values[0], width)
        for value in values[1:]:
            result = mk_ite(
                mk_eq(addr, mk_const(value, 64)),
                state.read_concrete_mem(value, width),
                result,
            )
        state.read_marks[id(result)] = level + 1
        return result

    def _store(self, state: SymState, addr: Expr, value: Expr, width: int) -> None:
        if addr.is_const:
            state.write_concrete_mem(addr.value, value, width)
            return
        target = self._concretize(
            state, addr, DiagnosticKind.CONCRETIZED_READ,
            "symbolic store address concretized",
        )
        state.write_concrete_mem(target, value, width)

    def _jump_target(self, state: SymState, target: Expr) -> int:
        if target.is_const:
            return target.value
        if self._mark_level(state, target) >= self.policy.sym_mem_levels:
            # Jump through a symbolically-indexed address table: beyond
            # the model (Es3 on sj_jump_array); pin to the model value.
            return self._concretize(
                state, target, DiagnosticKind.UNMODELED_MEMORY_REF,
                "jump through a symbolically-indexed address table concretized",
            )
        return self._concretize(
            state, target, DiagnosticKind.CONCRETIZED_JUMP,
            "symbolic jump target concretized to the cached model's value",
        )

    def _cond_branch(self, state: SymState, stmt: il.CondBranch,
                     instr: Instruction) -> list[SymState]:
        if state.flags is None:
            raise EngineAbort(DiagnosticKind.ENGINE_CRASH,
                              "branch with undefined flags")
        kind, a, b = state.flags
        cond = flag_condition(kind, a, b, stmt.cc)
        taken_pc, fall_pc = stmt.target, instr.next_addr

        if cond.is_const:
            state.pc = taken_pc if cond.value else fall_pc
            return []

        if cond.contains_fp():
            return self._fp_branch(state, cond, taken_pc, fall_pc, instr.addr)

        follows = state.model_satisfies(cond)
        primary_cond = cond if follows else mk_bool_not(cond)
        other_cond = mk_bool_not(cond) if follows else cond
        primary_pc = taken_pc if follows else fall_pc
        other_pc = fall_pc if follows else taken_pc

        forks: list[SymState] = []
        outcome = self._check(state, [other_cond])
        if outcome.sat:
            fork = state.fork()
            fork.add_constraint(other_cond)
            fork.model = {**state.model, **outcome.model}
            fork.pc = other_pc
            self._ensure_model(fork)
            forks.append(fork)
        state.add_constraint(primary_cond)
        state.pc = primary_pc
        return forks

    def _fp_branch(self, state: SymState, cond: Expr, taken_pc: int,
                   fall_pc: int, pc: int) -> list[SymState]:
        """A branch whose condition needs FP theory."""
        if self.policy.with_libs:
            # Executing FP-heavy library code symbolically is where the
            # 2016-era engine falls over (the paper's E cells).
            raise EngineAbort(
                DiagnosticKind.ENGINE_CRASH,
                "floating-point constraints from executed library code",
            )
        if self._contains_vars(cond, self.computation_vars):
            self.diags.emit(
                DiagnosticKind.CONCRETIZED_ENV,
                "branch depends on an invented (hooked) value; explored unconstrained",
                pc,
            )
        else:
            self.diags.emit(
                DiagnosticKind.UNSUPPORTED_THEORY,
                "floating-point condition outside the solver's theories; "
                "explored unconstrained",
                pc,
            )
        state.fp_dropped = True
        fork = state.fork()
        fork.fp_dropped = True
        fork.pc = fall_pc
        state.pc = taken_pc
        if self.policy.fp_search:
            # Keep the conditions as data for the local-search solver.
            state.fp_constraints.append(cond)
            fork.fp_constraints.append(mk_bool_not(cond))
        return [fork]


    # -- extension capabilities (REXX) -------------------------------------------

    def _enumerated_jump(self, state: SymState, target: Expr) -> list[SymState]:
        """Fork one state per feasible target of a symbolic jump."""
        values = self._resolve_read_values(state, target)
        if values is None:
            self.diags.emit(
                DiagnosticKind.CONCRETIZED_JUMP,
                "symbolic jump with too many targets; concretized",
            )
            state.pc = self._concretize(
                state, target, DiagnosticKind.CONCRETIZED_JUMP,
                "symbolic jump target concretized",
            )
            return []
        code_values = [v for v in values if self.image.is_code_addr(v)]
        if not code_values:
            state.alive = False
            return []
        forks: list[SymState] = []
        for value in code_values[1:]:
            fork = state.fork()
            fork.add_constraint(mk_eq(target, mk_const(value, 64)))
            fork.pc = value
            self._ensure_model(fork)
            forks.append(fork)
        state.add_constraint(mk_eq(target, mk_const(code_values[0], 64)))
        state.pc = code_values[0]
        self._ensure_model(state)
        return forks

    def _fork_fault_state(self, state: SymState, divisor: Expr,
                          instr) -> SymState | None:
        """Model the division-fault edge: divisor == 0 jumps to the
        registered handler, which returns past the faulting instruction."""
        zero_cond = mk_eq(divisor, mk_const(0, 64))
        outcome = self._check(state, [zero_cond])
        if not outcome.sat:
            return None
        fault = state.fork()
        fault.add_constraint(zero_cond)
        fault.model = {**state.model, **outcome.model}
        self._ensure_model(fault)
        sp_expr = fault.get_reg(15)
        sp = sp_expr.value if sp_expr.is_const else eval_expr(sp_expr, fault.model)
        # The handler returns directly past the faulting instruction
        # (register restoration is approximated: handlers here only
        # mutate memory, which persists anyway).
        fault.set_reg(15, mk_const((sp - 8) & MASK64, 64))
        fault.write_concrete_mem(sp - 8, mk_const(instr.next_addr, 64), 8)
        fault.set_reg(1, mk_const(8, 64))
        fault.pc = fault.sig_handler
        return fault

    def _accept_goal(self, state: SymState) -> list[bytes] | None:
        """Vet a goal state and build the claimed input (and env)."""
        policy = self.policy
        if policy.honest_claims:
            invented = set()
            for c in state.constraints + state.fp_constraints:
                invented |= c.variables() & self.computation_vars
            if invented:
                self.diags.emit(
                    DiagnosticKind.CONCRETIZED_ENV,
                    f"goal rejected: constraints depend on invented values "
                    f"({sorted(invented)[:3]}...)",
                )
                return None
        if state.fp_constraints:
            model = self._solve_fp_goal(state)
            if model is None:
                return None
            state.model = model
        self.claim_env = self._claim_env(state)
        return self._claim(state)

    def _solve_fp_goal(self, state: SymState):
        """Local search over the full (BV + FP) path condition."""
        from ..smt.fpsearch import search_fp_model

        constraints = state.constraints + state.fp_constraints
        var_widths: dict[str, int] = {}
        for c in constraints:
            stack = [c]
            seen = set()
            while stack:
                node = stack.pop()
                if id(node) in seen:
                    continue
                seen.add(id(node))
                if node.is_var:
                    var_widths[node.name] = node.width
                stack.extend(node.args)
        candidates = [dict(state.model)]
        candidates.extend(self._numeric_candidates(var_widths))
        return search_fp_model(constraints, var_widths, candidates, budget=6000)

    def _numeric_candidates(self, var_widths: dict[str, int]):
        """Candidate models rendering small numeric strings into argv."""
        out = []
        arg_vars = sorted(n for n in var_widths if n in self.var_layout)
        if not arg_vars:
            return out
        for value in list(range(-120, 121)):
            text = str(value).encode()
            model = {}
            for name in arg_vars:
                _, i = self.var_layout[name]
                model[name] = text[i] if i < len(text) else 0
            out.append(model)
        return out

    def _claim_env(self, state: SymState):
        """Build the claimed environment from recorded env requirements."""
        if not self.env_requirements:
            return None
        from ..vm import Environment

        env = Environment()
        reqs = self.env_requirements
        if "time" in reqs:
            env.time_value = state.model.get(reqs["time"], 0)
        if "pid" in reqs:
            env.pid = state.model.get(reqs["pid"], 0)
        if "magic" in reqs:
            env.magic = state.model.get(reqs["magic"], 0)
        for url, var_names in reqs.get("network", {}).items():
            env.network[url] = bytes(
                state.model.get(n, 0) & 0xFF for n in var_names
            )
        for path, var_names in reqs.get("files", {}).items():
            env.files[path] = bytes(
                state.model.get(n, 0) & 0xFF for n in var_names
            )
        return env


def _render_double(bits: int) -> bytes:
    """Render a double as a plain decimal string atof can parse back."""
    from ..vm.cpu import bits_to_f64

    value = bits_to_f64(bits)
    if value != value or value in (float("inf"), float("-inf")):
        return b"0"
    for precision in range(1, 18):
        text = f"{value:.{precision}f}"
        parsed = float(text)
        if parsed == value or (value and abs(parsed - value) / abs(value) < 1e-7):
            return text.encode()
    return f"{value:.17f}".encode()
