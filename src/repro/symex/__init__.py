"""Static (Angr-style) symbolic execution engine."""

from .explorer import AngrEngine, EngineAbort, SymexReport
from .policy import SymexPolicy
from .simprocedures import SIMPROCEDURES, sym_atoi, sym_strlen
from .state import EngineFile, EnginePipe, SymState
from .syscall_model import SyscallModel

__all__ = [
    "AngrEngine",
    "EngineAbort",
    "EngineFile",
    "EnginePipe",
    "SIMPROCEDURES",
    "SymState",
    "SymexPolicy",
    "SymexReport",
    "SyscallModel",
    "sym_atoi",
    "sym_strlen",
]
