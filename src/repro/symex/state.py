"""Symbolic program state for the static (Angr-style) engine.

A :class:`SymState` is a forkable snapshot: program counter, register
file of expressions, a byte-granular symbolic memory overlaid on the
image, the path condition, and a cached satisfying model used to dodge
solver queries (the standard concretization-cache trick).

The memory model implements *single-level* symbolic addressing the way
2016-era angr did: a read at a symbolic address is resolved by
enumerating its feasible concrete values (up to a limit) and building
an if-then-else over the cells; results of such reads are marked, and a
later address that *contains* a marked value (a second dereference
level) or exceeds the enumeration limit falls back to concretization —
which is precisely what separates the one-level and two-level
symbolic-array bombs in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..binfmt import Image
from ..errors import DiagnosticKind, DiagnosticLog, SolverError
from ..smt import (
    Expr,
    Solver,
    eval_expr,
    mk_concat_many,
    mk_const,
    mk_eq,
    mk_extract,
    mk_ite,
    mk_sext,
    mk_var,
    mk_zext,
)

MASK64 = (1 << 64) - 1


@dataclass
class EnginePipe:
    """In-engine pipe model (byte expressions survive the round trip)."""

    data: list[Expr] = field(default_factory=list)


@dataclass
class EngineSymFile:
    """In-engine file with *symbolic* contents (REXX's faithful model:
    taint survives the kernel round trip)."""

    data: list = field(default_factory=list)  # list[Expr] bytes
    pos: int = 0


@dataclass
class EngineFile:
    """In-engine file model.  Contents are concrete bytes only: symbolic
    writes are concretized (with a diagnostic) — the fidelity loss the
    covert-propagation bombs exploit."""

    data: bytearray = field(default_factory=bytearray)
    pos: int = 0


class SymState:
    """One symbolic execution state."""

    _ids = 0

    def __init__(self, image: Image):
        SymState._ids += 1
        self.sid = SymState._ids
        self.image = image
        self.pc = image.entry
        self.regs: list[Expr] = [mk_const(0, 64) for _ in range(16)]
        self.fregs: list[Expr] = [mk_const(0, 64) for _ in range(8)]
        self.flags: tuple | None = None       # (kind, a_expr, b_expr)
        self.mem: dict[int, Expr] = {}        # byte overlay
        self.constraints: list[Expr] = []
        self.model: dict[str, int] = {}       # cached satisfying model
        self.steps = 0
        self.alive = True
        self.goal = False
        #: expr id -> dereference level of symbolic-address read results.
        self.read_marks: dict[int, int] = {}
        # Environment models (shared mutable objects are copied on fork).
        self.fds: dict[int, object] = {}
        self.files: dict[str, EngineFile] = {}
        self.next_fd = 3
        self.heap_next = 0x0200_0000
        self.env_escaped = False
        self.fp_dropped = False               # an FP branch went unconstrained
        self.resolutions = 0                  # symbolic-read resolutions spent
        self.fp_constraints: list[Expr] = []  # FP conditions (fp_search mode)
        self.mailbox: list[Expr] = []         # kernel mailbox model (REXX)
        self.sig_handler: int | None = None   # registered SIGFPE handler
        #: Return addresses of the active call chain (maintained by the
        #: explorer's Call/Ret handling); states only merge at a
        #: post-dominator when their call stacks are identical.
        self.callstack: tuple[int, ...] = ()
        #: Opaque library calls concretized along this path, in call
        #: order (sandshrew mode).  Stateful functions (srand/rand) are
        #: re-executed by replaying this log in a fresh machine.
        self.opaque_calls: tuple = ()
        self._image_bytes: dict[int, bytes] = {}

    # -- forking -----------------------------------------------------------

    def fork(self) -> "SymState":
        other = SymState.__new__(SymState)
        SymState._ids += 1
        other.sid = SymState._ids
        other.image = self.image
        other.pc = self.pc
        other.regs = list(self.regs)
        other.fregs = list(self.fregs)
        other.flags = self.flags
        other.mem = dict(self.mem)
        other.constraints = list(self.constraints)
        other.model = dict(self.model)
        other.steps = self.steps
        other.alive = True
        other.goal = False
        other.read_marks = dict(self.read_marks)
        def _copy_handle(h):
            if isinstance(h, EngineFile):
                return EngineFile(bytearray(h.data), h.pos)
            if isinstance(h, EngineSymFile):
                return EngineSymFile(list(h.data), h.pos)
            return h  # pipes stay shared, like kernel objects

        other.fds = {fd: _copy_handle(h) for fd, h in self.fds.items()}
        other.files = {name: _copy_handle(f) for name, f in self.files.items()}
        other.next_fd = self.next_fd
        other.heap_next = self.heap_next
        other.env_escaped = self.env_escaped
        other.fp_dropped = self.fp_dropped
        other.resolutions = self.resolutions
        other.fp_constraints = list(self.fp_constraints)
        other.mailbox = list(self.mailbox)
        other.sig_handler = self.sig_handler
        other.callstack = self.callstack
        other.opaque_calls = self.opaque_calls
        other._image_bytes = self._image_bytes
        return other

    # -- constraints -----------------------------------------------------------

    def add_constraint(self, expr: Expr) -> None:
        if not (expr.is_const and expr.value):
            self.constraints.append(expr)

    def model_satisfies(self, expr: Expr) -> bool:
        try:
            return bool(eval_expr(expr, self.model))
        except SolverError:
            return False

    # -- registers ----------------------------------------------------------------

    def get_reg(self, index: int) -> Expr:
        return self.regs[index]

    def set_reg(self, index: int, expr: Expr) -> None:
        self.regs[index] = expr

    # -- memory ----------------------------------------------------------------------

    def _image_byte(self, addr: int) -> int:
        page = addr >> 12
        blob = self._image_bytes.get(page)
        if blob is None:
            data = bytearray(4096)
            base = page << 12
            for sec in self.image.sections:
                lo = max(sec.vaddr, base)
                hi = min(sec.vaddr + len(sec.data), base + 4096)
                if lo < hi:
                    data[lo - base : hi - base] = sec.data[lo - sec.vaddr : hi - sec.vaddr]
            blob = self._image_bytes[page] = bytes(data)
        return blob[addr & 0xFFF]

    def read_byte(self, addr: int) -> Expr:
        expr = self.mem.get(addr)
        if expr is None:
            return mk_const(self._image_byte(addr), 8)
        return expr

    def write_byte(self, addr: int, expr: Expr) -> None:
        self.mem[addr] = expr

    def read_concrete_mem(self, addr: int, width: int) -> Expr:
        parts = [self.read_byte(addr + i) for i in range(width)]
        return mk_concat_many(list(reversed(parts)))

    def write_concrete_mem(self, addr: int, expr: Expr, width: int) -> None:
        for i in range(width):
            self.write_byte(addr + i, mk_extract(expr, 8 * i + 7, 8 * i))

    def read_cstr_concrete(self, addr: int, limit: int = 256) -> bytes:
        """Read a concrete C string; symbolic bytes evaluate under the model."""
        out = bytearray()
        for i in range(limit):
            byte = self.read_byte(addr + i)
            value = byte.value if byte.is_const else eval_expr(byte, self.model)
            if value == 0:
                break
            out.append(value)
        return bytes(out)

    def cstr_has_symbolic(self, addr: int, limit: int = 256) -> bool:
        for i in range(limit):
            byte = self.read_byte(addr + i)
            if not byte.is_const:
                return True
            if byte.value == 0:
                return False
        return False

    def range_has_symbolic(self, addr: int, length: int) -> bool:
        return any(not self.read_byte(addr + i).is_const
                   for i in range(min(length, 512)))
