"""Simprocedures: Python summaries of library functions (no-lib mode).

Mirrors angr's SimProcedure catalogue circa 2016:

* faithful *symbolic* summaries for input parsing (``atoi``, ``strlen``)
  — these are why angr solves the argv-length bomb;
* allocation and thread/process stubs;
* unconstrained-return summaries for computational externals (``sin``,
  ``pow``, ``rand``, crypto) — the source of the paper's wrong-value
  failures (Es2) and of the ``neg_square`` false positive.

Each simprocedure receives ``(engine, state, args)`` where *args* are
the argument-register expressions, and returns the result expression
(or None for void).
"""

from __future__ import annotations

from ..errors import DiagnosticKind
from ..smt import Expr, mk_binop, mk_bool_and, mk_bool_or, mk_cmp, mk_const, mk_eq, mk_ite, mk_neg, mk_var, mk_zext


def _is_digit(byte: Expr) -> Expr:
    return mk_bool_and(
        mk_cmp("ule", mk_const(ord("0"), 8), byte),
        mk_cmp("ule", byte, mk_const(ord("9"), 8)),
    )


def sym_atoi(bytes_exprs: list[Expr]) -> Expr:
    """Fully symbolic atoi over a byte vector (maximal digit prefix)."""
    n = len(bytes_exprs)

    def parse_from(i: int, acc: Expr) -> Expr:
        if i >= n:
            return acc
        byte = bytes_exprs[i]
        digit = mk_binop("sub", mk_zext(byte, 64), mk_const(ord("0"), 64))
        new_acc = mk_binop("add", mk_binop("mul", acc, mk_const(10, 64)), digit)
        return mk_ite(_is_digit(byte), parse_from(i + 1, new_acc), acc)

    zero = mk_const(0, 64)
    positive = parse_from(0, zero)
    negative_body = parse_from(1, zero)
    is_neg = mk_eq(bytes_exprs[0], mk_const(ord("-"), 8)) if bytes_exprs else None
    if is_neg is None:
        return zero
    return mk_ite(is_neg, mk_neg(negative_body), positive)


def sym_strlen(bytes_exprs: list[Expr]) -> Expr:
    """Fully symbolic strlen over a byte vector (NUL-terminated)."""
    n = len(bytes_exprs)
    result = mk_const(n, 64)
    for i in range(n - 1, -1, -1):
        result = mk_ite(
            mk_eq(bytes_exprs[i], mk_const(0, 8)), mk_const(i, 64), result
        )
    return result


def _read_bytes(state, addr_expr: Expr, count: int) -> list[Expr]:
    addr = addr_expr.value if addr_expr.is_const else None
    if addr is None:
        return [mk_const(0, 8)] * count
    return [state.read_byte(addr + i) for i in range(count)]


# -- the catalogue -------------------------------------------------------------

def sp_atoi(engine, state, args):
    return sym_atoi(_read_bytes(state, args[0], engine.policy.argv_bytes + 1))


def sp_strlen(engine, state, args):
    return sym_strlen(_read_bytes(state, args[0], engine.policy.argv_bytes + 1))


def sp_atof(engine, state, args):
    # Input-conversion summary: an unconstrained double *representing
    # the input*; FP reasoning downstream is the solver's problem (Es3),
    # not a propagation break.
    name = engine.fresh_name("atof")
    engine.input_vars.add(name)
    return mk_var(name, 64)


def sp_malloc(engine, state, args):
    size = args[0].value if args[0].is_const else 64
    addr = state.heap_next
    state.heap_next += (size + 31) & ~15
    return mk_const(addr, 64)


def sp_free(engine, state, args):
    return mk_const(0, 64)


def _unconstrained(engine, state, what: str):
    name = engine.fresh_name(what)
    engine.computation_vars.add(name)
    engine.diags.emit(
        DiagnosticKind.CONCRETIZED_ENV,
        f"{what} summarized with an unconstrained return value",
    )
    return mk_var(name, 64)


def sp_sin(engine, state, args):
    return _unconstrained(engine, state, "sin")


def sp_cos(engine, state, args):
    return _unconstrained(engine, state, "cos")


def sp_pow(engine, state, args):
    return _unconstrained(engine, state, "pow")


def sp_fabs(engine, state, args):
    return _unconstrained(engine, state, "fabs")


def sp_rand(engine, state, args):
    return _unconstrained(engine, state, "rand")


def sp_srand(engine, state, args):
    return mk_const(0, 64)


def sp_sha1(engine, state, args):
    out = args[2]
    engine.diags.emit(
        DiagnosticKind.CONCRETIZED_ENV,
        "sha1 summarized with an unconstrained digest",
    )
    if out.is_const:
        for i in range(20):
            name = engine.fresh_name("sha1_out")
            engine.computation_vars.add(name)
            state.write_byte(out.value + i, mk_var(name, 8))
    return mk_const(0, 64)


def sp_aes(engine, state, args):
    out = args[2]
    engine.diags.emit(
        DiagnosticKind.CONCRETIZED_ENV,
        "aes128_encrypt summarized with an unconstrained ciphertext",
    )
    if out.is_const:
        for i in range(16):
            name = engine.fresh_name("aes_out")
            engine.computation_vars.add(name)
            state.write_byte(out.value + i, mk_var(name, 8))
    return mk_const(0, 64)


def sp_fork(engine, state, args):
    # Follow the child: the canonical simprocedure behaviour that lets
    # the no-lib configuration crack the fork/pipe bomb.
    return mk_const(0, 64)


def sp_pthread_create(engine, state, args):
    engine.diags.emit(
        DiagnosticKind.CROSS_THREAD_LOST,
        "pthread_create summarized; thread body never executed",
    )
    return mk_const(2, 64)


def sp_pthread_join(engine, state, args):
    return mk_const(0, 64)


def sp_signal(engine, state, args):
    return mk_const(0, 64)


def sp_noop(engine, state, args):
    return mk_const(0, 64)


#: Known library functions -> simprocedure (the no-lib hook table).
SIMPROCEDURES = {
    "atoi": sp_atoi,
    "atof": sp_atof,
    "strlen": sp_strlen,
    "malloc": sp_malloc,
    "free": sp_free,
    "sin": sp_sin,
    "cos": sp_cos,
    "pow": sp_pow,
    "fabs": sp_fabs,
    "rand": sp_rand,
    "srand": sp_srand,
    "sha1": sp_sha1,
    "aes128_encrypt": sp_aes,
    "fork": sp_fork,
    "pthread_create": sp_pthread_create,
    "pthread_join": sp_pthread_join,
    "signal": sp_signal,
    "putchar": sp_noop,
    "print_str": sp_noop,
    "print_int": sp_noop,
    "print_hex": sp_noop,
    "printf1": sp_noop,
    "sched_yield": sp_noop,
}
