"""Capability policy for the static (Angr-style) symbolic executor."""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass
class SymexPolicy:
    """Switches and budgets for one AngrX configuration.

    ``with_libs`` selects between the two modes the paper evaluates:

    * *with libraries* — the engine symbolically executes ``.lib`` code
      and models raw system calls.  Richer, but unsupported syscalls
      (brk, signal, the simulated network) and FP-heavy library code
      abort the analysis — the paper's E cells.
    * *no-lib* — calls into known library functions are intercepted by
      simprocedures.  More paths become explorable (the fork bomb falls)
      at the price of invented values — the paper's P cells and the
      ``neg_square`` false positive.
    """

    name: str
    with_libs: bool = True

    #: Symbolic argv width in bytes (angr's fixed-bit-length trick: the
    #: solver zero-fills the tail, so variable lengths come for free).
    argv_bytes: int = 10

    #: Max enumerated cells for a symbolic-address read (single level).
    mem_resolve_limit: int = 24

    #: Total symbolic-read resolutions before the engine stops
    #: enumerating and concretizes everything (the AES S-box cliff).
    max_resolutions: int = 8

    # -- extension capabilities (all off for the paper's tools; the
    # -- REXX extension tool turns them on to show the challenges are
    # -- addressable — the repo's "lessons learnt" chapter) ---------------

    #: Symbolic dereference depth (2 cracks the two-level array bomb).
    sym_mem_levels: int = 1
    #: Enumerate feasible targets of symbolic jumps and fork per target.
    enumerate_jumps: bool = False
    #: Declare the environment (time, pid, kernel magic, web content,
    #: file contents) symbolic and report environment requirements.
    env_symbolic: bool = False
    #: Solve floating-point path constraints by input-space local search.
    fp_search: bool = False
    #: Model files with symbolic contents (taint survives the kernel).
    faithful_fs: bool = False
    #: Inline created threads at the call site (run-to-completion).
    inline_threads: bool = False
    #: Model the kernel mailbox with expressions.
    model_mailbox: bool = False
    #: Model signal handlers for division faults.
    model_signals: bool = False
    #: Never claim a solution whose constraints contain invented values.
    honest_claims: bool = False
    #: ite-merge states that rejoin at a post-dominator with identical
    #: call stacks (veritesting-style), collapsing the array bombs'
    #: path blow-up.  Part of the fingerprint like every capability.
    merge_states: bool = False
    #: Which simprocedure catalogue to hook with ("default" | "rexx" |
    #: "sandshrew" — the latter runs opaque ``.lib`` externals concretely
    #: in the VM on the current model and re-injects the result).
    simproc_table: str = "default"

    #: When > 0 and the exploration concretized at least one opaque
    #: library call without solving, spend up to this many concrete
    #: executions on the deterministic cracking-candidate stream
    #: (sandshrew's endgame: the engine cannot invert the crypto, but it
    #: can *check* dictionary candidates at native VM speed).
    concrete_fallback_budget: int = 0

    # -- budgets ----------------------------------------------------------
    max_states: int = 512
    max_total_steps: int = 150_000
    max_queries: int = 900
    solver_conflicts: int = 10_000
    solver_clauses: int = 150_000
    solver_nodes: int = 60_000
    step_quantum: int = 400
    #: Wall-clock cap per analysis (the paper's 10-minute timeout analog).
    time_limit: float = 90.0

    #: Capture every solver query into the SMT flight recorder
    #: (:mod:`repro.smt.querylog`); records persist into the attached
    #: campaign store.  Logging never changes the analysis outcome, so
    #: the flag is excluded from the fingerprint.
    query_log: bool = False

    #: Fields that cannot affect the analysis outcome and therefore do
    #: not participate in :meth:`fingerprint` (cached campaign cells
    #: stay valid when they change).
    _NON_SEMANTIC = frozenset({"query_log"})

    def fingerprint(self) -> str:
        """Stable digest of every capability switch and budget.

        Any change to the policy (a flipped capability, a raised budget)
        changes the digest, which invalidates the campaign service's
        cached cell results for this tool.
        """
        fields = {k: v for k, v in dataclasses.asdict(self).items()
                  if k not in self._NON_SEMANTIC}
        blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
