"""The concolic execution driver (the paper's Figure 1, vertically).

Rounds of: concrete execution under the tracer -> symbolic replay ->
branch negation -> constraint solving -> new test case, until the bomb
fires or budgets are exhausted.  This is the generational-search loop
BAP- and Triton-style tools implement around their trace pipelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..obs.provenance import CoreMember
from ..binfmt import Image
from ..errors import DiagnosticKind, DiagnosticLog, SolverError
from ..smt import IncrementalSolver, Solver
from ..smt.solver import unsat_core
from ..trace.record import Trace
from ..trace.tracer import record_trace
from ..vm import Environment
from .policy import ToolPolicy
from .replay import ReplayResult, TraceReplayer


@dataclass
class ConcolicReport:
    """Outcome of a concolic analysis run on one binary."""

    tool: str
    solved: bool = False
    solution: list[bytes] | None = None
    claimed_inputs: list[list[bytes]] = field(default_factory=list)
    rounds: int = 0
    queries: int = 0
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    first_replay: ReplayResult | None = None
    aborted: str | None = None
    constraints_seen: int = 0


class ConcolicEngine:
    """Trace-based concolic executor parameterized by a tool policy."""

    def __init__(self, policy: ToolPolicy):
        self.policy = policy

    def run(self, image: Image, seed_argv: list[bytes],
            env: Environment | None = None,
            argv0: bytes = b"prog") -> ConcolicReport:
        """Analyze *image* starting from *seed_argv* (argv[1:]).

        Success means a concrete execution actually fired the bomb — the
        engine never claims reachability it has not replayed.
        """
        import time as _time

        policy = self.policy
        report = ConcolicReport(tool=policy.name, diagnostics=DiagnosticLog())
        queue: list[list[bytes]] = [list(seed_argv)]
        tried: set[tuple[bytes, ...]] = set()
        negated: set[tuple[int, int]] = set()
        deadline = _time.monotonic() + policy.time_limit

        while queue and report.rounds < policy.rounds:
            if _time.monotonic() > deadline:
                report.diagnostics.emit(
                    DiagnosticKind.RESOURCE_EXHAUSTED,
                    f"no result within the {policy.time_limit:.0f}s budget",
                )
                report.aborted = "timeout"
                return report
            argv_tail = queue.pop()  # depth-first: pursue the newest refinement
            key = tuple(argv_tail)
            if key in tried:
                continue
            tried.add(key)
            report.rounds += 1
            obs.count("concolic.rounds")
            if report.rounds > 1:
                # Re-executing a solver-derived input from scratch is
                # this pipeline's checkpoint restore.
                obs.count("concolic.checkpoint_restores")

            with obs.span("trace", round=report.rounds, tool=policy.name):
                trace = record_trace(
                    image, [argv0] + argv_tail, env,
                    max_steps=policy.max_trace_steps,
                    max_events=policy.max_trace_events,
                )
            if trace.bomb_triggered:
                report.solved = True
                report.solution = argv_tail
                report.claimed_inputs.append(argv_tail)
                return report

            replayer = TraceReplayer(image, policy, report.diagnostics)
            replay = replayer.replay(trace)
            if report.first_replay is None:
                report.first_replay = replay
            report.constraints_seen += len(replay.constraints)
            if replay.aborted:
                report.aborted = replay.aborted
                return report

            try:
                self._negate_and_enqueue(replay, report, queue, tried, negated)
            except SolverError as err:
                report.diagnostics.emit(
                    DiagnosticKind.RESOURCE_EXHAUSTED, str(err)
                )
                report.aborted = f"solver: {err}"
                return report
            if report.queries >= policy.max_queries:
                break

        self._final_diagnostics(report)
        return report

    # -- internals -----------------------------------------------------------

    def _negate_and_enqueue(self, replay: ReplayResult, report: ConcolicReport,
                            queue: list[list[bytes]],
                            tried: set[tuple[bytes, ...]],
                            negated: set[tuple[int, int]]) -> None:
        policy = self.policy
        constraints = replay.constraints
        seed_model = self._seed_model(replay)
        prefix_ids: list[int] = []
        # One shared incremental solver per replay: the path prefix is
        # encoded once and every negation is an assumption query against
        # it, instead of re-bit-blasting the whole prefix per negation.
        shared = (IncrementalSolver(policy.solver_conflicts,
                                    policy.solver_clauses,
                                    policy.solver_nodes)
                  if policy.incremental_solver else None)
        for i, target in enumerate(constraints):
            if report.queries >= policy.max_queries:
                return
            negation = target.negated()
            do_query = not negation.is_const
            if do_query:
                # Dedup per (path prefix, negated branch): the same branch
                # may be profitably re-negated under a different prefix —
                # that is how multi-byte triggers assemble.
                sig = (target.pc, id(negation), hash(tuple(prefix_ids)))
                if sig in negated:
                    do_query = False
                else:
                    negated.add(sig)
            prefix_ids.append(id(target.expr))
            if do_query:
                report.queries += 1
                obs.count("concolic.branches_negated")
                obs.observe("concolic.constraint_nodes",
                            sum(c.expr.size() for c in constraints[:i])
                            + negation.size())
                try:
                    with obs.span("solve", pc=target.pc, tool=policy.name):
                        if shared is not None:
                            outcome = shared.check(
                                negation, tag=(target.pc, "negation"))
                        else:
                            solver = Solver(policy.solver_conflicts,
                                            policy.solver_clauses,
                                            policy.solver_nodes)
                            for prior in constraints[:i]:
                                solver.add(prior.expr, (prior.pc, prior.kind))
                            solver.add(negation, (target.pc, "negation"))
                            outcome = solver.check(
                                tag=(target.pc, "negation"))
                except SolverError as err:
                    if "fp theory" in str(err) or "divisor" in str(err):
                        report.diagnostics.emit(
                            DiagnosticKind.UNSUPPORTED_THEORY, str(err),
                            target.pc,
                        )
                        outcome = None
                    else:
                        raise
                if (outcome is not None and not outcome.sat
                        and replay.provenance is not None):
                    self._explain_unsat(replay, constraints[:i], target,
                                        negation)
                if outcome is not None and outcome.sat:
                    candidate = self._rebuild_argv(replay, outcome.model,
                                                   seed_model)
                    if candidate is not None and tuple(candidate) not in tried:
                        obs.count("concolic.testcases_enqueued")
                        queue.append(candidate)
            if shared is not None:
                # The constraint joins the shared prefix for all later
                # negations on this path.
                shared.assert_expr(target.expr, (target.pc, target.kind))

    def _explain_unsat(self, replay: ReplayResult, prefix, target,
                       negation) -> None:
        """Forensics for one refused negation: a minimized unsat core.

        Runs an out-of-band assumption-based query tagging each prefix
        constraint with its branch PC, so the diagnosis can name the
        guard that pins the branch (only when a provenance collector is
        active — the normal path never pays for this).
        """
        tagged = [((c.pc, c.kind), c.expr) for c in prefix]
        tagged.append(((target.pc, "negation"), negation))
        try:
            core = unsat_core(tagged, self.policy.solver_conflicts,
                              self.policy.solver_clauses)
        except SolverError:
            return  # budget-bound forensics: no core is acceptable
        if not core:
            return
        by_tag = {(c.pc, c.kind): c.expr for c in prefix}
        by_tag[(target.pc, "negation")] = negation
        members = [CoreMember(pc, kind, repr(by_tag[(pc, kind)]))
                   for pc, kind in core]
        replay.provenance.record_core(target.pc, members)

    def _seed_model(self, replay: ReplayResult) -> dict[str, int]:
        model = {}
        for name, (k, i) in replay.var_layout.items():
            arg = replay.seed_argv[k] if k < len(replay.seed_argv) else b""
            model[name] = arg[i] if i < len(arg) else 0
        return model

    def _rebuild_argv(self, replay: ReplayResult, model: dict[str, int],
                      seed_model: dict[str, int]) -> list[bytes] | None:
        """Construct a new argv tail from a solver model.

        Unconstrained bytes keep their seed values — the concolic
        convention that the new input differs from the seed only where
        the model demands.
        """
        seed_tail = replay.seed_argv[1:]
        by_arg: dict[int, dict[int, int]] = {}
        for name, (k, i) in replay.var_layout.items():
            value = model.get(name, seed_model.get(name, 0))
            by_arg.setdefault(k, {})[i] = value & 0xFF
        out: list[bytes] = []
        for k, seed in enumerate(seed_tail, start=1):
            overrides = by_arg.get(k, {})
            length = max(len(seed), max(overrides, default=-1) + 1)
            raw = bytearray(seed.ljust(length, b"\0"))
            for i, value in overrides.items():
                if i < len(raw):
                    raw[i] = value
            nul = raw.find(b"\0")
            if nul >= 0:
                raw = raw[:nul]
            out.append(bytes(raw))
        return out

    def _final_diagnostics(self, report: ConcolicReport) -> None:
        """Declaration-stage fallback: nothing symbolic ever reached a branch."""
        if report.constraints_seen == 0 and not any(
            d.kind is not DiagnosticKind.CONCRETE_LENGTH
            for d in report.diagnostics
        ):
            report.diagnostics.emit(
                DiagnosticKind.NO_SYMBOLIC_SOURCE,
                "no branch condition ever depended on a declared symbolic input",
            )


def analyze(image: Image, policy: ToolPolicy, seed_argv: list[bytes],
            env: Environment | None = None) -> ConcolicReport:
    """Convenience wrapper around :class:`ConcolicEngine`."""
    return ConcolicEngine(policy).run(image, seed_argv, env)
