"""Tool capability policies for trace-based concolic execution.

A :class:`ToolPolicy` is the mechanical encoding of what a 2017-era
tool stack could and could not do.  The replay engine consults it at
each pipeline stage; failures in Table II *emerge* from these switches
rather than being scripted per bomb.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass


@dataclass
class ToolPolicy:
    """Capability switches for a trace-based concolic tool."""

    name: str

    #: Lifter covers floating-point instructions.  Triton lacked
    #: cvtsi2sd/ucomisd (paper §V.C); neither BAP nor Triton handle the
    #: analogous RX64 ops here.
    supports_fp: bool = False

    #: Push/pop lifted with their memory effect.  BAP models them as
    #: pure stack-pointer arithmetic, losing the pushed value (Es1 on
    #: the cp_stack bomb).
    lifts_stack_memory: bool = True

    #: Tracer records and the engine models signal deliveries (Pin
    #: follows signal handlers; Triton's SSA pass cannot stitch the
    #: trace discontinuity back together).
    signal_trace: bool = True

    #: Taint/symbolic state is shared across threads of the traced
    #: process (BAP's Pin tool sees one linear trace; Triton keeps
    #: per-thread state).
    cross_thread_taint: bool = True

    #: Lifter emits explicit division-by-zero guards whose negation is a
    #: schedulable test case (BAP IL models the fault edge).
    div_guard: bool = False

    #: Memory accesses at tainted addresses modeled symbolically
    #: (neither trace tool has this; both concretize to the trace's
    #: address, the symbolic-array failure).
    symbolic_addressing: bool = False

    #: Indirect jumps with tainted targets modeled as multi-way
    #: branches (neither trace tool).
    symbolic_jump: bool = False

    #: Taint tracked through stores into library-private data objects
    #: (BAP's taint tool does not instrument library state; Triton's
    #: does).
    lib_data_taint: bool = True

    #: Diagnostic flavor when tainted data flows into a syscall
    #: argument: "es2" = silently concretized (BAP), "es3" = modeling
    #: attempted but no theory covers it (Triton).
    env_arg_diag: str = "es2"

    #: argv declaration model: "per-byte" = one symbolic byte per seed
    #: byte (length frozen at the seed's — Triton), "word8" = one fixed
    #: 8-byte word per argument (BAP; reads past the seed's terminator
    #: break propagation).
    argv_model: str = "per-byte"

    #: Branch-negation queries share one incremental solver per replay
    #: (assumption-based queries over a path prefix encoded once).  Off
    #: means the historical fresh-``Solver``-per-negation behavior; the
    #: two modes produce identical Table II outcomes, incremental just
    #: re-encodes far fewer Tseitin gates.
    incremental_solver: bool = True

    # -- budgets (the paper's 10-minute timeout analogue) ---------------
    rounds: int = 16
    max_trace_steps: int = 400_000
    max_trace_events: int = 600_000
    solver_conflicts: int = 12_000
    solver_clauses: int = 120_000
    solver_nodes: int = 60_000
    max_queries: int = 48
    #: Wall-clock cap per analysis (the paper's 10-minute timeout analog).
    time_limit: float = 120.0

    #: Record taint/constraint provenance during replay even when no
    #: process-wide collector is installed (``repro explain`` installs
    #: one instead of flipping this).  Forensics never change the
    #: analysis outcome, so the flag is excluded from the fingerprint.
    provenance: bool = False

    #: Capture every solver query into the SMT flight recorder
    #: (:mod:`repro.smt.querylog`) even when no process-wide recorder is
    #: installed (``repro solverlab capture`` installs one instead of
    #: flipping this).  Captured records persist into the attached
    #: campaign store.  Like ``provenance``, logging never changes the
    #: analysis outcome, so the flag is excluded from the fingerprint.
    query_log: bool = False

    #: Fields that cannot affect the analysis outcome and therefore do
    #: not participate in :meth:`fingerprint` (cached campaign cells
    #: stay valid when they change).
    _NON_SEMANTIC = frozenset({"provenance", "query_log"})

    def fingerprint(self) -> str:
        """Stable digest of every capability switch and budget.

        Any change to the policy (a flipped capability, a raised budget)
        changes the digest, which invalidates the campaign service's
        cached cell results for this tool.
        """
        fields = {k: v for k, v in dataclasses.asdict(self).items()
                  if k not in self._NON_SEMANTIC}
        blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()
