"""Trace-based concolic execution (the paper's Figure 1 framework)."""

from .engine import ConcolicEngine, ConcolicReport, analyze
from .policy import ToolPolicy
from .replay import PathConstraint, ReplayResult, TraceReplayer

__all__ = [
    "ConcolicEngine",
    "ConcolicReport",
    "PathConstraint",
    "ReplayResult",
    "ToolPolicy",
    "TraceReplayer",
    "analyze",
]
