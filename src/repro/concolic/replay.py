"""Symbolic replay of a recorded trace (the paper's Figure 1 pipeline).

The replayer walks the trace event stream, maintaining for every thread
a *shadow* concrete state (re-derived by executing IL; syscall effects
come from the recorded events) and a *symbolic* state (expressions over
the argv input bytes).  It performs, in one pass, the paper's
instruction-tracing, taint-filtering, lifting and constraint-extraction
stages:

* an instruction whose inputs carry symbolic expressions is *tainted*
  (the Figure 3 metric);
* conditional branches with symbolic flag state yield path constraints;
* every capability gap in the :class:`~repro.concolic.policy.ToolPolicy`
  triggers a structured diagnostic at the precise point the real tool
  loses the plot.

Shadow fidelity is unconditional: the concrete side always matches the
traced machine (otherwise replay aborts with a divergence, classified as
an engine crash).  Only the symbolic side degrades with the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..obs import profile, provenance
from ..binfmt import Image
from ..errors import DiagnosticKind, DiagnosticLog, VMError
from ..ir import il, superblock
from ..ir.lifter import apply_binop, apply_fp_op, flag_condition
from ..isa import Op, instruction_size
from ..smt import Expr, mk_binop, mk_bool_not, mk_concat_many, mk_const, mk_eq, mk_extract, mk_sext, mk_var, mk_zext
from ..vm import Environment, Machine
from ..vm.cpu import Context, alu, bits_to_f32, bits_to_f64, u64
from ..vm.machine import STACK_TOP
from ..vm.syscalls import SIGRETURN_ADDR, THREAD_EXIT_ADDR, Sys
from ..errors import SolverError
from .policy import ToolPolicy
from ..trace.record import SignalEvent, StepEvent, SyscallEvent, Trace

MASK64 = (1 << 64) - 1


class ReplayAbort(Exception):
    """Replay cannot continue (divergence or internal engine failure)."""


class _ReplayTruncated(Exception):
    """Replay ends early but cleanly (tool cannot lift past this point)."""


@dataclass
class PathConstraint:
    """One constraint that held on the replayed trace."""

    expr: Expr          # oriented: true on this trace
    pc: int
    kind: str           # "branch" | "div-guard"
    index: int

    def negated(self) -> Expr:
        return mk_bool_not(self.expr)


@dataclass
class ReplayResult:
    """Everything the concolic driver needs from one replay."""

    constraints: list[PathConstraint] = field(default_factory=list)
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    tainted_instructions: int = 0
    total_instructions: int = 0
    var_layout: dict[str, tuple[int, int]] = field(default_factory=dict)
    seed_argv: list[bytes] = field(default_factory=list)
    aborted: str | None = None
    #: forensics collector that observed this replay (None when off).
    provenance: "provenance.ProvenanceCollector | None" = None


class _ShadowThread:
    """Concrete + symbolic state of one traced thread."""

    __slots__ = ("ctx", "sym_regs", "sym_fregs", "sym_flags", "sig_frames",
                 "awaiting_syscall", "dead", "faulted")

    def __init__(self, ctx: Context):
        self.ctx = ctx
        self.sym_regs: dict[int, Expr] = {}
        self.sym_fregs: dict[int, Expr] = {}
        # (kind, a_conc, a_sym, b_conc, b_sym) or None when concrete.
        self.sym_flags: tuple | None = None
        self.sig_frames: list[tuple] = []
        self.awaiting_syscall = False
        self.dead = False
        self.faulted = False


# -- compiled replay programs -----------------------------------------------
#
# A trace revisits the same pc constantly (loops, library code), so the
# per-statement interpretation below is compiled once per pc into a list
# of handler closures with operand accessors specialized at compile
# time.  Handlers are policy-agnostic — capability switches are read
# from the replayer at call time — which is what lets the compiled
# programs live in the image's process-wide :class:`superblock.LiftCache`
# and be shared by every replay round (and every tool) of one image.
#
# Protocol: ``handler(rep, th, tmps, tid, box) -> bool`` where ``box``
# is ``[next_pc, tainted]``.  Returning True ends the instruction early
# (the handler did its own pc/liveness bookkeeping), matching the early
# ``return`` paths of the interpreted version.

def _rp_get(src):
    """Value reader returning ``(concrete, symbolic | None)``."""
    if isinstance(src, il.ConstRef):
        pair = (src.value & MASK64, None)
        return lambda rep, th, tmps: pair
    if isinstance(src, il.RegRef):
        index = src.index
        return lambda rep, th, tmps: (th.ctx.regs[index],
                                      th.sym_regs.get(index))
    if isinstance(src, il.FRegRef):
        index = src.index
        return lambda rep, th, tmps: (th.ctx.fregs[index],
                                      th.sym_fregs.get(index))
    index = src.index
    return lambda rep, th, tmps: tmps[index]


def _rp_set(dst):
    """Value writer specialized on the destination kind."""
    if isinstance(dst, il.RegRef):
        index = dst.index

        def put_reg(rep, th, tmps, conc, sym):
            th.ctx.regs[index] = conc & MASK64
            if sym is None:
                th.sym_regs.pop(index, None)
            else:
                th.sym_regs[index] = sym
        return put_reg
    if isinstance(dst, il.FRegRef):
        index = dst.index

        def put_freg(rep, th, tmps, conc, sym):
            th.ctx.fregs[index] = conc & MASK64
            if sym is None:
                th.sym_fregs.pop(index, None)
            else:
                th.sym_fregs[index] = sym
        return put_freg
    index = dst.index

    def put_tmp(rep, th, tmps, conc, sym):
        tmps[index] = (conc & MASK64, sym)
    return put_tmp


def _rp_move(stmt, pc, instr):
    get, put = _rp_get(stmt.src), _rp_set(stmt.dst)

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        if sym is not None:
            box[1] = True
        put(rep, th, tmps, conc, sym)
        return False
    return h


def _rp_binop(stmt, pc, instr):
    def h(rep, th, tmps, tid, box):
        taken = rep._do_binop(th, tmps, stmt, pc)
        if taken == "fault":
            th.faulted = True
            return True  # SignalEvent (or process death) follows
        if taken:
            box[1] = True
        return False
    return h


def _rp_unop(stmt, pc, instr):
    get, put = _rp_get(stmt.a), _rp_set(stmt.dst)
    set_flags = stmt.set_flags
    ones = mk_const(MASK64, 64)

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        if sym is not None:
            box[1] = True
        res = (~conc) & MASK64
        res_sym = None if sym is None else mk_binop("xor", sym, ones)
        if set_flags:
            th.ctx.flags.set_logic(res)
            th.sym_flags = None if res_sym is None else (
                "logic", res, res_sym, 0, None)
        put(rep, th, tmps, res, res_sym)
        return False
    return h


def _rp_lea(stmt, pc, instr):
    get, put = _rp_get(stmt.base), _rp_set(stmt.dst)
    disp = stmt.disp
    disp_expr = mk_const(stmt.disp, 64)

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        sym_addr = None
        if sym is not None:
            box[1] = True
            sym_addr = mk_binop("add", sym, disp_expr)
        put(rep, th, tmps, u64(conc + disp), sym_addr)
        return False
    return h


def _rp_load(stmt, pc, instr):
    get_addr, put = _rp_get(stmt.addr), _rp_set(stmt.dst)
    width, signed = stmt.width, stmt.signed

    def h(rep, th, tmps, tid, box):
        addr_conc, addr_sym = get_addr(rep, th, tmps)
        if addr_sym is not None:
            box[1] = True
            if not rep.policy.symbolic_addressing:
                rep.diags.emit(
                    DiagnosticKind.MEM_ADDR_CONCRETIZED,
                    "load address depends on input; concretized to trace value",
                    pc,
                )
        conc, sym = rep._mem_load(th, addr_conc, width, signed, tid)
        if sym is not None:
            box[1] = True
        put(rep, th, tmps, conc, sym)
        return False
    return h


def _rp_store(stmt, pc, instr):
    get_addr, get_val = _rp_get(stmt.addr), _rp_get(stmt.value)
    width = stmt.width

    def h(rep, th, tmps, tid, box):
        addr_conc, addr_sym = get_addr(rep, th, tmps)
        if addr_sym is not None:
            box[1] = True
            if not rep.policy.symbolic_addressing:
                rep.diags.emit(
                    DiagnosticKind.MEM_ADDR_CONCRETIZED,
                    "store address depends on input; concretized to trace value",
                    pc,
                )
        conc, sym = get_val(rep, th, tmps)
        if sym is not None:
            box[1] = True
        rep._mem_store(th, addr_conc, width, conc, sym, tid, pc)
        return False
    return h


def _rp_setflags(stmt, pc, instr):
    get_a, get_b = _rp_get(stmt.a), _rp_get(stmt.b)
    kind = stmt.kind

    def h(rep, th, tmps, tid, box):
        a_conc, a_sym = get_a(rep, th, tmps)
        b_conc, b_sym = get_b(rep, th, tmps)
        if a_sym is not None or b_sym is not None:
            box[1] = True
            th.sym_flags = (kind, a_conc, a_sym, b_conc, b_sym)
        else:
            th.sym_flags = None
        if kind == "sub":
            alu("sub", a_conc, b_conc, th.ctx.flags)
        else:  # test
            th.ctx.flags.set_logic(a_conc & b_conc)
        return False
    return h


def _rp_condbranch(stmt, pc, instr):
    cc, target, fallthrough = stmt.cc, stmt.target, instr.next_addr

    def h(rep, th, tmps, tid, box):
        taken = th.ctx.flags.condition(cc)
        if th.sym_flags is not None:
            box[1] = True
            rep._branch_constraint(th, stmt, taken, pc)
        box[0] = target if taken else fallthrough
        return False
    return h


def _rp_jump(stmt, pc, instr):
    get = _rp_get(stmt.target)

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        if sym is not None:
            box[1] = True
            if not rep.policy.symbolic_jump:
                rep.diags.emit(
                    DiagnosticKind.SYMBOLIC_JUMP_UNMODELED,
                    "indirect jump target depends on input",
                    pc,
                )
        box[0] = conc
        return False
    return h


def _rp_call(stmt, pc, instr):
    get = _rp_get(stmt.target)
    return_addr = stmt.return_addr

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        if sym is not None:
            box[1] = True
            if not rep.policy.symbolic_jump:
                rep.diags.emit(
                    DiagnosticKind.SYMBOLIC_JUMP_UNMODELED,
                    "indirect call target depends on input",
                    pc,
                )
        sp = u64(th.ctx.regs[15] - 8)
        th.ctx.regs[15] = sp
        rep.memory.write_u64(sp, return_addr)
        rep._cache.invalidate_range(sp, 8)
        rep._clear_sym_range(sp, 8)
        box[0] = conc
        return False
    return h


def _rp_ret(stmt, pc, instr):
    def h(rep, th, tmps, tid, box):
        sp = th.ctx.regs[15]
        next_pc = rep.memory.read_u64(sp)
        th.ctx.regs[15] = u64(sp + 8)
        if next_pc == SIGRETURN_ADDR:
            rep._sigreturn(th)
            return True
        if next_pc == THREAD_EXIT_ADDR:
            th.dead = True
            return True
        box[0] = next_pc
        return False
    return h


def _rp_push(stmt, pc, instr):
    get = _rp_get(stmt.src)

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        if sym is not None:
            box[1] = True
        sp = u64(th.ctx.regs[15] - 8)
        th.ctx.regs[15] = sp
        if not rep.policy.lifts_stack_memory and sym is not None:
            rep.diags.emit(
                DiagnosticKind.LIFT_INCOMPLETE,
                "push lifted without memory effect; value dropped",
                pc,
            )
            sym = None
        rep._mem_store(th, sp, 8, conc, sym, tid, pc)
        return False
    return h


def _rp_pop(stmt, pc, instr):
    put = _rp_set(stmt.dst)

    def h(rep, th, tmps, tid, box):
        sp = th.ctx.regs[15]
        conc, sym = rep._mem_load(th, sp, 8, False, tid)
        if sym is not None:
            box[1] = True
        if not rep.policy.lifts_stack_memory and sym is not None:
            rep.diags.emit(
                DiagnosticKind.LIFT_INCOMPLETE,
                "pop lifted without memory effect; value dropped",
                pc,
            )
            sym = None
        th.ctx.regs[15] = u64(sp + 8)
        put(rep, th, tmps, conc, sym)
        return False
    return h


def _rp_syscall(stmt, pc, instr):
    def h(rep, th, tmps, tid, box):
        th.awaiting_syscall = True
        return True  # pc advances when the SyscallEvent arrives
    return h


def _rp_halt(stmt, pc, instr):
    def h(rep, th, tmps, tid, box):
        th.dead = True
        return True
    return h


def _rp_fpop(stmt, pc, instr):
    def h(rep, th, tmps, tid, box):
        if rep._do_fpop(th, tmps, stmt, pc):
            box[1] = True
        return False
    return h


def _rp_fpflags(stmt, pc, instr):
    get_a, get_b = _rp_get(stmt.a), _rp_get(stmt.b)
    kind = stmt.kind

    def h(rep, th, tmps, tid, box):
        a_conc, a_sym = get_a(rep, th, tmps)
        b_conc, b_sym = get_b(rep, th, tmps)
        if kind == "fcmp32":
            th.ctx.flags.set_fcmp(bits_to_f32(a_conc), bits_to_f32(b_conc))
        else:
            th.ctx.flags.set_fcmp(bits_to_f64(a_conc), bits_to_f64(b_conc))
        if a_sym is None and b_sym is None:
            th.sym_flags = None
        elif not rep.policy.supports_fp:
            box[1] = True
            rep.diags.emit(
                DiagnosticKind.LIFT_UNSUPPORTED,
                f"{kind} not covered by the lifter",
                pc,
            )
            th.sym_flags = None
        else:
            box[1] = True
            th.sym_flags = (kind, a_conc, a_sym, b_conc, b_sym)
        return False
    return h


def _rp_divguard(stmt, pc, instr):
    get = _rp_get(stmt.divisor)
    zero = mk_const(0, 64)

    def h(rep, th, tmps, tid, box):
        conc, sym = get(rep, th, tmps)
        if rep.policy.div_guard and sym is not None:
            box[1] = True
            cond = mk_eq(sym, zero)
            oriented = cond if conc == 0 else mk_bool_not(cond)
            rep._push_constraint(oriented, pc, "div-guard")
        return False
    return h


_REPLAY_COMPILERS = {
    il.Move: _rp_move,
    il.BinOp: _rp_binop,
    il.UnOp: _rp_unop,
    il.Lea: _rp_lea,
    il.Load: _rp_load,
    il.Store: _rp_store,
    il.SetFlags: _rp_setflags,
    il.CondBranch: _rp_condbranch,
    il.Jump: _rp_jump,
    il.Call: _rp_call,
    il.Ret: _rp_ret,
    il.Push: _rp_push,
    il.Pop: _rp_pop,
    il.Syscall: _rp_syscall,
    il.Halt: _rp_halt,
    il.FpOp: _rp_fpop,
    il.FpFlags: _rp_fpflags,
    il.DivGuard: _rp_divguard,
}


def compile_replay_program(instr, stmts) -> list:
    """The handler-closure program for one lifted instruction."""
    pc = instr.addr
    program = []
    for stmt in stmts:
        compiler = _REPLAY_COMPILERS.get(type(stmt))
        if compiler is None:  # pragma: no cover
            raise ReplayAbort(f"unhandled IL stmt {stmt}")
        program.append(compiler(stmt, pc, instr))
    return program


class TraceReplayer:
    """Replays one trace under a tool policy."""

    def __init__(self, image: Image, policy: ToolPolicy,
                 diagnostics: DiagnosticLog | None = None):
        self.image = image
        self.policy = policy
        self.diags = diagnostics if diagnostics is not None else DiagnosticLog()
        self.lib_data_ranges = image.lib_object_ranges()
        # Process-wide lifted-IL + compiled-program cache, shared with
        # every other replay round (and the symbolic explorer) of this
        # image; persists into the campaign store when one is attached.
        self._cache = superblock.cache_for(image)
        self._pc_counts: dict[int, int] | None = None

    # -- public -----------------------------------------------------------

    def replay(self, trace: Trace) -> ReplayResult:
        result = ReplayResult(diagnostics=self.diags, seed_argv=list(trace.argv))
        machine = Machine(self.image, trace.argv, Environment())
        proc = machine.processes[machine.main_pid]
        self.memory = proc.memory
        main_thread = proc.threads[0]
        self.threads: dict[int, _ShadowThread] = {
            main_thread.tid: _ShadowThread(main_thread.ctx)
        }
        self.sym_mem: dict[int, tuple[Expr, int | None]] = {}
        self._beyond_argv: set[int] = set()
        self._beyond_flagged = False
        self.env_escaped = False
        self.result = result
        # Forensics: resolved once per replay, consulted per *tainted*
        # instruction only — the untainted hot path never touches it.
        prov = provenance.active()
        if prov is None and self.policy.provenance:
            prov = provenance.ProvenanceCollector()
        self._prov = prov
        result.provenance = prov
        self._declare_argv(trace, result)

        if obs.active() is not None:
            # The lifting stage, separable so its cost is visible: warm
            # the shared IL cache over the trace's distinct instructions.
            # ``lift.instructions`` counts actual lifter runs — zero
            # when an earlier round (or the store) already paid.
            with obs.span("lift"):
                cache = self._cache
                before = cache.fresh_lifts
                seen: set[int] = set()
                for event in trace.events:
                    if isinstance(event, StepEvent):
                        addr = event.instr.addr
                        if addr not in seen:
                            seen.add(addr)
                            cache.lift_for(event.instr)
                obs.count("lift.instructions", cache.fresh_lifts - before)

        # Per-PC replay tally: gated once per replay, flushed once.
        self._pc_counts: dict[int, int] | None = \
            {} if profile.active() is not None else None
        with obs.span("extract"):
            try:
                for event in trace.events:
                    if isinstance(event, StepEvent):
                        self._step(event)
                    elif isinstance(event, SyscallEvent):
                        self._apply_syscall(event)
                    elif isinstance(event, SignalEvent):
                        self._apply_signal(event)
            except _ReplayTruncated:
                pass  # clean early stop; constraints so far remain usable
            except ReplayAbort as err:
                result.aborted = str(err)
                self.diags.emit(DiagnosticKind.ENGINE_CRASH, str(err))
            obs.count("taint.instructions_total", result.total_instructions)
            obs.count("taint.instructions_tainted", result.tainted_instructions)
            obs.count("taint.symbolic_branches", len(result.constraints))
            if self._pc_counts:
                profile.record_pcs("extract", self._pc_counts)
                self._pc_counts = None
        superblock.persist(self._cache)
        return result

    # -- argv declaration (the Es0-prone stage) --------------------------------

    def _declare_argv(self, trace: Trace, result: ReplayResult) -> None:
        policy = self.policy
        if policy.argv_model == "per-byte":
            # Length frozen at the seed's: a faithful statement about the
            # declaration step, recorded as a diagnostic up front.
            self.diags.emit(
                DiagnosticKind.CONCRETE_LENGTH,
                "argv declared with the seed's concrete length",
            )
        for k, (addr, length) in enumerate(trace.argv_regions):
            if k == 0:
                continue  # argv[0] is the program name
            for i in range(length):
                name = f"arg{k}_{i}"
                var = mk_var(name, 8)
                self.sym_mem[addr + i] = (var, None)
                result.var_layout[name] = (k, i)
            if self._prov is not None and length:
                self._prov.introduce(
                    f"argv[{k}] declared symbolic: {length} byte(s) at "
                    f"0x{addr:x} as arg{k}_0..arg{k}_{length - 1}")
            if policy.argv_model == "word8":
                for i in range(length, 8):
                    self._beyond_argv.add(addr + i)

    # -- value plumbing -----------------------------------------------------------

    def _get(self, th: _ShadowThread, tmps: dict, src) -> tuple[int, Expr | None]:
        if isinstance(src, il.ConstRef):
            return src.value & MASK64, None
        if isinstance(src, il.RegRef):
            return th.ctx.regs[src.index], th.sym_regs.get(src.index)
        if isinstance(src, il.FRegRef):
            return th.ctx.fregs[src.index], th.sym_fregs.get(src.index)
        return tmps[src.index]

    def _set(self, th: _ShadowThread, tmps: dict, dst, conc: int,
             sym: Expr | None) -> None:
        conc &= MASK64
        if isinstance(dst, il.RegRef):
            th.ctx.regs[dst.index] = conc
            if sym is None:
                th.sym_regs.pop(dst.index, None)
            else:
                th.sym_regs[dst.index] = sym
        elif isinstance(dst, il.FRegRef):
            th.ctx.fregs[dst.index] = conc
            if sym is None:
                th.sym_fregs.pop(dst.index, None)
            else:
                th.sym_fregs[dst.index] = sym
        else:
            tmps[dst.index] = (conc, sym)

    @staticmethod
    def _expr_of(conc: int, sym: Expr | None, width: int = 64) -> Expr:
        return sym if sym is not None else mk_const(conc, width)

    # -- memory ----------------------------------------------------------------------

    def _mem_load(self, th, addr: int, width: int, signed: bool,
                  tid: int) -> tuple[int, Expr | None]:
        conc = self.memory.read_uint(addr, width)
        if signed:
            from ..vm.cpu import sext as csext

            conc_val = csext(conc, width * 8)
        else:
            conc_val = conc
        if not self._beyond_flagged and any(
            addr + i in self._beyond_argv for i in range(width)
        ):
            self._beyond_flagged = True
            self.diags.emit(
                DiagnosticKind.FIXED_WORD_ARGV,
                "read past the seed argv terminator under the fixed-word model",
            )
        byte_exprs = []
        any_sym = False
        for i in range(width):
            entry = self.sym_mem.get(addr + i)
            if entry is None:
                byte_exprs.append(mk_const((conc >> (8 * i)) & 0xFF, 8))
                continue
            expr, writer = entry
            if (writer is not None and writer != tid
                    and not self.policy.cross_thread_taint):
                self.diags.emit(
                    DiagnosticKind.CROSS_THREAD_LOST,
                    f"read of thread-{writer} data from thread {tid}",
                )
                byte_exprs.append(mk_const((conc >> (8 * i)) & 0xFF, 8))
                continue
            any_sym = True
            byte_exprs.append(expr)
        if not any_sym:
            return conc_val, None
        sym = mk_concat_many(list(reversed(byte_exprs)))
        sym = mk_sext(sym, 64) if signed else mk_zext(sym, 64)
        return conc_val, sym

    def _mem_store(self, th, addr: int, width: int, conc: int,
                   sym: Expr | None, tid: int, pc: int) -> None:
        self.memory.write_uint(addr, conc, width)
        # Self-modifying code: a store into cached code evicts the stale
        # IL (two integer comparisons when it misses the code range).
        self._cache.invalidate_range(addr, width)
        if sym is not None and not self.policy.lib_data_taint:
            if any(lo <= addr < hi for lo, hi in self.lib_data_ranges):
                self.diags.emit(
                    DiagnosticKind.TAINT_LOST,
                    "store into library-private data not instrumented",
                    pc,
                )
                sym = None
        for i in range(width):
            if sym is None:
                self.sym_mem.pop(addr + i, None)
            else:
                self.sym_mem[addr + i] = (mk_extract(sym, 8 * i + 7, 8 * i), tid)

    def _clear_sym_range(self, addr: int, length: int) -> None:
        for i in range(length):
            self.sym_mem.pop(addr + i, None)

    # -- instruction interpretation -------------------------------------------------

    def _step(self, event: StepEvent) -> None:
        th = self.threads.get(event.tid)
        if th is None or th.dead:
            raise ReplayAbort(f"step for unknown/dead thread {event.tid}")
        instr = event.instr
        if th.awaiting_syscall:
            if instr.op is Op.SYSCALL and instr.addr == th.ctx.pc:
                return  # blocked retry of the same syscall
            raise ReplayAbort("unexpected step while awaiting syscall result")
        if th.ctx.pc != instr.addr:
            raise ReplayAbort(
                f"divergence: shadow pc 0x{th.ctx.pc:x} vs trace 0x{instr.addr:x}"
            )
        self.result.total_instructions += 1
        tid = event.tid
        pc = instr.addr
        pcs = self._pc_counts
        if pcs is not None:
            pcs[pc] = pcs.get(pc, 0) + 1

        cache = self._cache
        cached = cache.programs.get(pc)
        if cached is not None and (cached[0] is instr or cached[0] == instr):
            program = cached[1]
        else:
            stmts, _ = cache.lift_for(instr)
            program = compile_replay_program(instr, stmts)
            cache.programs[pc] = (instr, program)

        tmps: dict[int, tuple[int, Expr | None]] = {}
        box = [instr.next_addr, False]   # [next_pc, tainted]
        for handler in program:
            if handler(self, th, tmps, tid, box):
                return
        th.ctx.pc = box[0]
        if box[1]:
            self.result.tainted_instructions += 1
            if self._prov is not None:
                self._prov.record_taint(pc, instr.op.name.lower(),
                                        self.result.total_instructions - 1)

    def _do_binop(self, th, tmps, stmt: il.BinOp, pc: int):
        from ..vm.cpu import alu as _alu

        a_conc, a_sym = self._get(th, tmps, stmt.a)
        b_conc, b_sym = self._get(th, tmps, stmt.b)
        alu_name = {"lshr": "shr", "ashr": "sar"}.get(stmt.op, stmt.op)
        try:
            res = _alu(alu_name, a_conc, b_conc,
                       th.ctx.flags if stmt.set_flags else None)
        except VMError:
            return "fault"
        res_sym = None
        if a_sym is not None or b_sym is not None:
            a_expr = self._expr_of(a_conc, a_sym)
            b_expr = self._expr_of(b_conc, b_sym)
            try:
                res_sym = apply_binop(stmt.op, a_expr, b_expr)
            except SolverError as err:
                self.diags.emit(DiagnosticKind.UNSUPPORTED_THEORY, str(err), pc)
                res_sym = None
        if stmt.set_flags:
            if res_sym is None:
                th.sym_flags = None
            else:
                th.sym_flags = ("logic", res, res_sym, 0, None)
        self._set(th, tmps, stmt.dst, res, res_sym)
        return a_sym is not None or b_sym is not None

    def _do_fpop(self, th, tmps, stmt: il.FpOp, pc: int) -> bool:
        concs = []
        syms = []
        for src in stmt.srcs:
            conc, sym = self._get(th, tmps, src)
            concs.append(conc)
            syms.append(sym)
        conc_expr = apply_fp_op(stmt.op, [mk_const(c, 64) for c in concs])
        assert conc_expr.is_const
        any_sym = any(s is not None for s in syms)
        res_sym = None
        if any_sym:
            if self.policy.supports_fp:
                res_sym = apply_fp_op(
                    stmt.op,
                    [self._expr_of(c, s) for c, s in zip(concs, syms)],
                )
            else:
                self.diags.emit(
                    DiagnosticKind.LIFT_UNSUPPORTED,
                    f"{stmt.op} not covered by the lifter",
                    pc,
                )
        self._set(th, tmps, stmt.dst, conc_expr.value, res_sym)
        return any_sym

    def _branch_constraint(self, th, stmt: il.CondBranch, taken: bool,
                           pc: int) -> None:
        kind, a_conc, a_sym, b_conc, b_sym = th.sym_flags
        if kind.startswith("fcmp") and not self.policy.supports_fp:
            self.diags.emit(
                DiagnosticKind.LIFT_UNSUPPORTED,
                "fp compare feeding a branch not covered",
                pc,
            )
            return
        width = 64
        a_expr = a_sym if a_sym is not None else mk_const(a_conc, width)
        if kind == "logic":
            b_expr = None
            cond = flag_condition("logic", a_expr if a_sym is not None
                                  else mk_const(a_conc, width), None, stmt.cc)
        else:
            b_expr = b_sym if b_sym is not None else mk_const(b_conc, width)
            cond = flag_condition(kind, a_expr, b_expr, stmt.cc)
        oriented = cond if taken else mk_bool_not(cond)
        self._push_constraint(oriented, pc, "branch")

    def _push_constraint(self, expr: Expr, pc: int, kind: str) -> None:
        if expr.is_const:
            return  # degenerated to a constant; nothing to negate
        self.result.constraints.append(
            PathConstraint(expr, pc, kind, len(self.result.constraints))
        )

    # -- events --------------------------------------------------------------------

    def _apply_syscall(self, event: SyscallEvent) -> None:
        th = self.threads.get(event.tid)
        if th is None:
            raise ReplayAbort(f"syscall event for unknown thread {event.tid}")
        th.awaiting_syscall = False
        nr = event.nr
        pc = th.ctx.pc

        self._syscall_diagnostics(th, event, pc)

        # Result and memory effects are environment data: concrete.
        th.ctx.regs[0] = event.ret & MASK64
        th.sym_regs.pop(0, None)
        for addr, data in event.writes:
            self.memory.write(addr, data)
            self._cache.invalidate_range(addr, len(data))
            self._clear_sym_range(addr, len(data))
        th.ctx.pc = u64(pc + instruction_size(Op.SYSCALL))

        if nr == Sys.THREAD_CREATE and event.ret > 0:
            entry, arg, stack_top = event.args[0], event.args[1], event.args[2]
            ctx = Context(pc=entry)
            ctx.regs[1] = arg
            ctx.regs[15] = u64(stack_top - 8)
            self.memory.write_u64(ctx.regs[15], THREAD_EXIT_ADDR)
            self._cache.invalidate_range(ctx.regs[15], 8)
            self._clear_sym_range(ctx.regs[15], 8)
            new = _ShadowThread(ctx)
            if 1 in th.sym_regs:
                new.sym_regs[1] = th.sym_regs[1]
            self.threads[event.ret] = new
        elif nr in (Sys.EXIT, Sys.BOMB):
            th.dead = True

    def _syscall_diagnostics(self, th, event: SyscallEvent, pc: int) -> None:
        nr = event.nr
        policy = self.policy
        env_kind = (DiagnosticKind.TAINT_LOST if policy.env_arg_diag == "es2"
                    else DiagnosticKind.UNSUPPORTED_THEORY)

        if 0 in th.sym_regs:
            self.diags.emit(env_kind, "syscall number depends on input", pc)
        if nr in (Sys.OPEN, Sys.UNLINK):
            path_addr = event.args[0]
            path = self.memory.read_cstr(path_addr)
            if any(addr in self.sym_mem
                   for addr in range(path_addr, path_addr + len(path))):
                self.diags.emit(env_kind, "syscall path argument depends on input", pc)
        elif nr == Sys.WRITE:
            buf, length = event.args[1], event.args[2]
            if any(addr in self.sym_mem for addr in range(buf, buf + min(length, 256))):
                self.env_escaped = True
        elif nr == Sys.MSGSEND:
            if 1 in th.sym_regs:
                self.env_escaped = True
        elif nr in (Sys.READ, Sys.MSGRECV, Sys.HTTP_GET):
            if self.env_escaped:
                self.diags.emit(
                    DiagnosticKind.TAINT_LOST,
                    "input-derived data round-tripped through the environment",
                    pc,
                )
        elif nr == Sys.FORK:
            self.diags.emit(
                DiagnosticKind.CROSS_PROCESS_LOST,
                "child process not traced; cross-process dataflow invisible",
                pc,
            )

    def _apply_signal(self, event: SignalEvent) -> None:
        th = self.threads.get(event.tid)
        if th is None:
            raise ReplayAbort(f"signal for unknown thread {event.tid}")
        th.faulted = False
        if not self.policy.signal_trace:
            # The tool cannot stitch the trace discontinuity back
            # together; everything past this point is unanalyzable.
            self.diags.emit(
                DiagnosticKind.LIFT_INCOMPLETE,
                "signal delivery breaks the trace; lifting stops here",
            )
            raise _ReplayTruncated()
        sym_frame = (dict(th.sym_regs), dict(th.sym_fregs), th.sym_flags)
        th.sig_frames.append((th.ctx.clone(), sym_frame, event.resume_pc))
        # Shadow concrete state must mirror the machine either way.
        ctx = th.ctx
        ctx.regs[15] = u64(ctx.regs[15] - 8)
        self.memory.write_u64(ctx.regs[15], SIGRETURN_ADDR)
        self._cache.invalidate_range(ctx.regs[15], 8)
        self._clear_sym_range(ctx.regs[15], 8)
        ctx.regs[1] = event.signo
        th.sym_regs.pop(1, None)
        ctx.pc = event.handler

    def _sigreturn(self, th: _ShadowThread) -> None:
        if not th.sig_frames:
            raise ReplayAbort("sigreturn without a pending signal frame")
        saved_ctx, (saved_regs, saved_fregs, saved_flags), resume = th.sig_frames.pop()
        # Handler side effects on memory persist; the register file (and,
        # for signal-aware tools, the symbolic register state) restores.
        saved_ctx.pc = resume
        th.ctx = saved_ctx
        th.sym_regs = saved_regs
        th.sym_fregs = saved_fregs
        th.sym_flags = saved_flags
