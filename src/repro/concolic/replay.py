"""Symbolic replay of a recorded trace (the paper's Figure 1 pipeline).

The replayer walks the trace event stream, maintaining for every thread
a *shadow* concrete state (re-derived by executing IL; syscall effects
come from the recorded events) and a *symbolic* state (expressions over
the argv input bytes).  It performs, in one pass, the paper's
instruction-tracing, taint-filtering, lifting and constraint-extraction
stages:

* an instruction whose inputs carry symbolic expressions is *tainted*
  (the Figure 3 metric);
* conditional branches with symbolic flag state yield path constraints;
* every capability gap in the :class:`~repro.concolic.policy.ToolPolicy`
  triggers a structured diagnostic at the precise point the real tool
  loses the plot.

Shadow fidelity is unconditional: the concrete side always matches the
traced machine (otherwise replay aborts with a divergence, classified as
an engine crash).  Only the symbolic side degrades with the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..obs import profile, provenance
from ..binfmt import Image
from ..errors import DiagnosticKind, DiagnosticLog, VMError
from ..ir import il
from ..ir.lifter import apply_binop, apply_fp_op, flag_condition, lift
from ..isa import Op, instruction_size
from ..smt import Expr, mk_binop, mk_bool_not, mk_concat_many, mk_const, mk_extract, mk_sext, mk_var, mk_zext
from ..vm import Environment, Machine
from ..vm.cpu import Context, bits_to_f32, bits_to_f64, u64
from ..vm.machine import STACK_TOP
from ..vm.syscalls import SIGRETURN_ADDR, THREAD_EXIT_ADDR, Sys
from ..errors import SolverError
from .policy import ToolPolicy
from ..trace.record import SignalEvent, StepEvent, SyscallEvent, Trace

MASK64 = (1 << 64) - 1


class ReplayAbort(Exception):
    """Replay cannot continue (divergence or internal engine failure)."""


class _ReplayTruncated(Exception):
    """Replay ends early but cleanly (tool cannot lift past this point)."""


@dataclass
class PathConstraint:
    """One constraint that held on the replayed trace."""

    expr: Expr          # oriented: true on this trace
    pc: int
    kind: str           # "branch" | "div-guard"
    index: int

    def negated(self) -> Expr:
        return mk_bool_not(self.expr)


@dataclass
class ReplayResult:
    """Everything the concolic driver needs from one replay."""

    constraints: list[PathConstraint] = field(default_factory=list)
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    tainted_instructions: int = 0
    total_instructions: int = 0
    var_layout: dict[str, tuple[int, int]] = field(default_factory=dict)
    seed_argv: list[bytes] = field(default_factory=list)
    aborted: str | None = None
    #: forensics collector that observed this replay (None when off).
    provenance: "provenance.ProvenanceCollector | None" = None


class _ShadowThread:
    """Concrete + symbolic state of one traced thread."""

    __slots__ = ("ctx", "sym_regs", "sym_fregs", "sym_flags", "sig_frames",
                 "awaiting_syscall", "dead", "faulted")

    def __init__(self, ctx: Context):
        self.ctx = ctx
        self.sym_regs: dict[int, Expr] = {}
        self.sym_fregs: dict[int, Expr] = {}
        # (kind, a_conc, a_sym, b_conc, b_sym) or None when concrete.
        self.sym_flags: tuple | None = None
        self.sig_frames: list[tuple] = []
        self.awaiting_syscall = False
        self.dead = False
        self.faulted = False


class TraceReplayer:
    """Replays one trace under a tool policy."""

    def __init__(self, image: Image, policy: ToolPolicy,
                 diagnostics: DiagnosticLog | None = None):
        self.image = image
        self.policy = policy
        self.diags = diagnostics if diagnostics is not None else DiagnosticLog()
        self.lib_data_ranges = image.lib_object_ranges()
        # Lifted-IL cache: a trace revisits the same pc constantly
        # (loops, library calls), so lift each distinct instruction once.
        self._lift_cache: dict[int, list] = {}
        self._pc_counts: dict[int, int] | None = None

    # -- public -----------------------------------------------------------

    def replay(self, trace: Trace) -> ReplayResult:
        result = ReplayResult(diagnostics=self.diags, seed_argv=list(trace.argv))
        machine = Machine(self.image, trace.argv, Environment())
        proc = machine.processes[machine.main_pid]
        self.memory = proc.memory
        main_thread = proc.threads[0]
        self.threads: dict[int, _ShadowThread] = {
            main_thread.tid: _ShadowThread(main_thread.ctx)
        }
        self.sym_mem: dict[int, tuple[Expr, int | None]] = {}
        self._beyond_argv: set[int] = set()
        self._beyond_flagged = False
        self.env_escaped = False
        self.result = result
        # Forensics: resolved once per replay, consulted per *tainted*
        # instruction only — the untainted hot path never touches it.
        prov = provenance.active()
        if prov is None and self.policy.provenance:
            prov = provenance.ProvenanceCollector()
        self._prov = prov
        result.provenance = prov
        self._declare_argv(trace, result)

        if obs.active() is not None:
            # The lifting stage, separable so its cost is visible: warm
            # the IL cache over the trace's distinct instructions.
            with obs.span("lift"):
                cache = self._lift_cache
                lifted = 0
                for event in trace.events:
                    if isinstance(event, StepEvent):
                        addr = event.instr.addr
                        if addr not in cache:
                            cache[addr] = lift(event.instr)
                            lifted += 1
                obs.count("lift.instructions", lifted)

        # Per-PC replay tally: gated once per replay, flushed once.
        self._pc_counts: dict[int, int] | None = \
            {} if profile.active() is not None else None
        with obs.span("extract"):
            try:
                for event in trace.events:
                    if isinstance(event, StepEvent):
                        self._step(event)
                    elif isinstance(event, SyscallEvent):
                        self._apply_syscall(event)
                    elif isinstance(event, SignalEvent):
                        self._apply_signal(event)
            except _ReplayTruncated:
                pass  # clean early stop; constraints so far remain usable
            except ReplayAbort as err:
                result.aborted = str(err)
                self.diags.emit(DiagnosticKind.ENGINE_CRASH, str(err))
            obs.count("taint.instructions_total", result.total_instructions)
            obs.count("taint.instructions_tainted", result.tainted_instructions)
            obs.count("taint.symbolic_branches", len(result.constraints))
            if self._pc_counts:
                profile.record_pcs("extract", self._pc_counts)
                self._pc_counts = None
        return result

    # -- argv declaration (the Es0-prone stage) --------------------------------

    def _declare_argv(self, trace: Trace, result: ReplayResult) -> None:
        policy = self.policy
        if policy.argv_model == "per-byte":
            # Length frozen at the seed's: a faithful statement about the
            # declaration step, recorded as a diagnostic up front.
            self.diags.emit(
                DiagnosticKind.CONCRETE_LENGTH,
                "argv declared with the seed's concrete length",
            )
        for k, (addr, length) in enumerate(trace.argv_regions):
            if k == 0:
                continue  # argv[0] is the program name
            for i in range(length):
                name = f"arg{k}_{i}"
                var = mk_var(name, 8)
                self.sym_mem[addr + i] = (var, None)
                result.var_layout[name] = (k, i)
            if self._prov is not None and length:
                self._prov.introduce(
                    f"argv[{k}] declared symbolic: {length} byte(s) at "
                    f"0x{addr:x} as arg{k}_0..arg{k}_{length - 1}")
            if policy.argv_model == "word8":
                for i in range(length, 8):
                    self._beyond_argv.add(addr + i)

    # -- value plumbing -----------------------------------------------------------

    def _get(self, th: _ShadowThread, tmps: dict, src) -> tuple[int, Expr | None]:
        if isinstance(src, il.ConstRef):
            return src.value & MASK64, None
        if isinstance(src, il.RegRef):
            return th.ctx.regs[src.index], th.sym_regs.get(src.index)
        if isinstance(src, il.FRegRef):
            return th.ctx.fregs[src.index], th.sym_fregs.get(src.index)
        return tmps[src.index]

    def _set(self, th: _ShadowThread, tmps: dict, dst, conc: int,
             sym: Expr | None) -> None:
        conc &= MASK64
        if isinstance(dst, il.RegRef):
            th.ctx.regs[dst.index] = conc
            if sym is None:
                th.sym_regs.pop(dst.index, None)
            else:
                th.sym_regs[dst.index] = sym
        elif isinstance(dst, il.FRegRef):
            th.ctx.fregs[dst.index] = conc
            if sym is None:
                th.sym_fregs.pop(dst.index, None)
            else:
                th.sym_fregs[dst.index] = sym
        else:
            tmps[dst.index] = (conc, sym)

    @staticmethod
    def _expr_of(conc: int, sym: Expr | None, width: int = 64) -> Expr:
        return sym if sym is not None else mk_const(conc, width)

    # -- memory ----------------------------------------------------------------------

    def _mem_load(self, th, addr: int, width: int, signed: bool,
                  tid: int) -> tuple[int, Expr | None]:
        conc = self.memory.read_uint(addr, width)
        if signed:
            from ..vm.cpu import sext as csext

            conc_val = csext(conc, width * 8)
        else:
            conc_val = conc
        if not self._beyond_flagged and any(
            addr + i in self._beyond_argv for i in range(width)
        ):
            self._beyond_flagged = True
            self.diags.emit(
                DiagnosticKind.FIXED_WORD_ARGV,
                "read past the seed argv terminator under the fixed-word model",
            )
        byte_exprs = []
        any_sym = False
        for i in range(width):
            entry = self.sym_mem.get(addr + i)
            if entry is None:
                byte_exprs.append(mk_const((conc >> (8 * i)) & 0xFF, 8))
                continue
            expr, writer = entry
            if (writer is not None and writer != tid
                    and not self.policy.cross_thread_taint):
                self.diags.emit(
                    DiagnosticKind.CROSS_THREAD_LOST,
                    f"read of thread-{writer} data from thread {tid}",
                )
                byte_exprs.append(mk_const((conc >> (8 * i)) & 0xFF, 8))
                continue
            any_sym = True
            byte_exprs.append(expr)
        if not any_sym:
            return conc_val, None
        sym = mk_concat_many(list(reversed(byte_exprs)))
        sym = mk_sext(sym, 64) if signed else mk_zext(sym, 64)
        return conc_val, sym

    def _mem_store(self, th, addr: int, width: int, conc: int,
                   sym: Expr | None, tid: int, pc: int) -> None:
        self.memory.write_uint(addr, conc, width)
        if sym is not None and not self.policy.lib_data_taint:
            if any(lo <= addr < hi for lo, hi in self.lib_data_ranges):
                self.diags.emit(
                    DiagnosticKind.TAINT_LOST,
                    "store into library-private data not instrumented",
                    pc,
                )
                sym = None
        for i in range(width):
            if sym is None:
                self.sym_mem.pop(addr + i, None)
            else:
                self.sym_mem[addr + i] = (mk_extract(sym, 8 * i + 7, 8 * i), tid)

    def _clear_sym_range(self, addr: int, length: int) -> None:
        for i in range(length):
            self.sym_mem.pop(addr + i, None)

    # -- instruction interpretation -------------------------------------------------

    def _step(self, event: StepEvent) -> None:
        th = self.threads.get(event.tid)
        if th is None or th.dead:
            raise ReplayAbort(f"step for unknown/dead thread {event.tid}")
        instr = event.instr
        if th.awaiting_syscall:
            if instr.op is Op.SYSCALL and instr.addr == th.ctx.pc:
                return  # blocked retry of the same syscall
            raise ReplayAbort("unexpected step while awaiting syscall result")
        if th.ctx.pc != instr.addr:
            raise ReplayAbort(
                f"divergence: shadow pc 0x{th.ctx.pc:x} vs trace 0x{instr.addr:x}"
            )
        self.result.total_instructions += 1
        tmps: dict[int, tuple[int, Expr | None]] = {}
        tainted = False
        next_pc = instr.next_addr
        tid = event.tid
        pc = instr.addr
        pcs = self._pc_counts
        if pcs is not None:
            pcs[pc] = pcs.get(pc, 0) + 1

        stmts = self._lift_cache.get(pc)
        if stmts is None:
            stmts = lift(instr)
            self._lift_cache[pc] = stmts
        for stmt in stmts:
            if isinstance(stmt, il.Move):
                conc, sym = self._get(th, tmps, stmt.src)
                tainted |= sym is not None
                self._set(th, tmps, stmt.dst, conc, sym)
            elif isinstance(stmt, il.BinOp):
                taken = self._do_binop(th, tmps, stmt, pc)
                if taken == "fault":
                    th.faulted = True
                    return  # SignalEvent (or process death) follows
                tainted |= taken
            elif isinstance(stmt, il.UnOp):
                conc, sym = self._get(th, tmps, stmt.a)
                tainted |= sym is not None
                res = (~conc) & MASK64
                res_sym = None if sym is None else mk_binop(
                    "xor", sym, mk_const(MASK64, 64))
                if stmt.set_flags:
                    th.ctx.flags.set_logic(res)
                    th.sym_flags = None if res_sym is None else (
                        "logic", res, res_sym, 0, None)
                self._set(th, tmps, stmt.dst, res, res_sym)
            elif isinstance(stmt, il.Lea):
                conc, sym = self._get(th, tmps, stmt.base)
                addr = u64(conc + stmt.disp)
                sym_addr = None
                if sym is not None:
                    tainted = True
                    sym_addr = mk_binop("add", sym, mk_const(stmt.disp, 64))
                self._set(th, tmps, stmt.dst, addr, sym_addr)
            elif isinstance(stmt, il.Load):
                addr_conc, addr_sym = self._get(th, tmps, stmt.addr)
                if addr_sym is not None:
                    tainted = True
                    if not self.policy.symbolic_addressing:
                        self.diags.emit(
                            DiagnosticKind.MEM_ADDR_CONCRETIZED,
                            "load address depends on input; concretized to trace value",
                            pc,
                        )
                conc, sym = self._mem_load(th, addr_conc, stmt.width,
                                           stmt.signed, tid)
                tainted |= sym is not None
                self._set(th, tmps, stmt.dst, conc, sym)
            elif isinstance(stmt, il.Store):
                addr_conc, addr_sym = self._get(th, tmps, stmt.addr)
                if addr_sym is not None:
                    tainted = True
                    if not self.policy.symbolic_addressing:
                        self.diags.emit(
                            DiagnosticKind.MEM_ADDR_CONCRETIZED,
                            "store address depends on input; concretized to trace value",
                            pc,
                        )
                conc, sym = self._get(th, tmps, stmt.value)
                tainted |= sym is not None
                self._mem_store(th, addr_conc, stmt.width, conc, sym, tid, pc)
            elif isinstance(stmt, il.SetFlags):
                a_conc, a_sym = self._get(th, tmps, stmt.a)
                b_conc, b_sym = self._get(th, tmps, stmt.b)
                tainted |= a_sym is not None or b_sym is not None
                from ..vm.cpu import alu as _alu

                if stmt.kind == "sub":
                    _alu("sub", a_conc, b_conc, th.ctx.flags)
                else:  # test
                    th.ctx.flags.set_logic(a_conc & b_conc)
                if a_sym is None and b_sym is None:
                    th.sym_flags = None
                else:
                    th.sym_flags = (stmt.kind, a_conc, a_sym, b_conc, b_sym)
            elif isinstance(stmt, il.CondBranch):
                taken = th.ctx.flags.condition(stmt.cc)
                if th.sym_flags is not None:
                    tainted = True
                    self._branch_constraint(th, stmt, taken, pc)
                next_pc = stmt.target if taken else instr.next_addr
            elif isinstance(stmt, il.Jump):
                conc, sym = self._get(th, tmps, stmt.target)
                if sym is not None:
                    tainted = True
                    if not self.policy.symbolic_jump:
                        self.diags.emit(
                            DiagnosticKind.SYMBOLIC_JUMP_UNMODELED,
                            "indirect jump target depends on input",
                            pc,
                        )
                next_pc = conc
            elif isinstance(stmt, il.Call):
                conc, sym = self._get(th, tmps, stmt.target)
                if sym is not None:
                    tainted = True
                    if not self.policy.symbolic_jump:
                        self.diags.emit(
                            DiagnosticKind.SYMBOLIC_JUMP_UNMODELED,
                            "indirect call target depends on input",
                            pc,
                        )
                sp = u64(th.ctx.regs[15] - 8)
                th.ctx.regs[15] = sp
                self.memory.write_u64(sp, stmt.return_addr)
                self._clear_sym_range(sp, 8)
                next_pc = conc
            elif isinstance(stmt, il.Ret):
                sp = th.ctx.regs[15]
                next_pc = self.memory.read_u64(sp)
                th.ctx.regs[15] = u64(sp + 8)
                if next_pc == SIGRETURN_ADDR:
                    self._sigreturn(th)
                    return
                if next_pc == THREAD_EXIT_ADDR:
                    th.dead = True
                    return
            elif isinstance(stmt, il.Push):
                conc, sym = self._get(th, tmps, stmt.src)
                tainted |= sym is not None
                sp = u64(th.ctx.regs[15] - 8)
                th.ctx.regs[15] = sp
                if not self.policy.lifts_stack_memory and sym is not None:
                    self.diags.emit(
                        DiagnosticKind.LIFT_INCOMPLETE,
                        "push lifted without memory effect; value dropped",
                        pc,
                    )
                    sym = None
                self._mem_store(th, sp, 8, conc, sym, tid, pc)
            elif isinstance(stmt, il.Pop):
                sp = th.ctx.regs[15]
                conc, sym = self._mem_load(th, sp, 8, False, tid)
                tainted |= sym is not None
                if not self.policy.lifts_stack_memory and sym is not None:
                    self.diags.emit(
                        DiagnosticKind.LIFT_INCOMPLETE,
                        "pop lifted without memory effect; value dropped",
                        pc,
                    )
                    sym = None
                th.ctx.regs[15] = u64(sp + 8)
                self._set(th, tmps, stmt.dst, conc, sym)
            elif isinstance(stmt, il.Syscall):
                th.awaiting_syscall = True
                return  # pc advances when the SyscallEvent arrives
            elif isinstance(stmt, il.Halt):
                th.dead = True
                return
            elif isinstance(stmt, il.FpOp):
                tainted |= self._do_fpop(th, tmps, stmt, pc)
            elif isinstance(stmt, il.FpFlags):
                a_conc, a_sym = self._get(th, tmps, stmt.a)
                b_conc, b_sym = self._get(th, tmps, stmt.b)
                if stmt.kind == "fcmp32":
                    th.ctx.flags.set_fcmp(bits_to_f32(a_conc), bits_to_f32(b_conc))
                else:
                    th.ctx.flags.set_fcmp(bits_to_f64(a_conc), bits_to_f64(b_conc))
                if a_sym is None and b_sym is None:
                    th.sym_flags = None
                elif not self.policy.supports_fp:
                    tainted = True
                    self.diags.emit(
                        DiagnosticKind.LIFT_UNSUPPORTED,
                        f"{stmt.kind} not covered by the lifter",
                        pc,
                    )
                    th.sym_flags = None
                else:
                    tainted = True
                    th.sym_flags = (stmt.kind, a_conc, a_sym, b_conc, b_sym)
            elif isinstance(stmt, il.DivGuard):
                conc, sym = self._get(th, tmps, stmt.divisor)
                if self.policy.div_guard and sym is not None:
                    tainted = True
                    from ..smt import mk_eq

                    cond = mk_eq(sym, mk_const(0, 64))
                    oriented = cond if conc == 0 else mk_bool_not(cond)
                    self._push_constraint(oriented, pc, "div-guard")
            else:  # pragma: no cover
                raise ReplayAbort(f"unhandled IL stmt {stmt}")

        th.ctx.pc = next_pc
        if tainted:
            self.result.tainted_instructions += 1
            if self._prov is not None:
                self._prov.record_taint(pc, instr.op.name.lower(),
                                        self.result.total_instructions - 1)

    def _do_binop(self, th, tmps, stmt: il.BinOp, pc: int):
        from ..vm.cpu import alu as _alu

        a_conc, a_sym = self._get(th, tmps, stmt.a)
        b_conc, b_sym = self._get(th, tmps, stmt.b)
        alu_name = {"lshr": "shr", "ashr": "sar"}.get(stmt.op, stmt.op)
        try:
            res = _alu(alu_name, a_conc, b_conc,
                       th.ctx.flags if stmt.set_flags else None)
        except VMError:
            return "fault"
        res_sym = None
        if a_sym is not None or b_sym is not None:
            a_expr = self._expr_of(a_conc, a_sym)
            b_expr = self._expr_of(b_conc, b_sym)
            try:
                res_sym = apply_binop(stmt.op, a_expr, b_expr)
            except SolverError as err:
                self.diags.emit(DiagnosticKind.UNSUPPORTED_THEORY, str(err), pc)
                res_sym = None
        if stmt.set_flags:
            if res_sym is None:
                th.sym_flags = None
            else:
                th.sym_flags = ("logic", res, res_sym, 0, None)
        self._set(th, tmps, stmt.dst, res, res_sym)
        return a_sym is not None or b_sym is not None

    def _do_fpop(self, th, tmps, stmt: il.FpOp, pc: int) -> bool:
        concs = []
        syms = []
        for src in stmt.srcs:
            conc, sym = self._get(th, tmps, src)
            concs.append(conc)
            syms.append(sym)
        conc_expr = apply_fp_op(stmt.op, [mk_const(c, 64) for c in concs])
        assert conc_expr.is_const
        any_sym = any(s is not None for s in syms)
        res_sym = None
        if any_sym:
            if self.policy.supports_fp:
                res_sym = apply_fp_op(
                    stmt.op,
                    [self._expr_of(c, s) for c, s in zip(concs, syms)],
                )
            else:
                self.diags.emit(
                    DiagnosticKind.LIFT_UNSUPPORTED,
                    f"{stmt.op} not covered by the lifter",
                    pc,
                )
        self._set(th, tmps, stmt.dst, conc_expr.value, res_sym)
        return any_sym

    def _branch_constraint(self, th, stmt: il.CondBranch, taken: bool,
                           pc: int) -> None:
        kind, a_conc, a_sym, b_conc, b_sym = th.sym_flags
        if kind.startswith("fcmp") and not self.policy.supports_fp:
            self.diags.emit(
                DiagnosticKind.LIFT_UNSUPPORTED,
                "fp compare feeding a branch not covered",
                pc,
            )
            return
        width = 64
        a_expr = a_sym if a_sym is not None else mk_const(a_conc, width)
        if kind == "logic":
            b_expr = None
            cond = flag_condition("logic", a_expr if a_sym is not None
                                  else mk_const(a_conc, width), None, stmt.cc)
        else:
            b_expr = b_sym if b_sym is not None else mk_const(b_conc, width)
            cond = flag_condition(kind, a_expr, b_expr, stmt.cc)
        oriented = cond if taken else mk_bool_not(cond)
        self._push_constraint(oriented, pc, "branch")

    def _push_constraint(self, expr: Expr, pc: int, kind: str) -> None:
        if expr.is_const:
            return  # degenerated to a constant; nothing to negate
        self.result.constraints.append(
            PathConstraint(expr, pc, kind, len(self.result.constraints))
        )

    # -- events --------------------------------------------------------------------

    def _apply_syscall(self, event: SyscallEvent) -> None:
        th = self.threads.get(event.tid)
        if th is None:
            raise ReplayAbort(f"syscall event for unknown thread {event.tid}")
        th.awaiting_syscall = False
        nr = event.nr
        pc = th.ctx.pc

        self._syscall_diagnostics(th, event, pc)

        # Result and memory effects are environment data: concrete.
        th.ctx.regs[0] = event.ret & MASK64
        th.sym_regs.pop(0, None)
        for addr, data in event.writes:
            self.memory.write(addr, data)
            self._clear_sym_range(addr, len(data))
        th.ctx.pc = u64(pc + instruction_size(Op.SYSCALL))

        if nr == Sys.THREAD_CREATE and event.ret > 0:
            entry, arg, stack_top = event.args[0], event.args[1], event.args[2]
            ctx = Context(pc=entry)
            ctx.regs[1] = arg
            ctx.regs[15] = u64(stack_top - 8)
            self.memory.write_u64(ctx.regs[15], THREAD_EXIT_ADDR)
            self._clear_sym_range(ctx.regs[15], 8)
            new = _ShadowThread(ctx)
            if 1 in th.sym_regs:
                new.sym_regs[1] = th.sym_regs[1]
            self.threads[event.ret] = new
        elif nr in (Sys.EXIT, Sys.BOMB):
            th.dead = True

    def _syscall_diagnostics(self, th, event: SyscallEvent, pc: int) -> None:
        nr = event.nr
        policy = self.policy
        env_kind = (DiagnosticKind.TAINT_LOST if policy.env_arg_diag == "es2"
                    else DiagnosticKind.UNSUPPORTED_THEORY)

        if 0 in th.sym_regs:
            self.diags.emit(env_kind, "syscall number depends on input", pc)
        if nr in (Sys.OPEN, Sys.UNLINK):
            path_addr = event.args[0]
            path = self.memory.read_cstr(path_addr)
            if any(addr in self.sym_mem
                   for addr in range(path_addr, path_addr + len(path))):
                self.diags.emit(env_kind, "syscall path argument depends on input", pc)
        elif nr == Sys.WRITE:
            buf, length = event.args[1], event.args[2]
            if any(addr in self.sym_mem for addr in range(buf, buf + min(length, 256))):
                self.env_escaped = True
        elif nr == Sys.MSGSEND:
            if 1 in th.sym_regs:
                self.env_escaped = True
        elif nr in (Sys.READ, Sys.MSGRECV, Sys.HTTP_GET):
            if self.env_escaped:
                self.diags.emit(
                    DiagnosticKind.TAINT_LOST,
                    "input-derived data round-tripped through the environment",
                    pc,
                )
        elif nr == Sys.FORK:
            self.diags.emit(
                DiagnosticKind.CROSS_PROCESS_LOST,
                "child process not traced; cross-process dataflow invisible",
                pc,
            )

    def _apply_signal(self, event: SignalEvent) -> None:
        th = self.threads.get(event.tid)
        if th is None:
            raise ReplayAbort(f"signal for unknown thread {event.tid}")
        th.faulted = False
        if not self.policy.signal_trace:
            # The tool cannot stitch the trace discontinuity back
            # together; everything past this point is unanalyzable.
            self.diags.emit(
                DiagnosticKind.LIFT_INCOMPLETE,
                "signal delivery breaks the trace; lifting stops here",
            )
            raise _ReplayTruncated()
        sym_frame = (dict(th.sym_regs), dict(th.sym_fregs), th.sym_flags)
        th.sig_frames.append((th.ctx.clone(), sym_frame, event.resume_pc))
        # Shadow concrete state must mirror the machine either way.
        ctx = th.ctx
        ctx.regs[15] = u64(ctx.regs[15] - 8)
        self.memory.write_u64(ctx.regs[15], SIGRETURN_ADDR)
        self._clear_sym_range(ctx.regs[15], 8)
        ctx.regs[1] = event.signo
        th.sym_regs.pop(1, None)
        ctx.pc = event.handler

    def _sigreturn(self, th: _ShadowThread) -> None:
        if not th.sig_frames:
            raise ReplayAbort("sigreturn without a pending signal frame")
        saved_ctx, (saved_regs, saved_fregs, saved_flags), resume = th.sig_frames.pop()
        # Handler side effects on memory persist; the register file (and,
        # for signal-aware tools, the symbolic register state) restores.
        saved_ctx.pc = resume
        th.ctx = saved_ctx
        th.sym_regs = saved_regs
        th.sym_fregs = saved_fregs
        th.sym_flags = saved_flags
