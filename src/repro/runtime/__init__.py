"""The BombC runtime library.

A libc subset (strings, stdio, malloc), math (`sin`, `pow`, `atof`),
`srand`/`rand`, SHA1 and AES-128, pthread wrappers and raw syscall
wrappers — all written in BombC itself and compiled into the ``.lib``
section of every bomb binary.  This mirrors the role libc/libm/OpenSSL
play for the paper's dataset: real library code the tools must either
analyze or hook.

Load order matters only for readability; all units share one program
namespace.
"""

from __future__ import annotations

from pathlib import Path

_BC_DIR = Path(__file__).parent / "bc"

#: Canonical unit order (stable across runs for deterministic layout).
_UNIT_ORDER = [
    "sys.bc",
    "string.bc",
    "stdio.bc",
    "alloc.bc",
    "file.bc",
    "math.bc",
    "rand.bc",
    "pthread.bc",
    "sha1.bc",
    "aes.bc",
]


def runtime_sources() -> list[tuple[str, str]]:
    """Return (unit name, source text) for every runtime unit."""
    sources = []
    for name in _UNIT_ORDER:
        path = _BC_DIR / name
        sources.append((name, path.read_text()))
    return sources


def runtime_function_names() -> set[str]:
    """Names of all functions defined by the runtime (the hookable set)."""
    import re

    names: set[str] = set()
    pattern = re.compile(
        r"^(?:int|char|float|double|void)\s*\**\s*(\w+)\s*\(", re.MULTILINE
    )
    for _name, text in runtime_sources():
        names.update(pattern.findall(text))
    return names
