"""Evaluation harness reproducing the paper's Section V."""

from .classify import (
    CONCRETIZATION_THRESHOLD,
    classify,
    describe_outcome,
    primary_diagnostic,
)
from .explain import CellDiagnosis, EvidenceItem, explain_cell, explain_matrix
from .figures import DatasetStats, Figure3Result, run_dataset_stats, run_figure3
from .harness import CellResult, Table2Result, run_cell, run_negative_bomb, run_table2
from .report import render_markdown_report, unsolved_cases
from .tables import render_table1, render_table2, verify_table1_against_observations

__all__ = [
    "CONCRETIZATION_THRESHOLD",
    "CellDiagnosis",
    "CellResult",
    "DatasetStats",
    "EvidenceItem",
    "Figure3Result",
    "Table2Result",
    "classify",
    "describe_outcome",
    "explain_cell",
    "explain_matrix",
    "primary_diagnostic",
    "render_markdown_report",
    "render_table1",
    "render_table2",
    "run_cell",
    "run_dataset_stats",
    "run_figure3",
    "run_negative_bomb",
    "run_table2",
    "unsolved_cases",
    "verify_table1_against_observations",
]
