"""Outcome classification: diagnostics + replay result -> Table II cell.

The paper labels each (bomb, tool) cell with the error stage of the
*root cause*.  Engines here emit structured diagnostics at the point
they lose fidelity; this module turns a run's diagnostic set into one
label using explicit precedence rules:

1. A validated solution is a success regardless of diagnostics.
2. Abnormal termination (resource budgets, engine crash, unsupported
   syscall) is ``E`` — the paper's timeout/memory-out/abort bucket.
3. A *claimed* but non-replaying solution whose root diagnostic is a
   simulated system-call value is ``P`` (partial success), matching the
   paper's definition of that label.
4. Lifting gaps (Es1) dominate: any propagation or modeling error
   downstream of an unliftable instruction is a consequence, not a
   cause.
5. Constraint-modeling gaps (Es3: unmodeled memory, symbolic jumps,
   missing theories) — *unless* concretization was systematic
   (more than :data:`CONCRETIZATION_THRESHOLD` events), in which case
   the dataflow itself was corrupted at scale and the observable root
   cause is propagation (Es2).  This mirrors the paper's split between
   the one-off symbolic-array cells (Es3) and the AES cell (Es2).
6. Propagation losses (Es2).
7. Declaration gaps (Es0).
"""

from __future__ import annotations

from ..errors import Diagnostic
from ..errors import DiagnosticKind as K
from ..errors import ErrorStage
from ..tools.api import ToolReport

#: Above this many concretization events, failures classify as Es2
#: (systematically corrupted dataflow) rather than Es3.
CONCRETIZATION_THRESHOLD = 64

_E_KINDS = {K.RESOURCE_EXHAUSTED, K.ENGINE_CRASH, K.UNSUPPORTED_SYSCALL}
_ES1_KINDS = {K.LIFT_UNSUPPORTED, K.LIFT_INCOMPLETE}
_ES3_KINDS = {K.MEM_ADDR_CONCRETIZED, K.SYMBOLIC_JUMP_UNMODELED,
              K.UNSUPPORTED_THEORY, K.UNMODELED_MEMORY_REF}
_ES2_KINDS = {K.TAINT_LOST, K.CONCRETIZED_ENV, K.CROSS_THREAD_LOST,
              K.CROSS_PROCESS_LOST, K.CONCRETIZED_READ, K.CONCRETIZED_JUMP}
_CONCRETIZATION_KINDS = {K.MEM_ADDR_CONCRETIZED, K.CONCRETIZED_READ,
                         K.UNMODELED_MEMORY_REF}


def classify(report: ToolReport) -> ErrorStage:
    """Map one tool run to its Table II outcome label."""
    if report.solved:
        return ErrorStage.OK

    kinds = report.diag_kinds()

    if report.aborted is not None or kinds & _E_KINDS:
        return ErrorStage.E

    if report.goal_claimed and K.SIMULATED_SYSCALL_VALUE in kinds:
        return ErrorStage.P

    if kinds & _ES1_KINDS:
        return ErrorStage.ES1

    if kinds & _ES3_KINDS:
        concretizations = sum(
            1 for d in report.diagnostics if d.kind in _CONCRETIZATION_KINDS
        )
        if concretizations > CONCRETIZATION_THRESHOLD:
            return ErrorStage.ES2
        return ErrorStage.ES3

    if kinds & _ES2_KINDS:
        return ErrorStage.ES2

    if K.FIXED_WORD_ARGV in kinds:
        return ErrorStage.ES2

    if kinds & {K.CONCRETE_LENGTH, K.NO_SYMBOLIC_SOURCE}:
        return ErrorStage.ES0

    # Nothing symbolic ever surfaced and nothing was diagnosed: the tool
    # simply never saw the trigger as an input — a declaration gap.
    return ErrorStage.ES0


def primary_diagnostic(report: ToolReport, outcome: ErrorStage,
                       provenance=None) -> Diagnostic | None:
    """The diagnostic that drove *outcome* — the cell's root cause.

    Returns the first diagnostic whose stage matches the classified
    outcome (engines emit in causal order, so the first match is the
    root), falling back to the first diagnostic of any stage when the
    label came from precedence overrides (e.g. an Es3 run reclassified
    as Es2 by the concretization threshold).  ``None`` for solved cells
    or runs with an empty log.

    With a :class:`~repro.obs.provenance.ProvenanceCollector`, a
    stage-matching diagnostic that carries a concrete instruction
    address *and* was witnessed as a drop event wins over an earlier
    address-less one — evidence that points at an instruction beats a
    blanket statement about the run.
    """
    if outcome is ErrorStage.OK:
        return None
    matching = [d for d in report.diagnostics if d.stage is outcome]
    if provenance is not None and matching:
        witnessed = {(e.cause, e.pc) for e in provenance.drops
                     if e.pc is not None}
        for diag in matching:
            if (diag.kind.value, diag.pc) in witnessed:
                return diag
    if matching:
        return matching[0]
    for diag in report.diagnostics:
        return diag
    return None


#: One-line reading of each Table II label, completed by the root
#: diagnostic when one exists.
_STAGE_SUMMARY = {
    ErrorStage.OK: "solved: a generated input triggered the bomb on "
                   "concrete replay",
    ErrorStage.ES0: "declaration gap (Es0): the trigger input never became "
                    "a symbolic variable",
    ErrorStage.ES1: "lifting gap (Es1): an instruction the tool cannot "
                    "(fully) lift cut the analysis",
    ErrorStage.ES2: "propagation loss (Es2): symbolic data was dropped "
                    "before reaching the trigger branch",
    ErrorStage.ES3: "constraint-modeling gap (Es3): the constraint model "
                    "omits required memory or theory",
    ErrorStage.E: "abnormal exit (E): crash, resource exhaustion, or no "
                  "feedback within the budget",
    ErrorStage.P: "partial success (P): reachability claimed through a "
                  "simulated system-call value that does not replay",
}


def describe_outcome(outcome: ErrorStage, root=None) -> str:
    """Human-readable diagnosis sentence for one classified cell.

    *root* is the root-cause :class:`Diagnostic` (or its rendered
    string) appended to the stage reading for non-OK cells.
    """
    summary = _STAGE_SUMMARY[outcome]
    if root is not None and outcome is not ErrorStage.OK:
        summary = f"{summary} — {root}"
    return summary
