"""Outcome classification: diagnostics + replay result -> Table II cell.

The paper labels each (bomb, tool) cell with the error stage of the
*root cause*.  Engines here emit structured diagnostics at the point
they lose fidelity; this module turns a run's diagnostic set into one
label using explicit precedence rules:

1. A validated solution is a success regardless of diagnostics.
2. Abnormal termination (resource budgets, engine crash, unsupported
   syscall) is ``E`` — the paper's timeout/memory-out/abort bucket.
3. A *claimed* but non-replaying solution whose root diagnostic is a
   simulated system-call value is ``P`` (partial success), matching the
   paper's definition of that label.
4. Lifting gaps (Es1) dominate: any propagation or modeling error
   downstream of an unliftable instruction is a consequence, not a
   cause.
5. Constraint-modeling gaps (Es3: unmodeled memory, symbolic jumps,
   missing theories) — *unless* concretization was systematic
   (more than :data:`CONCRETIZATION_THRESHOLD` events), in which case
   the dataflow itself was corrupted at scale and the observable root
   cause is propagation (Es2).  This mirrors the paper's split between
   the one-off symbolic-array cells (Es3) and the AES cell (Es2).
6. Propagation losses (Es2).
7. Declaration gaps (Es0).
"""

from __future__ import annotations

from ..errors import Diagnostic
from ..errors import DiagnosticKind as K
from ..errors import ErrorStage
from ..tools.api import ToolReport

#: Above this many concretization events, failures classify as Es2
#: (systematically corrupted dataflow) rather than Es3.
CONCRETIZATION_THRESHOLD = 64

_E_KINDS = {K.RESOURCE_EXHAUSTED, K.ENGINE_CRASH, K.UNSUPPORTED_SYSCALL}
_ES1_KINDS = {K.LIFT_UNSUPPORTED, K.LIFT_INCOMPLETE}
_ES3_KINDS = {K.MEM_ADDR_CONCRETIZED, K.SYMBOLIC_JUMP_UNMODELED,
              K.UNSUPPORTED_THEORY, K.UNMODELED_MEMORY_REF}
_ES2_KINDS = {K.TAINT_LOST, K.CONCRETIZED_ENV, K.CROSS_THREAD_LOST,
              K.CROSS_PROCESS_LOST, K.CONCRETIZED_READ, K.CONCRETIZED_JUMP}
_CONCRETIZATION_KINDS = {K.MEM_ADDR_CONCRETIZED, K.CONCRETIZED_READ,
                         K.UNMODELED_MEMORY_REF}


def classify(report: ToolReport) -> ErrorStage:
    """Map one tool run to its Table II outcome label."""
    if report.solved:
        return ErrorStage.OK

    kinds = report.diag_kinds()

    if report.aborted is not None or kinds & _E_KINDS:
        return ErrorStage.E

    if report.goal_claimed and K.SIMULATED_SYSCALL_VALUE in kinds:
        return ErrorStage.P

    if kinds & _ES1_KINDS:
        return ErrorStage.ES1

    if kinds & _ES3_KINDS:
        concretizations = sum(
            1 for d in report.diagnostics if d.kind in _CONCRETIZATION_KINDS
        )
        if concretizations > CONCRETIZATION_THRESHOLD:
            return ErrorStage.ES2
        return ErrorStage.ES3

    if kinds & _ES2_KINDS:
        return ErrorStage.ES2

    if K.FIXED_WORD_ARGV in kinds:
        return ErrorStage.ES2

    if kinds & {K.CONCRETE_LENGTH, K.NO_SYMBOLIC_SOURCE}:
        return ErrorStage.ES0

    # Nothing symbolic ever surfaced and nothing was diagnosed: the tool
    # simply never saw the trigger as an input — a declaration gap.
    return ErrorStage.ES0


def primary_diagnostic(report: ToolReport,
                       outcome: ErrorStage) -> Diagnostic | None:
    """The diagnostic that drove *outcome* — the cell's root cause.

    Returns the first diagnostic whose stage matches the classified
    outcome (engines emit in causal order, so the first match is the
    root), falling back to the first diagnostic of any stage when the
    label came from precedence overrides (e.g. an Es3 run reclassified
    as Es2 by the concretization threshold).  ``None`` for solved cells
    or runs with an empty log.
    """
    if outcome is ErrorStage.OK:
        return None
    for diag in report.diagnostics:
        if diag.stage is outcome:
            return diag
    for diag in report.diagnostics:
        return diag
    return None
