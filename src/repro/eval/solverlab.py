"""Offline solver-workload analytics over captured query corpora.

The solve stage dominates the full-matrix wall clock, and the paper's
core finding is that capability gaps trace back to *specific constraint
shapes*.  This module turns the SMT flight recorder
(:mod:`repro.smt.querylog`) into a lab bench:

* :func:`capture_matrix` — run a (sliced) Table II matrix with query
  logging on and persist the content-addressed corpus + per-cell
  manifests into the campaign store.
* :func:`replay_corpus` — re-run every recorded query offline against a
  fresh (or incremental) solver, assert verdict identity, and report
  per-class effort deltas.  Replayed queries emit ``solverlab`` obs
  spans, so a replay under ``--trace-out`` renders in Perfetto like any
  other run.
* :func:`report_corpus` — the workload table: top offenders by wall and
  conflicts, aggregation by guard-tag kind, bomb family, and feature
  class — the table that says which constraint shapes to attack.
* :func:`corpus_index` / :func:`diff_indices` — normalize a store
  directory or a replay JSON into a comparable index and diff two of
  them: verdict drift (the hard failure) plus per-class effort
  regression.

Everything is plain dict/JSON: the CLI renders text, CI consumes
``--json`` artifacts, and :func:`repro.obs.export.solverlab_class_wall`
renders the report as the ``repro_solverlab_class_wall_seconds``
Prometheus family.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from .. import obs
from ..errors import SolverError
from ..smt import querylog
from ..smt.solver import IncrementalSolver, Solver

#: Version stamp on replay/report JSON documents.
SOLVERLAB_SCHEMA = 1


def _store(cache):
    from ..service.store import ResultStore

    return cache if isinstance(cache, ResultStore) else ResultStore(cache)


# -- capture -----------------------------------------------------------------

def capture_matrix(bombs=None, tools=None, cache=".repro-solverlab",
                   timeout: float | None = None,
                   verbose: bool = False) -> dict:
    """Run a (sliced) matrix with the flight recorder installed.

    Cells run serially in-process (the recorder is process-local), with
    the store at *cache* serving/storing cell results as usual — so a
    cold capture also warms the result cache, and a warm rerun issues
    (and captures) zero queries.  Returns the capture summary.
    """
    from ..bombs import TABLE2_BOMB_IDS, TOOL_COLUMNS
    from .harness import run_table2

    bombs = tuple(bombs) if bombs else TABLE2_BOMB_IDS
    tools = tuple(tools) if tools else TOOL_COLUMNS
    store = _store(cache)
    recorder = querylog.QueryRecorder()
    with obs.span("solverlab", verb="capture", cells=len(bombs) * len(tools)):
        with querylog.capturing(recorder):
            result = run_table2(bomb_ids=bombs, tools=tools, verbose=verbose,
                                timeout=timeout, cache=store)
    persisted = recorder.persist(store)
    matched, labelled = result.agreement()
    summary = recorder.summary()
    summary.update({
        "schema": SOLVERLAB_SCHEMA,
        "kind": "solverlab-capture",
        "store": str(store.root),
        "stored": persisted["stored"],
        "store_dedup": persisted["skipped"],
        "manifests": persisted["cells"],
        "agreement": {"matched": matched, "labelled": labelled},
    })
    return summary


def render_capture(doc: dict) -> str:
    agreement = doc.get("agreement", {})
    return (
        f"captured {doc['queries']} queries "
        f"({doc['distinct']} distinct, dedup ratio "
        f"{doc['dedup_ratio']:.1%}) from {doc['cells']} cell(s)\n"
        f"persisted {doc['stored']} new record(s) "
        f"(+{doc['store_dedup']} already stored), "
        f"{doc['manifests']} manifest(s) -> {doc['store']}\n"
        f"matrix agreement: {agreement.get('matched')}/"
        f"{agreement.get('labelled')}"
    )


# -- replay ------------------------------------------------------------------

def _load_corpus(store, bombs=None, tools=None):
    """Yield ``(manifest, occurrence)`` pairs in manifest order; loads
    each distinct record body once."""
    manifests = store.query_manifests()
    if bombs:
        manifests = [m for m in manifests if m.get("bomb") in set(bombs)]
    if tools:
        manifests = [m for m in manifests if m.get("tool") in set(tools)]
    return manifests


def _replay_one(body: dict, mode: str) -> tuple[str, float, dict]:
    """Re-run one recorded query; returns (status, wall_s, stats)."""
    tagged, assumptions = querylog.decode_record(body)
    budget = body.get("budget", {})
    kwargs = {
        "max_conflicts": budget.get("max_conflicts", 100_000),
        "max_clauses": budget.get("max_clauses", 1_500_000),
        "max_nodes": budget.get("max_nodes"),
    }
    t0 = time.perf_counter()
    try:
        if mode == "incremental":
            solver = IncrementalSolver(**kwargs)
            for tag, expr in tagged:
                solver.assert_expr(expr, tag)
            status = solver.check(assumptions).status
        else:
            solver = Solver(**kwargs)
            for tag, expr in tagged:
                solver.add(expr, tag)
            status = solver.check(assumptions).status
    except SolverError:
        status = "error"
    wall = time.perf_counter() - t0
    return status, wall, solver._last_query_stats


def _class_bucket(classes: dict, cls: str) -> dict:
    bucket = classes.get(cls)
    if bucket is None:
        bucket = classes[cls] = {
            "n": 0,
            "wall_recorded_s": 0.0, "wall_replayed_s": 0.0,
            "conflicts_recorded": 0, "conflicts_replayed": 0,
        }
    return bucket


def replay_corpus(cache, mode: str = "fresh", bombs=None,
                  tools=None) -> dict:
    """Re-run a captured corpus offline and check verdict identity.

    Each *occurrence* is replayed (so per-class effort totals compare
    like for like with the capture), but record bodies are decoded once
    per distinct digest.  ``mode`` selects the solver: ``fresh`` is one
    :class:`Solver` per query; ``incremental`` asserts the prefix into
    an :class:`IncrementalSolver` and answers via one assumption query.
    Returns the replay document; ``drift`` is the list of verdict
    mismatches (the acceptance gate: it must be empty).
    """
    if mode not in ("fresh", "incremental"):
        raise ValueError(f"replay mode must be fresh|incremental, got {mode!r}")
    store = _store(cache)
    manifests = _load_corpus(store, bombs, tools)
    bodies: dict[str, dict] = {}
    verdicts: dict[str, str] = {}
    classes: dict[str, dict] = {}
    drift: list[dict] = []
    queries = 0
    missing = 0
    wall_recorded = wall_replayed = 0.0
    conflicts_recorded = conflicts_replayed = 0
    with obs.span("solverlab", verb="replay", mode=mode):
        for manifest in manifests:
            bomb, tool = manifest.get("bomb"), manifest.get("tool")
            with obs.span("cell", bomb=bomb, tool=tool):
                for i, occ in enumerate(manifest.get("queries", [])):
                    digest = occ["digest"]
                    body = bodies.get(digest)
                    if body is None:
                        body = store.get_query(digest)
                        if body is None:
                            missing += 1
                            continue
                        bodies[digest] = body
                    with obs.span("solve", bomb=bomb, tool=tool,
                                  cls=body["class"],
                                  digest=digest[:12]) as sp:
                        status, wall, stats = _replay_one(body, mode)
                        sp.set("status", status)
                    queries += 1
                    verdicts[digest] = status
                    wall_recorded += occ.get("wall_s", 0.0)
                    wall_replayed += wall
                    conflicts_recorded += occ.get("conflicts", 0)
                    conflicts_replayed += stats.get("conflicts", 0)
                    bucket = _class_bucket(classes, body["class"])
                    bucket["n"] += 1
                    bucket["wall_recorded_s"] += occ.get("wall_s", 0.0)
                    bucket["wall_replayed_s"] += wall
                    bucket["conflicts_recorded"] += occ.get("conflicts", 0)
                    bucket["conflicts_replayed"] += stats.get("conflicts", 0)
                    if status != occ.get("status"):
                        drift.append({
                            "bomb": bomb, "tool": tool, "index": i,
                            "digest": digest, "pc": occ.get("pc"),
                            "kind": occ.get("kind"),
                            "recorded": occ.get("status"),
                            "replayed": status,
                        })
                        obs.count("smtlog.replay_drift")
                    obs.count("smtlog.replayed")
    for bucket in classes.values():
        bucket["wall_recorded_s"] = round(bucket["wall_recorded_s"], 6)
        bucket["wall_replayed_s"] = round(bucket["wall_replayed_s"], 6)
    return {
        "schema": SOLVERLAB_SCHEMA,
        "kind": "solverlab-replay",
        "mode": mode,
        "cells": len(manifests),
        "queries": queries,
        "distinct": len(bodies),
        "missing_records": missing,
        "drift": drift,
        "verdicts": verdicts,
        "classes": classes,
        "wall_recorded_s": round(wall_recorded, 6),
        "wall_replayed_s": round(wall_replayed, 6),
        "conflicts_recorded": conflicts_recorded,
        "conflicts_replayed": conflicts_replayed,
    }


def render_replay(doc: dict) -> str:
    lines = [
        f"replayed {doc['queries']} queries ({doc['distinct']} distinct) "
        f"from {doc['cells']} cell(s), mode={doc['mode']}",
        f"wall: recorded {doc['wall_recorded_s']:.3f}s -> replayed "
        f"{doc['wall_replayed_s']:.3f}s; conflicts: "
        f"{doc['conflicts_recorded']} -> {doc['conflicts_replayed']}",
    ]
    if doc.get("missing_records"):
        lines.append(f"warning: {doc['missing_records']} occurrence(s) "
                     "referenced a missing record")
    if doc["classes"]:
        lines.append("")
        lines.append(f"{'class':14s}{'n':>7s}{'rec wall':>11s}"
                     f"{'replay wall':>13s}{'rec cfl':>10s}{'replay cfl':>12s}")
        for cls in sorted(doc["classes"],
                          key=lambda c: -doc["classes"][c]["wall_replayed_s"]):
            b = doc["classes"][cls]
            lines.append(
                f"{cls:14s}{b['n']:>7d}{b['wall_recorded_s']:>10.3f}s"
                f"{b['wall_replayed_s']:>12.3f}s{b['conflicts_recorded']:>10d}"
                f"{b['conflicts_replayed']:>12d}")
    if doc["drift"]:
        lines.append("")
        for d in doc["drift"]:
            lines.append(
                f"DRIFT {d['bomb']}/{d['tool']}[{d['index']}] "
                f"{d['digest'][:12]}: recorded {d['recorded']}, "
                f"replayed {d['replayed']}")
        lines.append(f"replay: {len(doc['drift'])} verdict(s) drifted")
    else:
        lines.append("replay: every verdict reproduced exactly (0 drift)")
    return "\n".join(lines)


# -- report ------------------------------------------------------------------

def _family(bomb: str | None) -> str:
    """Bomb family = the challenge prefix of the bomb id (``sa`` for
    ``sa_l1_array``, ``cf`` for ``cf_sha1``, ...)."""
    if not bomb:
        return "?"
    return bomb.split("_", 1)[0]


def _agg(table: dict, key: str, occ: dict) -> None:
    row = table.get(key)
    if row is None:
        row = table[key] = {"n": 0, "wall_s": 0.0, "conflicts": 0,
                            "sat": 0, "unsat": 0, "error": 0}
    row["n"] += 1
    row["wall_s"] += occ.get("wall_s", 0.0)
    row["conflicts"] += occ.get("conflicts", 0)
    status = occ.get("status")
    if status in ("sat", "unsat", "error"):
        row[status] += 1


def report_corpus(cache, top: int = 10) -> dict:
    """The workload analytics table over a captured corpus."""
    store = _store(cache)
    manifests = store.query_manifests()
    by_class: dict[str, dict] = {}
    by_kind: dict[str, dict] = {}
    by_family: dict[str, dict] = {}
    offenders: list[dict] = []
    total_wall = 0.0
    total_conflicts = 0
    queries = 0
    digests: set[str] = set()
    for manifest in manifests:
        bomb, tool = manifest.get("bomb"), manifest.get("tool")
        for occ in manifest.get("queries", []):
            queries += 1
            digests.add(occ["digest"])
            total_wall += occ.get("wall_s", 0.0)
            total_conflicts += occ.get("conflicts", 0)
            _agg(by_class, occ.get("class") or "?", occ)
            _agg(by_kind, occ.get("kind") or "?", occ)
            _agg(by_family, _family(bomb), occ)
            offenders.append({
                "bomb": bomb, "tool": tool, "pc": occ.get("pc"),
                "kind": occ.get("kind"), "class": occ.get("class"),
                "digest": occ["digest"], "status": occ.get("status"),
                "wall_s": occ.get("wall_s", 0.0),
                "conflicts": occ.get("conflicts", 0),
                "solver": occ.get("solver"),
            })
    # Every occurrence lands in exactly one named feature class, so the
    # attributed share is structurally 1.0 whenever any wall was spent;
    # the figure is still reported (and gated in CI) so a future class
    # regression is caught rather than assumed away.  Summed before the
    # per-row rounding below, so the fraction itself carries no
    # rounding noise.
    attributed = sum(row["wall_s"] for cls, row in by_class.items()
                     if cls != "?")
    for table in (by_class, by_kind, by_family):
        for row in table.values():
            row["wall_s"] = round(row["wall_s"], 6)
            row["wall_share"] = (round(row["wall_s"] / total_wall, 6)
                                 if total_wall else 0.0)
    top_wall = sorted(offenders, key=lambda o: -o["wall_s"])[:top]
    top_conflicts = sorted(offenders, key=lambda o: -o["conflicts"])[:top]
    return {
        "schema": SOLVERLAB_SCHEMA,
        "kind": "solverlab-report",
        "store": str(store.root),
        "cells": len(manifests),
        "queries": queries,
        "distinct": len(digests),
        "dedup_ratio": (round(1.0 - len(digests) / queries, 6)
                        if queries else 0.0),
        "wall_s": round(total_wall, 6),
        "conflicts": total_conflicts,
        "attributed_wall_fraction": (round(attributed / total_wall, 6)
                                     if total_wall else 1.0),
        "by_class": by_class,
        "by_kind": by_kind,
        "by_family": by_family,
        "top_wall": top_wall,
        "top_conflicts": top_conflicts,
    }


def _render_table(title: str, table: dict) -> list[str]:
    lines = [title,
             f"  {'key':16s}{'n':>7s}{'wall s':>10s}{'share':>8s}"
             f"{'conflicts':>11s}{'sat':>6s}{'unsat':>7s}{'err':>5s}"]
    for key in sorted(table, key=lambda k: -table[k]["wall_s"]):
        row = table[key]
        lines.append(
            f"  {key:16s}{row['n']:>7d}{row['wall_s']:>10.3f}"
            f"{row['wall_share']:>7.1%}{row['conflicts']:>11d}"
            f"{row['sat']:>6d}{row['unsat']:>7d}{row['error']:>5d}")
    return lines


def render_report(doc: dict, top: int = 10) -> str:
    lines = [
        f"corpus {doc['store']}: {doc['queries']} queries "
        f"({doc['distinct']} distinct, dedup ratio "
        f"{doc['dedup_ratio']:.1%}) over {doc['cells']} cell(s)",
        f"solve wall {doc['wall_s']:.3f}s, {doc['conflicts']} conflicts; "
        f"{doc['attributed_wall_fraction']:.1%} of wall attributed to "
        "named classes",
        "",
    ]
    lines.extend(_render_table("by feature class", doc["by_class"]))
    lines.append("")
    lines.extend(_render_table("by guard tag kind", doc["by_kind"]))
    lines.append("")
    lines.extend(_render_table("by bomb family", doc["by_family"]))
    for title, key in (("top offenders by wall", "top_wall"),
                       ("top offenders by conflicts", "top_conflicts")):
        rows = doc[key][:top]
        if not rows:
            continue
        lines.append("")
        lines.append(title)
        for o in rows:
            pc = f"0x{o['pc']:x}" if isinstance(o["pc"], int) else "-"
            lines.append(
                f"  {o['wall_s']:>9.4f}s {o['conflicts']:>8d}cfl "
                f"{(o['bomb'] or '?'):16s} {(o['tool'] or '?'):12s} "
                f"{pc:>10s} {(o['kind'] or '-'):10s} {o['class']:13s} "
                f"{o['status'] or '?'}")
    return "\n".join(lines)


# -- diff --------------------------------------------------------------------

def corpus_index(source) -> dict:
    """Normalize *source* into a diffable index.

    *source* may be a corpus directory (a store root — recorded
    verdicts/efforts are indexed) or a replay/report JSON file produced
    by ``solverlab replay --json`` (replayed verdicts/efforts).
    Returns ``{"label", "verdicts": {digest: status}, "classes":
    {class: {"n", "wall_s", "conflicts"}}}``.
    """
    path = Path(source)
    if path.is_dir():
        store = _store(source)
        verdicts: dict[str, str] = {}
        classes: dict[str, dict] = {}
        for manifest in store.query_manifests():
            for occ in manifest.get("queries", []):
                verdicts.setdefault(occ["digest"], occ.get("status"))
                bucket = classes.setdefault(
                    occ.get("class") or "?",
                    {"n": 0, "wall_s": 0.0, "conflicts": 0})
                bucket["n"] += 1
                bucket["wall_s"] += occ.get("wall_s", 0.0)
                bucket["conflicts"] += occ.get("conflicts", 0)
        return {"label": str(path), "verdicts": verdicts, "classes": classes}
    doc = json.loads(path.read_text(encoding="utf-8"))
    if doc.get("kind") != "solverlab-replay":
        raise ValueError(
            f"{source}: not a corpus directory or a solverlab replay "
            f"document (kind={doc.get('kind')!r})")
    classes = {}
    for cls, row in doc.get("classes", {}).items():
        classes[cls] = {
            "n": row.get("n", 0),
            "wall_s": row.get("wall_replayed_s", row.get("wall_s", 0.0)),
            "conflicts": row.get("conflicts_replayed",
                                 row.get("conflicts", 0)),
        }
    return {"label": str(path), "verdicts": dict(doc.get("verdicts", {})),
            "classes": classes}


def diff_indices(a: dict, b: dict) -> dict:
    """Compare two corpus/replay indices.

    ``drift`` lists digests present in both whose verdicts differ — the
    hard failure the CLI exits 1 on.  ``classes`` carries per-class
    effort deltas for classes present in both sides (b relative to a).
    """
    common = set(a["verdicts"]) & set(b["verdicts"])
    drift = [{"digest": d, "a": a["verdicts"][d], "b": b["verdicts"][d]}
             for d in sorted(common)
             if a["verdicts"][d] != b["verdicts"][d]]
    classes = {}
    for cls in sorted(set(a["classes"]) & set(b["classes"])):
        ra, rb = a["classes"][cls], b["classes"][cls]
        wall_a, wall_b = ra["wall_s"], rb["wall_s"]
        classes[cls] = {
            "wall_a_s": round(wall_a, 6),
            "wall_b_s": round(wall_b, 6),
            "wall_delta_pct": (round((wall_b - wall_a) / wall_a, 6)
                               if wall_a else None),
            "conflicts_a": ra["conflicts"],
            "conflicts_b": rb["conflicts"],
        }
    return {
        "schema": SOLVERLAB_SCHEMA,
        "kind": "solverlab-diff",
        "a": a["label"],
        "b": b["label"],
        "common": len(common),
        "only_a": len(set(a["verdicts"]) - common),
        "only_b": len(set(b["verdicts"]) - common),
        "drift": drift,
        "classes": classes,
    }


def render_diff(doc: dict) -> str:
    lines = [
        f"a: {doc['a']}",
        f"b: {doc['b']}",
        f"{doc['common']} common queries, {doc['only_a']} only in a, "
        f"{doc['only_b']} only in b",
    ]
    if doc["classes"]:
        lines.append("")
        lines.append(f"{'class':14s}{'wall a':>10s}{'wall b':>10s}"
                     f"{'delta':>9s}{'cfl a':>9s}{'cfl b':>9s}")
        for cls, row in doc["classes"].items():
            delta = (f"{row['wall_delta_pct']:+.1%}"
                     if row["wall_delta_pct"] is not None else "-")
            lines.append(
                f"{cls:14s}{row['wall_a_s']:>9.3f}s{row['wall_b_s']:>9.3f}s"
                f"{delta:>9s}{row['conflicts_a']:>9d}{row['conflicts_b']:>9d}")
    if doc["drift"]:
        lines.append("")
        for d in doc["drift"]:
            lines.append(f"DRIFT {d['digest'][:12]}: a={d['a']} b={d['b']}")
        lines.append(f"diff: {len(doc['drift'])} verdict(s) drifted")
    else:
        lines.append("diff: no verdict drift")
    return "\n".join(lines)
