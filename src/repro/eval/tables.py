"""Text renderings of the paper's tables.

``render_table1`` regenerates Table I (challenge -> error stages) from
the dataset metadata; ``render_table2`` renders an evaluation matrix in
the paper's layout, annotating each cell with agreement against the
paper's reported label.
"""

from __future__ import annotations

from ..bombs import CHALLENGE_ERROR_STAGES, TABLE2_BOMB_IDS, TOOL_COLUMNS, get_bomb
from ..errors import ErrorStage
from .harness import Table2Result

_STAGES = (ErrorStage.ES0, ErrorStage.ES1, ErrorStage.ES2, ErrorStage.ES3)


def render_table1() -> str:
    """Table I: challenges and the error stages they may incur."""
    lines = []
    header = f"{'Challenge':34s}" + "".join(f"{s.value:>6s}" for s in _STAGES)
    lines.append(header)
    lines.append("-" * len(header))
    for challenge, stages in CHALLENGE_ERROR_STAGES.items():
        marks = "".join(
            f"{'x' if s in stages else '-':>6s}" for s in _STAGES
        )
        lines.append(f"{challenge:34s}{marks}")
    return "\n".join(lines)


def render_table2(result: Table2Result) -> str:
    """Table II: the 22-bomb x 4-tool outcome matrix, paper-vs-measured."""
    lines = []
    header = f"{'Sample Case':52s}" + "".join(f"{t:>14s}" for t in TOOL_COLUMNS)
    lines.append(header)
    lines.append("-" * len(header))
    for bomb_id in TABLE2_BOMB_IDS:
        bomb = get_bomb(bomb_id)
        row = result.row(bomb_id)
        cells = []
        for tool in TOOL_COLUMNS:
            cell = row.get(tool)
            if cell is None:
                cells.append(f"{'?':>14s}")
                continue
            mark = "" if cell.matches_paper else f"(paper {cell.expected})"
            cells.append(f"{cell.label + mark:>14s}")
        lines.append(f"{bomb.case[:52]:52s}" + "".join(cells))
    counts = result.solved_counts()
    lines.append("-" * len(header))
    lines.append(
        "solved: "
        + ", ".join(f"{t}={counts.get(t, 0)}" for t in TOOL_COLUMNS)
        + f"; angr family total={result.solved_by_angr_family()} "
        f"(paper: bapx=2, tritonx=1, angr family=4)"
    )
    match, total = result.agreement()
    lines.append(f"paper agreement: {match}/{total} cells")
    return "\n".join(lines)


def verify_table1_against_observations(result: Table2Result) -> list[str]:
    """Cross-check: observed accuracy-challenge error stages must be
    within Table I's declared stages, modulo the tool-specific failure
    modes the paper's own Table II exhibits: lifting deficiencies (its
    Es1 cells on the FP rows), propagation breakdowns (its Es2 cells on
    the Es3-only contextual/jump rows), aborts and partial successes.
    What remains flaggable is an Es0 on a non-declaration challenge —
    which neither the paper nor this reproduction ever observes."""
    violations = []
    allowed_extra = {ErrorStage.OK, ErrorStage.E, ErrorStage.P,
                     ErrorStage.ES1, ErrorStage.ES2}
    for (bomb_id, tool), cell in result.cells.items():
        bomb = get_bomb(bomb_id)
        if bomb.scalability:
            continue
        declared = CHALLENGE_ERROR_STAGES.get(bomb.challenge, set())
        if cell.outcome not in declared | allowed_extra:
            violations.append(
                f"{bomb_id}/{tool}: observed {cell.label} outside Table I "
                f"stages for {bomb.challenge}"
            )
    return violations
