"""The paper's Figure 3 experiment and the dataset-size statistics.

Figure 3: concolic-executing the same program with and without a
``printf`` of the tainted value, and counting the instructions that
propagate symbolic data plus the extracted constraints.  The paper
reports 5 tainted instructions without printing and 66 with it (+61),
with extra conditional constraints that invalidate solutions like 0x32.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .. import obs
from ..bombs import dataset_sizes, get_bomb
from ..trace.taint import TaintSummary, taint_summary


@dataclass
class Figure3Result:
    """Taint counts for the printf-off / printf-on program pair."""

    off: TaintSummary
    on: TaintSummary

    @property
    def extra_tainted(self) -> int:
        return self.on.tainted_instructions - self.off.tainted_instructions

    @property
    def extra_branches(self) -> int:
        return self.on.symbolic_branches - self.off.symbolic_branches

    def render(self) -> str:
        return (
            "Figure 3 (external-call constraint blow-up)\n"
            f"  printing disabled: {self.off.tainted_instructions} tainted "
            f"instructions, {self.off.symbolic_branches} symbolic branches, "
            f"{self.off.model_nodes} model nodes\n"
            f"  printing enabled:  {self.on.tainted_instructions} tainted "
            f"instructions, {self.on.symbolic_branches} symbolic branches, "
            f"{self.on.model_nodes} model nodes\n"
            f"  extra tainted instructions: +{self.extra_tainted} "
            f"(paper: +61), extra symbolic branches: +{self.extra_branches}"
        )


def run_figure3(argv_value: bytes = b"77") -> Figure3Result:
    """Run the Figure 3 measurement on the program pair."""
    results = {}
    for variant in ("fig3_printf_off", "fig3_printf_on"):
        bomb = get_bomb(variant)
        with obs.span("figure3", variant=variant):
            results[variant] = taint_summary(
                bomb.image, [variant.encode(), argv_value], bomb.base_env()
            )
    return Figure3Result(off=results["fig3_printf_off"],
                         on=results["fig3_printf_on"])


@dataclass
class DatasetStats:
    """Section V.A's binary-size statistics."""

    sizes: dict[str, int]

    @property
    def minimum(self) -> int:
        return min(self.sizes.values())

    @property
    def maximum(self) -> int:
        return max(self.sizes.values())

    @property
    def median(self) -> float:
        return statistics.median(self.sizes.values())

    def render(self) -> str:
        return (
            f"dataset: {len(self.sizes)} binaries, sizes "
            f"[{self.minimum} B - {self.maximum} B], median {self.median:.0f} B "
            f"(paper: [10 KB - 25 KB], median 14 KB)"
        )


def run_dataset_stats() -> DatasetStats:
    return DatasetStats(dataset_sizes())
