"""Markdown report generation for evaluation runs.

``render_markdown_report`` turns a :class:`~repro.eval.harness.Table2Result`
(plus optional Figure-3 / dataset / negative-bomb results) into a
self-contained markdown document — the shape EXPERIMENTS.md follows —
so a full re-run can regenerate the paper-vs-measured record in one
call:

    from repro.eval import run_table2
    from repro.eval.report import render_markdown_report
    print(render_markdown_report(run_table2()))
"""

from __future__ import annotations

from ..bombs import TABLE2_BOMB_IDS, TOOL_COLUMNS, get_bomb
from ..errors import ErrorStage
from .figures import DatasetStats, Figure3Result
from .harness import Table2Result


def _cell_text(cell) -> str:
    if cell is None:
        return "?"
    mark = " ✓" if cell.matches_paper else f" ✗ (paper {cell.expected})"
    return f"{cell.label}{mark}"


def render_markdown_report(
    table2: Table2Result,
    figure3: Figure3Result | None = None,
    dataset: DatasetStats | None = None,
    negative: dict | None = None,
    title: str = "Evaluation report",
) -> str:
    """Render a markdown paper-vs-measured report."""
    lines: list[str] = [f"# {title}", ""]

    lines.append("## Table II")
    lines.append("")
    header = "| Sample case | " + " | ".join(TOOL_COLUMNS) + " |"
    lines.append(header)
    lines.append("|" + "---|" * (len(TOOL_COLUMNS) + 1))
    for bomb_id in TABLE2_BOMB_IDS:
        bomb = get_bomb(bomb_id)
        row = table2.row(bomb_id)
        cells = " | ".join(_cell_text(row.get(t)) for t in TOOL_COLUMNS)
        lines.append(f"| {bomb.case} | {cells} |")
    lines.append("")

    counts = table2.solved_counts()
    match, total = table2.agreement()
    lines.append(
        "Solved: "
        + ", ".join(f"{t}={counts.get(t, 0)}" for t in TOOL_COLUMNS)
        + f"; Angr family {table2.solved_by_angr_family()} "
        "(paper: BAP 2, Triton 1, Angr family 4)."
    )
    lines.append(f"Cell agreement with the paper: **{match}/{total}**.")
    lines.append("")

    # Per-stage distribution — a compact health check of the matrix.
    distribution: dict[str, int] = {}
    for cell in table2.cells.values():
        distribution[cell.label] = distribution.get(cell.label, 0) + 1
    lines.append("Outcome distribution: "
                 + ", ".join(f"{k}×{v}" for k, v in sorted(distribution.items())))
    lines.append("")

    if figure3 is not None:
        lines.append("## Figure 3")
        lines.append("")
        lines.append("```")
        lines.append(figure3.render())
        lines.append("```")
        lines.append("")

    if dataset is not None:
        lines.append("## Dataset (§V.A)")
        lines.append("")
        lines.append(dataset.render())
        lines.append("")

    if negative is not None:
        lines.append("## Negative bomb (§V.C)")
        lines.append("")
        for tool, report in negative.items():
            verdict = ("FALSE POSITIVE" if report.false_positive
                       else "claimed" if report.goal_claimed else "not claimed")
            lines.append(f"* `{tool}`: {verdict}")
        lines.append("")

    return "\n".join(lines)


def unsolved_cases(table2: Table2Result) -> list[str]:
    """Bombs no tool solved — the paper's 'non-trivial challenge' core."""
    out = []
    for bomb_id in TABLE2_BOMB_IDS:
        row = table2.row(bomb_id)
        if row and all(c.outcome is not ErrorStage.OK for c in row.values()):
            out.append(bomb_id)
    return out
