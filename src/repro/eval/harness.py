"""Evaluation harness: runs tools over the bomb dataset (Section V).

``run_table2`` produces the full 22-bomb x 4-tool outcome matrix and
compares each cell against the paper's reported label; ``run_cell``
evaluates a single (bomb, tool) pair.  Results carry both the observed
outcome and the agreement with the paper, so EXPERIMENTS.md and the
benchmark suite can report paper-vs-measured per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bombs import TABLE2_BOMB_IDS, TOOL_COLUMNS, all_bombs, get_bomb
from ..bombs.suite import Bomb
from ..errors import ErrorStage
from ..tools.api import ToolReport, get_tool
from .classify import classify


@dataclass
class CellResult:
    """One (bomb, tool) cell of Table II."""

    bomb_id: str
    tool: str
    outcome: ErrorStage
    expected: str | None
    report: ToolReport

    @property
    def label(self) -> str:
        return str(self.outcome)

    @property
    def matches_paper(self) -> bool | None:
        if self.expected is None:
            return None
        return self.label == self.expected


@dataclass
class Table2Result:
    """The full evaluation matrix."""

    cells: dict[tuple[str, str], CellResult] = field(default_factory=dict)

    def add(self, cell: CellResult) -> None:
        self.cells[(cell.bomb_id, cell.tool)] = cell

    def row(self, bomb_id: str) -> dict[str, CellResult]:
        return {t: c for (b, t), c in self.cells.items() if b == bomb_id}

    def solved_counts(self) -> dict[str, int]:
        counts = {tool: 0 for tool in TOOL_COLUMNS}
        for (bomb, tool), cell in self.cells.items():
            if cell.outcome is ErrorStage.OK:
                counts[tool] = counts.get(tool, 0) + 1
        return counts

    def solved_by_angr_family(self) -> int:
        """The paper's headline: bombs solved by Angr in either mode."""
        solved = set()
        for (bomb, tool), cell in self.cells.items():
            if tool in ("angrx", "angrx_nolib") and cell.outcome is ErrorStage.OK:
                solved.add(bomb)
        return len(solved)

    def agreement(self) -> tuple[int, int]:
        """(matching cells, total cells with a paper label)."""
        labelled = [c for c in self.cells.values() if c.expected is not None]
        return sum(1 for c in labelled if c.matches_paper), len(labelled)


def run_cell(bomb: Bomb, tool_name: str) -> CellResult:
    """Evaluate one (bomb, tool) pair."""
    tool = get_tool(tool_name)
    report = tool.analyze_bomb(bomb)
    return CellResult(
        bomb_id=bomb.bomb_id,
        tool=tool_name,
        outcome=classify(report),
        expected=bomb.expected.get(tool_name),
        report=report,
    )


def run_table2(
    bomb_ids: tuple[str, ...] = TABLE2_BOMB_IDS,
    tools: tuple[str, ...] = TOOL_COLUMNS,
    verbose: bool = False,
) -> Table2Result:
    """Run the full (or a sliced) Table II evaluation."""
    result = Table2Result()
    for bomb_id in bomb_ids:
        bomb = get_bomb(bomb_id)
        for tool_name in tools:
            cell = run_cell(bomb, tool_name)
            result.add(cell)
            if verbose:
                mark = {True: "=", False: "!", None: " "}[cell.matches_paper]
                print(
                    f"{bomb_id:20s} {tool_name:12s} {cell.label:4s} "
                    f"(paper {cell.expected or '-':4s}) {mark} "
                    f"{cell.report.elapsed:6.1f}s"
                )
    return result


def run_negative_bomb(tools: tuple[str, ...] = TOOL_COLUMNS) -> dict[str, ToolReport]:
    """Section V.C's negative bomb: who reports the impossible as reachable?"""
    bomb = get_bomb("neg_square")
    return {name: get_tool(name).analyze_bomb(bomb) for name in tools}
