"""Evaluation harness: runs tools over the bomb dataset (Section V).

``run_table2`` produces the full 22-bomb x 4-tool outcome matrix and
compares each cell against the paper's reported label; ``run_cell``
evaluates a single (bomb, tool) pair.  Results carry both the observed
outcome and the agreement with the paper, so EXPERIMENTS.md and the
benchmark suite can report paper-vs-measured per cell.

Cell execution can delegate to the campaign service
(:mod:`repro.service`): ``run_cell(..., timeout=)`` runs the cell in a
killable worker process so a stuck tool maps to ``E`` instead of
hanging the harness, and ``run_table2(..., cache=, timeout=)`` routes
cells through the content-addressed result store and the fault-tolerant
executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..obs import profile, provenance
from ..bombs import TABLE2_BOMB_IDS, TOOL_COLUMNS, all_bombs, get_bomb
from ..bombs.suite import Bomb
from ..errors import ErrorStage
from ..tools.api import ToolReport, get_tool
from .classify import classify, describe_outcome, primary_diagnostic


@dataclass
class CellResult:
    """One (bomb, tool) cell of Table II."""

    bomb_id: str
    tool: str
    outcome: ErrorStage
    expected: str | None
    report: ToolReport
    #: Wall seconds per pipeline stage (trace/lift/extract/solve/replay),
    #: summed over the cell; empty when no recorder was installed.
    timings: dict[str, float] = field(default_factory=dict)
    #: Exclusive wall seconds per stage — each stage's wall minus the
    #: time spent in nested child spans (``solve`` nests inside
    #: ``explore``), so the values sum to at most the cell wall.
    timings_self: dict[str, float] = field(default_factory=dict)
    #: The root-cause diagnostic behind a non-OK label, as text.
    diagnostic: str | None = None
    #: True when the ``E`` label was synthesized by the campaign service
    #: (wall-clock timeout, worker crashed on every retry) rather than
    #: observed from the tool itself.  Such cells depend on the run's
    #: timeout/retry settings and are never written to the result cache.
    infra_failure: bool = False

    @property
    def label(self) -> str:
        return str(self.outcome)

    @property
    def matches_paper(self) -> bool | None:
        if self.expected is None:
            return None
        return self.label == self.expected

    @property
    def diagnosis(self) -> str:
        """Stage-aware one-line reading of the cell (derived, so cached
        cells from older store schemas pick it up on decode)."""
        return describe_outcome(self.outcome, self.diagnostic)

    def to_json(self) -> dict:
        """JSON-serializable summary for ``repro table2 --json``."""
        return {
            "bomb": self.bomb_id,
            "tool": self.tool,
            "outcome": self.label,
            "expected": self.expected,
            "matches_paper": self.matches_paper,
            "elapsed_s": round(self.report.elapsed, 6),
            "timings_s": {k: round(v, 6) for k, v in sorted(self.timings.items())},
            "timings_self_s": {k: round(v, 6)
                               for k, v in sorted(self.timings_self.items())},
            "diagnostic": self.diagnostic,
            "diagnosis": self.diagnosis,
        }


@dataclass
class Table2Result:
    """The full evaluation matrix."""

    cells: dict[tuple[str, str], CellResult] = field(default_factory=dict)

    def add(self, cell: CellResult) -> None:
        self.cells[(cell.bomb_id, cell.tool)] = cell

    def row(self, bomb_id: str) -> dict[str, CellResult]:
        return {t: c for (b, t), c in self.cells.items() if b == bomb_id}

    def solved_counts(self) -> dict[str, int]:
        """Solved-bomb count per tool.

        Every tool that appears in the matrix gets an entry, even at
        zero — previously a non-``TOOL_COLUMNS`` tool (e.g. ``rexx``)
        was dropped from the result unless it solved at least one bomb.
        """
        counts = {tool: 0 for tool in TOOL_COLUMNS}
        for (bomb, tool) in self.cells:
            counts.setdefault(tool, 0)
        for (bomb, tool), cell in self.cells.items():
            if cell.outcome is ErrorStage.OK:
                counts[tool] += 1
        return counts

    def solved_by_angr_family(self) -> int:
        """The paper's headline: bombs solved by Angr in either mode."""
        solved = set()
        for (bomb, tool), cell in self.cells.items():
            if tool in ("angrx", "angrx_nolib") and cell.outcome is ErrorStage.OK:
                solved.add(bomb)
        return len(solved)

    def agreement(self) -> tuple[int, int]:
        """(matching cells, total cells with a paper label)."""
        labelled = [c for c in self.cells.values() if c.expected is not None]
        return sum(1 for c in labelled if c.matches_paper), len(labelled)

    def mismatches(self) -> list[CellResult]:
        """Labelled cells whose observed outcome differs from the paper
        (the ``table2 --check`` CI gate), in matrix order."""
        return [cell for _, cell in sorted(self.cells.items())
                if cell.matches_paper is False]

    def to_json(self) -> dict:
        """JSON-serializable form for ``repro table2 --json``."""
        matched, labelled = self.agreement()
        return {
            "cells": [
                cell.to_json()
                for _, cell in sorted(self.cells.items())
            ],
            "solved_counts": self.solved_counts(),
            "agreement": {"matched": matched, "labelled": labelled},
        }


def run_cell(bomb: Bomb, tool_name: str,
             timeout: float | None = None) -> CellResult:
    """Evaluate one (bomb, tool) pair.

    With *timeout* (wall-clock seconds) the cell runs in a killable
    worker process via the campaign service: an overrun is classified
    ``E`` with a ``resource-exhausted`` diagnostic instead of hanging
    the caller.
    """
    if timeout is not None:
        from ..service.executor import run_cell_isolated

        return run_cell_isolated(bomb, tool_name, timeout)
    tool = get_tool(tool_name)
    with obs.span("cell", bomb=bomb.bomb_id, tool=tool_name) as sp, \
            profile.cell(bomb.bomb_id, tool_name):
        report = tool.analyze_bomb(bomb)
        if report.solved and report.solution is not None:
            # Re-validate the accepted solution concretely, so every
            # solved cell carries an explicit replay stage (trace-family
            # engines validate inline while tracing and would otherwise
            # show no replay time).
            with obs.span("replay", bomb=bomb.bomb_id, tool=tool_name) as rp:
                confirmed = bomb.triggers(report.solution, report.solution_env)
                rp.set("validated", confirmed)
        outcome = classify(report)
        root = primary_diagnostic(report, outcome, provenance.active())
        sp.set("outcome", str(outcome))
        sp.set("expected", bomb.expected.get(tool_name))
        if root is not None:
            sp.set("diagnostic", str(root))
        timings = dict(sp.stage_totals)
        timings_self = dict(sp.stage_self_totals)
    return CellResult(
        bomb_id=bomb.bomb_id,
        tool=tool_name,
        outcome=outcome,
        expected=bomb.expected.get(tool_name),
        report=report,
        timings=timings,
        timings_self=timings_self,
        diagnostic=str(root) if root is not None else None,
    )


def _print_cell(cell: CellResult) -> None:
    mark = {True: "=", False: "!", None: " "}[cell.matches_paper]
    print(
        f"{cell.bomb_id:20s} {cell.tool:12s} {cell.label:4s} "
        f"(paper {cell.expected or '-':4s}) {mark} "
        f"{cell.report.elapsed:6.1f}s"
    )


def _cell_worker(bomb_id: str, tool_name: str,
                 metrics_path: str | None,
                 trace_ctx: tuple | None = None) -> CellResult:
    """Evaluate one cell in a worker process.

    Any recorder inherited across ``fork`` is dropped first — its sinks
    write to the parent's file descriptors.  When the parent session has
    a recorder, the worker records to its own JSONL stream (with raw
    histogram values) at *metrics_path*; the parent absorbs it after the
    cell completes, so merged stage timings stay exact.

    *trace_ctx* is ``(trace_id, parent_span_id, profiling)`` from the
    parent: the worker recorder joins the parent's trace (its top span
    parented under the harness span) and mirrors the parent's
    attribution-profiler state.
    """
    obs.uninstall()
    profile.uninstall()
    from ..smt import querylog
    querylog.uninstall()
    bomb = get_bomb(bomb_id)
    if metrics_path is None:
        return run_cell(bomb, tool_name)
    trace_id, parent_span_id, profiling = trace_ctx or (None, None, False)
    recorder = obs.Recorder(sinks=[obs.JsonlSink(metrics_path)],
                            hist_values=True, trace_id=trace_id,
                            parent_span_id=parent_span_id)
    with obs.recording(recorder):
        with profile.profiling(profile.Profiler() if profiling else None):
            return run_cell(bomb, tool_name)


def _run_table2_parallel(bomb_ids: tuple[str, ...], tools: tuple[str, ...],
                         verbose: bool, jobs: int) -> Table2Result:
    """Fan the (bomb, tool) cell matrix out over worker processes.

    Cells are independent, so only the fan-out/merge order matters for
    reproducibility: results are collected and reported in submission
    order, which makes the outcome matrix (and the rendered/JSON output)
    byte-identical to a serial run.
    """
    import shutil
    import tempfile
    from concurrent.futures import ProcessPoolExecutor
    from pathlib import Path

    from ..obs import read_events

    recorder = obs.active()
    pairs = [(b, t) for b in bomb_ids for t in tools]
    tmpdir = tempfile.mkdtemp(prefix="repro-table2-") if recorder else None
    result = Table2Result()
    try:
        with obs.span("table2", jobs=jobs, cells=len(pairs)):
            trace_ctx = None
            if recorder is not None:
                # Stitch: workers join this trace, their top spans
                # parented under the open "table2" span.
                trace_ctx = (recorder.trace_id, recorder.current_span_id(),
                             profile.active() is not None)
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pairs))
            ) as pool:
                futures = []
                for i, (bomb_id, tool_name) in enumerate(pairs):
                    path = (str(Path(tmpdir) / f"cell-{i}.jsonl")
                            if tmpdir else None)
                    futures.append(
                        (path, pool.submit(_cell_worker, bomb_id,
                                           tool_name, path, trace_ctx))
                    )
                for path, future in futures:
                    cell = future.result()
                    result.add(cell)
                    obs.count("eval.cells_merged")
                    if path is not None:
                        recorder.absorb(read_events(path))
                    if verbose:
                        _print_cell(cell)
    finally:
        if tmpdir is not None:
            shutil.rmtree(tmpdir, ignore_errors=True)
    return result


def run_table2(
    bomb_ids: tuple[str, ...] = TABLE2_BOMB_IDS,
    tools: tuple[str, ...] = TOOL_COLUMNS,
    verbose: bool = False,
    jobs: int | None = None,
    timeout: float | None = None,
    cache=None,
) -> Table2Result:
    """Run the full (or a sliced) Table II evaluation.

    *jobs* > 1 evaluates the independent (bomb, tool) cells on a
    process pool; the default serial path is byte-identical to previous
    releases, and a parallel run produces the same outcome matrix.
    ``jobs=0`` auto-sizes the pool to the host's usable CPUs
    (:func:`repro.service.fleet.auto_jobs` — the process CPU count
    where the platform reports one, else the scheduling affinity mask,
    else ``os.cpu_count()``).

    *cache* (a :class:`repro.service.ResultStore` or a directory path)
    serves unchanged cells from the content-addressed store and stores
    fresh ones; *timeout* caps each cell's wall clock, mapping overruns
    to ``E``.  Either option routes parallel runs through the campaign
    service's fault-tolerant executor instead of the plain process
    pool.
    """
    store = None
    if cache is not None:
        from ..fuzz import corpus as fuzz_corpus
        from ..ir import superblock
        from ..service.store import ResultStore
        from ..smt import querylog

        store = cache if isinstance(cache, ResultStore) else ResultStore(cache)
        # Warm campaigns also skip lifting: caches created from here on
        # preload from (and persist into) the store's lift/ tree.
        superblock.attach_store(store)
        # Fuzz campaigns persist under corpus/ the same way: an identical
        # campaign restores its verdict + corpus with zero executions.
        fuzz_corpus.attach_store(store)
        # Tools whose policy sets ``query_log`` persist captured solver
        # queries under smtlog/ the same way (see repro.smt.querylog).
        querylog.attach_store(store)
    if jobs == 0:
        from ..service.fleet import auto_jobs

        jobs = auto_jobs()
    if jobs is not None and jobs > 1:
        if store is None and timeout is None:
            return _run_table2_parallel(tuple(bomb_ids), tuple(tools),
                                        verbose, jobs)
        from ..service.executor import execute_matrix

        return execute_matrix(tuple(bomb_ids), tuple(tools), jobs=jobs,
                              timeout=timeout, store=store, verbose=verbose)
    from ..service.fingerprint import cell_key

    result = Table2Result()
    for bomb_id in bomb_ids:
        bomb = get_bomb(bomb_id)
        for tool_name in tools:
            key = cell_key(bomb, tool_name) if store is not None else None
            cell = store.get(key, bomb) if store is not None else None
            if cell is None:
                cell = run_cell(bomb, tool_name, timeout=timeout)
                if store is not None and not cell.infra_failure:
                    store.put(key, cell)
            result.add(cell)
            if verbose:
                _print_cell(cell)
    return result


def run_negative_bomb(tools: tuple[str, ...] = TOOL_COLUMNS) -> dict[str, ToolReport]:
    """Section V.C's negative bomb: who reports the impossible as reachable?"""
    bomb = get_bomb("neg_square")
    return {name: get_tool(name).analyze_bomb(bomb) for name in tools}
