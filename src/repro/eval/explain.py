"""Per-cell failure forensics: why does a Table II cell say what it says?

:func:`explain_cell` re-runs one (bomb, tool) pair with a provenance
collector and an observability recorder installed, then condenses the
three evidence streams into one :class:`CellDiagnosis`:

* the tainted-instruction chain (where symbolic data flowed),
* introduce/drop events (where it appeared and where it was lost —
  every engine diagnostic is mirrored here, so a non-solved cell is
  guaranteed at least one evidence item),
* minimized UNSAT cores (which guard pinned a refused negation),
* the per-stage wall-clock breakdown from the ``cell`` span.

Diagnoses serialize to JSON, render as markdown, and can be stored
next to the campaign result store
(:meth:`repro.service.store.ResultStore.put_diagnosis`), so a campaign
box accumulates an explanation per cell alongside each cached result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs
from ..obs import provenance
from ..bombs.suite import Bomb
from ..errors import ErrorStage
from .classify import describe_outcome
from .harness import CellResult, run_cell

#: Cap on taint-chain entries carried in one diagnosis; a crypto bomb
#: taints tens of thousands of instruction instances and the first links
#: of the chain are the diagnostic ones.
MAX_TAINT_EVIDENCE = 24


@dataclass
class EvidenceItem:
    """One piece of evidence behind a cell's label."""

    kind: str  #: "taint" | "introduce" | "drop" | "unsat-core"
    detail: str
    pc: int | None = None
    count: int = 1

    def to_json(self) -> dict:
        out = {"kind": self.kind, "detail": self.detail, "count": self.count}
        if self.pc is not None:
            out["pc"] = self.pc
        return out

    @classmethod
    def from_json(cls, data: dict) -> "EvidenceItem":
        return cls(kind=data["kind"], detail=data["detail"],
                   pc=data.get("pc"), count=data.get("count", 1))

    def render(self) -> str:
        loc = f" @0x{self.pc:x}" if self.pc is not None else ""
        times = f" (x{self.count})" if self.count > 1 else ""
        return f"[{self.kind}]{loc} {self.detail}{times}"


@dataclass
class CellDiagnosis:
    """Structured forensic report for one Table II cell."""

    bomb_id: str
    tool: str
    outcome: str
    expected: str | None
    summary: str
    evidence: list[EvidenceItem] = field(default_factory=list)
    #: distinct tainted PCs / tainted instruction executions, the
    #: Figure 3 pair of numbers for this cell.
    taint_pcs: int = 0
    taint_instances: int = 0
    #: wall seconds per pipeline stage (from the cell span).
    timings_s: dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    @property
    def solved(self) -> bool:
        return self.outcome == "ok"

    def to_json(self) -> dict:
        return {
            "bomb": self.bomb_id,
            "tool": self.tool,
            "outcome": self.outcome,
            "expected": self.expected,
            "summary": self.summary,
            "evidence": [e.to_json() for e in self.evidence],
            "taint_pcs": self.taint_pcs,
            "taint_instances": self.taint_instances,
            "timings_s": {k: round(v, 6)
                          for k, v in sorted(self.timings_s.items())},
            "elapsed_s": round(self.elapsed_s, 6),
        }

    @classmethod
    def from_json(cls, data: dict) -> "CellDiagnosis":
        return cls(
            bomb_id=data["bomb"],
            tool=data["tool"],
            outcome=data["outcome"],
            expected=data.get("expected"),
            summary=data.get("summary", ""),
            evidence=[EvidenceItem.from_json(e)
                      for e in data.get("evidence", [])],
            taint_pcs=data.get("taint_pcs", 0),
            taint_instances=data.get("taint_instances", 0),
            timings_s=dict(data.get("timings_s", {})),
            elapsed_s=data.get("elapsed_s", 0.0),
        )

    def render(self) -> str:
        """Markdown-ish report for terminals and CI logs."""
        paper = f" (paper: {self.expected})" if self.expected else ""
        lines = [
            f"## {self.bomb_id} x {self.tool}: {self.outcome}{paper}",
            "",
            self.summary,
            "",
            f"- tainted instructions: {self.taint_instances} executions "
            f"over {self.taint_pcs} distinct PCs",
            f"- wall: {self.elapsed_s:.3f}s "
            + " ".join(f"{k}={v:.3f}s"
                       for k, v in sorted(self.timings_s.items())),
        ]
        if self.evidence:
            lines.append("")
            lines.append("Evidence:")
            for item in self.evidence:
                lines.append(f"- {item.render()}")
        return "\n".join(lines)


def diagnose(cell: CellResult,
             prov: provenance.ProvenanceCollector) -> CellDiagnosis:
    """Condense one cell result + its provenance into a diagnosis."""
    evidence: list[EvidenceItem] = []
    seen: dict[tuple, EvidenceItem] = {}

    def add(kind: str, detail: str, pc: int | None) -> None:
        # Identical events recur once per concolic round; aggregate
        # them into one item with a count, first-seen order.
        prior = seen.get((kind, detail, pc))
        if prior is not None:
            prior.count += 1
            return
        item = EvidenceItem(kind, detail, pc)
        seen[(kind, detail, pc)] = item
        evidence.append(item)

    for event in prov.events:
        if event.kind == "introduce":
            add("introduce", event.detail, event.pc)
    # Drops first when they match the classified stage (root cause
    # first), then the remaining drops in emission order.
    outcome = cell.label
    drops = prov.drops
    for matching in (True, False):
        for event in drops:
            if (event.stage == outcome) is not matching:
                continue
            cause = f"{event.cause}: {event.detail}" if event.cause else event.detail
            stage = f" [{event.stage}]" if event.stage else ""
            add("drop", cause + stage, event.pc)
    for core in prov.cores:
        for member in core.members:
            add("unsat-core",
                f"{member.kind} constraint pins the branch: {member.expr}",
                member.pc)
    for record in prov.chain()[:MAX_TAINT_EVIDENCE]:
        evidence.append(EvidenceItem(
            "taint", f"{record.op} carries symbolic data "
            f"(first at trace step {record.first_index})",
            record.pc, record.hits))

    return CellDiagnosis(
        bomb_id=cell.bomb_id,
        tool=cell.tool,
        outcome=outcome,
        expected=cell.expected,
        summary=describe_outcome(cell.outcome, cell.diagnostic),
        evidence=evidence,
        taint_pcs=len(prov.taint),
        taint_instances=prov.instances,
        timings_s=dict(cell.timings),
        elapsed_s=cell.report.elapsed,
    )


def explain_cell(bomb: Bomb, tool_name: str) -> CellDiagnosis:
    """Run one cell with forensics on and return its diagnosis.

    Runs in-process (no worker isolation): the provenance collector is
    process-global state, and explain exists to observe, not to guard
    against hangs.  An obs recorder is installed if the caller has
    none, so the stage wall breakdown is always populated.
    """
    import contextlib

    with contextlib.ExitStack() as stack:
        if obs.active() is None:
            stack.enter_context(obs.recording(obs.Recorder()))
        with provenance.collecting() as prov:
            cell = run_cell(bomb, tool_name)
    return diagnose(cell, prov)


def explain_matrix(bomb_ids, tools, store=None,
                   verbose: bool = False) -> list[CellDiagnosis]:
    """Diagnose every cell of a (sliced) Table II matrix.

    Each cell gets its own collector, so evidence never bleeds across
    cells.  With *store* (a :class:`repro.service.store.ResultStore`),
    every diagnosis is persisted next to the cached cell results.
    """
    from ..bombs import get_bomb

    diagnoses = []
    for bomb_id in bomb_ids:
        bomb = get_bomb(bomb_id)
        for tool_name in tools:
            with obs.span("explain", bomb=bomb_id, tool=tool_name):
                diag = explain_cell(bomb, tool_name)
            diagnoses.append(diag)
            if store is not None:
                from ..service.fingerprint import cell_key

                store.put_diagnosis(cell_key(bomb, tool_name), diag)
            if verbose:
                print(f"{bomb_id:20s} {tool_name:12s} {diag.outcome:4s} "
                      f"evidence={len(diag.evidence)}")
    return diagnoses
