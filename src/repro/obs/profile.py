"""Attribution profiler: wall time and step counts bucketed by
(bomb, tool, stage, PC) plus per-solver-query telemetry.

The Recorder answers *how long each stage took*; this module answers
*which program counters and guards inside a stage burn the time* — the
per-challenge cost attribution the paper uses to explain tool failures,
and the data the explore-stage and solver-portfolio work needs.

The same discipline as :mod:`repro.obs.core` applies:

* **Zero cost when off.**  Hot loops gate a local dict on
  ``profile.active() is not None`` once at construction/run start and
  never call module hooks per step.  With no profiler installed the
  per-step cost is exactly what it was before this module existed.
* **Flush once per run.**  The VM, explorer, and replayer tally PCs
  into plain local dicts and hand them over in one
  :func:`record_pcs`/:func:`record_vm` call at the end of the run.
* **Mergeable across processes.**  :meth:`Profiler.flush_to` emits
  ``{"t": "prof"}`` events into the recorder's stream; a parent
  recorder's ``absorb`` routes them into the parent's profiler (see
  :meth:`Profiler.absorb_event`), so a fanned-out table2 run ends with
  one merged profile.
"""

from __future__ import annotations

from . import core as _core

#: Span names that identify a pipeline stage; the innermost open span
#: with one of these names attributes flushed VM counts to a stage.
STAGE_NAMES = frozenset(
    {"trace", "lift", "extract", "solve", "replay", "explore"})

_PC_FIELDS = ("bomb", "tool", "stage", "pc")
_QUERY_FIELDS = ("bomb", "tool", "pc", "kind")
_QUERY_STATS = ("n", "wall_s", "max_s", "conflicts", "gates", "learnt",
                "sat", "unsat")


class Profiler:
    """In-memory attribution buckets for one process.

    ``pc_buckets`` maps (bomb, tool, stage, pc) → ``{"steps", "wall_s"}``:
    how many instructions executed at that PC in that stage, and any
    wall time directly attributable to it (solver queries issued there).

    ``query_buckets`` maps (bomb, tool, pc, kind) → latency and CDCL
    effort totals for every solver query whose negated guard originated
    at that PC (``kind`` is the constraint tag kind, e.g. ``negation``).
    """

    def __init__(self):
        self.pc_buckets: dict[tuple, dict] = {}
        self.query_buckets: dict[tuple, dict] = {}
        self._bomb: str | None = None
        self._tool: str | None = None

    # -- cell context ----------------------------------------------------

    def set_cell(self, bomb: str | None, tool: str | None) -> None:
        self._bomb = bomb
        self._tool = tool

    # -- recording -------------------------------------------------------

    def record_pcs(self, stage: str, counts: dict[int, int],
                   walls: dict[int, float] | None = None) -> None:
        """Fold a run's local per-PC tally into the buckets (one call
        per run, not per step)."""
        buckets = self.pc_buckets
        bomb, tool = self._bomb, self._tool
        for pc, steps in counts.items():
            key = (bomb, tool, stage, pc)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = {"steps": 0, "wall_s": 0.0}
            bucket["steps"] += steps
        if walls:
            for pc, wall in walls.items():
                key = (bomb, tool, stage, pc)
                bucket = buckets.get(key)
                if bucket is None:
                    bucket = buckets[key] = {"steps": 0, "wall_s": 0.0}
                bucket["wall_s"] += wall

    def record_query(self, tag, wall_s: float, status: str = "",
                     conflicts: int = 0, gates: int = 0,
                     learnt: int = 0) -> None:
        """One solver query: latency plus CDCL effort deltas, attributed
        to the (pc, kind) constraint tag of the negated guard."""
        pc, kind = tag if isinstance(tag, tuple) and len(tag) == 2 \
            else (None, str(tag))
        key = (self._bomb, self._tool, pc, kind)
        bucket = self.query_buckets.get(key)
        if bucket is None:
            bucket = self.query_buckets[key] = dict.fromkeys(_QUERY_STATS, 0)
            bucket["wall_s"] = 0.0
            bucket["max_s"] = 0.0
        bucket["n"] += 1
        bucket["wall_s"] += wall_s
        if wall_s > bucket["max_s"]:
            bucket["max_s"] = wall_s
        bucket["conflicts"] += conflicts
        bucket["gates"] += gates
        bucket["learnt"] += learnt
        if status in ("sat", "unsat"):
            bucket[status] += 1
        # The query wall is *measured* time spent on that PC's guard, so
        # it also feeds the (stage, pc) view under the "solve" stage.
        if pc is not None:
            self.record_pcs("solve", {}, {pc: wall_s})

    # -- reading ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view: rows sorted hottest-first."""
        pcs = [
            dict(zip(_PC_FIELDS, key), **bucket)
            for key, bucket in self.pc_buckets.items()
        ]
        pcs.sort(key=lambda r: (r["wall_s"], r["steps"]), reverse=True)
        queries = [
            dict(zip(_QUERY_FIELDS, key), **bucket)
            for key, bucket in self.query_buckets.items()
        ]
        queries.sort(key=lambda r: r["wall_s"], reverse=True)
        return {"pcs": pcs, "queries": queries}

    # -- merging ---------------------------------------------------------

    def flush_to(self, recorder) -> None:
        """Emit every bucket as a ``prof`` event into *recorder*'s
        stream (and bump the ``prof.*`` bookkeeping counters)."""
        if recorder is None:
            return
        recorder.count("prof.pc_buckets", len(self.pc_buckets))
        recorder.count("prof.query_buckets", len(self.query_buckets))
        if not recorder.sinks:
            return
        for key, bucket in self.pc_buckets.items():
            recorder.emit({"t": "prof", "k": "pc",
                           **dict(zip(_PC_FIELDS, key)), **bucket})
        for key, bucket in self.query_buckets.items():
            recorder.emit({"t": "prof", "k": "query",
                           **dict(zip(_QUERY_FIELDS, key)), **bucket})

    def absorb_event(self, event: dict) -> None:
        """Merge one ``prof`` event (from a worker stream) into the
        buckets.  Inverse of :meth:`flush_to`."""
        if event.get("k") == "pc":
            key = tuple(event.get(f) for f in _PC_FIELDS)
            bucket = self.pc_buckets.setdefault(
                key, {"steps": 0, "wall_s": 0.0})
            bucket["steps"] += event.get("steps", 0)
            bucket["wall_s"] += event.get("wall_s", 0.0)
        elif event.get("k") == "query":
            key = tuple(event.get(f) for f in _QUERY_FIELDS)
            bucket = self.query_buckets.get(key)
            if bucket is None:
                bucket = self.query_buckets[key] = \
                    dict.fromkeys(_QUERY_STATS, 0)
                bucket["wall_s"] = 0.0
                bucket["max_s"] = 0.0
            for stat in _QUERY_STATS:
                if stat == "max_s":
                    bucket["max_s"] = max(bucket["max_s"],
                                          event.get("max_s", 0.0))
                else:
                    bucket[stat] += event.get(stat, 0)


# -- process-wide scoping ---------------------------------------------------

_active: Profiler | None = None


def active() -> Profiler | None:
    """The installed profiler, or None when attribution is off."""
    return _active


def install(profiler: Profiler) -> None:
    global _active
    _active = profiler


def uninstall() -> None:
    global _active
    _active = None


class profiling:
    """``with profiling(prof):`` — install for the block, then flush the
    buckets into the active recorder's stream and restore the previous
    profiler.  ``profiling(None)`` is a no-op block, so call sites can
    gate on a flag without branching."""

    def __init__(self, profiler: Profiler | None):
        self.profiler = profiler
        self._prev: Profiler | None = None

    def __enter__(self) -> Profiler | None:
        if self.profiler is not None:
            self._prev = _active
            install(self.profiler)
        return self.profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.profiler is not None:
            global _active
            _active = self._prev
            self.profiler.flush_to(_core.active())
        return False


# -- module-level hooks (one global load + None check when off) -------------

class _cell_ctx:
    """Scopes the (bomb, tool) attribution context around one cell."""

    __slots__ = ("_bomb", "_tool", "_prev")

    def __init__(self, bomb, tool):
        self._bomb = bomb
        self._tool = tool

    def __enter__(self):
        prof = _active
        if prof is not None:
            self._prev = (prof._bomb, prof._tool)
            prof.set_cell(self._bomb, self._tool)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        prof = _active
        if prof is not None:
            prof.set_cell(*self._prev)
        return False


def cell(bomb, tool) -> _cell_ctx:
    return _cell_ctx(bomb, tool)


def record_pcs(stage: str, counts, walls=None) -> None:
    prof = _active
    if prof is not None and (counts or walls):
        prof.record_pcs(stage, counts, walls)


def record_vm(counts) -> None:
    """VM step-loop flush: attribute to the innermost open stage span
    (``trace`` during tracing, ``replay`` during validation, ...)."""
    prof = _active
    if prof is None or not counts:
        return
    stage = "vm"
    rec = _core.active()
    if rec is not None:
        for span in reversed(rec._stack):
            if span.name in STAGE_NAMES:
                stage = span.name
                break
    prof.record_pcs(stage, counts)


def record_query(tag, wall_s: float, status: str = "", *, conflicts: int = 0,
                 gates: int = 0, learnt: int = 0) -> None:
    prof = _active
    if prof is not None and tag is not None:
        prof.record_query(tag, wall_s, status, conflicts=conflicts,
                          gates=gates, learnt=learnt)
