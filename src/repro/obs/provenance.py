"""Provenance collection: the evidence behind every Table II label.

The observability layer (:mod:`repro.obs.core`) answers *how much* —
counters and span timings.  This module answers *why*: which
instructions carried symbolic data, where a symbolic byte was
introduced or dropped, and which constraints made a branch negation
UNSAT.  The paper's Figure 3 argument (printf blowing 5 tainted
instructions up to 66) and its Es3 attributions are exactly provenance
claims; the collector turns them into per-instruction records.

Scoping mirrors :mod:`repro.obs.core`: a process-wide collector is
installed with :func:`install`/:func:`collecting`, and the module-level
:func:`active` hook is one global load plus a ``None`` check, so
engines that consult it stay near-free when forensics are off (the
default — nothing installs a collector unless ``repro explain`` or a
test asks for one).

Four record kinds:

* **introduce** — a symbolic byte came into existence (an argv byte
  declared by the input model).
* **taint** — an executed instruction read or wrote symbolic data.
  Aggregated per PC with a hit count and first-seen trace index, so
  the chain is both a per-instruction report and an exact instance
  count (``instances`` reproduces Figure 3's 5 → 66 delta).
* **drop** — symbolic data or a solver obligation was abandoned; every
  :class:`repro.errors.Diagnostic` emission is mirrored here, which
  guarantees at least one evidence item for every non-solved cell.
* **core** — a minimized UNSAT core for a failed branch negation, each
  member tagged with the PC of the guard that asserted it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import core as obs


@dataclass
class TaintRecord:
    """One distinct instruction that touched symbolic data."""

    pc: int
    op: str
    first_index: int  #: trace step index of the first tainted execution
    hits: int = 1

    def to_json(self) -> dict:
        return {"pc": self.pc, "op": self.op,
                "first_index": self.first_index, "hits": self.hits}


@dataclass
class ProvEvent:
    """An introduce or drop event, in emission order."""

    kind: str  #: "introduce" | "drop"
    detail: str
    pc: int | None = None
    stage: str | None = None  #: error-stage label for drops, e.g. "Es2"
    cause: str | None = None  #: diagnostic kind for drops, e.g. "taint-lost"

    def to_json(self) -> dict:
        out = {"kind": self.kind, "detail": self.detail}
        if self.pc is not None:
            out["pc"] = self.pc
        if self.stage is not None:
            out["stage"] = self.stage
        if self.cause is not None:
            out["cause"] = self.cause
        return out


@dataclass
class CoreMember:
    """One constraint in a minimized UNSAT core."""

    pc: int | None
    kind: str  #: "branch" | "div-guard" | "negation" | ...
    expr: str

    def to_json(self) -> dict:
        return {"pc": self.pc, "kind": self.kind, "expr": self.expr}


@dataclass
class UnsatCore:
    """A minimized explanation of one UNSAT branch negation."""

    pc: int | None  #: PC of the branch whose negation was attempted
    members: list[CoreMember] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"pc": self.pc,
                "members": [m.to_json() for m in self.members]}


class ProvenanceCollector:
    """Accumulates provenance records for one analysis run.

    Engines look the collector up once per run (not per step) and keep
    the reference in a local; the per-record methods are only reached
    on paths already conditioned on symbolic data.
    """

    def __init__(self):
        #: insertion-ordered: first key is the first tainted PC.
        self.taint: dict[int, TaintRecord] = {}
        self.events: list[ProvEvent] = []
        self.cores: list[UnsatCore] = []
        #: total tainted instruction *executions* (Figure 3's unit).
        self.instances = 0

    # -- recording --------------------------------------------------------

    def introduce(self, detail: str, pc: int | None = None) -> None:
        self.events.append(ProvEvent("introduce", detail, pc))

    def record_taint(self, pc: int, op: str, index: int) -> None:
        self.instances += 1
        rec = self.taint.get(pc)
        if rec is None:
            self.taint[pc] = TaintRecord(pc, op, index)
        else:
            rec.hits += 1

    def drop(self, cause: str, detail: str, pc: int | None = None,
             stage: str | None = None) -> None:
        self.events.append(ProvEvent("drop", detail, pc, stage, cause))

    def record_core(self, pc: int | None, members: list[CoreMember]) -> None:
        self.cores.append(UnsatCore(pc, list(members)))

    # -- reading ----------------------------------------------------------

    @property
    def introductions(self) -> list[ProvEvent]:
        return [e for e in self.events if e.kind == "introduce"]

    @property
    def drops(self) -> list[ProvEvent]:
        return [e for e in self.events if e.kind == "drop"]

    def chain(self) -> list[TaintRecord]:
        """The tainted-instruction chain in first-execution order."""
        return list(self.taint.values())

    def snapshot(self) -> dict:
        return {
            "taint": [r.to_json() for r in self.chain()],
            "instances": self.instances,
            "events": [e.to_json() for e in self.events],
            "cores": [c.to_json() for c in self.cores],
        }

    def flush_counts(self) -> None:
        """Publish ``prov.*`` counters to the active obs recorder."""
        if self.taint:
            obs.count("prov.taint_pcs", len(self.taint))
        if self.instances:
            obs.count("prov.taint_instances", self.instances)
        intro = len(self.introductions)
        drops = len(self.events) - intro
        if intro:
            obs.count("prov.introduced", intro)
        if drops:
            obs.count("prov.drops", drops)
        if self.cores:
            obs.count("prov.unsat_cores", len(self.cores))


# -- process-wide scoping ---------------------------------------------------

_active: ProvenanceCollector | None = None


def active() -> ProvenanceCollector | None:
    """The installed collector, or None when forensics are off."""
    return _active


def install(collector: ProvenanceCollector) -> None:
    global _active
    _active = collector


def uninstall() -> None:
    global _active
    _active = None


class collecting:
    """``with collecting() as prov:`` — install a collector for the
    block, publish its ``prov.*`` counters on exit, and restore the
    previous collector."""

    def __init__(self, collector: ProvenanceCollector | None = None):
        self.collector = collector if collector is not None else ProvenanceCollector()
        self._prev: ProvenanceCollector | None = None

    def __enter__(self) -> ProvenanceCollector:
        self._prev = _active
        install(self.collector)
        return self.collector

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = self._prev
        self.collector.flush_counts()
        return False
