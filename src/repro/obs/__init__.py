"""Structured tracing & metrics for the whole pipeline.

A dependency-free instrumentation layer: hierarchical spans with
wall/CPU timing, named counters and histograms, and pluggable sinks
(in-memory aggregation plus a JSONL event stream).  One process-wide
:class:`Recorder` is installed with :func:`install`/:func:`recording`;
when none is installed every hook degrades to a near-free no-op, so the
engines stay import-cheap and fast with observability off.

The metric names form the measurement substrate for the paper's
artifacts (see the README glossary): ``taint.instructions_tainted`` is
Figure 3's tainted-instruction count, the ``trace``/``lift``/
``extract``/``solve``/``replay`` spans are the per-cell stage timeline
behind each Table II label, and ``smt.*`` exposes the CDCL core.
"""

from .core import (
    NULL_SPAN,
    Recorder,
    Span,
    active,
    count,
    install,
    observe,
    recording,
    span,
    trace_context,
    uninstall,
)
from .export import prometheus_text, render_profile, self_time_profile
from .profile import Profiler, profiling
from .provenance import ProvenanceCollector, collecting
from .sinks import JsonlSink, MemorySink
from .stats import Aggregate, aggregate_events, read_events, render_stats
from .traceviz import (
    chrome_trace,
    collapsed_stacks,
    hotspots,
    render_hotspots,
    validate_chrome_trace,
)

__all__ = [
    "Aggregate",
    "JsonlSink",
    "MemorySink",
    "NULL_SPAN",
    "Profiler",
    "ProvenanceCollector",
    "Recorder",
    "Span",
    "active",
    "aggregate_events",
    "chrome_trace",
    "collapsed_stacks",
    "collecting",
    "count",
    "hotspots",
    "install",
    "observe",
    "profiling",
    "prometheus_text",
    "read_events",
    "recording",
    "render_hotspots",
    "render_profile",
    "render_stats",
    "self_time_profile",
    "span",
    "trace_context",
    "uninstall",
    "validate_chrome_trace",
]
