"""Event sinks: where the recorder's flat event stream goes.

A sink is anything with ``emit(event: dict)`` and ``close()``.  Two are
provided: :class:`MemorySink` (keep the events in a list — tests, the
benchmarks) and :class:`JsonlSink` (one JSON object per line — the
``--metrics-out`` stream ``repro stats`` consumes).
"""

from __future__ import annotations

import json
from pathlib import Path


class MemorySink:
    """Buffers every event in memory."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one compact JSON object per event to a file.

    Accepts a path (opened lazily, truncated) or any object with a
    ``write`` method (left open on close).

    Appends are line-atomic under concurrent forked writers: the file
    is opened line-buffered and each event is emitted as ONE ``write``
    of a complete ``...\\n`` line, so the buffer flushes exactly at line
    boundaries and each line reaches the kernel as a single ``os.write``
    on a descriptor whose offset the forked processes share.  Lines from
    different processes interleave but never tear mid-line (short of a
    crash mid-flush — which ``read_events(strict=False)`` absorbs by
    dropping a torn final line).
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._fp = target
            self._owns = False
        else:
            self._fp = Path(target).open("w", encoding="utf-8", buffering=1)
            self._owns = True

    def emit(self, event: dict) -> None:
        line = json.dumps(event, separators=(",", ":"), default=str)
        self._fp.write(line + "\n")

    def close(self) -> None:
        if self._owns:
            self._fp.close()
        else:
            self._fp.flush()
