"""Event sinks: where the recorder's flat event stream goes.

A sink is anything with ``emit(event: dict)`` and ``close()``.  Two are
provided: :class:`MemorySink` (keep the events in a list — tests, the
benchmarks) and :class:`JsonlSink` (one JSON object per line — the
``--metrics-out`` stream ``repro stats`` consumes).
"""

from __future__ import annotations

import json
from pathlib import Path


class MemorySink:
    """Buffers every event in memory."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one compact JSON object per event to a file.

    Accepts a path (opened lazily, truncated) or any object with a
    ``write`` method (left open on close).
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._fp = target
            self._owns = False
        else:
            self._fp = Path(target).open("w", encoding="utf-8")
            self._owns = True

    def emit(self, event: dict) -> None:
        self._fp.write(json.dumps(event, separators=(",", ":"), default=str))
        self._fp.write("\n")

    def close(self) -> None:
        if self._owns:
            self._fp.close()
        else:
            self._fp.flush()
