"""Exporters over recorded telemetry: Prometheus text + span profile.

Two read-only views of data the :class:`~repro.obs.core.Recorder`
already produces:

* :func:`prometheus_text` renders an :class:`~repro.obs.stats.Aggregate`
  (or a recorder ``snapshot()``) in the Prometheus text exposition
  format, so a campaign box can drop the file behind any static HTTP
  server and be scraped.  Counters become ``repro_<name>`` counters,
  spans become ``repro_span_count``/``repro_span_wall_seconds_total``
  families labelled by span name, histograms become summaries.
* :func:`self_time_profile` reconstructs a flamegraph-style self-time
  table from a JSONL span event stream.  Span events carry their
  hierarchy in ``path`` and are emitted children-before-parents, so a
  single pass can subtract each child's wall time from its parent and
  report where time was actually *spent* rather than merely enclosed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .stats import Aggregate

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Content type the Prometheus text exposition format is served under
#: (``GET /metrics`` on the campaign API).
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _metric_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(round(float(value), 9))


def prometheus_text(agg: Aggregate | dict) -> str:
    """Render an aggregate (or ``Recorder.snapshot()``) as Prometheus text."""
    if isinstance(agg, dict):
        counters = agg.get("counters", {})
        spans = agg.get("spans", {})
        hists = agg.get("histograms", {})
    else:
        counters, spans, hists = agg.counters, agg.spans, agg.hists

    lines: list[str] = []
    for name in sorted(counters):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counters[name]}")

    if spans:
        lines.append("# TYPE repro_span_count counter")
        for name in sorted(spans):
            lines.append(
                f'repro_span_count{{span="{name}"}} {int(spans[name]["count"])}')
        lines.append("# TYPE repro_span_wall_seconds_total counter")
        for name in sorted(spans):
            lines.append(
                f'repro_span_wall_seconds_total{{span="{name}"}} '
                f'{_fmt(spans[name]["wall_s"])}')
        lines.append("# TYPE repro_span_cpu_seconds_total counter")
        for name in sorted(spans):
            lines.append(
                f'repro_span_cpu_seconds_total{{span="{name}"}} '
                f'{_fmt(spans[name]["cpu_s"])}')

    for name in sorted(hists):
        h = hists[name]
        metric = _metric_name(name)
        if h.get("buckets"):
            # Full bucket series: cumulative counts per upper bound, the
            # native Prometheus histogram type.  Latency distributions
            # (solver queries, stage walls) become scrapeable as-is.
            lines.append(f"# TYPE {metric} histogram")
            finite = sorted(
                (b for b in h["buckets"] if b != "+Inf"), key=float)
            cumulative = 0
            for bound in finite:
                cumulative += h["buckets"][bound]
                lines.append(
                    f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            cumulative += h["buckets"].get("+Inf", 0)
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            if "total" in h:
                lines.append(f"{metric}_sum {_fmt(h['total'])}")
            lines.append(f"{metric}_count {cumulative}")
            continue
        lines.append(f"# TYPE {metric} summary")
        for q_label, key in (("0.5", "p50"), ("0.95", "p95")):
            if key in h:
                lines.append(
                    f'{metric}{{quantile="{q_label}"}} {_fmt(h[key])}')
        if "total" in h:
            lines.append(f"{metric}_sum {_fmt(h['total'])}")
        if "count" in h:
            lines.append(f"{metric}_count {int(h['count'])}")
    return "\n".join(lines) + "\n" if lines else ""


def _label_str(labels: dict) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}" if inner else ""


def prometheus_gauges(name: str,
                      samples: list[tuple[dict, float]]) -> str:
    """Render one labelled gauge family as Prometheus text.

    Covers live state no counter can express — e.g. the campaign API's
    per-campaign/per-state job gauges::

        prometheus_gauges("campaign_jobs",
                          [({"campaign": cid, "state": "pending"}, 3.0)])
    """
    if not samples:
        return ""
    metric = _metric_name(name)
    lines = [f"# TYPE {metric} gauge"]
    for labels, value in samples:
        lines.append(f"{metric}{_label_str(labels)} {_fmt(value)}")
    return "\n".join(lines) + "\n"


def solverlab_class_wall(report: dict) -> str:
    """Render a solverlab report's per-class solve wall as the labelled
    ``repro_solverlab_class_wall_seconds`` gauge family.

    *report* is the document produced by
    :func:`repro.eval.solverlab.report_corpus`; one sample per feature
    class, so a scrape of ``repro solverlab report --prom`` output
    tracks where the matrix's solve budget goes over time.
    """
    samples = [({"class": cls}, row["wall_s"])
               for cls, row in sorted(report.get("by_class", {}).items())]
    return prometheus_gauges("solverlab_class_wall_seconds", samples)


@dataclass
class ProfileRow:
    """Aggregated timing for one span path in the hierarchy."""

    path: str
    count: int
    wall_s: float
    self_s: float
    cpu_s: float


def self_time_profile(events: list[dict]) -> list[ProfileRow]:
    """Self-time table from a span event stream, sorted by self time.

    Exploits two stream invariants: a span's ``path`` embeds its whole
    ancestry (``cell/trace/vm``), and a child's event is emitted before
    its parent's.  Child wall time is parked under the parent's path
    and subtracted when the parent's own event arrives.
    """
    rows: dict[str, ProfileRow] = {}
    pending: dict[str, float] = {}  # parent path -> children wall not yet seen
    for event in events:
        if event.get("t") != "span":
            continue
        path = event.get("path") or event.get("name", "")
        wall = event.get("wall_s", 0.0)
        self_s = wall - pending.pop(path, 0.0)
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            pending[parent] = pending.get(parent, 0.0) + wall
        row = rows.get(path)
        if row is None:
            rows[path] = ProfileRow(path, 1, wall, self_s,
                                    event.get("cpu_s", 0.0))
        else:
            row.count += 1
            row.wall_s += wall
            row.self_s += self_s
            row.cpu_s += event.get("cpu_s", 0.0)
    return sorted(rows.values(), key=lambda r: r.self_s, reverse=True)


def render_profile(rows: list[ProfileRow]) -> str:
    """Text flamegraph table: deepest self-time consumers first."""
    if not rows:
        return "no span events"
    total_self = sum(r.self_s for r in rows) or 1.0
    lines = [f"{'self s':>10s}{'self %':>8s}{'wall s':>10s}{'count':>8s}  path",
             "-" * 68]
    for row in rows:
        pct = 100.0 * row.self_s / total_self
        lines.append(
            f"{row.self_s:>10.4f}{pct:>7.1f}%{row.wall_s:>10.4f}"
            f"{row.count:>8d}  {row.path}"
        )
    return "\n".join(lines)
