"""Trace visualisation exporters: Chrome trace-event JSON + flamegraphs.

Turns a recorded span event stream (one ``table2 --trace-out`` run,
possibly stitched from several worker processes by ``Recorder.absorb``)
into the two interchange formats every profiling UI reads:

* :func:`chrome_trace` — the Chrome trace-event format (JSON object
  with a ``traceEvents`` array of ``"X"`` complete events).  Load the
  file in https://ui.perfetto.dev or ``chrome://tracing``; each process
  gets its own track, spans nest by timestamp.  Span timestamps are
  ``time.perf_counter`` readings — CLOCK_MONOTONIC, shared across
  forked workers — so one normalisation makes all tracks line up.
* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack text
  (``cell;trace;vm 1234`` per line, value = self-time µs), the input
  ``flamegraph.pl`` and speedscope accept.
* :func:`render_hotspots` — the text report behind ``repro profile``
  and ``table2 --trace-out``: top-N (stage, PC) sinks and (guard,
  query-latency) entries from a :class:`~repro.obs.profile.Profiler`
  snapshot.
"""

from __future__ import annotations

from .export import self_time_profile


def _fmt_pc(pc) -> str:
    if isinstance(pc, int):
        return hex(pc)
    return str(pc)


# -- Chrome trace-event JSON ------------------------------------------------

def chrome_trace(events: list[dict]) -> dict:
    """Build a Chrome trace-event document from a span event stream.

    Every span event becomes one ``"X"`` (complete) event.  The earliest
    timestamp in the stream is the trace origin; events that predate the
    timestamp fields (older streams) land at t=0 with their duration
    intact, which keeps the document valid if not perfectly aligned.
    """
    spans = [e for e in events if e.get("t") == "span"]
    stamps = [e["ts"] for e in spans if "ts" in e]
    t0 = min(stamps) if stamps else 0.0
    trace_ids = sorted({e["trace"] for e in spans if "trace" in e})

    trace_events: list[dict] = []
    root_pids = {e.get("pid", 0) for e in spans if "parent_id" not in e}
    for pid in sorted({e.get("pid", 0) for e in spans}):
        role = "harness" if pid in root_pids else "worker"
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": f"{role} (pid {pid})"},
        })
    for e in spans:
        args = {"path": e.get("path", e.get("name", ""))}
        if "span_id" in e:
            args["span_id"] = e["span_id"]
        if "parent_id" in e:
            args["parent_id"] = e["parent_id"]
        if "trace" in e:
            args["trace"] = e["trace"]
        args.update(e.get("attrs", {}))
        trace_events.append({
            "name": e.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": round((e.get("ts", t0) - t0) * 1e6, 3),
            "dur": round(e.get("wall_s", 0.0) * 1e6, 3),
            "pid": e.get("pid", 0),
            "tid": 1,
            "args": args,
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_ids": trace_ids,
                      "generator": "repro.obs.traceviz"},
    }


def validate_chrome_trace(doc) -> list[str]:
    """Structural problems in a Chrome trace-event document (empty list
    = loadable).  Used by tests and the CI profile smoke step."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"document is {type(doc).__name__}, expected object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    if not any(e.get("ph") == "X" for e in events if isinstance(e, dict)):
        problems.append("no complete ('X') events")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            problems.append(f"event {i}: not an object")
            continue
        if not isinstance(e.get("name"), str):
            problems.append(f"event {i}: missing name")
        if e.get("ph") not in ("X", "M", "B", "E", "i"):
            problems.append(f"event {i}: bad phase {e.get('ph')!r}")
        if e.get("ph") == "X":
            for field in ("ts", "dur"):
                v = e.get(field)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(f"event {i}: bad {field} {v!r}")
            if "pid" not in e or "tid" not in e:
                problems.append(f"event {i}: missing pid/tid")
    return problems


# -- collapsed stacks (flamegraph.pl / speedscope input) --------------------

def collapsed_stacks(events: list[dict]) -> str:
    """Span stream → collapsed-stack lines weighted by self-time µs."""
    lines = []
    for row in self_time_profile(events):
        self_us = int(round(row.self_s * 1e6))
        if self_us > 0:
            lines.append(f"{row.path.replace('/', ';')} {self_us}")
    return "\n".join(lines) + "\n" if lines else ""


# -- hotspot report ---------------------------------------------------------

def hotspots(snapshot: dict, top: int = 10) -> dict:
    """Top-N rows from a profiler snapshot (already sorted hottest-first)."""
    return {"pcs": snapshot.get("pcs", [])[:top],
            "queries": snapshot.get("queries", [])[:top]}


def render_hotspots(snapshot: dict, top: int = 10,
                    stage_wall: dict[str, float] | None = None,
                    stage_self: dict[str, float] | None = None) -> str:
    """Text hotspot report: (stage, PC) sinks, then (guard, latency).

    When per-stage timings are supplied, a stage-wall table leads the
    report.  Inclusive wall double-counts nested stages (``solve`` runs
    inside ``explore``); the exclusive column subtracts child spans, so
    it is the one that answers "where did the time actually go".
    """
    hot = hotspots(snapshot, top)
    lines: list[str] = []
    if stage_wall:
        stage_self = stage_self or {}
        lines.append("Stage wall — inclusive vs exclusive (self) seconds:")
        lines.append(f"  {'stage':10s}{'incl s':>10s}{'self s':>10s}")
        for stage, wall in sorted(stage_wall.items(),
                                  key=lambda kv: -stage_self.get(kv[0], kv[1])):
            lines.append(f"  {stage:10s}{wall:>10.4f}"
                         f"{stage_self.get(stage, wall):>10.4f}")
        lines.append("")
    lines.append(f"Hot PCs — top {len(hot['pcs'])} (stage, pc) by "
                 "attributed wall / steps:")
    if hot["pcs"]:
        lines.append(f"  {'#':>3s} {'pc':>12s} {'stage':10s}{'wall s':>10s}"
                     f"{'steps':>10s}  cell")
        for rank, row in enumerate(hot["pcs"], 1):
            cell = f"{row.get('bomb') or '-'}/{row.get('tool') or '-'}"
            lines.append(
                f"  {rank:>3d} {_fmt_pc(row['pc']):>12s} "
                f"{row['stage']:10s}{row['wall_s']:>10.4f}"
                f"{row['steps']:>10d}  {cell}")
    else:
        lines.append("  (no PC attribution recorded)")
    lines.append("")
    lines.append(f"Hot guards — top {len(hot['queries'])} (pc, kind) by "
                 "solver-query wall:")
    if hot["queries"]:
        lines.append(f"  {'#':>3s} {'pc':>12s} {'kind':10s}{'n':>6s}"
                     f"{'wall s':>10s}{'max s':>9s}{'conflicts':>10s}"
                     f"{'gates':>10s}{'learnt':>8s}  cell")
        for rank, row in enumerate(hot["queries"], 1):
            cell = f"{row.get('bomb') or '-'}/{row.get('tool') or '-'}"
            lines.append(
                f"  {rank:>3d} {_fmt_pc(row['pc']):>12s} "
                f"{row['kind']:10s}{row['n']:>6d}{row['wall_s']:>10.4f}"
                f"{row['max_s']:>9.4f}{row['conflicts']:>10d}"
                f"{row['gates']:>10d}{row['learnt']:>8d}  {cell}")
    else:
        lines.append("  (no query telemetry recorded)")
    return "\n".join(lines)
