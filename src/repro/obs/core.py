"""Recorder core: spans, counters, histograms, process-wide scoping.

Design constraints (why the shape is what it is):

* **Zero cost when off.**  Engines call the module-level
  :func:`count`/:func:`observe`/:func:`span` hooks; each is one global
  load and a ``None`` check when no recorder is installed.  Hot loops
  (the VM step loop, the SAT search) never call these per iteration —
  they keep local integers and flush once per run/query.
* **Deterministic for tests.**  Both clocks are injectable, so span
  timing is exactly reproducible with a fake clock.
* **Sinks see a flat event stream.**  Spans emit one event at exit
  (children before parents, with a ``path`` recording the hierarchy);
  counters and histograms are aggregated in memory and emitted once as
  summary events on :meth:`Recorder.flush`.
"""

from __future__ import annotations

import os
import time
import uuid


class Span:
    """One timed region.  Created via :meth:`Recorder.span`.

    At exit the span knows its wall/CPU duration, the counter deltas
    that occurred inside it, and ``stage_totals`` — wall seconds of
    every descendant span, aggregated by name (the per-cell stage
    timeline the eval harness reads).

    ``wall_s`` is *inclusive* (it contains every nested span), while
    ``self_s`` is the span's *exclusive* self-time: wall minus the wall
    of its direct children.  Summing ``self_s`` over all spans equals
    the real elapsed wall — unlike inclusive figures, where a ``solve``
    nested inside ``explore`` is counted under both names.
    ``stage_self_totals`` aggregates descendant self-times by name.
    """

    __slots__ = ("name", "attrs", "path", "wall_s", "cpu_s", "self_s",
                 "stage_totals", "stage_self_totals",
                 "span_id", "parent_id",
                 "_recorder", "_wall0", "_cpu0", "_counters0", "_child_wall")

    def __init__(self, recorder: "Recorder", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self.path = name
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.self_s = 0.0
        self.stage_totals: dict[str, float] = {}
        self.stage_self_totals: dict[str, float] = {}
        self._child_wall = 0.0
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self._recorder = recorder

    def set(self, key: str, value) -> None:
        """Attach an attribute to the span (appears in its event)."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        rec = self._recorder
        rec._span_seq += 1
        self.span_id = "%x.%d" % (rec.pid, rec._span_seq)
        if rec._stack:
            self.path = rec._stack[-1].path + "/" + self.name
            self.parent_id = rec._stack[-1].span_id
        else:
            # Top-level span: parent is whatever span id was threaded in
            # from a parent process (cross-process trace stitching).
            self.parent_id = rec.parent_span_id
        rec._stack.append(self)
        self._counters0 = dict(rec.counters)
        self._wall0 = rec._wall_clock()
        self._cpu0 = rec._cpu_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        rec = self._recorder
        self.wall_s = rec._wall_clock() - self._wall0
        self.cpu_s = rec._cpu_clock() - self._cpu0
        self.self_s = max(0.0, self.wall_s - self._child_wall)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        rec._stack.pop()
        if rec._stack:
            rec._stack[-1]._child_wall += self.wall_s
        # Every ancestor accumulates this span's wall time under its
        # name, so an enclosing "cell" span ends with a flat timeline
        # of all the stages that ran inside it.
        for ancestor in rec._stack:
            totals = ancestor.stage_totals
            totals[self.name] = totals.get(self.name, 0.0) + self.wall_s
            selfs = ancestor.stage_self_totals
            selfs[self.name] = selfs.get(self.name, 0.0) + self.self_s
        deltas = {
            name: value - self._counters0.get(name, 0)
            for name, value in rec.counters.items()
            if value != self._counters0.get(name, 0)
        }
        rec._record_span(self, deltas)
        return False


class _NullSpan:
    """Reentrant no-op span used when no recorder is installed."""

    __slots__ = ()
    wall_s = 0.0
    cpu_s = 0.0
    self_s = 0.0
    path = ""
    name = ""

    @property
    def stage_totals(self) -> dict:
        return {}

    @property
    def stage_self_totals(self) -> dict:
        return {}

    @property
    def attrs(self) -> dict:
        return {}

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: Fixed bucket bounds shared by every histogram.  Decades alone blur
#: the band where solver queries actually live (the bulk of ``smt.solve_s``
#: lands between 10µs and 1ms), so the sub-millisecond decades get 1-2.5-5
#: subdivisions; 1ms up stays decade-spaced.  Fixed bounds keep streams
#: from different processes mergeable by key.
BUCKET_BOUNDS: tuple[float, ...] = (
    1e-06, 2.5e-06, 5e-06, 1e-05, 2.5e-05, 5e-05, 0.0001, 0.00025, 0.0005,
) + tuple(10.0 ** e for e in range(-3, 7))


def bucket_counts(values) -> dict[str, int]:
    """Non-cumulative counts per bucket, keyed by upper bound
    (``"+Inf"`` for overflow).  JSON-safe and mergeable by key."""
    counts: dict[str, int] = {}
    for value in values:
        for bound in BUCKET_BOUNDS:
            if value <= bound:
                key = repr(bound)
                break
        else:
            key = "+Inf"
        counts[key] = counts.get(key, 0) + 1
    return counts


class Recorder:
    """Aggregates counters/histograms/span stats and feeds sinks.

    *sinks* is an iterable of objects with ``emit(event: dict)`` and
    ``close()``; the recorder itself keeps the in-memory aggregate, so
    a sink-less recorder is a pure aggregator.
    """

    def __init__(self, sinks=(), wall_clock=time.perf_counter,
                 cpu_clock=time.process_time, hist_values: bool = False,
                 trace_id: str | None = None,
                 parent_span_id: str | None = None):
        self.sinks = list(sinks)
        self.counters: dict[str, int] = {}
        self.hists: dict[str, list[float]] = {}
        self.span_stats: dict[str, dict[str, float]] = {}
        self._stack: list[Span] = []
        self._wall_clock = wall_clock
        self._cpu_clock = cpu_clock
        self._closed = False
        #: One id per logical run.  A worker recorder is constructed with
        #: the parent's trace id so every span in a fanned-out table2 run
        #: belongs to a single trace; a fresh recorder mints its own.
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        #: Span id in the *parent process* that top-level spans of this
        #: recorder hang under (None for the root recorder).
        self.parent_span_id = parent_span_id
        self.pid = os.getpid()
        self._span_seq = 0
        #: Include raw observations in flushed ``hist`` events, so a
        #: parent recorder can :meth:`absorb` the stream exactly (the
        #: summary alone cannot be merged losslessly).  Off by default —
        #: it grows the event stream by one float per observation.
        self.hist_values = hist_values

    # -- instrumentation points ------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        self.hists.setdefault(name, []).append(value)

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def emit(self, event: dict) -> None:
        for sink in self.sinks:
            sink.emit(event)

    # -- internals --------------------------------------------------------

    def _record_span(self, span: Span, counter_deltas: dict[str, int]) -> None:
        stat = self.span_stats.setdefault(
            span.name, {"count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                        "self_s": 0.0})
        stat["count"] += 1
        stat["wall_s"] += span.wall_s
        stat["cpu_s"] += span.cpu_s
        stat["self_s"] += span.self_s
        if self.sinks:
            event = {
                "t": "span",
                "name": span.name,
                "path": span.path,
                "wall_s": round(span.wall_s, 9),
                "cpu_s": round(span.cpu_s, 9),
                "self_s": round(span.self_s, 9),
                # perf_counter is CLOCK_MONOTONIC on Linux: comparable
                # across forked workers, so a parent can lay worker
                # spans on its own timeline when building a trace view.
                "ts": round(span._wall0, 7),
                "span_id": span.span_id,
                "trace": self.trace_id,
                "pid": self.pid,
            }
            if span.parent_id:
                event["parent_id"] = span.parent_id
            if span.attrs:
                event["attrs"] = span.attrs
            if counter_deltas:
                event["counters"] = counter_deltas
            self.emit(event)

    # -- reading ----------------------------------------------------------

    def current_span_id(self) -> str | None:
        """Id of the innermost open span (for threading to workers)."""
        if self._stack:
            return self._stack[-1].span_id
        return self.parent_span_id

    @staticmethod
    def _hist_summary(values: list[float]) -> dict[str, float]:
        ordered = sorted(values)
        n = len(ordered)

        def pct(q: float) -> float:
            return ordered[min(n - 1, int(q * n))]

        return {
            "count": n,
            "total": sum(ordered),
            "min": ordered[0],
            "max": ordered[-1],
            "mean": sum(ordered) / n,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "buckets": bucket_counts(ordered),
        }

    def snapshot(self) -> dict:
        """The in-memory aggregate as one plain dict."""
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: self._hist_summary(values)
                for name, values in self.hists.items()
            },
            "spans": {
                name: dict(stat) for name, stat in self.span_stats.items()
            },
        }

    # -- merging -----------------------------------------------------------

    def absorb(self, events: list[dict]) -> None:
        """Merge another recorder's flushed event stream into this one.

        The parallel evaluation harness records each worker process to
        its own JSONL stream and folds them back into the session
        recorder with this method: span events update ``span_stats``
        and are re-emitted verbatim to this recorder's sinks (so a
        ``--metrics-out`` file still carries every per-cell event);
        ``counter`` summaries add into the counters; ``hist`` events
        replay their raw ``values`` into the histograms (streams from a
        recorder without ``hist_values`` merge counters and spans only).
        """
        for event in events:
            kind = event.get("t")
            if kind == "span":
                stat = self.span_stats.setdefault(
                    event["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0,
                                    "self_s": 0.0})
                stat["count"] += 1
                stat["wall_s"] += event.get("wall_s", 0.0)
                stat["cpu_s"] += event.get("cpu_s", 0.0)
                # Streams from recorders predating exclusive self-time
                # carry no self_s; treating the span as childless (self
                # == wall) keeps the merge lossless either way.
                stat["self_s"] += event.get("self_s", event.get("wall_s", 0.0))
                self.emit(event)
            elif kind == "counter":
                self.count(event["name"], event["value"])
            elif kind == "hist":
                for value in event.get("values", ()):
                    self.observe(event["name"], value)
            elif kind == "prof":
                # Worker profiler buckets.  Merge into this process's
                # profiler when one is installed (it re-emits merged
                # totals on its own flush); otherwise pass them through
                # so the stream stays lossless.
                from . import profile as _profile
                prof = _profile.active()
                if prof is not None:
                    prof.absorb_event(event)
                else:
                    self.emit(event)

    def abort_open_spans(self, reason: str = "aborted") -> None:
        """Flush every still-open span with an ``aborted`` attribute.

        Called from a worker's SIGTERM handler so that a killed or
        timed-out cell still contributes its partial spans to the trace
        instead of silently vanishing.  Innermost spans flush first,
        preserving the children-before-parents stream invariant.
        """
        now_wall = self._wall_clock()
        now_cpu = self._cpu_clock()
        while self._stack:
            span = self._stack[-1]
            span.wall_s = now_wall - span._wall0
            span.cpu_s = now_cpu - span._cpu0
            span.self_s = max(0.0, span.wall_s - span._child_wall)
            span.attrs["aborted"] = reason
            self._stack.pop()
            if self._stack:
                self._stack[-1]._child_wall += span.wall_s
            for ancestor in self._stack:
                totals = ancestor.stage_totals
                totals[span.name] = totals.get(span.name, 0.0) + span.wall_s
                selfs = ancestor.stage_self_totals
                selfs[span.name] = selfs.get(span.name, 0.0) + span.self_s
            self._record_span(span, {})

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Emit counter/histogram summary events to the sinks."""
        if not self.sinks:
            return
        for name in sorted(self.counters):
            self.emit({"t": "counter", "name": name,
                       "value": self.counters[name]})
        for name in sorted(self.hists):
            event = {"t": "hist", "name": name,
                     **self._hist_summary(self.hists[name])}
            if self.hist_values:
                event["values"] = list(self.hists[name])
            self.emit(event)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.flush()
        for sink in self.sinks:
            sink.close()


# -- process-wide scoping ---------------------------------------------------

_active: Recorder | None = None


def active() -> Recorder | None:
    """The currently installed recorder, or None when observability is off."""
    return _active


def install(recorder: Recorder) -> None:
    global _active
    _active = recorder


def uninstall() -> None:
    global _active
    _active = None


class recording:
    """``with recording(rec):`` — install *rec* for the block, then
    flush/close it and restore the previous recorder."""

    def __init__(self, recorder: Recorder, close: bool = True):
        self.recorder = recorder
        self._close = close
        self._prev: Recorder | None = None

    def __enter__(self) -> Recorder:
        self._prev = _active
        install(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = self._prev
        if self._close:
            self.recorder.close()
        return False


# -- module-level hooks (the cheap always-callable API) ---------------------

def count(name: str, n: int = 1) -> None:
    rec = _active
    if rec is not None:
        rec.count(name, n)


def observe(name: str, value: float) -> None:
    rec = _active
    if rec is not None:
        rec.observe(name, value)


def span(name: str, **attrs):
    rec = _active
    if rec is None:
        return NULL_SPAN
    return rec.span(name, **attrs)


def trace_context() -> tuple[str | None, str | None]:
    """(trace id, innermost open span id) to thread into a forked
    worker, or ``(None, None)`` when observability is off."""
    rec = _active
    if rec is None:
        return (None, None)
    return (rec.trace_id, rec.current_span_id())
