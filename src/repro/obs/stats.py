"""Offline aggregation of a recorded event stream (``repro stats``).

Reads the JSONL events a :class:`~repro.obs.sinks.JsonlSink` wrote,
re-aggregates them (spans by name, counters summed, histogram summaries
merged) and renders a text report.  Aggregating from the event stream —
rather than trusting the flush-time summaries alone — means streams
from several runs can be concatenated and summarized together.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Aggregate:
    """Re-aggregated view of one (or several concatenated) event streams."""

    spans: dict[str, dict[str, float]] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    hists: dict[str, dict[str, float]] = field(default_factory=dict)
    events: int = 0


def read_events(path, strict: bool = True) -> list[dict]:
    """Parse a JSONL metrics file into a list of event dicts.

    ``strict=False`` skips undecodable lines instead of raising — the
    stream of a worker killed mid-write legitimately ends in a torn
    line, and the executor still wants the events before it.
    """
    events = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if strict:
                raise
    return events


def aggregate_events(events: list[dict]) -> Aggregate:
    agg = Aggregate()
    for event in events:
        agg.events += 1
        kind = event.get("t")
        if kind == "span":
            stat = agg.spans.setdefault(
                event["name"], {"count": 0, "wall_s": 0.0, "cpu_s": 0.0})
            stat["count"] += 1
            stat["wall_s"] += event.get("wall_s", 0.0)
            stat["cpu_s"] += event.get("cpu_s", 0.0)
        elif kind == "counter":
            name = event["name"]
            agg.counters[name] = agg.counters.get(name, 0) + event["value"]
        elif kind == "hist":
            name = event["name"]
            prev = agg.hists.get(name)
            if prev is None:
                agg.hists[name] = {
                    k: event[k]
                    for k in ("count", "total", "min", "max", "mean",
                              "p50", "p95")
                    if k in event
                }
                if "buckets" in event:
                    agg.hists[name]["buckets"] = dict(event["buckets"])
            else:
                prev["count"] += event["count"]
                prev["total"] += event["total"]
                prev["min"] = min(prev["min"], event["min"])
                prev["max"] = max(prev["max"], event["max"])
                prev["mean"] = prev["total"] / prev["count"]
                # Percentiles cannot be merged exactly; keep the widest.
                prev["p50"] = max(prev["p50"], event["p50"])
                prev["p95"] = max(prev["p95"], event["p95"])
                # Bucket counts, by contrast, merge exactly by bound.
                if "buckets" in event:
                    merged = prev.setdefault("buckets", {})
                    for bound, n in event["buckets"].items():
                        merged[bound] = merged.get(bound, 0) + n
    return agg


def render_stats(agg: Aggregate) -> str:
    """Human-readable summary of an aggregate."""
    lines = [f"events: {agg.events}"]
    if agg.spans:
        lines.append("")
        lines.append(f"{'span':24s}{'count':>8s}{'wall s':>12s}"
                     f"{'cpu s':>12s}{'mean ms':>12s}")
        lines.append("-" * 68)
        for name in sorted(agg.spans):
            stat = agg.spans[name]
            mean_ms = 1000.0 * stat["wall_s"] / max(1, stat["count"])
            lines.append(
                f"{name:24s}{stat['count']:>8d}{stat['wall_s']:>12.4f}"
                f"{stat['cpu_s']:>12.4f}{mean_ms:>12.3f}"
            )
    if agg.counters:
        lines.append("")
        lines.append(f"{'counter':40s}{'value':>12s}")
        lines.append("-" * 52)
        for name in sorted(agg.counters):
            lines.append(f"{name:40s}{agg.counters[name]:>12d}")
    if agg.hists:
        lines.append("")
        lines.append(f"{'histogram':24s}{'count':>8s}{'mean':>12s}"
                     f"{'p50':>12s}{'p95':>12s}{'max':>12s}")
        lines.append("-" * 80)
        for name in sorted(agg.hists):
            h = agg.hists[name]
            lines.append(
                f"{name:24s}{h['count']:>8d}{h['mean']:>12.5f}"
                f"{h['p50']:>12.5f}{h['p95']:>12.5f}{h['max']:>12.5f}"
            )
    return "\n".join(lines)


def render_stats_file(path) -> str:
    """Convenience: read + aggregate + render one metrics file."""
    return render_stats(aggregate_events(read_events(path)))
