"""The RX64 -> REX IL lifter, plus flag/branch condition semantics.

``lift`` is a complete, faithful lifter.  Tool capability gaps (missing
FP semantics, stack ops without memory effects, absent division guards)
are enforced by the *engines* against their tool profile when they
interpret the IL — the observable failures are therefore produced at
exactly the pipeline stage the paper attributes them to.

``flag_condition`` builds the symbolic branch condition from the last
flag-setting operation, the way real lifters condense cmp+jcc pairs.
"""

from __future__ import annotations

from ..errors import SolverError
from ..isa import COND_BRANCHES, LOAD_INFO, STORE_INFO, Imm, Instruction, Op
from ..smt import (
    Expr,
    mk_binop,
    mk_bool_and,
    mk_bool_not,
    mk_bool_or,
    mk_cmp,
    mk_const,
    mk_eq,
    mk_extract,
    mk_fp,
    mk_zext,
)
from . import il

_ALU_MAP = {
    Op.ADD: "add", Op.ADDI: "add",
    Op.SUB: "sub", Op.SUBI: "sub",
    Op.MUL: "mul", Op.MULI: "mul",
    Op.UDIV: "udiv", Op.SDIV: "sdiv",
    Op.UREM: "urem", Op.SREM: "srem",
    Op.AND: "and", Op.ANDI: "and",
    Op.OR: "or", Op.ORI: "or",
    Op.XOR: "xor", Op.XORI: "xor",
    Op.SHL: "shl", Op.SHLI: "shl",
    Op.SHR: "lshr", Op.SHRI: "lshr",
    Op.SAR: "ashr", Op.SARI: "ashr",
}

_FP_BIN_MAP = {
    Op.FADDS: "fadd32", Op.FSUBS: "fsub32", Op.FMULS: "fmul32", Op.FDIVS: "fdiv32",
    Op.FADDD: "fadd64", Op.FSUBD: "fsub64", Op.FMULD: "fmul64", Op.FDIVD: "fdiv64",
}

_FP_CVT_MAP = {
    Op.CVTIFS: "i2f32", Op.CVTFIS: "f2i32",
    Op.CVTIFD: "i2f64", Op.CVTFID: "f2i64",
    Op.CVTSD: "f32to64", Op.CVTDS: "f64to32",
}


def _src(operand) -> il.Src:
    if isinstance(operand, Imm):
        return il.ConstRef(operand.value)
    return il.RegRef(operand.index)


def lift(instr: Instruction) -> list[il.Stmt]:
    """Lift one instruction to REX IL."""
    op = instr.op
    ops = instr.operands
    if op is Op.NOP:
        return []
    if op is Op.MOV:
        return [il.Move(il.RegRef(ops[0].index), il.RegRef(ops[1].index))]
    if op is Op.MOVI:
        return [il.Move(il.RegRef(ops[0].index), il.ConstRef(ops[1].value))]
    if op in LOAD_INFO:
        width, signed = LOAD_INFO[op]
        return [
            il.Lea(il.TmpRef(0), il.RegRef(ops[1].base), ops[1].disp),
            il.Load(il.RegRef(ops[0].index), il.TmpRef(0), width, signed),
        ]
    if op in STORE_INFO:
        return [
            il.Lea(il.TmpRef(0), il.RegRef(ops[0].base), ops[0].disp),
            il.Store(il.TmpRef(0), il.RegRef(ops[1].index), STORE_INFO[op]),
        ]
    if op is Op.LEA:
        return [il.Lea(il.RegRef(ops[0].index), il.RegRef(ops[1].base), ops[1].disp)]
    if op in _ALU_MAP:
        name = _ALU_MAP[op]
        dst = il.RegRef(ops[0].index)
        rhs = _src(ops[1])
        stmts: list[il.Stmt] = []
        if name in ("udiv", "sdiv", "urem", "srem"):
            stmts.append(il.DivGuard(rhs))
        stmts.append(il.BinOp(name, dst, dst, rhs, set_flags=True))
        return stmts
    if op is Op.NOT:
        return [il.UnOp("bvnot", il.RegRef(ops[0].index), il.RegRef(ops[0].index),
                        set_flags=True)]
    if op is Op.NEG:
        dst = il.RegRef(ops[0].index)
        return [il.BinOp("sub", dst, il.ConstRef(0), dst, set_flags=True)]
    if op in (Op.CMP, Op.CMPI):
        return [il.SetFlags("sub", il.RegRef(ops[0].index), _src(ops[1]))]
    if op is Op.TEST:
        return [il.SetFlags("test", il.RegRef(ops[0].index), il.RegRef(ops[1].index))]
    if op is Op.JMP:
        return [il.Jump(il.ConstRef(ops[0].addr))]
    if op in COND_BRANCHES:
        return [il.CondBranch(op.name.lower(), ops[0].addr)]
    if op is Op.JMPR:
        return [il.Jump(il.RegRef(ops[0].index))]
    if op is Op.CALL:
        return [il.Call(il.ConstRef(ops[0].addr), instr.next_addr)]
    if op is Op.CALLR:
        return [il.Call(il.RegRef(ops[0].index), instr.next_addr)]
    if op is Op.RET:
        return [il.Ret()]
    if op is Op.PUSH:
        return [il.Push(il.RegRef(ops[0].index))]
    if op is Op.POP:
        return [il.Pop(il.RegRef(ops[0].index))]
    if op is Op.SYSCALL:
        return [il.Syscall()]
    if op is Op.HLT:
        return [il.Halt()]
    if op is Op.FLD:
        return [
            il.Lea(il.TmpRef(0), il.RegRef(ops[1].base), ops[1].disp),
            il.Load(il.FRegRef(ops[0].index), il.TmpRef(0), 8),
        ]
    if op is Op.FST:
        return [
            il.Lea(il.TmpRef(0), il.RegRef(ops[0].base), ops[0].disp),
            il.Store(il.TmpRef(0), il.FRegRef(ops[1].index), 8),
        ]
    if op is Op.FMOV:
        return [il.Move(il.FRegRef(ops[0].index), il.FRegRef(ops[1].index))]
    if op is Op.FMOVR:
        return [il.Move(il.FRegRef(ops[0].index), il.RegRef(ops[1].index))]
    if op is Op.RMOVF:
        return [il.Move(il.RegRef(ops[0].index), il.FRegRef(ops[1].index))]
    if op in _FP_BIN_MAP:
        dst = il.FRegRef(ops[0].index)
        return [il.FpOp(_FP_BIN_MAP[op], dst, (dst, il.FRegRef(ops[1].index)))]
    if op is Op.FCMPS:
        return [il.FpFlags("fcmp32", il.FRegRef(ops[0].index), il.FRegRef(ops[1].index))]
    if op is Op.FCMPD:
        return [il.FpFlags("fcmp64", il.FRegRef(ops[0].index), il.FRegRef(ops[1].index))]
    if op in _FP_CVT_MAP:
        name = _FP_CVT_MAP[op]
        if op in (Op.CVTIFS, Op.CVTIFD):
            return [il.FpOp(name, il.FRegRef(ops[0].index), (il.RegRef(ops[1].index),))]
        if op in (Op.CVTFIS, Op.CVTFID):
            return [il.FpOp(name, il.RegRef(ops[0].index), (il.FRegRef(ops[1].index),))]
        return [il.FpOp(name, il.FRegRef(ops[0].index), (il.FRegRef(ops[1].index),))]
    raise SolverError(f"lift: unhandled opcode {op.name}")  # pragma: no cover


def apply_binop(name: str, a: Expr, b: Expr) -> Expr:
    """Apply an IL binop to expression operands.

    Signed division/remainder expand into the unsigned primitives the
    bit-blaster supports (truncating-toward-zero semantics, matching
    the concrete ALU).  A symbolic divisor raises :class:`SolverError`
    — the engines map that to an unsupported-theory diagnostic.
    """
    from ..smt import mk_ite, mk_neg

    if name in ("sdiv", "srem"):
        if a.is_const and b.is_const:
            from ..vm.cpu import alu

            return mk_const(alu(name, a.value, b.value), a.width)
        if not b.is_const or b.value == 0:
            raise SolverError(f"{name}: non-constant or zero divisor")
        from ..smt import to_signed as _ts

        divisor = _ts(b.value, b.width)
        negative = divisor < 0
        magnitude = mk_const(abs(divisor), a.width)
        zero = mk_const(0, a.width)
        a_neg = mk_cmp("slt", a, zero)
        abs_a = mk_ite(a_neg, mk_neg(a), a)
        q_mag = mk_binop("udiv", abs_a, magnitude)
        if name == "sdiv":
            flip = mk_bool_not(a_neg) if negative else a_neg
            return mk_ite(flip, mk_neg(q_mag), q_mag)
        r_mag = mk_binop("urem", abs_a, magnitude)
        return mk_ite(a_neg, mk_neg(r_mag), r_mag)
    return mk_binop(name, a, b)


# -- flag semantics --------------------------------------------------------------

def flag_condition(kind: str, a: Expr, b: Expr | None, cc: str) -> Expr:
    """Symbolic branch condition for jcc after a flag-setting op.

    *kind* is ``sub`` (cmp a,b), ``test`` (a & b), ``logic`` (flags from
    a result value in *a*), ``fcmp32``/``fcmp64`` (ucomis-style).
    """
    if kind == "sub":
        table = {
            "jz": lambda: mk_eq(a, b),
            "jnz": lambda: mk_bool_not(mk_eq(a, b)),
            "jl": lambda: mk_cmp("slt", a, b),
            "jle": lambda: mk_cmp("sle", a, b),
            "jg": lambda: mk_cmp("slt", b, a),
            "jge": lambda: mk_cmp("sle", b, a),
            "jb": lambda: mk_cmp("ult", a, b),
            "jbe": lambda: mk_cmp("ule", a, b),
            "ja": lambda: mk_cmp("ult", b, a),
            "jae": lambda: mk_cmp("ule", b, a),
        }
        return table[cc]()
    if kind in ("test", "logic"):
        result = mk_binop("and", a, b) if kind == "test" else a
        zero = mk_const(0, result.width)
        table = {
            "jz": lambda: mk_eq(result, zero),
            "jnz": lambda: mk_bool_not(mk_eq(result, zero)),
            "jl": lambda: mk_cmp("slt", result, zero),
            "jle": lambda: mk_cmp("sle", result, zero),
            "jg": lambda: mk_cmp("slt", zero, result),
            "jge": lambda: mk_cmp("sle", zero, result),
            "jb": lambda: mk_const(0, 1),     # CF is cleared
            "jbe": lambda: mk_eq(result, zero),
            "ja": lambda: mk_bool_not(mk_eq(result, zero)),
            "jae": lambda: mk_const(1, 1),
        }
        return table[cc]()
    if kind in ("fcmp32", "fcmp64"):
        suffix = kind[-2:]
        if suffix == "32":
            a32, b32 = mk_extract(a, 31, 0), mk_extract(b, 31, 0)
        else:
            a32, b32 = a, b
        table = {
            "jz": lambda: mk_fp(f"feq{suffix}", a32, b32),
            "jnz": lambda: mk_bool_not(mk_fp(f"feq{suffix}", a32, b32)),
            "jb": lambda: mk_fp(f"flt{suffix}", a32, b32),
            "jbe": lambda: mk_fp(f"fle{suffix}", a32, b32),
            "ja": lambda: mk_fp(f"flt{suffix}", b32, a32),
            "jae": lambda: mk_fp(f"fle{suffix}", b32, a32),
            # Signed jcc after fcmp never appears in compiled code; fall
            # back to the unsigned forms.
            "jl": lambda: mk_fp(f"flt{suffix}", a32, b32),
            "jle": lambda: mk_fp(f"fle{suffix}", a32, b32),
            "jg": lambda: mk_fp(f"flt{suffix}", b32, a32),
            "jge": lambda: mk_fp(f"fle{suffix}", b32, a32),
        }
        return table[cc]()
    raise SolverError(f"flag_condition: unknown kind {kind}")


def apply_fp_op(name: str, args: list[Expr]) -> Expr:
    """Apply an FP micro-op to 64-bit register expressions, handling the
    low-32-bit packing the single-precision instructions use."""
    if name.endswith("32") and name not in ("f2i32", "i2f32", "f64to32"):
        narrowed = [mk_extract(a, 31, 0) for a in args]
        return mk_zext(mk_fp(name, *narrowed), 64)
    if name == "f2i32":
        return mk_fp(name, mk_extract(args[0], 31, 0))
    if name in ("i2f32", "f64to32"):
        return mk_zext(mk_fp(name, *args), 64)
    if name == "f32to64":
        return mk_fp(name, mk_extract(args[0], 31, 0))
    return mk_fp(name, *args)
