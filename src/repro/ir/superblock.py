"""Shared, process-wide execution cache: lifted IL and superblocks.

Both execution engines used to re-derive IL per consumer: the symbolic
explorer called :func:`~repro.ir.lifter.lift` on every step and the
trace replayer kept a *per-replay* lift cache that died with each
round.  This module hoists that work to one :class:`LiftCache` per
image (keyed by the REXF image digest, the same content address the
campaign store uses), so

* every replay round and every symbolic-execution cell of one image
  shares a single pc -> IL map,
* straight-line runs of instructions are grouped into
  :class:`SuperBlock` records once and re-dispatched as a unit, and
* the whole map can be persisted into the campaign store's ``lift/``
  tree, letting a warm campaign skip lifting entirely
  (``lift.instructions`` stays at zero on a warm run).

Self-modifying code is handled by :meth:`LiftCache.invalidate_range`:
any concrete store that overlaps a cached instruction's byte range
evicts the stale entries (and every superblock touching them).  Writes
outside the image's executable sections — the overwhelmingly common
case — are rejected with two integer comparisons.
"""

from __future__ import annotations

import hashlib

from ..isa import Instruction
from . import il
from .lifter import lift

#: Bump when the serialized IL representation changes; persisted lift
#: payloads under any other schema are ignored (and re-lifted).
LIFT_SCHEMA = 1

#: Longest straight-line run grouped into one superblock.
MAX_BLOCK = 64

#: IL statements that transfer or end control; a superblock never
#: contains one (the generic per-instruction path handles them).
TERMINATORS = (il.CondBranch, il.Jump, il.Call, il.Ret, il.Syscall,
               il.Halt, il.DivGuard)

_MISSING = object()


def straight_line(stmts) -> bool:
    """True when *stmts* never transfers control (superblock member)."""
    return not any(isinstance(s, TERMINATORS) for s in stmts)


class SuperBlock:
    """A run of consecutive straight-line instructions.

    ``entries`` holds one ``(pc, next_pc, stmts)`` triple per
    instruction; consumers compile the stmt lists into whatever
    dispatch form they need (the explorer builds handler closures).
    """

    __slots__ = ("entry", "entries", "lo", "hi")

    def __init__(self, entry: int, entries: tuple, lo: int, hi: int):
        self.entry = entry
        self.entries = entries
        self.lo = lo    # first byte covered
        self.hi = hi    # one past the last byte covered

    def __len__(self) -> int:
        return len(self.entries)


class LiftCache:
    """Process-wide lifted-IL cache for one image.

    ``stmts`` maps pc -> ``(instr, size, stmts)``.  *instr* is the
    decoded :class:`Instruction` the statements were lifted from when
    known (``None`` for entries restored from the store); lookups that
    carry their own decoded instruction verify it against the recorded
    one, so a pc rewritten by self-modifying code re-lifts instead of
    serving stale IL.
    """

    def __init__(self, digest: str, image):
        self.digest = digest
        self.image = image
        self.stmts: dict[int, tuple[Instruction | None, int, list]] = {}
        self.blocks: dict[int, SuperBlock | None] = {}
        #: Compiled per-pc replay programs (closures; never persisted).
        self.programs: dict[int, tuple[Instruction, list]] = {}
        # Fast rejection bounds for invalidate_range: only writes into
        # an executable section can touch cached code.
        ranges = image.code_ranges()
        self.code_lo = min((lo for lo, _ in ranges), default=0)
        self.code_hi = max((hi for _, hi in ranges), default=0)
        #: pcs ever evicted by a concrete store; never persisted (their
        #: image bytes no longer describe what executed).
        self.smc_pcs: set[int] = set()
        self.dirty = False
        #: Entries restored from the campaign store (telemetry).
        self.loaded = 0
        #: Cumulative count of actual lifter runs; consumers snapshot a
        #: delta around their run to report ``lift.instructions``.
        self.fresh_lifts = 0

    # -- lifting -----------------------------------------------------------

    def get(self, pc: int):
        return self.stmts.get(pc)

    def put(self, pc: int, instr: Instruction | None, size: int,
            stmts: list) -> None:
        self.stmts[pc] = (instr, size, stmts)
        self.dirty = True

    def lift_for(self, instr: Instruction) -> tuple[list, bool]:
        """The IL for *instr*, lifting at most once per pc.

        Returns ``(stmts, fresh)`` where *fresh* is True when this call
        actually ran the lifter.  A cached entry whose recorded
        instruction differs from *instr* (self-modifying code replayed
        at the same pc) is replaced, not served.
        """
        pc = instr.addr
        entry = self.stmts.get(pc)
        if entry is not None:
            cached_instr = entry[0]
            if cached_instr is None:
                # Restored from the store: trust the content address
                # (same image ⇒ same initial bytes) but record the
                # decoded form so later lookups verify for free.
                stmts = entry[2]
                self.stmts[pc] = (instr, instr.size, stmts)
                return stmts, False
            if cached_instr is instr or cached_instr == instr:
                return entry[2], False
            self._evict(pc)
        stmts = lift(instr)
        self.stmts[pc] = (instr, instr.size, stmts)
        self.dirty = True
        self.fresh_lifts += 1
        return stmts, True

    # -- superblocks -------------------------------------------------------

    def block_at(self, pc: int, fetch) -> SuperBlock | None:
        """The superblock starting at *pc* (built on first request).

        *fetch* maps a pc to a decoded :class:`Instruction` or ``None``
        when the address is not decodable code.  ``None`` is returned
        (and cached) when the instruction at *pc* is itself a
        terminator — the per-instruction path owns it.
        """
        block = self.blocks.get(pc, _MISSING)
        if block is not _MISSING:
            return block
        entries = []
        cur = pc
        while len(entries) < MAX_BLOCK:
            instr = fetch(cur)
            if instr is None:
                break
            stmts, _ = self.lift_for(instr)
            if not straight_line(stmts):
                break
            entries.append((cur, instr.next_addr, stmts))
            cur = instr.next_addr
        block = SuperBlock(pc, tuple(entries), pc, cur) if entries else None
        self.blocks[pc] = block
        return block

    # -- self-modifying code -----------------------------------------------

    def invalidate_range(self, addr: int, length: int) -> None:
        """Evict every cached entry overlapping ``[addr, addr+length)``.

        Called on every concrete memory store; the common case (a write
        outside the image's executable sections) exits after two
        comparisons.
        """
        if addr + length <= self.code_lo or addr >= self.code_hi:
            return
        end = addr + length
        for pc, (_, size, _stmts) in list(self.stmts.items()):
            if pc < end and pc + size > addr:
                self._evict(pc)
        for entry, block in list(self.blocks.items()):
            if block is None:
                # A "no block here" verdict may hinge on bytes that just
                # changed; forget it so the next request rebuilds.
                if addr <= entry < end:
                    del self.blocks[entry]
            elif block.lo < end and block.hi > addr:
                del self.blocks[entry]

    def _evict(self, pc: int) -> None:
        self.stmts.pop(pc, None)
        self.programs.pop(pc, None)
        self.smc_pcs.add(pc)
        for entry, block in list(self.blocks.items()):
            if block is not None and block.lo <= pc < block.hi:
                del self.blocks[entry]

    # -- persistence -------------------------------------------------------

    def serialize(self) -> dict:
        """JSON-able payload of every persistable entry.

        Entries whose pc was ever rewritten by self-modifying code are
        excluded: their statements describe runtime bytes, not the
        image's, and the store is keyed by the image digest.
        """
        entries = [
            [pc, size, [encode_stmt(s) for s in stmts]]
            for pc, (_, size, stmts) in sorted(self.stmts.items())
            if pc not in self.smc_pcs
        ]
        return {"schema": LIFT_SCHEMA, "image": self.digest,
                "entries": entries}

    def load(self, payload: dict) -> int:
        """Restore persisted entries (never overwriting live ones)."""
        if payload.get("schema") != LIFT_SCHEMA:
            return 0
        if payload.get("image") != self.digest:
            return 0
        restored = 0
        for pc, size, encoded in payload.get("entries", ()):
            if pc in self.stmts or pc in self.smc_pcs:
                continue
            self.stmts[pc] = (None, size, [decode_stmt(e) for e in encoded])
            restored += 1
        self.loaded += restored
        return restored


# -- IL (de)serialization ---------------------------------------------------

def _enc_ref(ref):
    if isinstance(ref, il.RegRef):
        return ["r", ref.index]
    if isinstance(ref, il.FRegRef):
        return ["f", ref.index]
    if isinstance(ref, il.TmpRef):
        return ["t", ref.index]
    return ["c", ref.value, ref.width]


def _dec_ref(data):
    kind = data[0]
    if kind == "r":
        return il.RegRef(data[1])
    if kind == "f":
        return il.FRegRef(data[1])
    if kind == "t":
        return il.TmpRef(data[1])
    return il.ConstRef(data[1], data[2])


def encode_stmt(stmt) -> list:
    """One IL statement as a JSON-able list (see :func:`decode_stmt`)."""
    e = _enc_ref
    if isinstance(stmt, il.Move):
        return ["mv", e(stmt.dst), e(stmt.src)]
    if isinstance(stmt, il.BinOp):
        return ["bin", stmt.op, e(stmt.dst), e(stmt.a), e(stmt.b),
                stmt.set_flags]
    if isinstance(stmt, il.UnOp):
        return ["un", stmt.op, e(stmt.dst), e(stmt.a), stmt.set_flags]
    if isinstance(stmt, il.Load):
        return ["ld", e(stmt.dst), e(stmt.addr), stmt.width, stmt.signed]
    if isinstance(stmt, il.Store):
        return ["st", e(stmt.addr), e(stmt.value), stmt.width]
    if isinstance(stmt, il.Lea):
        return ["lea", e(stmt.dst), e(stmt.base), stmt.disp]
    if isinstance(stmt, il.SetFlags):
        return ["fl", stmt.kind, e(stmt.a), e(stmt.b)]
    if isinstance(stmt, il.CondBranch):
        return ["cb", stmt.cc, stmt.target]
    if isinstance(stmt, il.Jump):
        return ["jmp", e(stmt.target)]
    if isinstance(stmt, il.Call):
        return ["call", e(stmt.target), stmt.return_addr]
    if isinstance(stmt, il.Ret):
        return ["ret"]
    if isinstance(stmt, il.Push):
        return ["push", e(stmt.src)]
    if isinstance(stmt, il.Pop):
        return ["pop", e(stmt.dst)]
    if isinstance(stmt, il.Syscall):
        return ["sys"]
    if isinstance(stmt, il.Halt):
        return ["halt"]
    if isinstance(stmt, il.FpOp):
        return ["fp", stmt.op, e(stmt.dst), [e(s) for s in stmt.srcs]]
    if isinstance(stmt, il.FpFlags):
        return ["fpfl", stmt.kind, e(stmt.a), e(stmt.b)]
    if isinstance(stmt, il.DivGuard):
        return ["div", e(stmt.divisor)]
    raise ValueError(f"unencodable IL stmt {stmt!r}")


def decode_stmt(data: list):
    """Inverse of :func:`encode_stmt`."""
    kind = data[0]
    d = _dec_ref
    if kind == "mv":
        return il.Move(d(data[1]), d(data[2]))
    if kind == "bin":
        return il.BinOp(data[1], d(data[2]), d(data[3]), d(data[4]), data[5])
    if kind == "un":
        return il.UnOp(data[1], d(data[2]), d(data[3]), data[4])
    if kind == "ld":
        return il.Load(d(data[1]), d(data[2]), data[3], data[4])
    if kind == "st":
        return il.Store(d(data[1]), d(data[2]), data[3])
    if kind == "lea":
        return il.Lea(d(data[1]), d(data[2]), data[3])
    if kind == "fl":
        return il.SetFlags(data[1], d(data[2]), d(data[3]))
    if kind == "cb":
        return il.CondBranch(data[1], data[2])
    if kind == "jmp":
        return il.Jump(d(data[1]))
    if kind == "call":
        return il.Call(d(data[1]), data[2])
    if kind == "ret":
        return il.Ret()
    if kind == "push":
        return il.Push(d(data[1]))
    if kind == "pop":
        return il.Pop(d(data[1]))
    if kind == "sys":
        return il.Syscall()
    if kind == "halt":
        return il.Halt()
    if kind == "fp":
        return il.FpOp(data[1], d(data[2]), tuple(d(s) for s in data[3]))
    if kind == "fpfl":
        return il.FpFlags(data[1], d(data[2]), d(data[3]))
    if kind == "div":
        return il.DivGuard(d(data[1]))
    raise ValueError(f"undecodable IL record {data!r}")


# -- process-wide registry --------------------------------------------------

_CACHES: dict[str, LiftCache] = {}
_STORE = None


def image_digest(image) -> str:
    """The image's content address (same definition the store uses)."""
    return hashlib.sha256(image.to_bytes()).hexdigest()


def attach_store(store) -> None:
    """Persist lift caches into *store* (a ``ResultStore``) from now on.

    Caches created after this call preload from the store's ``lift/``
    tree; :func:`persist` writes dirty caches back.
    """
    global _STORE
    _STORE = store


def cache_for(image) -> LiftCache:
    """The process-wide :class:`LiftCache` for *image*."""
    digest = image_digest(image)
    cache = _CACHES.get(digest)
    if cache is None:
        cache = LiftCache(digest, image)
        _CACHES[digest] = cache
        if _STORE is not None:
            payload = _STORE.get_lift(digest)
            if payload is not None:
                restored = cache.load(payload)
                if restored:
                    from .. import obs

                    obs.count("cache.lift_store_hits", restored)
                cache.dirty = False
    return cache


def persist(cache: LiftCache) -> bool:
    """Write *cache* back to the attached store, if dirty."""
    if _STORE is None or not cache.dirty:
        return False
    _STORE.put_lift(cache.digest, cache.serialize())
    cache.dirty = False
    return True


def reset() -> None:
    """Drop every cache and detach the store (test isolation)."""
    global _STORE
    _CACHES.clear()
    _STORE = None
