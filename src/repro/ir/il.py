"""REX IL — the intermediate language all engines lift RX64 into.

Plays the role BAP IL / Triton SSA / VEX play in the paper's tool
stacks: each machine instruction expands to a short list of explicit
micro-operations over temporaries, registers and memory, so symbolic
engines interpret IL rather than raw opcodes.

Sources/destinations are small reference objects (``RegRef``,
``FRegRef``, ``TmpRef``, ``ConstRef``); statements are dataclasses.
Floating-point work is isolated in :class:`FpOp` nodes so a lifter
profile can exclude exactly FP coverage — mirroring Triton's missing
``cvtsi2sd``/``ucomisd`` support that the paper blames for its Es1
failures.
"""

from __future__ import annotations

from dataclasses import dataclass


# -- value references ---------------------------------------------------------

@dataclass(frozen=True)
class RegRef:
    index: int

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclass(frozen=True)
class FRegRef:
    index: int

    def __str__(self) -> str:
        return f"f{self.index}"


@dataclass(frozen=True)
class TmpRef:
    index: int

    def __str__(self) -> str:
        return f"t{self.index}"


@dataclass(frozen=True)
class ConstRef:
    value: int
    width: int = 64

    def __str__(self) -> str:
        return f"0x{self.value:x}"


Src = RegRef | FRegRef | TmpRef | ConstRef
Dst = RegRef | FRegRef | TmpRef


# -- statements ----------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    pass


@dataclass(frozen=True)
class Move(Stmt):
    dst: Dst
    src: Src

    def __str__(self) -> str:
        return f"{self.dst} = {self.src}"


@dataclass(frozen=True)
class BinOp(Stmt):
    """dst = op(a, b); op is an smt binop name or 'sdiv'/'srem'."""

    op: str
    dst: Dst
    a: Src
    b: Src
    set_flags: bool = False

    def __str__(self) -> str:
        flags = " [flags]" if self.set_flags else ""
        return f"{self.dst} = {self.op}({self.a}, {self.b}){flags}"


@dataclass(frozen=True)
class UnOp(Stmt):
    op: str  # "bvnot" | "neg"
    dst: Dst
    a: Src
    set_flags: bool = False

    def __str__(self) -> str:
        return f"{self.dst} = {self.op}({self.a})"


@dataclass(frozen=True)
class Load(Stmt):
    dst: Dst
    addr: Src
    width: int  # bytes
    signed: bool = False

    def __str__(self) -> str:
        return f"{self.dst} = load{self.width * 8}[{self.addr}]"


@dataclass(frozen=True)
class Store(Stmt):
    addr: Src
    value: Src
    width: int  # bytes

    def __str__(self) -> str:
        return f"store{self.width * 8}[{self.addr}] = {self.value}"


@dataclass(frozen=True)
class Lea(Stmt):
    dst: Dst
    base: Src
    disp: int

    def __str__(self) -> str:
        return f"{self.dst} = {self.base} + {self.disp}"


@dataclass(frozen=True)
class SetFlags(Stmt):
    """Record flag-producing comparison: kind in sub/logic/fcmp32/fcmp64."""

    kind: str
    a: Src
    b: Src

    def __str__(self) -> str:
        return f"flags = {self.kind}({self.a}, {self.b})"


@dataclass(frozen=True)
class CondBranch(Stmt):
    cc: str      # jz/jnz/jl/jle/jg/jge/jb/jbe/ja/jae
    target: int  # absolute address

    def __str__(self) -> str:
        return f"if {self.cc}(flags) goto 0x{self.target:x}"


@dataclass(frozen=True)
class Jump(Stmt):
    target: Src  # ConstRef for direct, RegRef/TmpRef for indirect

    def __str__(self) -> str:
        return f"goto {self.target}"


@dataclass(frozen=True)
class Call(Stmt):
    target: Src
    return_addr: int

    def __str__(self) -> str:
        return f"call {self.target} (ret 0x{self.return_addr:x})"


@dataclass(frozen=True)
class Ret(Stmt):
    def __str__(self) -> str:
        return "ret"


@dataclass(frozen=True)
class Push(Stmt):
    src: Src

    def __str__(self) -> str:
        return f"push {self.src}"


@dataclass(frozen=True)
class Pop(Stmt):
    dst: Dst

    def __str__(self) -> str:
        return f"pop {self.dst}"


@dataclass(frozen=True)
class Syscall(Stmt):
    def __str__(self) -> str:
        return "syscall"


@dataclass(frozen=True)
class Halt(Stmt):
    def __str__(self) -> str:
        return "halt"


@dataclass(frozen=True)
class FpOp(Stmt):
    """Floating-point micro-op; op is an smt fp op name, or 'fmovbits'."""

    op: str
    dst: Dst
    srcs: tuple[Src, ...]

    def __str__(self) -> str:
        args = ", ".join(str(s) for s in self.srcs)
        return f"{self.dst} = {self.op}({args})"


@dataclass(frozen=True)
class FpFlags(Stmt):
    """ucomis-style flag set from an FP compare."""

    kind: str  # fcmp32 | fcmp64
    a: Src
    b: Src

    def __str__(self) -> str:
        return f"flags = {self.kind}({self.a}, {self.b})"


@dataclass(frozen=True)
class DivGuard(Stmt):
    """Implicit division-by-zero guard.

    Lifters that model exception semantics (BAP-style) emit this before
    a division; engines treat it as a conditional branch to the fault
    handler whose negation (``divisor == 0``) is a schedulable test
    case.  Lifters without it simply never generate the fault path.
    """

    divisor: Src

    def __str__(self) -> str:
        return f"guard {self.divisor} != 0"
