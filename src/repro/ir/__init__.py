"""REX IL and the RX64 lifter."""

from . import il
from .lifter import apply_binop, apply_fp_op, flag_condition, lift

__all__ = ["apply_binop", "apply_fp_op", "flag_condition", "il", "lift"]
