"""Error taxonomy for symbolic reasoning, following the paper's Section IV.A.

The paper defines four stages at which symbolic reasoning can go wrong
(Es0..Es3), plus two outcome labels used in its Table II: ``E`` for an
abnormal exit (crash, memory-out, or no feedback within the time budget)
and ``P`` for a partial success (the tool believes the bomb is reachable
but, because of system-call simulation, the generated values do not
actually trigger it).

Engines in this repository never *assign* these labels directly.  They
emit structured :class:`Diagnostic` events while running; the evaluation
harness classifies the run outcome from the diagnostics and from a
concrete replay of any claimed solution (see :mod:`repro.eval.classify`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .obs import provenance as _provenance


class ErrorStage(enum.Enum):
    """Outcome labels used in the paper's Table II."""

    OK = "ok"
    ES0 = "Es0"  # symbolic variable declaration errors
    ES1 = "Es1"  # instruction tracing / lifting errors
    ES2 = "Es2"  # data propagation errors
    ES3 = "Es3"  # constraint modeling errors
    E = "E"      # abnormal exit / resource exhaustion / no feedback
    P = "P"      # partial success under system-call simulation

    @property
    def solved(self) -> bool:
        return self is ErrorStage.OK

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "ok" if self is ErrorStage.OK else self.value


class DiagnosticKind(enum.Enum):
    """Structured events emitted by the engines while analyzing a bomb.

    Each kind maps to the error stage it evidences; the mapping encodes
    the causal chains described in Section IV of the paper.
    """

    # -- Es0: a branch depends on data that was never declared symbolic.
    NO_SYMBOLIC_SOURCE = "no-symbolic-source"
    CONCRETE_LENGTH = "concrete-length"

    # -- Es2 flavor specific to argv declaration: the input is modeled
    #    as a fixed-size word, so length-dependent dataflow breaks.
    FIXED_WORD_ARGV = "fixed-word-argv"

    # -- Es1: the lifter cannot (fully) interpret an instruction.
    LIFT_UNSUPPORTED = "lift-unsupported"
    LIFT_INCOMPLETE = "lift-incomplete"

    # -- Es2: symbolic data propagation was cut or mismodeled.
    TAINT_LOST = "taint-lost"
    CONCRETIZED_ENV = "concretized-env"
    CROSS_THREAD_LOST = "cross-thread-lost"
    CROSS_PROCESS_LOST = "cross-process-lost"
    CONCRETIZED_JUMP = "concretized-jump"
    CONCRETIZED_READ = "concretized-read"

    # -- Es3: the constraint model omits required theory or memory data.
    MEM_ADDR_CONCRETIZED = "mem-addr-concretized"
    SYMBOLIC_JUMP_UNMODELED = "symbolic-jump-unmodeled"
    UNMODELED_MEMORY_REF = "unmodeled-memory-ref"
    UNSUPPORTED_THEORY = "unsupported-theory"

    # -- E: abnormal termination.
    RESOURCE_EXHAUSTED = "resource-exhausted"
    ENGINE_CRASH = "engine-crash"
    UNSUPPORTED_SYSCALL = "unsupported-syscall"

    # -- P: system-call simulation invented a value.
    SIMULATED_SYSCALL_VALUE = "simulated-syscall-value"


#: Which error stage each diagnostic kind evidences.
DIAGNOSTIC_STAGE: dict[DiagnosticKind, ErrorStage] = {
    DiagnosticKind.NO_SYMBOLIC_SOURCE: ErrorStage.ES0,
    DiagnosticKind.CONCRETE_LENGTH: ErrorStage.ES0,
    DiagnosticKind.FIXED_WORD_ARGV: ErrorStage.ES2,
    DiagnosticKind.LIFT_UNSUPPORTED: ErrorStage.ES1,
    DiagnosticKind.LIFT_INCOMPLETE: ErrorStage.ES1,
    DiagnosticKind.TAINT_LOST: ErrorStage.ES2,
    DiagnosticKind.CONCRETIZED_ENV: ErrorStage.ES2,
    DiagnosticKind.CROSS_THREAD_LOST: ErrorStage.ES2,
    DiagnosticKind.CROSS_PROCESS_LOST: ErrorStage.ES2,
    DiagnosticKind.CONCRETIZED_JUMP: ErrorStage.ES2,
    DiagnosticKind.CONCRETIZED_READ: ErrorStage.ES2,
    DiagnosticKind.MEM_ADDR_CONCRETIZED: ErrorStage.ES3,
    DiagnosticKind.SYMBOLIC_JUMP_UNMODELED: ErrorStage.ES3,
    DiagnosticKind.UNMODELED_MEMORY_REF: ErrorStage.ES3,
    DiagnosticKind.UNSUPPORTED_THEORY: ErrorStage.ES3,
    DiagnosticKind.RESOURCE_EXHAUSTED: ErrorStage.E,
    DiagnosticKind.ENGINE_CRASH: ErrorStage.E,
    DiagnosticKind.UNSUPPORTED_SYSCALL: ErrorStage.E,
    DiagnosticKind.SIMULATED_SYSCALL_VALUE: ErrorStage.P,
}


@dataclass(frozen=True)
class Diagnostic:
    """One structured event recorded by an engine during analysis."""

    kind: DiagnosticKind
    detail: str = ""
    pc: int | None = None

    @property
    def stage(self) -> ErrorStage:
        return DIAGNOSTIC_STAGE[self.kind]

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        loc = f" @0x{self.pc:x}" if self.pc is not None else ""
        return f"[{self.kind.value}]{loc} {self.detail}".rstrip()


@dataclass
class DiagnosticLog:
    """Accumulates diagnostics during an analysis run.

    Engines share one log per run; the classifier inspects it afterwards.
    """

    events: list[Diagnostic] = field(default_factory=list)

    def emit(self, kind: DiagnosticKind, detail: str = "", pc: int | None = None) -> None:
        self.events.append(Diagnostic(kind, detail, pc))
        # Mirror every diagnostic into the forensics collector as a
        # "drop" event: diagnostics are exactly the points where the
        # pipeline abandoned symbolic data or a solver obligation, so
        # this single funnel guarantees evidence for every non-OK cell.
        prov = _provenance.active()
        if prov is not None:
            prov.drop(kind.value, detail, pc, DIAGNOSTIC_STAGE[kind].value)

    def stages(self) -> set[ErrorStage]:
        return {d.stage for d in self.events}

    def has(self, kind: DiagnosticKind) -> bool:
        return any(d.kind is kind for d in self.events)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class AsmError(ReproError):
    """Raised by the assembler on malformed source."""


class LinkError(ReproError):
    """Raised by the linker on unresolved symbols or layout conflicts."""


class VMError(ReproError):
    """Raised by the concrete VM on a fatal machine fault."""


class CompileError(ReproError):
    """Raised by the BombC compiler on invalid source."""


class EngineError(ReproError):
    """Raised by an analysis engine; carries a diagnostic kind."""

    def __init__(self, kind: DiagnosticKind, detail: str = "", pc: int | None = None):
        super().__init__(f"{kind.value}: {detail}")
        self.diagnostic = Diagnostic(kind, detail, pc)


class SolverError(ReproError):
    """Raised by the SMT stack (budget exceeded, unsupported sort, ...)."""
