; The symbolic-jump gadget: jmpr to jg_blocks + v*16.  Every block is
; exactly 16 bytes (movi=10, ret=1, nop=1, jmp=5).  Block 7 escapes to
; the bomb trampoline.

.text
.global jump_gadget
jump_gadget:
    muli r1, 16
    movi r2, jg_blocks
    add r2, r1
    jmpr r2

jg_blocks:
    movi r0, 0          ; block 0
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 1          ; block 1
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 2          ; block 2
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 3          ; block 3
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 4          ; block 4
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 5          ; block 5
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 6          ; block 6
    ret
    nop
    nop
    nop
    nop
    nop
    jmp .Ltrigger       ; block 7
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    nop
    movi r0, 8          ; block 8
    ret
    nop
    nop
    nop
    nop
    nop
    movi r0, 9          ; block 9
    ret
    nop
    nop
    nop
    nop
    nop

.Ltrigger:
    call bomb
    movi r0, 7
    ret
