; Jump-table gadget: load a code address from jt_table[v] and jmpr to it.

.text
.global jump_table_gadget
jump_table_gadget:
    muli r1, 8
    movi r2, jt_table
    add r2, r1
    ld r3, [r2]
    jmpr r3

jt_b0:
    movi r0, 0
    ret
jt_b1:
    movi r0, 1
    ret
jt_b2:
    movi r0, 2
    ret
jt_b3:
    movi r0, 3
    ret
jt_b4:
    movi r0, 4
    ret
jt_b5:
    movi r0, 5
    ret
jt_b6:
    movi r0, 6
    ret
jt_b7:
    call bomb
    movi r0, 7
    ret
jt_b8:
    movi r0, 8
    ret
jt_b9:
    movi r0, 9
    ret

.data
.align 8
jt_table: .quad jt_b0, jt_b1, jt_b2, jt_b3, jt_b4, jt_b5, jt_b6, jt_b7, jt_b8, jt_b9
