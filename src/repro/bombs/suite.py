"""The logic-bomb dataset: 22 challenge programs + 2 auxiliary programs.

Mirrors the paper's open-source dataset (Section V.A): each program
plants a ``bomb()`` call behind one challenge; triggering it requires
solving that challenge.  Every bomb ships with an *oracle* — the input
and/or environment proven to trigger it on the concrete VM — grounding
the success/failure classification, and with the outcome row the paper
reports in Table II so the harness can compare shape.

Bomb anatomy:

* ``oracle_argv`` / ``oracle_env`` — the secret trigger.  When the
  trigger is environmental (time, web, pid), tools restricted to argv
  cannot find it: that *is* the Es0 challenge.
* ``fixed_env`` — environment that is part of the bomb's world and
  present on every replay (e.g. the key file for ``cs_file_name``).
* ``seed_argv`` — the initial concrete input trace-based tools start
  from (it must not trigger the bomb).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from ..binfmt import Image
from ..errors import ErrorStage
from ..lang import compile_sources
from ..vm import Environment, Machine

_SRC_DIR = Path(__file__).parent / "sources"

#: Challenge name per bomb-id prefix (the paper's Table I rows plus the
#: two scalability challenges).
CHALLENGES = {
    "sv": "Symbolic Variable Declaration",
    "cp": "Covert Symbolic Propagation",
    "pp": "Parallel Program",
    "sa": "Symbolic Array",
    "cs": "Contextual Symbolic Value",
    "sj": "Symbolic Jump",
    "fp": "Floating-point Number",
    "ef": "External Function Call",
    "cf": "Crypto Function",
    "ext": "Extension (beyond the paper)",
    "neg": "Negative bomb (Section V.C)",
    "fig3": "Figure 3 program pair",
}

ACCURACY_CHALLENGES = ("sv", "cp", "pp", "sa", "cs", "sj", "fp")
SCALABILITY_CHALLENGES = ("ef", "cf")

#: The paper's Table I: which error stages each challenge can incur.
CHALLENGE_ERROR_STAGES = {
    "Symbolic Variable Declaration": {ErrorStage.ES0, ErrorStage.ES1,
                                      ErrorStage.ES2, ErrorStage.ES3},
    "Covert Symbolic Propagation": {ErrorStage.ES2, ErrorStage.ES3},
    "Parallel Program": {ErrorStage.ES2, ErrorStage.ES3},
    "Symbolic Array": {ErrorStage.ES3},
    "Contextual Symbolic Value": {ErrorStage.ES3},
    "Symbolic Jump": {ErrorStage.ES3},
    "Floating-point Number": {ErrorStage.ES3},
}

#: Table II column order.
TOOL_COLUMNS = ("bapx", "tritonx", "angrx", "angrx_nolib",
                "sandshrewx", "hybridx")


@dataclass
class Bomb:
    """One dataset program."""

    bomb_id: str
    case: str                         # the paper's "Sample Case" wording
    sources: list[str]                # .bc files in sources/
    asm: list[str] = field(default_factory=list)
    oracle_argv: list[bytes] | None = None
    oracle_env: Environment | None = None
    fixed_env: Environment | None = None
    seed_argv: list[bytes] = field(default_factory=lambda: [b"1"])
    expected: dict[str, str] = field(default_factory=dict)   # paper Table II row
    expected_unreachable: bool = False
    in_table2: bool = True

    @property
    def challenge(self) -> str:
        return CHALLENGES[self.bomb_id.split("_")[0]]

    @property
    def scalability(self) -> bool:
        return self.bomb_id.split("_")[0] in SCALABILITY_CHALLENGES

    @property
    def image(self) -> Image:
        return _compile_bomb(self.bomb_id)

    def base_env(self) -> Environment:
        """The environment present on every run (fixed part of the bomb)."""
        return (self.fixed_env or Environment()).clone()

    def run(self, argv_tail: list[bytes], env: Environment | None = None,
            max_steps: int = 2_000_000):
        """Concretely execute the bomb with ``argv = [prog] + argv_tail``."""
        run_env = self.base_env().merged(env)
        machine = Machine(self.image, [self.bomb_id.encode()] + list(argv_tail), run_env)
        return machine.run(max_steps)

    def triggers(self, argv_tail: list[bytes], env: Environment | None = None) -> bool:
        """Does this input (plus optional env overlay) fire the bomb?"""
        return self.run(argv_tail, env).bomb_triggered

    def verify_oracle(self) -> bool:
        """Check the shipped oracle actually triggers (and the seed doesn't)."""
        if self.expected_unreachable:
            return not self.triggers(self.seed_argv)
        argv = self.oracle_argv if self.oracle_argv is not None else self.seed_argv
        if not self.triggers(argv, self.oracle_env):
            return False
        return not self.triggers(self.seed_argv)


def _bomb_defs() -> list[Bomb]:
    env = Environment  # alias for brevity
    return [
        Bomb(
            "sv_time",
            "Employ time info in conditions for triggering a bomb",
            ["sv_time.bc"],
            oracle_env=env(time_value=7777 * 218600 + 4321),
            expected={"bapx": "Es0", "tritonx": "Es0", "angrx": "Es0",
                      "angrx_nolib": "Es0", "sandshrewx": "Es0",
                      "hybridx": "Es0"},
        ),
        Bomb(
            "sv_web",
            "Employ web contents in conditions for triggering a bomb",
            ["sv_web.bc"],
            oracle_env=env(network={"http://bomb.example/trigger": b"ok"}),
            expected={"bapx": "Es0", "tritonx": "Es0", "angrx": "E",
                      "angrx_nolib": "E", "sandshrewx": "E", "hybridx": "Es0"},
        ),
        Bomb(
            "sv_syscall",
            "Employ the return values of system calls in conditions",
            ["sv_syscall.bc"],
            oracle_env=env(pid=1024),
            expected={"bapx": "Es0", "tritonx": "Es0", "angrx": "P",
                      "angrx_nolib": "P", "sandshrewx": "P", "hybridx": "Es0"},
        ),
        Bomb(
            "sv_arglen",
            "Employ the length of argv[1] in conditions",
            ["sv_arglen.bc"],
            oracle_argv=[b"123456789"],
            expected={"bapx": "Es2", "tritonx": "Es0", "angrx": "ok",
                      "angrx_nolib": "ok", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "cp_stack",
            "Push symbolic values into the stack and pop out",
            ["cp_stack.bc"],
            oracle_argv=[b"49"],
            seed_argv=[b"11"],
            expected={"bapx": "Es1", "tritonx": "ok", "angrx": "ok",
                      "angrx_nolib": "ok", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "cp_file",
            "Save symbolic values to a file and then read back",
            ["cp_file.bc"],
            oracle_argv=[b"147"],
            seed_argv=[b"111"],
            expected={"bapx": "Es2", "tritonx": "Es2", "angrx": "E",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "Es2"},
        ),
        Bomb(
            "cp_syscall",
            "Save symbolic values via system call and then read back",
            ["cp_syscall.bc"],
            oracle_argv=[b"23"],
            seed_argv=[b"11"],
            expected={"bapx": "Es2", "tritonx": "Es2", "angrx": "P",
                      "angrx_nolib": "P", "sandshrewx": "P", "hybridx": "ok"},
        ),
        Bomb(
            "cp_exception",
            "Change symbolic values in an exception (argv[1] = 77)",
            ["cp_exception.bc"],
            oracle_argv=[b"77"],
            seed_argv=[b"55"],
            expected={"bapx": "ok", "tritonx": "Es1", "angrx": "E",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "ok"},
        ),
        Bomb(
            "cp_file_exception",
            "Change symbolic values in an file operation exception",
            ["cp_file_exception.bc"],
            oracle_argv=[b"51"],
            seed_argv=[b"11"],
            expected={"bapx": "Es2", "tritonx": "Es2", "angrx": "Es2",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "ok"},
        ),
        Bomb(
            "pp_pthread",
            "Change symbolic values in multi-threads via pthread",
            ["pp_pthread.bc"],
            oracle_argv=[b"4"],
            expected={"bapx": "ok", "tritonx": "Es2", "angrx": "Es2",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "ok"},
        ),
        Bomb(
            "pp_fork_pipe",
            "Change symbolic values in multi-processes via fork/pipe",
            ["pp_fork_pipe.bc"],
            oracle_argv=[b"44"],
            seed_argv=[b"11"],
            expected={"bapx": "Es2", "tritonx": "Es2", "angrx": "Es2",
                      "angrx_nolib": "ok", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "sa_l1_array",
            "Employ symbolic values as offsets for a level-one array",
            ["sa_l1_array.bc"],
            oracle_argv=[b"6"],
            expected={"bapx": "Es3", "tritonx": "Es3", "angrx": "ok",
                      "angrx_nolib": "ok", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "sa_l2_array",
            "Employ symbolic values as offsets for a level-two array",
            ["sa_l2_array.bc"],
            oracle_argv=[b"4"],
            expected={"bapx": "Es3", "tritonx": "Es3", "angrx": "Es3",
                      "angrx_nolib": "Es3", "sandshrewx": "Es3",
                      "hybridx": "ok"},
        ),
        Bomb(
            "cs_file_name",
            "Employ symbolic values as the name of a file",
            ["cs_file_name.bc"],
            oracle_argv=[b"unlock.key"],
            fixed_env=env(files={"unlock.key": b"K"}),
            seed_argv=[b"nofile"],
            expected={"bapx": "Es2", "tritonx": "Es3", "angrx": "Es2",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "Es3"},
        ),
        Bomb(
            "cs_syscall_name",
            "Employ symbolic values as the name of a system call",
            ["cs_syscall_name.bc"],
            oracle_argv=[b"19"],
            seed_argv=[b"6"],
            expected={"bapx": "Es2", "tritonx": "Es3", "angrx": "Es2",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "ok"},
        ),
        Bomb(
            "sj_jump",
            "Employ symbolic values as unconditional jump addresses",
            ["sj_jump.bc"],
            asm=["sj_jump.s"],
            oracle_argv=[b"7"],
            expected={"bapx": "Es3", "tritonx": "Es3", "angrx": "Es2",
                      "angrx_nolib": "Es2", "sandshrewx": "Es2",
                      "hybridx": "ok"},
        ),
        Bomb(
            "sj_jump_array",
            "Employ symbolic values as offsets to an address array",
            ["sj_jump_array.bc"],
            asm=["sj_jump_array.s"],
            oracle_argv=[b"7"],
            expected={"bapx": "Es3", "tritonx": "Es3", "angrx": "Es3",
                      "angrx_nolib": "Es3", "sandshrewx": "Es3",
                      "hybridx": "ok"},
        ),
        Bomb(
            "fp_float",
            "Employ floating-point numbers in symbolic conditions",
            ["fp_float.bc"],
            oracle_argv=[b"0.00001"],
            seed_argv=[b"1.5"],
            expected={"bapx": "Es1", "tritonx": "Es1", "angrx": "E",
                      "angrx_nolib": "Es3", "sandshrewx": "Es3",
                      "hybridx": "Es1"},
        ),
        Bomb(
            "ef_sin",
            "Employ symbolic values as the parameter of sin",
            ["ef_sin.bc"],
            oracle_argv=[b"15"],
            expected={"bapx": "Es1", "tritonx": "Es1", "angrx": "E",
                      "angrx_nolib": "Es2", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "ef_srand",
            "Employ symbolic values as the parameter of srand",
            ["ef_srand.bc"],
            oracle_argv=[b"7"],
            expected={"bapx": "Es2", "tritonx": "E", "angrx": "E",
                      "angrx_nolib": "Es2", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "cf_sha1",
            "Infer the plain text from an SHA1 result",
            ["cf_sha1.bc"],
            oracle_argv=[b"s3cret"],
            seed_argv=[b"guess"],
            expected={"bapx": "E", "tritonx": "E", "angrx": "E",
                      "angrx_nolib": "Es2", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        Bomb(
            "cf_aes",
            "Infer the key from an AES encryption result",
            ["cf_aes.bc"],
            oracle_argv=[b"k3y!"],
            seed_argv=[b"guess"],
            expected={"bapx": "Es2", "tritonx": "Es2", "angrx": "Es2",
                      "angrx_nolib": "Es2", "sandshrewx": "ok",
                      "hybridx": "ok"},
        ),
        # -- auxiliary programs (not rows of Table II) --------------------
        Bomb(
            "neg_square",
            "Negative bomb: pow(x, 2) == -1 is constant-false (Section V.C)",
            ["neg_square.bc"],
            expected_unreachable=True,
            in_table2=False,
        ),
        Bomb(
            "fig3_printf_on",
            "Figure 3 program with the printing code enabled",
            ["fig3_printf_on.bc"],
            oracle_argv=[b"80"],
            seed_argv=[b"11"],
            in_table2=False,
        ),
        Bomb(
            "fig3_printf_off",
            "Figure 3 program with the printing code commented out",
            ["fig3_printf_off.bc"],
            oracle_argv=[b"80"],
            seed_argv=[b"11"],
            in_table2=False,
        ),
        # -- extension set: new challenges "following our approach" ------
        Bomb(
            "ext_loop",
            "Input-dependent loop bound (the challenge the paper set aside)",
            ["ext_loop.bc"],
            oracle_argv=[b"100"],
            seed_argv=[b"11"],
            in_table2=False,
        ),
        Bomb(
            "ext_stdin",
            "Employ stdin contents in conditions for triggering a bomb",
            ["ext_stdin.bc"],
            oracle_env=env(stdin=b"31337"),
            in_table2=False,
        ),
        Bomb(
            "ext_xor_cipher",
            "Infer the plain text from a repeating-XOR result (weak crypto)",
            ["ext_xor_cipher.bc"],
            oracle_argv=[b"s3cr3t"],
            seed_argv=[b"abcdef"],
            in_table2=False,
        ),
        Bomb(
            "ext_two_args",
            "Split the trigger across argv[1] and argv[2]",
            ["ext_two_args.bc"],
            oracle_argv=[b"13", b"17"],
            seed_argv=[b"20", b"30"],
            in_table2=False,
        ),
        Bomb(
            "ext_combo",
            "Compose a symbolic array with a kernel-mailbox round trip",
            ["ext_combo.bc"],
            oracle_argv=[b"6"],
            in_table2=False,
        ),
    ]


_BOMBS: dict[str, Bomb] = {b.bomb_id: b for b in _bomb_defs()}

#: Ids of the 22 Table II bombs, in the paper's row order.
TABLE2_BOMB_IDS = tuple(b.bomb_id for b in _BOMBS.values() if b.in_table2)

#: All program ids including the auxiliary ones.
ALL_BOMB_IDS = tuple(_BOMBS)


@lru_cache(maxsize=None)
def _compile_bomb(bomb_id: str) -> Image:
    bomb = _BOMBS[bomb_id]
    sources = [(name, (_SRC_DIR / name).read_text()) for name in bomb.sources]
    asm_modules = [(name, (_SRC_DIR / name).read_text()) for name in bomb.asm]
    return compile_sources(sources, asm_modules=asm_modules)


def get_bomb(bomb_id: str) -> Bomb:
    """Look up a bomb by id (see :data:`ALL_BOMB_IDS`)."""
    try:
        return _BOMBS[bomb_id]
    except KeyError:
        raise KeyError(f"unknown bomb {bomb_id!r}; known: {sorted(_BOMBS)}") from None


def all_bombs(table2_only: bool = False) -> list[Bomb]:
    """All bombs, in the paper's row order."""
    return [b for b in _BOMBS.values() if b.in_table2 or not table2_only]


def dataset_sizes() -> dict[str, int]:
    """Serialized binary size per Table-II bomb (the Section V.A statistic)."""
    return {bomb_id: get_bomb(bomb_id).image.file_size for bomb_id in TABLE2_BOMB_IDS}
