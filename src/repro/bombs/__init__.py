"""The logic-bomb dataset (the paper's Section V.A, released open source)."""

from .suite import (
    ACCURACY_CHALLENGES,
    ALL_BOMB_IDS,
    CHALLENGE_ERROR_STAGES,
    CHALLENGES,
    SCALABILITY_CHALLENGES,
    TABLE2_BOMB_IDS,
    TOOL_COLUMNS,
    Bomb,
    all_bombs,
    dataset_sizes,
    get_bomb,
)

__all__ = [
    "ACCURACY_CHALLENGES",
    "ALL_BOMB_IDS",
    "CHALLENGE_ERROR_STAGES",
    "CHALLENGES",
    "Bomb",
    "SCALABILITY_CHALLENGES",
    "TABLE2_BOMB_IDS",
    "TOOL_COLUMNS",
    "all_bombs",
    "dataset_sizes",
    "get_bomb",
]
