"""Recursive-descent parser for BombC."""

from __future__ import annotations

from ..errors import CompileError
from . import cast as A
from .lexer import Token, tokenize

_TYPE_KWS = ("int", "char", "float", "double", "void")

_BIN_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", ">>>=")


class Parser:
    """Parses one BombC translation unit into an AST :class:`~repro.lang.cast.Unit`."""

    def __init__(self, source: str, unit_name: str = "<bc>"):
        self.tokens = tokenize(source, unit_name)
        self.pos = 0
        self.unit_name = unit_name

    # -- token helpers ---------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.at(kind, text):
            tok = self.peek()
            want = text or kind
            raise self.err(f"expected {want!r}, got {tok.text!r}")
        return self.next()

    def err(self, msg: str) -> CompileError:
        return CompileError(f"{self.unit_name}:{self.peek().line}: {msg}")

    # -- top level ------------------------------------------------------------

    def parse(self) -> A.Unit:
        unit = A.Unit(self.unit_name)
        while not self.at("eof"):
            ctype = self.parse_type()
            name = self.expect("ident").text
            if self.at("op", "("):
                unit.functions.append(self.parse_func(ctype, name))
            else:
                unit.globals.append(self.parse_global(ctype, name))
        return unit

    def at_type(self) -> bool:
        return self.peek().kind == "kw" and self.peek().text in _TYPE_KWS

    def parse_type(self) -> A.CType:
        tok = self.expect("kw")
        if tok.text not in _TYPE_KWS:
            raise self.err(f"expected type, got {tok.text!r}")
        ptr = 0
        while self.accept("op", "*"):
            ptr += 1
        return A.CType(tok.text, ptr)

    def parse_global(self, ctype: A.CType, name: str) -> A.GlobalVar:
        line = self.peek().line
        if self.accept("op", "["):
            count = self.expect("int").value
            self.expect("op", "]")
            ctype = A.CType(ctype.kind, ctype.ptr, count)
        init = None
        if self.accept("op", "="):
            init = self.parse_global_init()
        self.expect("op", ";")
        return A.GlobalVar(name, ctype, init, line)

    def parse_global_init(self):
        if self.accept("op", "{"):
            items = []
            while not self.at("op", "}"):
                sign = -1 if self.accept("op", "-") else 1
                tok = self.next()
                if tok.kind not in ("int", "char", "float"):
                    raise self.err("global initializer lists take literals only")
                items.append(sign * tok.value)
                if not self.accept("op", ","):
                    break
            self.expect("op", "}")
            return items
        sign = -1 if self.accept("op", "-") else 1
        tok = self.next()
        if tok.kind in ("int", "char"):
            return sign * tok.value
        if tok.kind == "float":
            return sign * tok.value
        if tok.kind == "str":
            return tok.value
        raise self.err(f"bad global initializer {tok.text!r}")

    def parse_func(self, ret: A.CType, name: str) -> A.FuncDef:
        line = self.peek().line
        self.expect("op", "(")
        params: list[A.Param] = []
        if self.at("kw", "void") and self.peek(1).text == ")":
            self.next()
        elif not self.at("op", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("ident").text
                if self.accept("op", "["):
                    self.expect("op", "]")
                    ptype = A.CType(ptype.kind, ptype.ptr + 1)
                params.append(A.Param(pname, ptype))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return A.FuncDef(name, ret, params, body, line)

    # -- statements --------------------------------------------------------------

    def parse_block(self) -> list[A.Stmt]:
        self.expect("op", "{")
        stmts = []
        while not self.at("op", "}"):
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return stmts

    def parse_stmt(self) -> A.Stmt:
        line = self.peek().line
        if self.at_type():
            return self.parse_decl()
        if self.at("kw", "if"):
            return self.parse_if()
        if self.at("kw", "while"):
            self.next()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return A.While(line, cond, self.parse_body())
        if self.at("kw", "for"):
            return self.parse_for()
        if self.at("kw", "return"):
            self.next()
            value = None if self.at("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return A.Return(line, value)
        if self.at("kw", "break"):
            self.next()
            self.expect("op", ";")
            return A.Break(line)
        if self.at("kw", "continue"):
            self.next()
            self.expect("op", ";")
            return A.Continue(line)
        if self.at("op", ";"):
            self.next()
            return A.ExprStmt(line, None)
        stmt = self.parse_simple()
        self.expect("op", ";")
        return stmt

    def parse_body(self) -> list[A.Stmt]:
        """A statement body: either a block or a single statement."""
        if self.at("op", "{"):
            return self.parse_block()
        return [self.parse_stmt()]

    def parse_decl(self) -> A.Stmt:
        line = self.peek().line
        ctype = self.parse_type()
        name = self.expect("ident").text
        if self.accept("op", "["):
            count = self.expect("int").value
            self.expect("op", "]")
            ctype = A.CType(ctype.kind, ctype.ptr, count)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return A.Decl(line, name, ctype, init)

    def parse_if(self) -> A.Stmt:
        line = self.peek().line
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_body()
        orelse: list[A.Stmt] = []
        if self.accept("kw", "else"):
            if self.at("kw", "if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_body()
        return A.If(line, cond, then, orelse)

    def parse_for(self) -> A.Stmt:
        line = self.peek().line
        self.expect("kw", "for")
        self.expect("op", "(")
        init = None
        if not self.at("op", ";"):
            init = self.parse_decl() if self.at_type() else self._simple_then(";")
            if isinstance(init, A.Decl):
                pass  # parse_decl consumed the ';'
            else:
                self.expect("op", ";")
        else:
            self.next()
        cond = None if self.at("op", ";") else self.parse_expr()
        self.expect("op", ";")
        step = None if self.at("op", ")") else self.parse_simple()
        self.expect("op", ")")
        return A.For(line, init, cond, step, self.parse_body())

    def _simple_then(self, _end: str) -> A.Stmt:
        return self.parse_simple()

    def parse_simple(self) -> A.Stmt:
        """Assignment or expression statement (no trailing ';')."""
        line = self.peek().line
        expr = self.parse_expr()
        for op in _ASSIGN_OPS:
            if self.at("op", op):
                self.next()
                value = self.parse_expr()
                if not isinstance(expr, (A.Ident, A.Index)) and not (
                    isinstance(expr, A.Unary) and expr.op == "*"
                ):
                    raise self.err("assignment target is not an lvalue")
                return A.Assign(line, expr, op, value)
        return A.ExprStmt(line, expr)

    # -- expressions ---------------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(_BIN_LEVELS):
            return self.parse_unary()
        lhs = self._parse_binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in _BIN_LEVELS[level]:
            op = self.next().text
            rhs = self._parse_binary(level + 1)
            lhs = A.Binary(lhs.line, op, lhs, rhs)
        return lhs

    def parse_unary(self) -> A.Expr:
        line = self.peek().line
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.next()
            return A.Unary(line, tok.text, self.parse_unary())
        if tok.kind == "op" and tok.text == "(" and self.peek(1).kind == "kw" \
                and self.peek(1).text in _TYPE_KWS:
            self.next()
            ctype = self.parse_type()
            self.expect("op", ")")
            return A.Cast(line, ctype, self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            if self.at("op", "["):
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = A.Index(expr.line, expr, index)
            elif self.at("op", "(") and isinstance(expr, A.Ident):
                self.next()
                args = []
                while not self.at("op", ")"):
                    args.append(self.parse_expr())
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
                expr = A.Call(expr.line, expr.name, args)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.next()
        if tok.kind == "int" or tok.kind == "char":
            return A.IntLit(tok.line, tok.value)
        if tok.kind == "float":
            return A.FloatLit(tok.line, tok.value)
        if tok.kind == "str":
            return A.StrLit(tok.line, tok.value)
        if tok.kind == "ident":
            return A.Ident(tok.line, tok.text)
        if tok.kind == "op" and tok.text == "(":
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise self.err(f"unexpected token {tok.text!r}")


def parse(source: str, unit_name: str = "<bc>") -> A.Unit:
    """Parse BombC *source* into an AST unit."""
    return Parser(source, unit_name).parse()
