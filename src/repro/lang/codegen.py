"""RX64 code generation for BombC.

The generator is deliberately simple (tree-walking, temporaries in
``r7..r12`` with frame spills) but complete: every bomb, the libc
subset, SHA1 and AES compile through it.  Calling convention:

* integer/pointer/float arguments in ``r1..r6`` (floats pass their raw
  IEEE bit patterns in GPRs), return value in ``r0``;
* ``fp``/``sp`` callee-saved via the standard prologue;
* expression temporaries are caller-saved by spilling to frame slots
  around calls.

Floats live in GPRs as bit patterns and are moved into ``f0``/``f1``
only around arithmetic, so taint and symbolic expressions flow through
ordinary integer moves except at the actual FP instructions — exactly
the property the floating-point challenge needs (tools lacking FP
lifting lose the trail at the FP instruction itself).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from ..errors import CompileError
from . import cast as A

TEMP_REGS = (7, 8, 9, 10, 11, 12)

_INT_OPS = {
    "+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sar", ">>>": "shr",
}
_FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
_INT_CC = {"==": "jz", "!=": "jnz", "<": "jl", "<=": "jle", ">": "jg", ">=": "jge"}
_FLOAT_CC = {"==": "jz", "!=": "jnz", "<": "jb", "<=": "jbe", ">": "ja", ">=": "jae"}
_CMP_OPS = frozenset(_INT_CC)


def f32_bits(value: float) -> int:
    try:
        return struct.unpack("<I", struct.pack("<f", value))[0]
    except OverflowError:
        return 0x7F800000 if value > 0 else 0xFF800000


def f64_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


@dataclass
class ProgramInfo:
    """Program-wide symbol information shared by all units."""

    functions: dict[str, tuple[A.CType, list[A.CType]]] = field(default_factory=dict)
    globals: dict[str, A.CType] = field(default_factory=dict)
    #: Functions defined in raw assembly modules: arity checked loosely.
    asm_functions: set[str] = field(default_factory=set)

    @classmethod
    def collect(cls, units: list[A.Unit]) -> "ProgramInfo":
        info = cls()
        for unit in units:
            for fn in unit.functions:
                if fn.name in info.functions:
                    raise CompileError(f"duplicate function {fn.name!r}")
                info.functions[fn.name] = (fn.ret, [p.type for p in fn.params])
            for gv in unit.globals:
                if gv.name in info.globals:
                    raise CompileError(f"duplicate global {gv.name!r}")
                info.globals[gv.name] = gv.type
        return info


class UnitCodegen:
    """Generates RX64 assembly text for one BombC unit."""

    def __init__(self, unit: A.Unit, info: ProgramInfo, code_section: str = ".text"):
        self.unit = unit
        self.info = info
        self.code_section = code_section
        self.lines: list[str] = []
        self.rodata: list[str] = []
        self.data: list[str] = []
        self.bss: list[str] = []
        self._label_n = 0
        self._str_labels: dict[bytes, str] = {}
        # per-function state
        self.locals: dict[str, tuple[int, A.CType]] = {}
        self.frame = 0
        self.in_use: set[int] = set()
        self.loop_stack: list[tuple[str, str]] = []
        self.current_fn: A.FuncDef | None = None

    # -- helpers --------------------------------------------------------

    def err(self, node, msg: str) -> CompileError:
        line = getattr(node, "line", 0)
        return CompileError(f"{self.unit.name}:{line}: {msg}")

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def label(self, prefix: str = "L") -> str:
        self._label_n += 1
        return f".L{prefix}{self._label_n}_{_sanitize(self.unit.name)}"

    def place(self, lbl: str) -> None:
        self.lines.append(f"{lbl}:")

    def alloc_reg(self, node=None) -> int:
        for reg in TEMP_REGS:
            if reg not in self.in_use:
                self.in_use.add(reg)
                return reg
        raise self.err(node, "expression too complex (out of temporaries)")

    def free_reg(self, reg: int) -> None:
        self.in_use.discard(reg)

    def alloc_slot(self, size: int = 8) -> int:
        size = (size + 7) & ~7
        self.frame += size
        return self.frame

    def string_label(self, data: bytes) -> str:
        lbl = self._str_labels.get(data)
        if lbl is None:
            lbl = self.label("str")
            self._str_labels[data] = lbl
            escaped = "".join(
                chr(b) if 32 <= b < 127 and chr(b) not in '"\\' else f"\\x{b:02x}"
                for b in data
            )
            self.rodata.append(f'{lbl}: .asciz "{escaped}"')
        return lbl

    # -- top level ---------------------------------------------------------

    def generate(self) -> str:
        for gv in self.unit.globals:
            self._gen_global(gv)
        for fn in self.unit.functions:
            self._gen_function(fn)
        parts = [self.code_section]
        parts += self.lines
        if self.rodata:
            parts.append(".rodata")
            parts += self.rodata
        if self.data:
            parts.append(".data")
            parts += self.data
        if self.bss:
            parts.append(".bss")
            parts += self.bss
        return "\n".join(parts) + "\n"

    def _gen_global(self, gv: A.GlobalVar) -> None:
        t = gv.type
        if gv.init is None:
            self.bss.append(f".align 8")
            self.bss.append(f"{gv.name}:")
            self.bss.append(f".space {max(t.size, 1)}")
            return
        if isinstance(gv.init, bytes):
            if not (t.kind == "char" and t.ptr == 1):
                raise self.err(gv, "string initializer needs char*")
            lbl = self.string_label(gv.init)
            self.data.append(f"{gv.name}: .quad {lbl}")
            return
        if isinstance(gv.init, list):
            if t.array is None:
                raise self.err(gv, "initializer list needs an array")
            items = list(gv.init) + [0] * (t.array - len(gv.init))
            elem = t.elem()
            directive = {8: ".quad", 4: ".long", 2: ".word", 1: ".byte"}[elem.size]
            values = []
            for item in items:
                if elem.kind == "float" and not elem.ptr:
                    values.append(str(f32_bits(float(item))))
                elif elem.kind == "double" and not elem.ptr:
                    values.append(str(f64_bits(float(item))))
                else:
                    values.append(str(int(item) & ((1 << (8 * elem.size)) - 1)))
            self.data.append(f"{gv.name}: {directive} {', '.join(values)}")
            return
        if t.kind == "float" and not t.is_pointer:
            self.data.append(f"{gv.name}: .long {f32_bits(float(gv.init))}")
        elif t.kind == "double" and not t.is_pointer:
            self.data.append(f"{gv.name}: .quad {f64_bits(float(gv.init))}")
        elif t.kind == "char" and not t.is_pointer:
            self.data.append(f"{gv.name}: .byte {int(gv.init) & 0xFF}")
        else:
            self.data.append(f"{gv.name}: .quad {int(gv.init) & ((1 << 64) - 1)}")

    # -- functions -----------------------------------------------------------

    def _gen_function(self, fn: A.FuncDef) -> None:
        if len(fn.params) > 6:
            raise self.err(fn, "more than 6 parameters")
        self.locals = {}
        self.frame = 0
        self.in_use = set()
        self.loop_stack = []
        self.current_fn = fn
        self.ret_label = self.label(f"ret_{fn.name}")

        body_start = len(self.lines)
        self.lines.append(f"{fn.name}:")
        self.emit("push fp")
        self.emit("mov fp, sp")
        frame_line = len(self.lines)
        self.emit("subi sp, {FRAME}")
        for i, param in enumerate(fn.params):
            off = self.alloc_slot(8)
            self.locals[param.name] = (off, param.type)
            self.emit(f"st [fp-{off}], r{i + 1}")
        for stmt in fn.body:
            self._gen_stmt(stmt)
        self.place(self.ret_label)
        self.emit("mov sp, fp")
        self.emit("pop fp")
        self.emit("ret")

        frame = (self.frame + 15) & ~15
        self.lines[frame_line] = self.lines[frame_line].replace("{FRAME}", str(frame))
        del body_start  # kept for symmetry / debugging

    # -- statements --------------------------------------------------------------

    def _gen_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Decl):
            if stmt.name in self.locals:
                raise self.err(stmt, f"duplicate local {stmt.name!r}")
            size = stmt.type.size if stmt.type.array is not None else 8
            off = self.alloc_slot(size)
            self.locals[stmt.name] = (off, stmt.type)
            if stmt.init is not None:
                if stmt.type.array is not None:
                    raise self.err(stmt, "local arrays cannot have initializers")
                reg, rtype = self._expr(stmt.init)
                reg = self._convert(reg, rtype, stmt.type, stmt)
                self._store_local(off, reg, stmt.type)
                self.free_reg(reg)
        elif isinstance(stmt, A.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                reg, _ = self._expr(stmt.expr, want_value=False)
                if reg is not None:
                    self.free_reg(reg)
        elif isinstance(stmt, A.If):
            l_true, l_false = self.label(), self.label()
            l_end = self.label() if stmt.orelse else l_false
            self._branch(stmt.cond, l_true, l_false)
            self.place(l_true)
            for s in stmt.then:
                self._gen_stmt(s)
            if stmt.orelse:
                self.emit(f"jmp {l_end}")
                self.place(l_false)
                for s in stmt.orelse:
                    self._gen_stmt(s)
            self.place(l_end)
        elif isinstance(stmt, A.While):
            l_head, l_body, l_end = self.label(), self.label(), self.label()
            self.place(l_head)
            self._branch(stmt.cond, l_body, l_end)
            self.place(l_body)
            self.loop_stack.append((l_end, l_head))
            for s in stmt.body:
                self._gen_stmt(s)
            self.loop_stack.pop()
            self.emit(f"jmp {l_head}")
            self.place(l_end)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            l_head, l_body, l_step, l_end = (self.label() for _ in range(4))
            self.place(l_head)
            if stmt.cond is not None:
                self._branch(stmt.cond, l_body, l_end)
            self.place(l_body)
            self.loop_stack.append((l_end, l_step))
            for s in stmt.body:
                self._gen_stmt(s)
            self.loop_stack.pop()
            self.place(l_step)
            if stmt.step is not None:
                self._gen_stmt(stmt.step)
            self.emit(f"jmp {l_head}")
            self.place(l_end)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                reg, rtype = self._expr(stmt.value)
                reg = self._convert(reg, rtype, self.current_fn.ret, stmt)
                self.emit(f"mov r0, r{reg}")
                self.free_reg(reg)
            self.emit(f"jmp {self.ret_label}")
        elif isinstance(stmt, A.Break):
            if not self.loop_stack:
                raise self.err(stmt, "break outside loop")
            self.emit(f"jmp {self.loop_stack[-1][0]}")
        elif isinstance(stmt, A.Continue):
            if not self.loop_stack:
                raise self.err(stmt, "continue outside loop")
            self.emit(f"jmp {self.loop_stack[-1][1]}")
        else:  # pragma: no cover
            raise self.err(stmt, f"unhandled statement {type(stmt).__name__}")

    def _gen_assign(self, stmt: A.Assign) -> None:
        target = stmt.target
        # Fast path: plain scalar variable — no address register held
        # across the value computation, which keeps register pressure low.
        if isinstance(target, A.Ident):
            name = target.name
            if name in self.locals and self.locals[name][1].array is None:
                off, ctype = self.locals[name]
                val = self._assign_value(stmt, target, ctype)
                self.emit(f"{self._store_mnem(ctype)} [fp-{off}], r{val}")
                self.free_reg(val)
                return
            if name in self.info.globals and self.info.globals[name].array is None:
                ctype = self.info.globals[name]
                val = self._assign_value(stmt, target, ctype)
                addr = self.alloc_reg(stmt)
                self.emit(f"movi r{addr}, {name}")
                self.emit(f"{self._store_mnem(ctype)} [r{addr}], r{val}")
                self.free_reg(addr)
                self.free_reg(val)
                return
        addr_reg, elem_type = self._addr(target)
        if stmt.op == "=":
            val, vtype = self._expr(stmt.value)
            val = self._convert(val, vtype, elem_type, stmt)
        else:
            base_op = stmt.op[:-1]
            cur = self.alloc_reg(stmt)
            self._load(cur, addr_reg, elem_type)
            rhs, rtype = self._expr(stmt.value)
            val = self._binop_values(base_op, cur, elem_type, rhs, rtype, stmt)[0]
            val = self._convert(val, self._unified(elem_type, rtype), elem_type, stmt)
        self._store(addr_reg, val, elem_type)
        self.free_reg(val)
        self.free_reg(addr_reg)

    def _assign_value(self, stmt: A.Assign, target: A.Ident, ctype: A.CType) -> int:
        """Compute the value to store for an assignment to a scalar var."""
        if stmt.op == "=":
            val, vtype = self._expr(stmt.value)
            return self._convert(val, vtype, ctype, stmt)
        base_op = stmt.op[:-1]
        cur, cur_type = self._expr(target)
        rhs, rtype = self._expr(stmt.value)
        val = self._binop_values(base_op, cur, cur_type, rhs, rtype, stmt)[0]
        return self._convert(val, self._unified(cur_type, rtype), ctype, stmt)

    # -- addressing / loads / stores --------------------------------------------

    def _addr(self, expr: A.Expr) -> tuple[int, A.CType]:
        """Compile an lvalue; returns (reg holding address, value type)."""
        if isinstance(expr, A.Ident):
            if expr.name in self.locals:
                off, ctype = self.locals[expr.name]
                reg = self.alloc_reg(expr)
                self.emit(f"lea r{reg}, [fp-{off}]")
                return reg, ctype
            if expr.name in self.info.globals:
                ctype = self.info.globals[expr.name]
                reg = self.alloc_reg(expr)
                self.emit(f"movi r{reg}, {expr.name}")
                return reg, ctype
            raise self.err(expr, f"undefined variable {expr.name!r}")
        if isinstance(expr, A.Index):
            base, btype = self._expr(expr.base)
            if not btype.is_pointer:
                raise self.err(expr, f"cannot index non-pointer {btype}")
            elem = btype.elem() if btype.array is not None else btype.elem()
            idx, itype = self._expr(expr.index)
            if itype.is_float:
                raise self.err(expr, "array index must be integral")
            if elem.size != 1:
                self.emit(f"muli r{idx}, {elem.size}")
            self.emit(f"add r{base}, r{idx}")
            self.free_reg(idx)
            return base, elem
        if isinstance(expr, A.Unary) and expr.op == "*":
            ptr, ptype = self._expr(expr.operand)
            if not ptype.is_pointer:
                raise self.err(expr, f"cannot dereference {ptype}")
            return ptr, ptype.elem()
        raise self.err(expr, "expression is not an lvalue")

    @staticmethod
    def _load_mnem(ctype: A.CType) -> str:
        if ctype.is_pointer or ctype.kind in ("int", "double"):
            return "ld"
        if ctype.kind == "char":
            return "ld1u"
        if ctype.kind == "float":
            return "ld4u"
        raise CompileError(f"cannot load {ctype}")

    @staticmethod
    def _store_mnem(ctype: A.CType) -> str:
        if ctype.is_pointer or ctype.kind in ("int", "double"):
            return "st"
        if ctype.kind == "char":
            return "st1"
        if ctype.kind == "float":
            return "st4"
        raise CompileError(f"cannot store {ctype}")

    def _load(self, dst: int, addr: int, ctype: A.CType) -> None:
        if ctype.array is not None:
            self.emit(f"mov r{dst}, r{addr}")  # arrays decay to their address
            return
        if ctype.is_pointer or ctype.kind == "int":
            self.emit(f"ld r{dst}, [r{addr}]")
        elif ctype.kind == "char":
            self.emit(f"ld1u r{dst}, [r{addr}]")
        elif ctype.kind == "float":
            self.emit(f"ld4u r{dst}, [r{addr}]")
        elif ctype.kind == "double":
            self.emit(f"ld r{dst}, [r{addr}]")
        else:
            raise CompileError(f"cannot load {ctype}")

    def _store(self, addr: int, val: int, ctype: A.CType) -> None:
        if ctype.is_pointer or ctype.kind in ("int", "double"):
            self.emit(f"st [r{addr}], r{val}")
        elif ctype.kind == "char":
            self.emit(f"st1 [r{addr}], r{val}")
        elif ctype.kind == "float":
            self.emit(f"st4 [r{addr}], r{val}")
        else:
            raise CompileError(f"cannot store {ctype}")

    def _store_local(self, off: int, val: int, ctype: A.CType) -> None:
        if ctype.is_pointer or ctype.kind in ("int", "double"):
            self.emit(f"st [fp-{off}], r{val}")
        elif ctype.kind == "char":
            self.emit(f"st1 [fp-{off}], r{val}")
        elif ctype.kind == "float":
            self.emit(f"st4 [fp-{off}], r{val}")

    # -- expressions ------------------------------------------------------------

    def _expr(self, expr: A.Expr, want_value: bool = True) -> tuple[int | None, A.CType]:
        if isinstance(expr, A.IntLit):
            reg = self.alloc_reg(expr)
            self.emit(f"movi r{reg}, {expr.value & ((1 << 64) - 1)}")
            return reg, A.INT
        if isinstance(expr, A.FloatLit):
            reg = self.alloc_reg(expr)
            self.emit(f"movi r{reg}, {f64_bits(expr.value)}")
            return reg, A.DOUBLE
        if isinstance(expr, A.StrLit):
            reg = self.alloc_reg(expr)
            self.emit(f"movi r{reg}, {self.string_label(expr.value)}")
            return reg, A.CType("char", 1)
        if isinstance(expr, A.Ident):
            if expr.name in self.locals:
                off, ctype = self.locals[expr.name]
                reg = self.alloc_reg(expr)
                if ctype.array is not None:
                    self.emit(f"lea r{reg}, [fp-{off}]")
                    return reg, ctype.decayed()
                self.emit(f"{self._load_mnem(ctype)} r{reg}, [fp-{off}]")
                if ctype.kind == "char" and not ctype.is_pointer:
                    return reg, A.INT  # chars promote to int once loaded
                return reg, ctype
            if expr.name in self.info.globals:
                ctype = self.info.globals[expr.name]
                reg = self.alloc_reg(expr)
                self.emit(f"movi r{reg}, {expr.name}")
                if ctype.array is not None:
                    return reg, ctype.decayed()
                self.emit(f"{self._load_mnem(ctype)} r{reg}, [r{reg}]")
                if ctype.kind == "char" and not ctype.is_pointer:
                    return reg, A.INT
                return reg, ctype
            if expr.name in self.info.functions:
                reg = self.alloc_reg(expr)
                self.emit(f"movi r{reg}, {expr.name}")
                return reg, A.INT
            raise self.err(expr, f"undefined identifier {expr.name!r}")
        if isinstance(expr, A.Unary):
            return self._unary(expr)
        if isinstance(expr, A.Binary):
            if expr.op in _CMP_OPS or expr.op in ("&&", "||"):
                return self._materialize_bool(expr)
            lhs, ltype = self._expr(expr.lhs)
            rhs, rtype = self._expr(expr.rhs)
            return self._binop_values(expr.op, lhs, ltype, rhs, rtype, expr)
        if isinstance(expr, A.Index):
            addr, elem = self._addr(expr)
            if elem.array is not None:
                return addr, elem.decayed()
            reg = self.alloc_reg(expr)
            self._load(reg, addr, elem)
            self.free_reg(addr)
            if elem.kind == "char" and not elem.is_pointer:
                return reg, A.INT
            return reg, elem
        if isinstance(expr, A.Call):
            return self._call(expr, want_value)
        if isinstance(expr, A.Cast):
            reg, rtype = self._expr(expr.operand)
            reg = self._convert(reg, rtype, expr.type, expr)
            return reg, expr.type
        raise self.err(expr, f"unhandled expression {type(expr).__name__}")

    def _unary(self, expr: A.Unary) -> tuple[int, A.CType]:
        op = expr.op
        if op == "&":
            reg, vtype = self._addr(expr.operand)
            return reg, vtype.decayed() if vtype.array is not None \
                else vtype.pointer_to()
        if op == "*":
            addr, elem = self._addr(expr)
            reg = self.alloc_reg(expr)
            self._load(reg, addr, elem)
            self.free_reg(addr)
            return reg, elem
        reg, rtype = self._expr(expr.operand)
        if op == "-":
            if rtype.is_float:
                sign = 0x80000000 if rtype.kind == "float" else 0x8000000000000000
                self.emit(f"xori r{reg}, {sign}")
            else:
                self.emit(f"neg r{reg}")
            return reg, rtype
        if op == "~":
            self.emit(f"not r{reg}")
            return reg, A.INT
        if op == "!":
            l_true, l_end = self.label(), self.label()
            if rtype.is_float:
                raise self.err(expr, "'!' on float unsupported; compare explicitly")
            self.emit(f"cmpi r{reg}, 0")
            self.emit(f"jz {l_true}")
            self.emit(f"movi r{reg}, 0")
            self.emit(f"jmp {l_end}")
            self.place(l_true)
            self.emit(f"movi r{reg}, 1")
            self.place(l_end)
            return reg, A.INT
        raise self.err(expr, f"unhandled unary {op!r}")

    def _unified(self, a: A.CType, b: A.CType) -> A.CType:
        if a.is_pointer:
            return a.decayed()
        if b.is_pointer:
            return b.decayed()
        if "double" in (a.kind, b.kind):
            return A.DOUBLE
        if "float" in (a.kind, b.kind):
            return A.FLOAT
        return A.INT

    def _binop_values(self, op, lhs, ltype, rhs, rtype, node) -> tuple[int, A.CType]:
        unified = self._unified(ltype, rtype)
        if unified.is_pointer:
            # pointer arithmetic: ptr +/- int (scaled).
            if op not in ("+", "-"):
                raise self.err(node, f"operator {op!r} invalid on pointers")
            if ltype.is_pointer and rtype.is_pointer:
                if op != "-":
                    raise self.err(node, "pointer + pointer")
                self.emit(f"sub r{lhs}, r{rhs}")
                size = ltype.decayed().elem().size
                if size != 1:
                    self.emit(f"movi r{rhs}, {size}")
                    self.emit(f"sdiv r{lhs}, r{rhs}")
                self.free_reg(rhs)
                return lhs, A.INT
            if rtype.is_pointer:  # int + ptr -> normalize
                lhs, rhs = rhs, lhs
                ltype, rtype = rtype, ltype
            size = ltype.decayed().elem().size
            if size != 1:
                self.emit(f"muli r{rhs}, {size}")
            self.emit(f"{'add' if op == '+' else 'sub'} r{lhs}, r{rhs}")
            self.free_reg(rhs)
            return lhs, ltype.decayed()
        if unified.is_float:
            if op not in _FLOAT_OPS:
                raise self.err(node, f"operator {op!r} invalid on floats")
            lhs = self._convert(lhs, ltype, unified, node)
            rhs = self._convert(rhs, rtype, unified, node)
            suffix = "s" if unified.kind == "float" else "d"
            self.emit(f"fmovr f0, r{lhs}")
            self.emit(f"fmovr f1, r{rhs}")
            self.emit(f"{_FLOAT_OPS[op]}{suffix} f0, f1")
            self.emit(f"rmovf r{lhs}, f0")
            self.free_reg(rhs)
            return lhs, unified
        if op not in _INT_OPS:
            raise self.err(node, f"operator {op!r} invalid on ints")
        self.emit(f"{_INT_OPS[op]} r{lhs}, r{rhs}")
        self.free_reg(rhs)
        return lhs, A.INT

    def _materialize_bool(self, expr: A.Expr) -> tuple[int, A.CType]:
        l_true, l_false, l_end = self.label(), self.label(), self.label()
        self._branch(expr, l_true, l_false)
        reg = self.alloc_reg(expr)
        self.place(l_true)
        self.emit(f"movi r{reg}, 1")
        self.emit(f"jmp {l_end}")
        self.place(l_false)
        self.emit(f"movi r{reg}, 0")
        self.place(l_end)
        return reg, A.INT

    # -- conversions ----------------------------------------------------------------

    def _convert(self, reg: int, src: A.CType, dst: A.CType, node) -> int:
        src = src.decayed()
        dst = dst.decayed()
        if src.is_pointer or dst.is_pointer:
            return reg  # pointers and ints interconvert freely
        s, d = src.kind, dst.kind
        if s == d or {s, d} <= {"int", "char"} or d == "void":
            return reg
        if s in ("int", "char"):
            if d == "float":
                self.emit(f"cvtifs f0, r{reg}")
                self.emit(f"rmovf r{reg}, f0")
            elif d == "double":
                self.emit(f"cvtifd f0, r{reg}")
                self.emit(f"rmovf r{reg}, f0")
            return reg
        if s == "float":
            self.emit(f"fmovr f0, r{reg}")
            if d in ("int", "char"):
                self.emit(f"cvtfis r{reg}, f0")
            elif d == "double":
                self.emit("cvtsd f0, f0")
                self.emit(f"rmovf r{reg}, f0")
            return reg
        if s == "double":
            self.emit(f"fmovr f0, r{reg}")
            if d in ("int", "char"):
                self.emit(f"cvtfid r{reg}, f0")
            elif d == "float":
                self.emit("cvtds f0, f0")
                self.emit(f"rmovf r{reg}, f0")
            return reg
        raise self.err(node, f"cannot convert {src} to {dst}")

    # -- branches ------------------------------------------------------------------

    def _branch(self, expr: A.Expr, l_true: str, l_false: str) -> None:
        if isinstance(expr, A.Binary) and expr.op == "&&":
            mid = self.label()
            self._branch(expr.lhs, mid, l_false)
            self.place(mid)
            self._branch(expr.rhs, l_true, l_false)
            return
        if isinstance(expr, A.Binary) and expr.op == "||":
            mid = self.label()
            self._branch(expr.lhs, l_true, mid)
            self.place(mid)
            self._branch(expr.rhs, l_true, l_false)
            return
        if isinstance(expr, A.Unary) and expr.op == "!":
            self._branch(expr.operand, l_false, l_true)
            return
        if isinstance(expr, A.Binary) and expr.op in _CMP_OPS:
            lhs, ltype = self._expr(expr.lhs)
            rhs, rtype = self._expr(expr.rhs)
            unified = self._unified(ltype, rtype)
            if unified.is_float:
                lhs = self._convert(lhs, ltype, unified, expr)
                rhs = self._convert(rhs, rtype, unified, expr)
                suffix = "s" if unified.kind == "float" else "d"
                self.emit(f"fmovr f0, r{lhs}")
                self.emit(f"fmovr f1, r{rhs}")
                self.emit(f"fcmp{suffix} f0, f1")
                cc = _FLOAT_CC[expr.op]
            else:
                self.emit(f"cmp r{lhs}, r{rhs}")
                cc = _INT_CC[expr.op]
            self.free_reg(lhs)
            self.free_reg(rhs)
            self.emit(f"{cc} {l_true}")
            self.emit(f"jmp {l_false}")
            return
        reg, rtype = self._expr(expr)
        if rtype.is_float:
            raise self.err(expr, "float used as condition; compare explicitly")
        self.emit(f"cmpi r{reg}, 0")
        self.free_reg(reg)
        self.emit(f"jnz {l_true}")
        self.emit(f"jmp {l_false}")

    # -- calls ---------------------------------------------------------------------

    def _call(self, expr: A.Call, want_value: bool) -> tuple[int | None, A.CType]:
        name = expr.name
        if name == "__syscall":
            return self._builtin_syscall(expr)
        if name == "__stackpush":
            if len(expr.args) != 1:
                raise self.err(expr, "__stackpush takes 1 argument")
            reg, _ = self._expr(expr.args[0])
            self.emit(f"push r{reg}")
            self.free_reg(reg)
            return (None, A.VOID) if not want_value else (self._zero(expr), A.INT)
        if name == "__stackpop":
            reg = self.alloc_reg(expr)
            self.emit(f"pop r{reg}")
            return reg, A.INT
        if name not in self.info.functions:
            raise self.err(expr, f"call to undefined function {name!r}")
        ret, param_types = self.info.functions[name]
        if name in self.info.asm_functions:
            param_types = [A.INT] * len(expr.args)
        elif len(expr.args) != len(param_types):
            raise self.err(
                expr, f"{name} expects {len(param_types)} args, got {len(expr.args)}"
            )
        # Evaluate arguments, park each in a frame slot.
        slots = []
        for arg, ptype in zip(expr.args, param_types):
            reg, rtype = self._expr(arg)
            reg = self._convert(reg, rtype, ptype, expr)
            off = self.alloc_slot(8)
            self.emit(f"st [fp-{off}], r{reg}")
            self.free_reg(reg)
            slots.append(off)
        # Spill any live temporaries.
        spilled = []
        for reg in sorted(self.in_use):
            off = self.alloc_slot(8)
            self.emit(f"st [fp-{off}], r{reg}")
            spilled.append((reg, off))
        for i, off in enumerate(slots):
            self.emit(f"ld r{i + 1}, [fp-{off}]")
        self.emit(f"call {name}")
        result = None
        if want_value:
            result = self.alloc_reg(expr)
            self.emit(f"mov r{result}, r0")
        for reg, off in spilled:
            self.emit(f"ld r{reg}, [fp-{off}]")
        if want_value:
            return result, (ret if ret.kind != "void" else A.INT)
        return None, ret

    def _zero(self, node) -> int:
        reg = self.alloc_reg(node)
        self.emit(f"movi r{reg}, 0")
        return reg

    def _builtin_syscall(self, expr: A.Call) -> tuple[int, A.CType]:
        if not 1 <= len(expr.args) <= 6:
            raise self.err(expr, "__syscall takes 1..6 arguments")
        slots = []
        for arg in expr.args:
            reg, _ = self._expr(arg)
            off = self.alloc_slot(8)
            self.emit(f"st [fp-{off}], r{reg}")
            self.free_reg(reg)
            slots.append(off)
        spilled = []
        for reg in sorted(self.in_use):
            off = self.alloc_slot(8)
            self.emit(f"st [fp-{off}], r{reg}")
            spilled.append((reg, off))
        self.emit(f"ld r0, [fp-{slots[0]}]")
        for i, off in enumerate(slots[1:]):
            self.emit(f"ld r{i + 1}, [fp-{off}]")
        self.emit("syscall")
        result = self.alloc_reg(expr)
        self.emit(f"mov r{result}, r0")
        for reg, off in spilled:
            self.emit(f"ld r{reg}, [fp-{off}]")
        return result, A.INT


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


def generate_unit(unit: A.Unit, info: ProgramInfo, code_section: str = ".text") -> str:
    """Generate RX64 assembly for one parsed unit."""
    return UnitCodegen(unit, info, code_section).generate()
