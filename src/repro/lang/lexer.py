"""Lexer for BombC, the small C-like language the logic bombs are written in.

BombC exists so the dataset programs can be written at source level
exactly like the paper's Figure 2 snippets and *compiled* to RX64 — the
instruction patterns the challenges rely on (stack traffic, indirect
jumps, float conversions, library calls) then arise from compilation,
not hand-staging.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CompileError

KEYWORDS = {
    "int", "char", "float", "double", "void",
    "if", "else", "while", "for", "return", "break", "continue",
}

#: Multi-character operators, longest first.
OPERATORS = [
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


@dataclass(frozen=True)
class Token:
    kind: str       # "int", "float", "str", "char", "ident", "kw", "op", "eof"
    text: str
    value: object = None
    line: int = 0


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", '"': '"', "'": "'"}


def tokenize(source: str, unit: str = "<bc>") -> list[Token]:
    """Tokenize BombC *source*; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)

    def err(msg: str) -> CompileError:
        return CompileError(f"{unit}:{line}: {msg}")

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise err("unterminated comment")
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("int", source[i:j], int(source[i:j], 16), line))
                i = j
                continue
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    is_float = True
                j += 1
            if j < n and source[j] in "eE":
                is_float = True
                j += 1
                if j < n and source[j] in "+-":
                    j += 1
                while j < n and source[j].isdigit():
                    j += 1
            text = source[i:j]
            if is_float:
                tokens.append(Token("float", text, float(text), line))
            else:
                tokens.append(Token("int", text, int(text), line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, text, line))
            i = j
            continue
        if ch == '"':
            j = i + 1
            out = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    nxt = source[j + 1]
                    if nxt == "x":
                        out.append(int(source[j + 2 : j + 4], 16))
                        j += 4
                        continue
                    out.append(ord(_ESCAPES.get(nxt, nxt)))
                    j += 2
                else:
                    out.append(ord(source[j]))
                    j += 1
            if j >= n:
                raise err("unterminated string")
            tokens.append(Token("str", source[i : j + 1], bytes(out), line))
            i = j + 1
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                value = ord(_ESCAPES.get(source[j + 1], source[j + 1]))
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise err("unterminated char literal")
            if j >= n or source[j] != "'":
                raise err("unterminated char literal")
            tokens.append(Token("char", source[i : j + 1], value, line))
            i = j + 1
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, op, line))
                i += len(op)
                break
        else:
            raise err(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", None, line))
    return tokens
