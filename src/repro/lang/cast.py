"""Abstract syntax tree and type model for BombC."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CType:
    """A BombC type: a base kind plus pointer depth.

    ``array`` is the element count when the declarator was an array
    (arrays decay to pointers in expressions).
    """

    kind: str          # "int" | "char" | "float" | "double" | "void"
    ptr: int = 0
    array: int | None = None

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0 or self.array is not None

    @property
    def is_float(self) -> bool:
        return self.kind in ("float", "double") and not self.is_pointer

    @property
    def size(self) -> int:
        """Size in bytes of one value of this type."""
        if self.array is not None:
            return self.elem().size * self.array
        if self.ptr > 0:
            return 8
        return {"int": 8, "char": 1, "float": 4, "double": 8, "void": 0}[self.kind]

    def elem(self) -> "CType":
        """Type of the pointee / array element."""
        if self.array is not None:
            return CType(self.kind, self.ptr)
        if self.ptr > 0:
            return CType(self.kind, self.ptr - 1)
        raise ValueError(f"{self} is not a pointer")

    def pointer_to(self) -> "CType":
        return CType(self.kind, self.ptr + 1)

    def decayed(self) -> "CType":
        """Array-to-pointer decay."""
        if self.array is not None:
            return CType(self.kind, self.ptr + 1)
        return self

    def __str__(self) -> str:
        text = self.kind + "*" * self.ptr
        if self.array is not None:
            text += f"[{self.array}]"
        return text


INT = CType("int")
CHAR = CType("char")
FLOAT = CType("float")
DOUBLE = CType("double")
VOID = CType("void")


# -- expressions -------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StrLit(Expr):
    value: bytes = b""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # - ! ~ * &
    operand: Expr | None = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Expr | None = None
    rhs: Expr | None = None


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Cast(Expr):
    type: CType = INT
    operand: Expr | None = None


# -- statements ------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Decl(Stmt):
    name: str = ""
    type: CType = INT
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Expr | None = None  # Ident | Index | Unary('*')
    op: str = "="               # "=", "+=", "-=", ...
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class If(Stmt):
    cond: Expr | None = None
    then: list[Stmt] = field(default_factory=list)
    orelse: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: list[Stmt] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# -- top level ---------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: CType


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: list[Param]
    body: list[Stmt]
    line: int = 0


@dataclass
class GlobalVar:
    name: str
    type: CType
    init: object = None  # int | float | bytes | list[int] | None
    line: int = 0


@dataclass
class Unit:
    """One parsed translation unit."""

    name: str
    functions: list[FuncDef] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)
