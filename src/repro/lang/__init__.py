"""BombC — the C-like language the logic-bomb dataset is written in."""

from .cast import CType, Unit
from .compiler import CRT_ASM, compile_single, compile_sources
from .lexer import tokenize
from .parser import parse

__all__ = ["CRT_ASM", "CType", "Unit", "compile_single", "compile_sources", "parse", "tokenize"]
