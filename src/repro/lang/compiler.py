"""BombC compiler driver: sources -> REXF image.

Program code goes to ``.text``; the runtime library (libc subset, math,
rand, SHA1, AES, pthread) is compiled into the ``.lib`` section so its
functions carry symbol kind ``lib`` — the surface analysis tools can
either analyze ("with libraries") or hook ("no-lib"), matching the two
Angr configurations in the paper's Table II.
"""

from __future__ import annotations

from ..asm import assemble
from ..binfmt import Image, link
from . import cast as A
from .codegen import ProgramInfo, generate_unit
from .parser import parse

#: C runtime startup: calls main(argc, argv) then exits with its result.
CRT_ASM = """
.text
.global _start
_start:
    call main
    mov r1, r0
    movi r0, 0      ; SYS_EXIT
    syscall
    hlt
"""


def compile_sources(
    sources: list[tuple[str, str]],
    include_runtime: bool = True,
    asm_modules: list[tuple[str, str]] | None = None,
    entry: str = "_start",
) -> Image:
    """Compile BombC *sources* (name, text) plus optional raw *asm_modules*.

    Raw assembly modules let individual bombs hand-author code shapes a
    compiler would not emit deterministically (fixed-stride jump-table
    blocks for the symbolic-jump challenge).
    """
    units: list[tuple[A.Unit, str]] = []
    for name, text in sources:
        units.append((parse(text, name), ".text"))
    if include_runtime:
        from ..runtime import runtime_sources

        for name, text in runtime_sources():
            units.append((parse(text, name), ".lib"))

    info = ProgramInfo.collect([u for u, _ in units])
    _declare_asm_symbols(info, asm_modules or [])

    modules = [assemble(CRT_ASM, "crt0.s")]
    for unit, section in units:
        asm_text = generate_unit(unit, info, section)
        modules.append(assemble(asm_text, unit.name + ".s"))
    for name, text in asm_modules or []:
        modules.append(assemble(text, name))
    return link(modules, entry=entry)


def _declare_asm_symbols(info: ProgramInfo, asm_modules: list[tuple[str, str]]) -> None:
    """Make functions defined in raw asm callable from BombC.

    Any ``.global name`` in an asm module is registered as
    ``int name(int, ..., int)`` with up to 6 int parameters; BombC call
    sites type-check against argument count at the call site only, so we
    register a permissive variadic-style signature per arity by scanning
    for ``name(`` is not possible — instead asm functions are declared
    with a special marker signature accepting any arity.
    """
    import re

    for _name, text in asm_modules:
        for match in re.finditer(r"^\s*\.global\s+([\w.$]+)", text, re.MULTILINE):
            sym = match.group(1)
            if sym not in info.functions:
                info.functions[sym] = (A.INT, [])
                info.asm_functions.add(sym)


def compile_single(source: str, name: str = "prog.bc", **kwargs) -> Image:
    """Compile one BombC source string into an image."""
    return compile_sources([(name, source)], **kwargs)
