"""Tool configurations and the unified analysis interface."""

from .api import Tool, ToolReport, all_tool_names, capability_fingerprint, get_tool
from .profiles import ANGRX, ANGRX_NOLIB, BAPX, TRITONX

__all__ = [
    "ANGRX",
    "ANGRX_NOLIB",
    "BAPX",
    "TRITONX",
    "Tool",
    "ToolReport",
    "all_tool_names",
    "capability_fingerprint",
    "get_tool",
]
