"""Unified tool interface over the two engine families.

``get_tool(name)`` returns a :class:`Tool` for any Table II column
(``bapx``, ``tritonx``, ``angrx``, ``angrx_nolib``, ``sandshrewx``,
``hybridx``) or the extension tool ``rexx``.  ``Tool.analyze_bomb``
runs the engine and **validates every claimed input by concrete
replay** before granting success — the paper's acceptance criterion.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field

from .. import obs
from ..bombs.suite import Bomb
from ..concolic import ConcolicEngine
from ..errors import DiagnosticLog
from ..fuzz.hybrid import run_hybrid
from ..fuzz.mutator import cracking_candidates
from ..smt import querylog
from ..symex import AngrEngine
from ..vm import Environment
from .profiles import HYBRID_PROFILES, SYMEX_PROFILES, TRACE_PROFILES


@dataclass
class ToolReport:
    """Normalized result of one tool run on one bomb."""

    tool: str
    bomb_id: str
    solved: bool = False
    solution: list[bytes] | None = None
    solution_env: Environment | None = None
    goal_claimed: bool = False
    claimed_inputs: list[list[bytes]] = field(default_factory=list)
    diagnostics: DiagnosticLog = field(default_factory=DiagnosticLog)
    aborted: str | None = None
    elapsed: float = 0.0
    false_positive: bool = False

    def diag_kinds(self) -> set:
        return {d.kind for d in self.diagnostics}


class Tool:
    """One concolic/symbolic execution tool configuration."""

    def __init__(self, name: str):
        self.name = name
        if name in TRACE_PROFILES:
            self.family = "trace"
            self.policy = TRACE_PROFILES[name]
        elif name in SYMEX_PROFILES:
            self.family = "symex"
            self.policy = SYMEX_PROFILES[name]
        elif name in HYBRID_PROFILES:
            self.family = "hybrid"
            self.policy = HYBRID_PROFILES[name]
        else:
            raise KeyError(
                f"unknown tool {name!r}; known: "
                f"{all_tool_names() + ['rexx']}"
            )

    def analyze_bomb(self, bomb: Bomb) -> ToolReport:
        """Run this tool on *bomb* and validate any claimed solutions."""
        start = time.monotonic()
        # Solve-stage flight recorder: a process-wide recorder (solverlab
        # capture) takes precedence; the per-tool policy flag installs a
        # run-local one whose records persist into the attached campaign
        # store.  Either way the queries are attributed to this cell.
        local = None
        if querylog.active() is None and self._wants_query_log():
            local = querylog.QueryRecorder()
        with querylog.capturing(local), \
                querylog.cell(bomb.bomb_id, self.name):
            if self.family == "trace":
                report = self._run_trace(bomb)
            elif self.family == "hybrid":
                report = self._run_hybrid(bomb)
            else:
                report = self._run_symex(bomb)
        if local is not None and querylog.attached_store() is not None:
            local.persist(querylog.attached_store())
        report.elapsed = time.monotonic() - start
        if bomb.expected_unreachable and report.goal_claimed and not report.solved:
            report.false_positive = True
        return report

    def _wants_query_log(self) -> bool:
        policy = self.policy
        if getattr(policy, "query_log", False):
            return True
        # Hybrid profiles nest their concolic half's ToolPolicy.
        return getattr(getattr(policy, "concolic", None), "query_log", False)

    # -- engines ------------------------------------------------------------

    def _run_trace(self, bomb: Bomb) -> ToolReport:
        engine = ConcolicEngine(self.policy)
        raw = engine.run(
            bomb.image, bomb.seed_argv, bomb.base_env(),
            argv0=bomb.bomb_id.encode(),
        )
        return ToolReport(
            tool=self.name,
            bomb_id=bomb.bomb_id,
            solved=raw.solved,
            solution=raw.solution,
            goal_claimed=raw.solved,
            claimed_inputs=raw.claimed_inputs,
            diagnostics=raw.diagnostics,
            aborted=raw.aborted,
        )

    def _run_symex(self, bomb: Bomb) -> ToolReport:
        engine = AngrEngine(bomb.image, self.policy)
        raw = engine.explore(bomb.seed_argv, argv0=bomb.bomb_id.encode())
        report = ToolReport(
            tool=self.name,
            bomb_id=bomb.bomb_id,
            goal_claimed=raw.goal_claimed,
            claimed_inputs=raw.claimed_inputs,
            diagnostics=raw.diagnostics,
            aborted=raw.aborted,
        )
        if raw.claimed_inputs:
            with obs.span("replay", bomb=bomb.bomb_id, tool=self.name) as sp:
                for claim in raw.claimed_inputs:
                    obs.count("replay.claims_checked")
                    if bomb.triggers(claim):
                        report.solved = True
                        report.solution = claim
                        break
                sp.set("validated", report.solved)
        budget = getattr(self.policy, "concrete_fallback_budget", 0)
        if (budget > 0 and not report.solved and not bomb.expected_unreachable
                and getattr(engine, "opaque_concretized", False)):
            self._concrete_fallback(bomb, report, budget)
        return report

    def _concrete_fallback(self, bomb: Bomb, report: ToolReport,
                           budget: int) -> None:
        """Sandshrew's endgame: the engine concretized through an opaque
        library call it cannot invert, so spend the remaining budget
        *checking* deterministic cracking candidates at VM speed."""
        with obs.span("concrete_fallback", bomb=bomb.bomb_id,
                      tool=self.name) as sp:
            tail = list(bomb.seed_argv[1:])
            for i, candidate in enumerate(cracking_candidates()):
                if i >= budget:
                    break
                obs.count("symex.fallback_execs")
                claim = [candidate, *tail]
                if bomb.triggers(claim):
                    report.solved = True
                    report.solution = claim
                    report.goal_claimed = True
                    report.claimed_inputs.append(claim)
                    break
            sp.set("cracked", report.solved)

    def _run_hybrid(self, bomb: Bomb) -> ToolReport:
        raw = run_hybrid(
            bomb.image, self.policy, bomb.seed_argv, bomb.base_env(),
            argv0=bomb.bomb_id.encode(),
        )
        report = ToolReport(
            tool=self.name,
            bomb_id=bomb.bomb_id,
            goal_claimed=raw.solved,
            claimed_inputs=raw.claimed_inputs,
            diagnostics=raw.diagnostics,
            aborted=raw.aborted,
        )
        if raw.solved and raw.solution is not None:
            with obs.span("replay", bomb=bomb.bomb_id, tool=self.name) as sp:
                obs.count("replay.claims_checked")
                if bomb.triggers(raw.solution):
                    report.solved = True
                    report.solution = raw.solution
                sp.set("validated", report.solved)
        return report


def get_tool(name: str) -> Tool:
    """Look up a tool by Table II column name (or ``rexx``)."""
    if name == "rexx":
        from .rexx import RexxTool

        return RexxTool()
    return Tool(name)


def all_tool_names() -> list[str]:
    return (sorted(TRACE_PROFILES) + sorted(SYMEX_PROFILES)
            + sorted(HYBRID_PROFILES))


def capability_fingerprint(name: str) -> str:
    """Stable digest of one tool's full capability matrix.

    Combines the engine family with the policy's own fingerprint, so a
    profile rename, a family switch, or any capability/budget edit
    yields a different digest.  The campaign service uses this as the
    tool component of its content-addressed cache keys: results computed
    under an older capability matrix are never served for a newer one.
    """
    tool = get_tool(name)
    payload = f"{name}\x00{tool.family}\x00{tool.policy.fingerprint()}"
    return hashlib.sha256(payload.encode()).hexdigest()
