"""The evaluated tool configurations (the paper's Table II columns).

Each profile encodes the 2016/2017-era capability matrix of the real
tool it models.  Sources for the switches: the paper's Section V.C
analysis (Triton's missing FP lifting, BAP's primitive support, Angr's
symbolic memory map and system-call simulation) and the tools' public
documentation of that era.
"""

from __future__ import annotations

from ..concolic.policy import ToolPolicy
from ..symex.policy import SymexPolicy

#: BAP 0.9-era: Pin tracer (follows threads + signals), OCaml lifter
#: without FP coverage, push/pop modeled as pure SP arithmetic, explicit
#: division guards in the IL, taint not instrumented through library
#: data, argv declared as a fixed 8-byte word.
BAPX = ToolPolicy(
    name="bapx",
    supports_fp=False,
    lifts_stack_memory=False,
    signal_trace=True,
    cross_thread_taint=True,
    div_guard=True,
    lib_data_taint=False,
    env_arg_diag="es2",
    argv_model="word8",
)

#: Triton ~2016: Pin tracer with per-thread SSA state, no FP instruction
#: semantics, no signal stitching, models syscall arguments as SMT but
#: lacks the theories (Es3 on contextual values), per-byte argv frozen
#: at the seed's length.
TRITONX = ToolPolicy(
    name="tritonx",
    supports_fp=False,
    lifts_stack_memory=True,
    signal_trace=False,
    cross_thread_taint=False,
    div_guard=False,
    lib_data_taint=True,
    env_arg_diag="es3",
    argv_model="per-byte",
)

#: angr ~2016 with libraries loaded: static whole-program lift, symbolic
#: execution of .lib code, partial syscall model, single-level symbolic
#: memory.
ANGRX = SymexPolicy(name="angrx", with_libs=True)

#: angr without libraries: library calls intercepted by simprocedures.
ANGRX_NOLIB = SymexPolicy(name="angrx_nolib", with_libs=False)


TRACE_PROFILES = {p.name: p for p in (BAPX, TRITONX)}
SYMEX_PROFILES = {p.name: p for p in (ANGRX, ANGRX_NOLIB)}
