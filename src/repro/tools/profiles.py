"""The evaluated tool configurations (the paper's Table II columns).

Each profile encodes the 2016/2017-era capability matrix of the real
tool it models.  Sources for the switches: the paper's Section V.C
analysis (Triton's missing FP lifting, BAP's primitive support, Angr's
symbolic memory map and system-call simulation) and the tools' public
documentation of that era.
"""

from __future__ import annotations

from ..concolic.policy import ToolPolicy
from ..fuzz.hybrid import HybridPolicy
from ..symex.policy import SymexPolicy

#: BAP 0.9-era: Pin tracer (follows threads + signals), OCaml lifter
#: without FP coverage, push/pop modeled as pure SP arithmetic, explicit
#: division guards in the IL, taint not instrumented through library
#: data, argv declared as a fixed 8-byte word.
BAPX = ToolPolicy(
    name="bapx",
    supports_fp=False,
    lifts_stack_memory=False,
    signal_trace=True,
    cross_thread_taint=True,
    div_guard=True,
    lib_data_taint=False,
    env_arg_diag="es2",
    argv_model="word8",
)

#: Triton ~2016: Pin tracer with per-thread SSA state, no FP instruction
#: semantics, no signal stitching, models syscall arguments as SMT but
#: lacks the theories (Es3 on contextual values), per-byte argv frozen
#: at the seed's length.
TRITONX = ToolPolicy(
    name="tritonx",
    supports_fp=False,
    lifts_stack_memory=True,
    signal_trace=False,
    cross_thread_taint=False,
    div_guard=False,
    lib_data_taint=True,
    env_arg_diag="es3",
    argv_model="per-byte",
)

#: angr ~2016 with libraries loaded: static whole-program lift, symbolic
#: execution of .lib code, partial syscall model, single-level symbolic
#: memory.
ANGRX = SymexPolicy(name="angrx", with_libs=True)

#: angr without libraries: library calls intercepted by simprocedures.
ANGRX_NOLIB = SymexPolicy(name="angrx_nolib", with_libs=False)

#: Sandshrew-style concretizing concolic (Trail of Bits' sandshrew on
#: unicorn, here on the no-lib symbolic engine): opaque ``.lib``/crypto
#: externals run concretely in the VM on the current model with the
#: result re-injected; when that concretization happened and no claim
#: validated, a bounded concrete search checks cracking candidates.
SANDSHREWX = SymexPolicy(
    name="sandshrewx",
    with_libs=False,
    simproc_table="sandshrew",
    concrete_fallback_budget=700,
)

#: Legion-style hybrid fuzzing: a deterministic coverage-guided fuzzer
#: alternating with short trace-based concolic phases; solver-derived
#: branch-flip inputs seed the fuzzer, highest-coverage corpus entries
#: seed the concolic replays.
HYBRIDX = HybridPolicy(name="hybridx")


TRACE_PROFILES = {p.name: p for p in (BAPX, TRITONX)}
SYMEX_PROFILES = {p.name: p for p in (ANGRX, ANGRX_NOLIB, SANDSHREWX)}
HYBRID_PROFILES = {p.name: p for p in (HYBRIDX,)}
