"""REXX — the extension tool (the repo's "lessons learnt" chapter).

REXX is this package's own concolic/symbolic tool, built on the same
static engine as AngrX but with every extension capability enabled.
It exists to demonstrate that the paper's challenges are *engineering*
gaps, not fundamental limits:

==========================  ========================================
challenge                   REXX answer
==========================  ========================================
symbolic variable decl.     environment declared symbolic; claims
                            carry an *environment requirement*
covert propagation          faithful file/mailbox models (expressions
                            survive the kernel round trip)
parallel programs           fork follows the child; threads inlined
                            run-to-completion
symbolic arrays             two-level symbolic memory
contextual symbolic values  filesystem namespace modeled (a claimed
                            file requirement)
symbolic jumps              feasible-target enumeration with forking
floating point              transcendental expression nodes + local
                            search over the full path condition
scalability (crypto/PRNG)   *honest failure*: claims depending on
                            invented values are rejected, so the
                            negative bomb yields no false positive
==========================  ========================================

Every claim is still validated by concrete replay (with the claimed
environment overlaid) before REXX reports success.
"""

from __future__ import annotations

import time

from ..bombs.suite import Bomb
from ..symex import AngrEngine
from ..symex.policy import SymexPolicy
from .api import ToolReport

#: The REXX configuration: no-lib hooking with the faithful catalogue
#: and every extension capability on, plus roomier budgets.
REXX = SymexPolicy(
    name="rexx",
    with_libs=False,
    simproc_table="rexx",
    sym_mem_levels=2,
    enumerate_jumps=True,
    env_symbolic=True,
    fp_search=True,
    faithful_fs=True,
    inline_threads=True,
    model_mailbox=True,
    model_signals=True,
    honest_claims=True,
    argv_bytes=10,
    max_states=768,
    max_total_steps=250_000,
    max_queries=1400,
    solver_conflicts=20_000,
    time_limit=150.0,
)


class RexxTool:
    """Tool wrapper running the REXX configuration."""

    name = "rexx"
    family = "symex"
    policy = REXX

    def analyze_bomb(self, bomb: Bomb) -> ToolReport:
        start = time.monotonic()
        engine = AngrEngine(bomb.image, self.policy)
        raw = engine.explore(bomb.seed_argv, argv0=bomb.bomb_id.encode())
        report = ToolReport(
            tool=self.name,
            bomb_id=bomb.bomb_id,
            goal_claimed=raw.goal_claimed,
            claimed_inputs=raw.claimed_inputs,
            diagnostics=raw.diagnostics,
            aborted=raw.aborted,
        )
        claim_env = engine.claim_env
        for claim in raw.claimed_inputs:
            if bomb.triggers(claim, env=claim_env):
                report.solved = True
                report.solution = claim
                report.solution_env = claim_env
                break
        report.elapsed = time.monotonic() - start
        if bomb.expected_unreachable and report.goal_claimed and not report.solved:
            report.false_positive = True
        return report
