"""repro — reproduction of "Concolic Execution on Small-Size Binaries:
Challenges and Empirical Study" (Xu, Zhou, Kang, Lyu — DSN 2017).

The package builds, from scratch, everything the paper's empirical study
needs: the RX64 instruction set with assembler and binary format, a
concrete VM with an OS layer, the BombC compiler the logic bombs are
written in, an SMT stack with a CDCL SAT core, dynamic taint tracing, a
trace-based concolic execution framework (the paper's Figure 1), an
Angr-style static symbolic executor, and tool capability profiles whose
genuine limits reproduce the paper's Table II.
"""

from .errors import Diagnostic, DiagnosticKind, DiagnosticLog, ErrorStage

__version__ = "1.0.0"

__all__ = [
    "Diagnostic",
    "DiagnosticKind",
    "DiagnosticLog",
    "ErrorStage",
    "__version__",
]
