"""Forward dynamic taint accounting over a recorded trace.

The taint view is exactly "which instructions carry symbolic data" —
the metric Figure 3 of the paper reports (5 instructions propagate the
input without printf; 66 with it).  Rather than duplicating dataflow
logic, this module runs the symbolic trace replayer and reads its
counters; a separate boolean-taint engine would have to mirror every
propagation rule and would inevitably drift.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..binfmt import Image
from ..vm import Environment


@dataclass
class TaintSummary:
    """Counts from one taint pass over a concrete execution."""

    total_instructions: int
    tainted_instructions: int
    symbolic_branches: int
    model_nodes: int
    #: the per-instruction provenance chain, when a collector was
    #: active (or *policy.provenance* was set); None otherwise.
    provenance: object | None = None

    @property
    def tainted_fraction(self) -> float:
        if not self.total_instructions:
            return 0.0
        return self.tainted_instructions / self.total_instructions


def taint_summary(
    image: Image,
    argv: list[bytes],
    env: Environment | None = None,
    policy=None,
    max_steps: int = 1_000_000,
) -> TaintSummary:
    """Trace *image* on *argv* and report taint statistics.

    *policy* defaults to a full-fidelity trace policy (everything
    tracked), which is what the Figure 3 measurement wants.
    """
    from ..concolic.policy import ToolPolicy
    from ..concolic.replay import TraceReplayer
    from .tracer import record_trace

    if policy is None:
        policy = ToolPolicy(
            name="taint",
            supports_fp=True,
            lifts_stack_memory=True,
            signal_trace=True,
            cross_thread_taint=True,
            div_guard=True,
        )
    from .. import obs

    with obs.span("trace"):
        trace = record_trace(image, argv, env, max_steps=max_steps)
    replay = TraceReplayer(image, policy).replay(trace)
    model_nodes = sum(c.expr.size() for c in replay.constraints)
    obs.count("taint.model_nodes", model_nodes)
    return TaintSummary(
        total_instructions=replay.total_instructions,
        tainted_instructions=replay.tainted_instructions,
        symbolic_branches=len(replay.constraints),
        model_nodes=model_nodes,
        provenance=replay.provenance,
    )
