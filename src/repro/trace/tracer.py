"""Instruction tracer over the concrete VM — the Intel Pin stand-in.

Like a Pin tool, the tracer instruments *one process*: it records every
instruction of every thread of the root process, syscall completions
with their memory effects, and signal deliveries.  Child processes
created by ``fork`` execute but are not recorded — the fidelity gap the
parallel-program challenge exploits.
"""

from __future__ import annotations

from ..binfmt import Image
from ..vm import Environment, Machine
from ..vm.syscalls import Sys
from .record import SignalEvent, StepEvent, SyscallEvent, Trace


def record_trace(
    image: Image,
    argv: list[bytes],
    env: Environment | None = None,
    max_steps: int = 1_000_000,
    max_events: int = 2_000_000,
) -> Trace:
    """Concretely execute *image* and return the recorded trace."""
    machine = Machine(image, argv, env)
    trace = Trace(argv=list(argv), main_pid=machine.main_pid)
    trace.argv_regions = list(machine.argv_regions)

    def on_step(proc, thread, instr):
        if proc.pid != machine.main_pid or len(trace.events) >= max_events:
            return
        trace.events.append(StepEvent(proc.pid, thread.tid, instr))

    def on_syscall(proc, thread, nr, args, ret):
        if proc.pid != machine.main_pid or len(trace.events) >= max_events:
            return
        writes: list[tuple[int, bytes]] = []
        mem = proc.memory
        if nr == Sys.READ and ret > 0:
            writes.append((args[1], mem.read(args[1], ret)))
        elif nr == Sys.HTTP_GET and ret > 0:
            writes.append((args[1], mem.read(args[1], ret)))
        elif nr == Sys.PIPE and ret == 0:
            writes.append((args[0], mem.read(args[0], 16)))
        elif nr == Sys.WAITPID and ret >= 0 and args[1]:
            writes.append((args[1], mem.read(args[1], 8)))
        if nr == Sys.FORK and ret > 0:
            trace.forked = True
        trace.events.append(
            SyscallEvent(proc.pid, thread.tid, nr, tuple(args), ret, tuple(writes))
        )

    def on_signal(proc, thread, signo, handler):
        if proc.pid != machine.main_pid:
            return
        instr = machine._fetch(proc, thread.ctx.pc)
        trace.events.append(
            SignalEvent(proc.pid, thread.tid, signo, handler, instr.next_addr)
        )

    machine.on_step = on_step
    machine.on_syscall = on_syscall
    machine.on_signal = on_signal
    result = machine.run(max_steps)
    trace.bomb_triggered = result.bomb_triggered
    trace.exit_code = result.exit_code
    return trace
