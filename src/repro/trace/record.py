"""Trace event records produced by the tracer (the Pin role).

A trace is a flat list of events in execution order.  Instruction
events carry only (pid, tid, instruction): replay engines re-derive
data values by shadow execution from the image's initial state, exactly
as trace-replay concolic tools do.  Environment effects that shadow
execution cannot re-derive — system-call results, the memory bytes a
syscall wrote, signal deliveries — are recorded explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import Instruction


@dataclass(frozen=True)
class StepEvent:
    """One instruction about to execute."""

    pid: int
    tid: int
    instr: Instruction


@dataclass(frozen=True)
class SyscallEvent:
    """A completed system call with its memory effects."""

    pid: int
    tid: int
    nr: int
    args: tuple[int, ...]
    ret: int
    #: (addr, bytes) pairs the kernel wrote into process memory.
    writes: tuple[tuple[int, bytes], ...] = ()


@dataclass(frozen=True)
class SignalEvent:
    """A signal delivery (handler invocation) in the traced process."""

    pid: int
    tid: int
    signo: int
    handler: int
    resume_pc: int


TraceEvent = StepEvent | SyscallEvent | SignalEvent


@dataclass
class Trace:
    """A recorded concrete execution of one process tree's root."""

    events: list[TraceEvent] = field(default_factory=list)
    argv: list[bytes] = field(default_factory=list)
    argv_regions: list[tuple[int, int]] = field(default_factory=list)
    bomb_triggered: bool = False
    exit_code: int | None = None
    forked: bool = False
    main_pid: int = 0

    def __len__(self) -> int:
        return len(self.events)

    def steps(self):
        return (e for e in self.events if isinstance(e, StepEvent))

    @property
    def instruction_count(self) -> int:
        return sum(1 for _ in self.steps())
