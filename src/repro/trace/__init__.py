"""Instruction tracing (the Pin role) and taint accounting."""

from .record import SignalEvent, StepEvent, SyscallEvent, Trace, TraceEvent
from .taint import taint_summary
from .tracer import record_trace

__all__ = [
    "SignalEvent",
    "StepEvent",
    "SyscallEvent",
    "Trace",
    "TraceEvent",
    "record_trace",
    "taint_summary",
]
