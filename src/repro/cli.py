"""Command-line front end.

One executable with subcommands mirroring the binutils-style workflow
the paper's artifact users would expect::

    repro cc prog.bc -o prog.rexf          # compile BombC
    repro run prog.rexf -- arg1 arg2       # execute on the VM
    repro dis prog.rexf                    # disassemble
    repro nm prog.rexf                     # symbol table
    repro taint prog.rexf -- 77            # taint summary of one run
    repro solve --tool tritonx prog.rexf --seed 1
    repro bombs                            # list the dataset
    repro table2 --tools tritonx --bombs cp_stack sa_l1_array
    repro explain sa_l1_array tritonx      # why does that cell say Es3?
    repro solverlab capture --cache lab    # record every SMT query
    repro solverlab replay --cache lab     # re-run them, check verdicts
    repro stats run.jsonl --prom           # Prometheus text exposition

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path


@contextlib.contextmanager
def _metrics(args, want: bool = False, capture: bool = False):
    """Install a recorder for the command when metrics were requested.

    ``--metrics-out FILE`` streams JSONL events to *FILE*; *want* forces
    a sink-less in-memory recorder (used by ``table2 --json``, which
    needs per-stage timings even without an output file); *capture*
    additionally attaches a :class:`MemorySink` so the caller can read
    the full event stream back (``--trace-out``).  Yields the recorder,
    or ``None`` when observability stays off.
    """
    from . import obs

    out = getattr(args, "metrics_out", None)
    if out is None and not want and not capture:
        yield None
        return
    try:
        sinks = [obs.JsonlSink(out)] if out is not None else []
    except OSError as err:
        raise SystemExit(f"cannot open {out}: {err.strerror}")
    if capture:
        sinks.append(obs.MemorySink())
    with obs.recording(obs.Recorder(sinks=sinks)) as rec:
        yield rec


def _load_image(path: str):
    from .binfmt import Image

    return Image.from_bytes(Path(path).read_bytes())


def _parse_env(specs: list[str]):
    """Parse ``--env key=value`` pairs into an Environment."""
    from .vm import Environment

    env = Environment()
    for spec in specs or []:
        key, _, value = spec.partition("=")
        if key == "time":
            env.time_value = int(value)
        elif key == "pid":
            env.pid = int(value)
        elif key == "magic":
            env.magic = int(value)
        elif key.startswith("file:"):
            env.files[key[5:]] = value.encode()
        elif key.startswith("url:"):
            env.network[key[4:]] = value.encode()
        else:
            raise SystemExit(f"unknown env key {key!r} "
                             "(use time/pid/magic/file:<path>/url:<url>)")
    return env


# -- subcommands ------------------------------------------------------------

def cmd_cc(args) -> int:
    from .lang import compile_single

    source = Path(args.source).read_text()
    image = compile_single(source, Path(args.source).name)
    out = args.output or (Path(args.source).stem + ".rexf")
    Path(out).write_bytes(image.to_bytes())
    print(f"{out}: {image.file_size} bytes, entry 0x{image.entry:x}, "
          f"{len(image.symbols)} symbols")
    return 0


def cmd_run(args) -> int:
    from . import obs
    from .vm import Machine

    image = _load_image(args.binary)
    argv = [Path(args.binary).name.encode()] + [a.encode() for a in args.args]
    with _metrics(args):
        with obs.span("run", binary=Path(args.binary).name):
            result = Machine(image, argv, _parse_env(args.env)).run(args.max_steps)
    sys.stdout.write(result.stdout.decode("latin1"))
    if result.bomb_triggered:
        print("[bomb triggered]", file=sys.stderr)
    if result.timed_out:
        print("[timed out]", file=sys.stderr)
        return 124
    return result.exit_code or 0


def cmd_dis(args) -> int:
    from .asm import format_listing

    image = _load_image(args.binary)
    symbols = image.symbols_by_addr()
    for section in image.sections:
        if not section.executable:
            continue
        if args.no_lib and section.library:
            continue
        print(f"; section {section.name} @ 0x{section.vaddr:x}")
        print(format_listing(section.data, section.vaddr, symbols))
    return 0


def cmd_nm(args) -> int:
    image = _load_image(args.binary)
    for name, sym in sorted(image.symbols.items(), key=lambda kv: kv[1].addr):
        print(f"0x{sym.addr:08x} {sym.kind:10s} {name}")
    return 0


def cmd_taint(args) -> int:
    from .trace import taint_summary

    image = _load_image(args.binary)
    argv = [Path(args.binary).name.encode()] + [a.encode() for a in args.args]
    summary = taint_summary(image, argv, _parse_env(args.env))
    print(f"instructions executed : {summary.total_instructions}")
    print(f"tainted instructions  : {summary.tainted_instructions} "
          f"({summary.tainted_fraction:.1%})")
    print(f"symbolic branches     : {summary.symbolic_branches}")
    print(f"constraint-model nodes: {summary.model_nodes}")
    return 0


def cmd_solve(args) -> int:
    from .concolic import ConcolicEngine
    from .symex import AngrEngine
    from .tools.profiles import HYBRID_PROFILES, SYMEX_PROFILES, TRACE_PROFILES
    from .vm import Machine

    from . import obs

    image = _load_image(args.binary)
    seed = [s.encode() for s in (args.seed or ["1"])]
    argv0 = Path(args.binary).name.encode()

    def _triggers(claim):
        replay = Machine(image, [argv0] + claim, _parse_env(args.env))
        return replay.run().bomb_triggered

    with _metrics(args):
        if args.tool in TRACE_PROFILES:
            report = ConcolicEngine(TRACE_PROFILES[args.tool]).run(
                image, seed, _parse_env(args.env), argv0=argv0)
            solved, solution = report.solved, report.solution
            diags = report.diagnostics
        elif args.tool in HYBRID_PROFILES:
            from .fuzz.hybrid import run_hybrid

            raw = run_hybrid(image, HYBRID_PROFILES[args.tool], seed,
                             _parse_env(args.env), argv0=argv0)
            solved = raw.solved and _triggers(raw.solution)
            solution = raw.solution if solved else None
            diags = raw.diagnostics
        elif args.tool in SYMEX_PROFILES or args.tool == "rexx":
            if args.tool == "rexx":
                from .tools.rexx import REXX as policy
            else:
                policy = SYMEX_PROFILES[args.tool]
            engine = AngrEngine(image, policy)
            raw = engine.explore(seed, argv0=argv0)
            solution = None
            with obs.span("replay", tool=args.tool):
                for claim in raw.claimed_inputs:
                    if _triggers(claim):
                        solution = claim
                        break
            budget = getattr(policy, "concrete_fallback_budget", 0)
            if (solution is None and budget > 0
                    and getattr(engine, "opaque_concretized", False)):
                from .fuzz.mutator import cracking_candidates

                with obs.span("concrete_fallback", tool=args.tool):
                    for i, candidate in enumerate(cracking_candidates()):
                        if i >= budget:
                            break
                        obs.count("symex.fallback_execs")
                        if _triggers([candidate] + seed[1:]):
                            solution = [candidate] + seed[1:]
                            break
            solved = solution is not None
            diags = raw.diagnostics
        else:
            raise SystemExit(f"unknown tool {args.tool!r}")
    if solved:
        print("SOLVED:", [s.decode("latin1") for s in solution])
        return 0
    print("not solved; diagnostics:")
    for diag in diags:
        print(f"  {diag}")
    return 1


def cmd_bombs(args) -> int:
    from .bombs import all_bombs

    for bomb in all_bombs():
        marker = "  " if bomb.in_table2 else "* "
        print(f"{marker}{bomb.bomb_id:20s} {bomb.challenge:30s} {bomb.case}")
    print("\n(* = auxiliary program, not a Table II row)")
    return 0


def cmd_table2(args) -> int:
    from .bombs import TABLE2_BOMB_IDS, TOOL_COLUMNS
    from .eval import render_table2, run_table2

    bombs = tuple(args.bombs) if args.bombs else TABLE2_BOMB_IDS
    tools = tuple(args.tools) if args.tools else TOOL_COLUMNS
    if args.jobs is not None and args.jobs < 0:
        raise SystemExit("table2: --jobs must be >= 0 (0 = auto-detect)")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("table2: --timeout must be > 0 seconds")
    if args.explain:
        from .eval import explain_matrix
        from .service import ResultStore

        store = ResultStore(args.cache) if args.cache else None
        with _metrics(args, want=True):
            diagnoses = explain_matrix(bombs, tools, store=store,
                                       verbose=not args.json)
        if args.json:
            print(json.dumps([d.to_json() for d in diagnoses], indent=2))
        else:
            print()
            print("\n\n".join(d.render() for d in diagnoses))
        return 0
    trace_out = args.trace_out
    hotspot_text = None
    with _metrics(args, want=args.json or bool(trace_out),
                  capture=bool(trace_out)) as rec:
        from . import obs

        with obs.profiling(obs.Profiler() if trace_out else None) as prof:
            result = run_table2(bomb_ids=bombs, tools=tools,
                                verbose=not args.json, jobs=args.jobs,
                                timeout=args.timeout, cache=args.cache)
        if trace_out:
            mem = next(s for s in rec.sinks
                       if isinstance(s, obs.MemorySink))
            Path(trace_out).write_text(
                json.dumps(obs.chrome_trace(mem.events)))
            hotspot_text = obs.render_hotspots(prof.snapshot(),
                                               top=args.top)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print()
        print(render_table2(result))
    if hotspot_text is not None:
        print()
        print(hotspot_text)
        print(f"\ntrace written to {trace_out} "
              "(load it in https://ui.perfetto.dev)", file=sys.stderr)
    if args.check:
        mismatches = result.mismatches()
        for cell in mismatches:
            print(f"check: {cell.bomb_id}/{cell.tool} observed "
                  f"{cell.label}, paper says {cell.expected}",
                  file=sys.stderr)
        if mismatches:
            print(f"check: {len(mismatches)} cell(s) deviate from the "
                  "paper's Table II", file=sys.stderr)
            return 1
        print("check: all labelled cells match the paper", file=sys.stderr)
    return 0


def cmd_profile(args) -> int:
    from . import obs
    from .bombs import get_bomb
    from .eval.harness import _print_cell, run_cell
    from .tools.api import all_tool_names

    try:
        bomb = get_bomb(args.bomb)
    except KeyError:
        raise SystemExit(f"profile: unknown bomb {args.bomb!r} "
                         "(see `repro bombs`)")
    known = all_tool_names() + ["rexx"]
    if args.tool not in known:
        raise SystemExit(f"profile: unknown tool {args.tool!r} "
                         f"(known: {', '.join(known)})")
    mem = obs.MemorySink()
    sinks: list = [mem]
    if args.metrics_out is not None:
        try:
            sinks.append(obs.JsonlSink(args.metrics_out))
        except OSError as err:
            raise SystemExit(
                f"cannot open {args.metrics_out}: {err.strerror}")
    profiler = obs.Profiler()
    with obs.recording(obs.Recorder(sinks=sinks, hist_values=True)):
        with obs.profiling(profiler):
            cell = run_cell(bomb, args.tool)
    if args.trace_out:
        Path(args.trace_out).write_text(
            json.dumps(obs.chrome_trace(mem.events)))
    if args.flame_out:
        Path(args.flame_out).write_text(obs.collapsed_stacks(mem.events))
    if args.json:
        print(json.dumps({"cell": cell.to_json(),
                          **obs.hotspots(profiler.snapshot(), args.top)},
                         indent=2))
        return 0
    _print_cell(cell)
    print()
    print(obs.render_hotspots(profiler.snapshot(), top=args.top,
                              stage_wall=cell.timings,
                              stage_self=cell.timings_self))
    for path, what in ((args.trace_out, "Chrome trace (Perfetto)"),
                       (args.flame_out, "collapsed stacks (flamegraph)")):
        if path:
            print(f"\n{what} written to {path}", file=sys.stderr)
    return 0


def cmd_explain(args) -> int:
    from .bombs import get_bomb
    from .eval import explain_cell
    from .tools.api import all_tool_names

    try:
        bomb = get_bomb(args.bomb)
    except KeyError:
        raise SystemExit(f"explain: unknown bomb {args.bomb!r} "
                         "(see `repro bombs`)")
    known = all_tool_names() + ["rexx"]
    if args.tool not in known:
        raise SystemExit(f"explain: unknown tool {args.tool!r} "
                         f"(known: {', '.join(known)})")
    with _metrics(args, want=True):
        diagnosis = explain_cell(bomb, args.tool)
    if args.store:
        from .service import ResultStore, cell_key

        ResultStore(args.store).put_diagnosis(
            cell_key(bomb, args.tool), diagnosis)
    if args.json:
        print(json.dumps(diagnosis.to_json(), indent=2))
    else:
        print(diagnosis.render())
    return 0


# -- campaign service -------------------------------------------------------

def _campaign_service(args):
    from .service import CampaignService

    return CampaignService(args.root)


def cmd_campaign_submit(args) -> int:
    import dataclasses

    from .bombs import TABLE2_BOMB_IDS, TOOL_COLUMNS
    from .service import CampaignSpec, QuotaExceeded, SpecError, load_spec_file

    if args.jobs < 1:
        raise SystemExit("campaign: --jobs must be >= 1")
    service = _campaign_service(args)
    if args.spec:
        try:
            spec = load_spec_file(args.spec)
        except SpecError as err:
            raise SystemExit(f"campaign submit: {err}")
        if args.bombs or args.tools:
            raise SystemExit("campaign submit: --spec already selects the "
                             "matrix; drop --bombs/--tools")
        # Command-line execution knobs override the document's.
        overrides = {}
        if args.name:
            overrides["name"] = args.name
        if args.tenant:
            overrides["tenant"] = args.tenant
        if args.timeout is not None:
            overrides["timeout"] = args.timeout
        if overrides:
            spec = dataclasses.replace(spec, **overrides)
    else:
        spec = CampaignSpec(
            bombs=tuple(args.bombs) if args.bombs else TABLE2_BOMB_IDS,
            tools=tuple(args.tools) if args.tools else TOOL_COLUMNS,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            name=args.name or "",
            tenant=args.tenant or "",
        )
    try:
        cid = service.submit(spec)
    except QuotaExceeded as err:
        print(f"campaign submit: quota rejected: {err}", file=sys.stderr)
        return 3
    print(f"submitted {cid}: {len(spec.bombs)} bombs x {len(spec.tools)} "
          f"tools = {len(spec.cells())} cells")
    if args.run:
        with _metrics(args):
            report = service.run(cid)
        print(report.summary())
    return 0


def cmd_campaign_run(args) -> int:
    service = _campaign_service(args)
    with _metrics(args):
        report = service.run(args.campaign, jobs=args.jobs)
    print(report.summary())
    return 0


def cmd_campaign_status(args) -> int:
    service = _campaign_service(args)
    if args.watch:
        from .service import watch_status

        if args.campaign is None:
            raise SystemExit("campaign status: --watch needs a campaign id")
        if args.interval <= 0:
            raise SystemExit("campaign status: --interval must be > 0")
        final = watch_status(service, args.campaign, interval=args.interval)
        exhausted = final["states"]["exhausted"]
        if exhausted:
            # Scripts and CI gate on this: the campaign *finished*, but
            # some cells ended E only because retries ran out.
            print(f"watch: campaign ended with {exhausted} exhausted "
                  "cell(s)", file=sys.stderr)
            return 1
        return 0
    if args.campaign is None:
        cids = service.campaigns()
        if not cids:
            print(f"{args.root}: no campaigns")
            return 0
        for cid in cids:
            status = service.status(cid)
            states = status["states"]
            print(f"{cid:24s} cells={status['cells']:4d} "
                  f"pending={states['pending']:4d} "
                  f"done={states['done']:4d} "
                  f"exhausted={states['exhausted']:4d}")
        return 0
    print(json.dumps(service.status(args.campaign), indent=2))
    return 0


def cmd_campaign_results(args) -> int:
    from .eval import render_table2

    service = _campaign_service(args)
    result = service.results(args.campaign)
    if args.json:
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(render_table2(result))
    return 0


def cmd_serve(args) -> int:
    from . import obs
    from .service import serve_forever

    if args.poll <= 0:
        raise SystemExit("serve: --poll must be > 0")
    sinks = []
    if args.metrics_out is not None:
        try:
            sinks.append(obs.JsonlSink(args.metrics_out))
        except OSError as err:
            raise SystemExit(f"cannot open {args.metrics_out}: "
                             f"{err.strerror}")
    recorder = obs.Recorder(sinks=sinks, hist_values=True)

    def ready(bound):
        host, port = bound
        print(f"serving campaign API on http://{host}:{port} "
              f"(root {args.root})", flush=True)
        print("submit with: curl -X POST --data @spec.json "
              f"http://{host}:{port}/campaigns", flush=True)

    with obs.recording(recorder):
        serve_forever(args.root, args.host, args.port,
                      recorder=recorder, poll_s=args.poll, ready=ready)
    return 0


def cmd_worker(args) -> int:
    from .service import run_fleet

    if args.jobs < 0:
        raise SystemExit("worker: --jobs must be >= 0 (0 = auto-detect)")
    if args.lease <= 0:
        raise SystemExit("worker: --lease must be > 0 seconds")
    started = run_fleet(args.root, args.jobs, lease_s=args.lease,
                        poll_s=args.poll, drain=args.drain,
                        max_idle=args.max_idle,
                        metrics_out=args.metrics_out)
    print(f"worker: {started} loop(s) exited (root {args.root})")
    return 0


# -- solver lab -------------------------------------------------------------

def cmd_solverlab_capture(args) -> int:
    from .eval import solverlab

    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("solverlab capture: --timeout must be > 0 seconds")
    with _metrics(args):
        doc = solverlab.capture_matrix(
            bombs=args.bombs, tools=args.tools, cache=args.cache,
            timeout=args.timeout, verbose=not args.json)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print()
        print(solverlab.render_capture(doc))
    return 0


def cmd_solverlab_replay(args) -> int:
    from . import obs
    from .eval import solverlab

    mode = "incremental" if args.incremental else "fresh"
    trace_out = args.trace_out
    with _metrics(args, capture=bool(trace_out)) as rec:
        doc = solverlab.replay_corpus(args.cache, mode=mode,
                                      bombs=args.bombs, tools=args.tools)
        if trace_out:
            mem = next(s for s in rec.sinks
                       if isinstance(s, obs.MemorySink))
            Path(trace_out).write_text(
                json.dumps(obs.chrome_trace(mem.events)))
    if args.out:
        Path(args.out).write_text(json.dumps(doc, indent=2))
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(solverlab.render_replay(doc))
    if trace_out:
        print(f"trace written to {trace_out} "
              "(load it in https://ui.perfetto.dev)", file=sys.stderr)
    return 1 if doc["drift"] else 0


def cmd_solverlab_report(args) -> int:
    from .eval import solverlab

    doc = solverlab.report_corpus(args.cache, top=args.top)
    if args.prom:
        from .obs.export import solverlab_class_wall

        sys.stdout.write(solverlab_class_wall(doc))
        return 0
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(solverlab.render_report(doc, top=args.top))
    return 0


def cmd_solverlab_diff(args) -> int:
    from .eval import solverlab

    try:
        index_a = solverlab.corpus_index(args.a)
        index_b = solverlab.corpus_index(args.b)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        raise SystemExit(f"solverlab diff: {err}")
    doc = solverlab.diff_indices(index_a, index_b)
    if args.json:
        print(json.dumps(doc, indent=2))
    else:
        print(solverlab.render_diff(doc))
    return 1 if doc["drift"] else 0


def cmd_stats(args) -> int:
    from .obs import (
        aggregate_events,
        prometheus_text,
        read_events,
        render_profile,
        render_stats,
        self_time_profile,
    )

    try:
        events = read_events(args.metrics)
    except OSError as err:
        raise SystemExit(f"stats: cannot read {args.metrics}: {err.strerror}")
    except ValueError as err:
        raise SystemExit(
            f"stats: {args.metrics} is not a JSONL event stream ({err})")
    if not events:
        print(f"{args.metrics}: no events")
        return 1
    if args.prom:
        sys.stdout.write(prometheus_text(aggregate_events(events)))
        return 0
    if args.profile:
        print(render_profile(self_time_profile(events)))
        return 0
    print(render_stats(aggregate_events(events)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Concolic execution on small-size binaries — "
                    "reproduction toolkit (DSN 2017)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("cc", help="compile a BombC source to a REXF binary")
    p.add_argument("source")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_cc)

    p = sub.add_parser("run", help="execute a REXF binary on the VM")
    p.add_argument("binary")
    p.add_argument("args", nargs="*")
    p.add_argument("--env", action="append", metavar="KEY=VALUE")
    p.add_argument("--max-steps", type=int, default=2_000_000)
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("dis", help="disassemble a REXF binary")
    p.add_argument("binary")
    p.add_argument("--no-lib", action="store_true",
                   help="skip the library section")
    p.set_defaults(func=cmd_dis)

    p = sub.add_parser("nm", help="print the symbol table")
    p.add_argument("binary")
    p.set_defaults(func=cmd_nm)

    p = sub.add_parser("taint", help="taint summary of one concrete run")
    p.add_argument("binary")
    p.add_argument("args", nargs="*")
    p.add_argument("--env", action="append", metavar="KEY=VALUE")
    p.set_defaults(func=cmd_taint)

    p = sub.add_parser("solve", help="hunt the bomb with a tool")
    p.add_argument("binary")
    p.add_argument("--tool", default="tritonx",
                   help="bapx | tritonx | angrx | angrx_nolib | sandshrewx "
                        "| hybridx | rexx")
    p.add_argument("--seed", action="append", metavar="ARG")
    p.add_argument("--env", action="append", metavar="KEY=VALUE")
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("bombs", help="list the logic-bomb dataset")
    p.set_defaults(func=cmd_bombs)

    p = sub.add_parser("table2", help="run (a slice of) the Table II matrix")
    p.add_argument("--bombs", nargs="*")
    p.add_argument("--tools", nargs="*")
    p.add_argument("--jobs", type=int, metavar="N",
                   help="evaluate cells on N worker processes "
                        "(default: serial, byte-identical output; "
                        "0 = one per usable CPU)")
    p.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="per-cell wall-clock budget; an overrun kills the "
                        "cell's worker and classifies the cell E")
    p.add_argument("--cache", metavar="DIR",
                   help="serve unchanged cells from the content-addressed "
                        "result store at DIR (created on first use)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero when any cell label deviates from "
                        "the paper's Table II (CI gate)")
    p.add_argument("--json", action="store_true",
                   help="emit the matrix as JSON (outcome, expected, "
                        "matches_paper, per-stage timings)")
    p.add_argument("--explain", action="store_true",
                   help="run every cell with forensics on and emit a "
                        "per-cell diagnosis report instead of the matrix")
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    p.add_argument("--trace-out", metavar="FILE.json",
                   help="write the run's stitched span trace as Chrome "
                        "trace-event JSON (load in Perfetto) and print "
                        "a hotspot report")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="hotspot report depth for --trace-out "
                        "(default 10)")
    p.set_defaults(func=cmd_table2)

    p = sub.add_parser(
        "profile",
        help="attribution profile of one (bomb, tool) cell: hot PCs, "
             "hot guards, optional Perfetto trace / flamegraph")
    p.add_argument("bomb", help="bomb id (see `repro bombs`)")
    p.add_argument("tool", help="bapx | tritonx | angrx | angrx_nolib | "
                                "sandshrewx | hybridx | rexx")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows per hotspot table (default 10)")
    p.add_argument("--trace-out", metavar="FILE.json",
                   help="write Chrome trace-event JSON (Perfetto)")
    p.add_argument("--flame-out", metavar="FILE.txt",
                   help="write collapsed-stack flamegraph text "
                        "(flamegraph.pl / speedscope)")
    p.add_argument("--json", action="store_true",
                   help="emit the cell summary and hotspot tables as JSON")
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "explain",
        help="forensic diagnosis of one Table II cell (why that label?)")
    p.add_argument("bomb", help="bomb id (see `repro bombs`)")
    p.add_argument("tool", help="bapx | tritonx | angrx | angrx_nolib | "
                                "sandshrewx | hybridx | rexx")
    p.add_argument("--json", action="store_true",
                   help="emit the diagnosis as JSON")
    p.add_argument("--store", metavar="DIR",
                   help="also persist the diagnosis next to the result "
                        "store at DIR")
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "campaign",
        help="durable analysis campaigns (submit/run/status/results)")
    camp = p.add_subparsers(dest="verb", required=True)

    c = camp.add_parser("submit", help="persist a campaign and enqueue "
                                       "its (bomb, tool) cells")
    c.add_argument("--root", default=".repro-service", metavar="DIR",
                   help="service root (store + campaign journals); "
                        "default ./.repro-service")
    c.add_argument("--bombs", nargs="*")
    c.add_argument("--tools", nargs="*")
    c.add_argument("--jobs", type=int, default=1, metavar="N")
    c.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="per-cell wall-clock budget (overruns become E)")
    c.add_argument("--retries", type=int, default=2, metavar="K",
                   help="crash retries per cell before it is "
                        "classified E (default 2)")
    c.add_argument("--name", metavar="LABEL")
    c.add_argument("--tenant", metavar="TENANT",
                   help="quota-accounting tag (budgets in "
                        "<root>/quotas.json)")
    c.add_argument("--spec", metavar="FILE",
                   help="submit a declarative spec document instead of "
                        "flags (.json or .toml; see the README's spec "
                        "format)")
    c.add_argument("--run", action="store_true",
                   help="drive the campaign to completion immediately")
    c.add_argument("--metrics-out", metavar="FILE.jsonl")
    c.set_defaults(func=cmd_campaign_submit)

    c = camp.add_parser("run", help="drive a submitted campaign to "
                                    "completion (resumable)")
    c.add_argument("campaign")
    c.add_argument("--root", default=".repro-service", metavar="DIR")
    c.add_argument("--jobs", type=int, metavar="N",
                   help="override the spec's worker count")
    c.add_argument("--metrics-out", metavar="FILE.jsonl")
    c.set_defaults(func=cmd_campaign_run)

    c = camp.add_parser("status", help="queue-level progress (no "
                                       "execution)")
    c.add_argument("campaign", nargs="?")
    c.add_argument("--root", default=".repro-service", metavar="DIR")
    c.add_argument("--watch", action="store_true",
                   help="poll the campaign, printing one progress line "
                        "per interval, until no job is pending/claimed")
    c.add_argument("--interval", type=float, default=2.0, metavar="SECONDS",
                   help="poll interval for --watch (default 2s)")
    c.set_defaults(func=cmd_campaign_status)

    c = camp.add_parser("results", help="render a campaign's matrix "
                                        "from the result store")
    c.add_argument("campaign")
    c.add_argument("--root", default=".repro-service", metavar="DIR")
    c.add_argument("--json", action="store_true")
    c.set_defaults(func=cmd_campaign_results)

    p = sub.add_parser(
        "serve",
        help="asyncio HTTP API over a service root: submit/status/"
             "results, NDJSON progress streams, Prometheus /metrics")
    p.add_argument("--root", default=".repro-service", metavar="DIR",
                   help="service root shared with the workers "
                        "(default ./.repro-service)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8737,
                   help="TCP port (default 8737; 0 = ephemeral)")
    p.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                   help="status poll cadence of the /events stream "
                        "(default 0.5s)")
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="also stream the server recorder's events to "
                        "FILE (JSONL)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="fleet worker: pull cells from every campaign under a "
             "shared root with lease-based claims")
    p.add_argument("--root", "--store", dest="root",
                   default=".repro-service", metavar="DIR",
                   help="service root shared with `repro serve` and the "
                        "other workers (default ./.repro-service)")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker loops to fork (default 1; 0 = one per "
                        "usable CPU)")
    p.add_argument("--lease", type=float, default=30.0, metavar="SECONDS",
                   help="claim lease duration; a worker missing two "
                        "renewal heartbeats forfeits its cell "
                        "(default 30s)")
    p.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                   help="idle poll cadence while no cell is claimable "
                        "(default 0.2s)")
    p.add_argument("--drain", action="store_true",
                   help="exit once every campaign under the root is "
                        "terminal (batch/CI mode; default: keep "
                        "polling for new campaigns)")
    p.add_argument("--max-idle", type=float, metavar="SECONDS",
                   help="exit after this long without claiming a cell")
    p.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream worker metrics to FILE (with --jobs N, "
                        "each loop writes FILE.<i>)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "solverlab",
        help="SMT flight-recorder corpora: capture a matrix's solver "
             "queries, replay them offline, analyze the workload")
    lab = p.add_subparsers(dest="verb", required=True)

    c = lab.add_parser("capture", help="run (a slice of) the matrix with "
                                       "query logging on and persist the "
                                       "corpus into the store")
    c.add_argument("--bombs", nargs="*")
    c.add_argument("--tools", nargs="*")
    c.add_argument("--cache", default=".repro-solverlab", metavar="DIR",
                   help="result store receiving the query corpus "
                        "(default ./.repro-solverlab; doubles as the "
                        "cell result cache)")
    c.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="per-cell wall-clock budget")
    c.add_argument("--json", action="store_true",
                   help="emit the capture summary as JSON")
    c.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    c.set_defaults(func=cmd_solverlab_capture)

    c = lab.add_parser("replay", help="re-run every captured query "
                                      "offline and check verdict "
                                      "identity (exit 1 on drift)")
    c.add_argument("--cache", default=".repro-solverlab", metavar="DIR",
                   help="store holding the captured corpus")
    c.add_argument("--bombs", nargs="*",
                   help="restrict to these bombs' manifests")
    c.add_argument("--tools", nargs="*",
                   help="restrict to these tools' manifests")
    c.add_argument("--incremental", action="store_true",
                   help="replay through an IncrementalSolver (assert "
                        "prefix, answer via assumptions) instead of a "
                        "fresh solver per query")
    c.add_argument("--json", action="store_true",
                   help="emit the replay document as JSON")
    c.add_argument("--out", metavar="FILE.json",
                   help="also write the replay document to FILE "
                        "(feed it to `solverlab diff`)")
    c.add_argument("--trace-out", metavar="FILE.json",
                   help="write the replay's span trace as Chrome "
                        "trace-event JSON (load in Perfetto)")
    c.add_argument("--metrics-out", metavar="FILE.jsonl",
                   help="stream observability events to FILE (JSONL)")
    c.set_defaults(func=cmd_solverlab_replay)

    c = lab.add_parser("report", help="workload analytics: top offenders, "
                                      "per-class / per-kind / per-family "
                                      "solve effort")
    c.add_argument("--cache", default=".repro-solverlab", metavar="DIR",
                   help="store holding the captured corpus")
    c.add_argument("--top", type=int, default=10, metavar="N",
                   help="rows per top-offender table (default 10)")
    c.add_argument("--json", action="store_true",
                   help="emit the report as JSON")
    c.add_argument("--prom", action="store_true",
                   help="emit the per-class solve wall as the "
                        "repro_solverlab_class_wall_seconds Prometheus "
                        "gauge family")
    c.set_defaults(func=cmd_solverlab_report)

    c = lab.add_parser("diff", help="compare two corpora or replay "
                                    "documents: verdict drift + "
                                    "per-class effort deltas (exit 1 "
                                    "on drift)")
    c.add_argument("a", help="corpus directory or replay JSON")
    c.add_argument("b", help="corpus directory or replay JSON")
    c.add_argument("--json", action="store_true",
                   help="emit the diff as JSON")
    c.set_defaults(func=cmd_solverlab_diff)

    p = sub.add_parser("stats", help="summarize a --metrics-out JSONL file")
    p.add_argument("metrics", help="path to a FILE.jsonl event stream")
    p.add_argument("--prom", action="store_true",
                   help="emit Prometheus text exposition instead of the "
                        "human summary")
    p.add_argument("--profile", action="store_true",
                   help="emit a self-time span profile (wall minus child "
                        "wall, per span path)")
    p.set_defaults(func=cmd_stats)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
