"""Tests for the concrete machine: memory, OS layer, processes, signals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm import Environment, Machine, Memory
from repro.vm.syscalls import BOMB_EXIT_CODE

from .helpers import run_asm, run_bc


class TestMemory:
    def test_zero_filled(self):
        mem = Memory()
        assert mem.read(0x5000, 16) == b"\0" * 16

    def test_write_read_roundtrip(self):
        mem = Memory()
        mem.write(0x1234, b"hello")
        assert mem.read(0x1234, 5) == b"hello"

    def test_cross_page_access(self):
        mem = Memory()
        data = bytes(range(64))
        mem.write(0xFFF0, data)
        assert mem.read(0xFFF0, 64) == data

    @given(addr=st.integers(min_value=0, max_value=2**48),
           value=st.integers(min_value=0, max_value=2**64 - 1),
           size=st.sampled_from([1, 2, 4, 8]))
    def test_uint_roundtrip(self, addr, value, size):
        mem = Memory()
        mem.write_uint(addr, value, size)
        assert mem.read_uint(addr, size) == value % (1 << (8 * size))

    def test_cstr(self):
        mem = Memory()
        mem.write_cstr(0x100, b"abc")
        assert mem.read_cstr(0x100) == b"abc"

    def test_clone_is_independent(self):
        mem = Memory()
        mem.write(0x10, b"x")
        other = mem.clone()
        other.write(0x10, b"y")
        assert mem.read(0x10, 1) == b"x"

    def test_sint(self):
        mem = Memory()
        mem.write_uint(0, 0xFF, 1)
        assert mem.read_sint(0, 1) == -1


class TestArgvSetup:
    def test_argc_argv_passed_to_main(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            print_int(argc);
            print_str(" ");
            print_str(argv[0]);
            print_str(" ");
            print_str(argv[2]);
            return 0;
        }
        ''', argv=[b"prog", b"one", b"two"])
        assert result.stdout == b"3 prog two"

    def test_argv_regions_recorded(self):
        from repro.lang import compile_single

        image = compile_single("int main(int argc, char **argv) { return 0; }")
        machine = Machine(image, [b"p", b"hello"])
        assert len(machine.argv_regions) == 2
        addr, length = machine.argv_regions[1]
        assert length == 5
        assert machine.processes[machine.main_pid].memory.read_cstr(addr) == b"hello"


class TestSyscalls:
    def test_exit_code_masked(self):
        result = run_bc("int main(int argc, char **argv) { exit(300); return 0; }")
        assert result.exit_code == 300 & 0xFF

    def test_write_to_stdout_and_stderr(self):
        result = run_asm("""
        .text
        .global _start
        _start:
            movi r0, 2
            movi r1, 2
            movi r2, msg
            movi r3, 3
            syscall
            movi r0, 0
            movi r1, 0
            syscall
            hlt
        .rodata
        msg: .asciz "err"
        """)
        assert result.exit_code == 0

    def test_file_lifecycle(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            int fd = open("f.dat", 0x42);
            write(fd, "data", 4);
            close(fd);
            fd = open("f.dat", 0);
            char buf[8];
            int n = read(fd, buf, 8);
            close(fd);
            print_int(n);
            unlink("f.dat");
            fd = open("f.dat", 0);
            print_int(fd);
            return 0;
        }
        ''')
        assert result.stdout == b"4-1"

    def test_open_excl_fails_on_existing(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            int a = open("x", 0x42);
            close(a);
            int b = open("x", 0xc2);   // CREAT|EXCL
            print_int(b);
            return 0;
        }
        ''')
        assert result.stdout == b"-1"

    def test_lseek(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            int fd = open("s", 0x42);
            write(fd, "abcdef", 6);
            lseek(fd, 2);
            char b[2];
            read(fd, b, 1);
            putchar(b[0]);
            return 0;
        }
        ''')
        assert result.stdout == b"c"

    def test_env_time_pid_magic(self):
        env = Environment(time_value=777, pid=888, magic=999)
        result = run_bc(
            "int main(int argc, char **argv) {"
            " print_int(time()); print_int(getpid()); print_int(getmagic());"
            " return 0; }",
            env=env,
        )
        assert result.stdout == b"777888999"

    def test_http_get(self):
        env = Environment(network={"http://a/b": b"payload"})
        result = run_bc(r'''
        int main(int argc, char **argv) {
            char buf[32];
            int n = http_get("http://a/b", buf, 31);
            buf[n] = 0;
            print_str(buf);
            print_int(http_get("http://missing/", buf, 31));
            return 0;
        }
        ''', env=env)
        assert result.stdout == b"payload-1"

    def test_mailbox(self):
        result = run_bc(
            "int main(int argc, char **argv) {"
            " msgsend(5); msgsend(6);"
            " print_int(msgrecv()); print_int(msgrecv()); print_int(msgrecv());"
            " return 0; }"
        )
        assert result.stdout == b"560"

    def test_unknown_syscall_returns_error(self):
        result = run_bc(
            "int main(int argc, char **argv) { return __syscall(99); }"
        )
        assert result.exit_code == 0xFF  # -1 & 0xff

    def test_bomb_syscall(self):
        result = run_bc("int main(int argc, char **argv) { bomb(); return 0; }")
        assert result.bomb_triggered
        assert result.exit_code == BOMB_EXIT_CODE
        assert b"BOOM" in result.stdout


class TestProcesses:
    def test_fork_returns_zero_in_child(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            int pid = fork();
            if (pid == 0) {
                print_str("child ");
                exit(7);
            }
            int status = 0;
            waitpid(pid, &status);
            print_int(status);
            return 0;
        }
        ''')
        assert result.stdout == b"child 7"

    def test_fork_memory_isolated(self):
        result = run_bc(r'''
        int g = 1;
        int main(int argc, char **argv) {
            int pid = fork();
            if (pid == 0) {
                g = 100;
                exit(0);
            }
            waitpid(pid, 0);
            print_int(g);
            return 0;
        }
        ''')
        assert result.stdout == b"1"

    def test_pipe_blocking_read(self):
        # Parent reads before the child writes: the read must block.
        result = run_bc(r'''
        int main(int argc, char **argv) {
            int fds[2];
            pipe(fds);
            int pid = fork();
            if (pid == 0) {
                int i = 0;
                while (i < 1000) { i = i + 1; }  // delay
                write_u64(fds[1], 4242);
                exit(0);
            }
            int v = read_u64(fds[0]);
            waitpid(pid, 0);
            print_int(v);
            return 0;
        }
        ''')
        assert result.stdout == b"4242"

    def test_pipe_eof_when_writers_close(self):
        result = run_bc(r'''
        int main(int argc, char **argv) {
            int fds[2];
            pipe(fds);
            close(fds[1]);
            char b[4];
            print_int(read(fds[0], b, 4));
            return 0;
        }
        ''')
        assert result.stdout == b"0"


class TestThreads:
    def test_thread_transforms_shared(self):
        result = run_bc(r'''
        int shared = 0;
        int worker(int *p) { *p = *p + 5; return 0; }
        int main(int argc, char **argv) {
            shared = 10;
            int t = pthread_create(worker, (int)&shared);
            pthread_join(t);
            print_int(shared);
            return 0;
        }
        ''')
        assert result.stdout == b"15"

    def test_two_threads(self):
        result = run_bc(r'''
        int a = 0;
        int b = 0;
        int wa(int *p) { *p = 1; return 0; }
        int wb(int *p) { *p = 2; return 0; }
        int main(int argc, char **argv) {
            int t1 = pthread_create(wa, (int)&a);
            int t2 = pthread_create(wb, (int)&b);
            pthread_join(t1);
            pthread_join(t2);
            print_int(a + b);
            return 0;
        }
        ''')
        assert result.stdout == b"3"


class TestSignals:
    def test_handler_runs_and_resumes(self):
        result = run_bc(r'''
        int hits = 0;
        int handler(int signo) { hits = hits + signo; return 0; }
        int main(int argc, char **argv) {
            signal(8, handler);
            int q = 1 / 0;
            print_int(hits);
            return 0;
        }
        ''')
        assert result.stdout == b"8"

    def test_unhandled_fault_kills_process(self):
        result = run_bc("int main(int argc, char **argv) { return 1 / 0; }")
        assert result.exit_code == 128 + 8

    def test_handler_register_state_restored(self):
        result = run_bc(r'''
        int handler(int signo) {
            int junk = signo * 100;   // clobber registers freely
            return junk;
        }
        int main(int argc, char **argv) {
            signal(8, handler);
            int keep = 1234;
            int q = 1 / 0;
            print_int(keep);
            return 0;
        }
        ''')
        assert result.stdout == b"1234"


class TestRunControl:
    def test_step_budget_reports_timeout(self):
        result = run_bc(
            "int main(int argc, char **argv) { while (1) {} return 0; }",
            max_steps=5000,
        )
        assert result.timed_out
        assert result.exit_code is None

    def test_deterministic_execution(self):
        src = r'''
        int main(int argc, char **argv) {
            srand(atoi(argv[1]));
            print_int(rand() % 1000);
            return 0;
        }
        '''
        a = run_bc(src, argv=[b"p", b"3"])
        b = run_bc(src, argv=[b"p", b"3"])
        assert a.stdout == b.stdout and a.steps == b.steps
