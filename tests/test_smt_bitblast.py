"""Differential tests: bit-blasted solving vs concrete evaluation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SolverError
from repro.smt import (
    BitBlaster,
    SatSolver,
    Solver,
    eval_expr,
    mk_binop,
    mk_bool_not,
    mk_cmp,
    mk_concat,
    mk_const,
    mk_eq,
    mk_extract,
    mk_fp,
    mk_ite,
    mk_sext,
    mk_var,
    mk_zext,
    solve,
)

_OPS = ["add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr"]


def _fresh(prefix):
    _fresh.n += 1
    return f"{prefix}{_fresh.n}"


_fresh.n = 0


class TestDifferential:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_random_trees_solve_to_consistent_models(self, data):
        width = data.draw(st.sampled_from([4, 8, 16, 32]))
        names = [_fresh("dv") for _ in range(2)]
        variables = {n: mk_var(n, width) for n in names}

        def tree(depth):
            if depth == 0 or data.draw(st.booleans()):
                if data.draw(st.booleans()):
                    return variables[data.draw(st.sampled_from(names))]
                return mk_const(data.draw(st.integers(0, 2**width - 1)), width)
            op = data.draw(st.sampled_from(_OPS))
            return mk_binop(op, tree(depth - 1), tree(depth - 1))

        expr = tree(3)
        target_model = {
            n: data.draw(st.integers(0, 2**width - 1)) for n in names
        }
        target = eval_expr(expr, target_model)
        result = solve([mk_eq(expr, mk_const(target, width))])
        assert result.sat
        assert eval_expr(expr, result.model) == target

    @given(a=st.integers(0, 2**16 - 1), b=st.integers(0, 2**16 - 1),
           cc=st.sampled_from(["eq", "ult", "ule", "slt", "sle"]))
    @settings(max_examples=40, deadline=None)
    def test_comparison_circuits(self, a, b, cc):
        x, y = mk_var(_fresh("ca"), 16), mk_var(_fresh("cb"), 16)
        node = mk_cmp(cc, x, y)
        expected = eval_expr(node, {x.name: a, y.name: b})
        constraints = [mk_eq(x, mk_const(a, 16)), mk_eq(y, mk_const(b, 16)),
                       node if expected else mk_bool_not(node)]
        assert solve(constraints).sat
        constraints[-1] = mk_bool_not(node) if expected else node
        assert not solve(constraints).sat


class TestDivMod:
    @pytest.mark.parametrize("divisor", [1, 2, 3, 7, 10, 100, 255])
    def test_udiv_urem_by_const(self, divisor):
        x = mk_var(_fresh("dm"), 16)
        for target_x in (0, 5, 999, 65535):
            constraints = [
                mk_eq(x, mk_const(target_x, 16)),
                mk_eq(mk_binop("udiv", x, mk_const(divisor, 16)),
                      mk_const(target_x // divisor, 16)),
                mk_eq(mk_binop("urem", x, mk_const(divisor, 16)),
                      mk_const(target_x % divisor, 16)),
            ]
            assert solve(constraints).sat

    def test_symbolic_divisor_rejected(self):
        x, y = mk_var(_fresh("sd"), 8), mk_var(_fresh("sd"), 8)
        with pytest.raises(SolverError, match="divisor"):
            solve([mk_eq(mk_binop("udiv", x, y), mk_const(1, 8))])

    def test_fp_rejected_by_blaster(self):
        x = mk_var(_fresh("fpr"), 32)
        with pytest.raises(SolverError, match="fp theory"):
            solve([mk_fp("flt32", x, mk_const(0, 32))])


class TestPlumbing:
    def test_extract_concat_solving(self):
        x = mk_var(_fresh("pc"), 16)
        high = mk_extract(x, 15, 8)
        low = mk_extract(x, 7, 0)
        swapped = mk_concat(low, high)
        result = solve([mk_eq(swapped, mk_const(0xABCD, 16))])
        assert result.sat
        assert result.model[x.name] == 0xCDAB

    def test_sext_solving(self):
        x = mk_var(_fresh("sx"), 8)
        wide = mk_sext(x, 16)
        result = solve([mk_eq(wide, mk_const(0xFF80, 16))])
        assert result.sat and result.model[x.name] == 0x80

    def test_ite_solving(self):
        x = mk_var(_fresh("it"), 8)
        node = mk_ite(mk_cmp("ult", x, mk_const(10, 8)),
                      mk_const(1, 8), mk_const(2, 8))
        result = solve([mk_eq(node, mk_const(2, 8))])
        assert result.sat and result.model[x.name] >= 10

    def test_symbolic_shift_amount(self):
        x = mk_var(_fresh("sh"), 16)
        node = mk_binop("shl", mk_const(1, 16), x)
        result = solve([mk_eq(node, mk_const(256, 16))])
        assert result.sat
        assert result.model[x.name] & 15 == 8

    @given(a=st.integers(0, 2**16 - 1), s=st.integers(0, 40))
    @settings(max_examples=30, deadline=None)
    def test_shift_semantics_match_eval(self, a, s):
        """ISA mod-width semantics hold through the solver too."""
        x = mk_var(_fresh("sm"), 16)
        amt = mk_var(_fresh("sm"), 16)
        for op in ("shl", "lshr", "ashr"):
            node = mk_binop(op, x, amt)
            expected = eval_expr(node, {x.name: a, amt.name: s})
            constraints = [
                mk_eq(x, mk_const(a, 16)),
                mk_eq(amt, mk_const(s, 16)),
                mk_eq(node, mk_const(expected, 16)),
            ]
            assert solve(constraints).sat, (op, a, s)


class TestModelExtraction:
    def test_unconstrained_vars_default(self):
        x = mk_var(_fresh("uv"), 8)
        y = mk_var(_fresh("uv"), 8)
        result = solve([mk_eq(x, mk_const(3, 8)), mk_eq(mk_binop("add", y, mk_const(0, 8)), y)])
        assert result.model[x.name] == 3

    def test_incremental_enumeration_via_blocking(self):
        solver = SatSolver()
        blaster = BitBlaster(solver)
        x = mk_var(_fresh("en"), 4)
        blaster.assert_true(mk_cmp("ult", x, mk_const(3, 4)))
        bits = blaster.blast(x)
        seen = set()
        while True:
            model = solver.solve()
            if model is None:
                break
            value = sum(((model[l >> 1] ^ (l & 1)) & 1) << i
                        for i, l in enumerate(bits))
            seen.add(value)
            solver.add_clause([l ^ ((value >> i) & 1)
                               for i, l in enumerate(bits)])
        assert seen == {0, 1, 2}
