"""Tests for the extension dataset and the REXX tool surface."""

import pytest

from repro.bombs import all_bombs, get_bomb
from repro.concolic import ConcolicEngine
from repro.tools.profiles import TRITONX
from repro.vm import Environment

EXT_IDS = ("ext_loop", "ext_stdin", "ext_xor_cipher", "ext_two_args", "ext_combo")


class TestExtensionBombs:
    @pytest.mark.parametrize("bomb_id", EXT_IDS)
    def test_oracles(self, bomb_id):
        assert get_bomb(bomb_id).verify_oracle()

    def test_not_in_table2(self):
        table2 = {b.bomb_id for b in all_bombs(table2_only=True)}
        assert not table2 & set(EXT_IDS)

    def test_loop_trigger_unique(self):
        bomb = get_bomb("ext_loop")
        assert bomb.triggers([b"100"])
        for wrong in (b"99", b"101", b"0", b"200"):
            assert not bomb.triggers([wrong])

    def test_stdin_is_environmental(self):
        bomb = get_bomb("ext_stdin")
        assert bomb.triggers([], Environment(stdin=b"31337"))
        assert not bomb.triggers([], Environment(stdin=b"31336"))
        assert not bomb.triggers([b"31337"])  # argv does not help

    def test_xor_cipher_secret(self):
        bomb = get_bomb("ext_xor_cipher")
        assert bomb.triggers([b"s3cr3t"])
        assert not bomb.triggers([b"s3cr3x"])
        assert not bomb.triggers([b"s3c"])  # too short

    def test_two_args_factorization(self):
        bomb = get_bomb("ext_two_args")
        assert bomb.triggers([b"13", b"17"])
        assert not bomb.triggers([b"17", b"13"])  # a < b required
        assert not bomb.triggers([b"221", b"1"])


class TestExtensionOutcomes:
    def test_tritonx_solves_two_args(self):
        bomb = get_bomb("ext_two_args")
        report = ConcolicEngine(TRITONX).run(
            bomb.image, bomb.seed_argv, bomb.base_env(), argv0=b"x")
        assert report.solved
        a, b = (int(x) for x in report.solution)
        assert a * b == 221 and a < b

    def test_tritonx_cannot_reach_stdin_trigger(self):
        bomb = get_bomb("ext_stdin")
        report = ConcolicEngine(TRITONX).run(
            bomb.image, bomb.seed_argv, bomb.base_env(), argv0=b"x")
        assert not report.solved

    def test_loop_defeats_trace_tool_within_budget(self):
        bomb = get_bomb("ext_loop")
        report = ConcolicEngine(TRITONX).run(
            bomb.image, bomb.seed_argv, bomb.base_env(), argv0=b"x")
        assert not report.solved
