"""Content-addressed result store: keys, round-trips, hit/miss metrics.

The cache-key contract (ISSUE 4): a cell key is a pure function of the
bomb's compiled image + run context, the tool's capability matrix, and
the harness/classifier policy.  Editing a bomb source changes its image
digest — and only that bomb's keys; editing a tool policy changes only
that tool's keys; the paper's expected labels are *not* part of the key
and are re-read from the live dataset on decode.
"""

import dataclasses
import json

import pytest

from repro import obs
from repro.bombs import get_bomb
from repro.bombs.suite import Bomb
from repro.eval import run_cell
from repro.lang import compile_sources
from repro.service import (
    CACHE_SCHEMA,
    ResultStore,
    bomb_fingerprint,
    cell_key,
    decode_cell,
    encode_cell,
    image_digest,
)
from repro.tools import capability_fingerprint
from repro.tools.profiles import TRITONX


class EditedBomb(Bomb):
    """A bomb whose image compiles from an in-test (edited) source."""

    _edited_source: str = ""

    @property
    def image(self):
        return compile_sources([(f"{self.bomb_id}.bc", self._edited_source)])


def edited_copy(bomb_id: str, extra: str) -> Bomb:
    """Clone a dataset bomb with *extra* appended inside main()."""
    from repro.bombs.suite import _SRC_DIR

    base = get_bomb(bomb_id)
    source = (_SRC_DIR / f"{bomb_id}.bc").read_text()
    # Inject a live statement at the top of main(), so codegen emits
    # different bytes.
    marker = "int main(int argc, char **argv) {"
    assert marker in source
    edited = source.replace(marker, marker + "\n    " + extra, 1)
    clone = EditedBomb(
        **{f.name: getattr(base, f.name) for f in dataclasses.fields(Bomb)})
    clone._edited_source = edited
    return clone


class TestCellKeys:
    def test_key_is_stable_across_calls(self):
        bomb = get_bomb("cp_stack")
        assert cell_key(bomb, "tritonx") == cell_key(bomb, "tritonx")

    def test_key_distinguishes_tools_and_bombs(self):
        bomb = get_bomb("cp_stack")
        other = get_bomb("sv_time")
        keys = {cell_key(bomb, "tritonx"), cell_key(bomb, "bapx"),
                cell_key(other, "tritonx"), cell_key(other, "bapx")}
        assert len(keys) == 4

    def test_editing_a_bomb_source_changes_only_its_key(self):
        original = get_bomb("cp_stack")
        edited = edited_copy("cp_stack", "int service_pad = argc + 40;")
        assert image_digest(edited.image) != image_digest(original.image)
        assert bomb_fingerprint(edited) != bomb_fingerprint(original)
        assert cell_key(edited, "tritonx") != cell_key(original, "tritonx")
        # An untouched bomb keeps its key.
        untouched = get_bomb("sv_time")
        assert cell_key(untouched, "tritonx") == cell_key(untouched, "tritonx")

    def test_capability_edit_changes_the_tool_component(self):
        relaxed = dataclasses.replace(TRITONX, supports_fp=True)
        assert relaxed.fingerprint() != TRITONX.fingerprint()
        # And the tool-level fingerprint folds the family in.
        assert capability_fingerprint("tritonx") != \
            capability_fingerprint("bapx")

    def test_expected_labels_are_not_part_of_the_key(self):
        bomb = get_bomb("cp_stack")
        relabelled = dataclasses.replace(
            bomb, expected={t: "E" for t in bomb.expected})
        assert cell_key(relabelled, "tritonx") == cell_key(bomb, "tritonx")


@pytest.fixture(scope="module")
def solved_cell():
    return run_cell(get_bomb("cp_stack"), "tritonx")


class TestRoundTrip:
    def test_encode_decode_preserves_everything(self, solved_cell):
        bomb = get_bomb("cp_stack")
        doc = json.loads(json.dumps(encode_cell(solved_cell)))
        clone = decode_cell(doc, bomb)
        assert clone.outcome is solved_cell.outcome
        assert clone.expected == solved_cell.expected
        assert clone.timings == solved_cell.timings
        assert clone.diagnostic == solved_cell.diagnostic
        assert clone.report.solved == solved_cell.report.solved
        assert clone.report.solution == solved_cell.report.solution
        assert clone.report.elapsed == solved_cell.report.elapsed
        assert [d.kind for d in clone.report.diagnostics] == \
            [d.kind for d in solved_cell.report.diagnostics]
        assert clone.to_json() == solved_cell.to_json()

    def test_decode_rereads_the_paper_label(self, solved_cell):
        bomb = get_bomb("cp_stack")
        doc = encode_cell(solved_cell)
        relabelled = dataclasses.replace(bomb, expected={"tritonx": "Es3"})
        clone = decode_cell(doc, relabelled)
        assert clone.expected == "Es3"
        assert clone.matches_paper is False

    def test_environment_round_trip(self):
        cell = run_cell(get_bomb("cs_file_name"), "bapx")
        bomb = get_bomb("cs_file_name")
        clone = decode_cell(json.loads(json.dumps(encode_cell(cell))), bomb)
        assert clone.report.diag_kinds() == cell.report.diag_kinds()


class TestResultStore:
    def test_put_get_counts_hits_and_misses(self, tmp_path, solved_cell):
        bomb = get_bomb("cp_stack")
        store = ResultStore(tmp_path / "store")
        key = cell_key(bomb, "tritonx")
        rec = obs.Recorder()
        with obs.recording(rec, close=False):
            assert store.get(key, bomb) is None
            store.put(key, solved_cell)
            hit = store.get(key, bomb)
        assert hit is not None and hit.outcome is solved_cell.outcome
        counters = rec.snapshot()["counters"]
        assert counters["service.cache_misses"] == 1
        assert counters["service.cache_hits"] == 1
        assert counters["service.cache_stores"] == 1
        assert len(store) == 1 and key in store

    def test_corrupt_object_is_a_miss(self, tmp_path, solved_cell):
        bomb = get_bomb("cp_stack")
        store = ResultStore(tmp_path / "store")
        key = cell_key(bomb, "tritonx")
        store.put(key, solved_cell)
        store._path(key).write_text("{not json", encoding="utf-8")
        assert store.get(key, bomb) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, solved_cell):
        bomb = get_bomb("cp_stack")
        store = ResultStore(tmp_path / "store")
        key = cell_key(bomb, "tritonx")
        store.put(key, solved_cell)
        doc = json.loads(store._path(key).read_text())
        doc["schema"] = CACHE_SCHEMA + 1
        store._path(key).write_text(json.dumps(doc), encoding="utf-8")
        assert store.get(key, bomb) is None


class TestQueryStore:
    def test_put_query_dedups_by_digest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = "ab" * 32
        body = {"schema": 1, "nodes": [["v", 32, "x"]],
                "constraints": [[0, None, None]], "assumptions": [],
                "budget": {}, "features": {}, "class": "small-linear"}
        assert store.put_query(digest, body) is True
        assert store.put_query(digest, body) is False
        assert store.get_query(digest) == body
        assert store.get_query("cd" * 32) is None
        assert store.query_digests() == [digest]

    def test_query_layout_shards_by_digest_prefix(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        digest = "1234" + "0" * 60
        store.put_query(digest, {"schema": 1})
        assert (tmp_path / "store" / "smtlog" / "12"
                / f"{digest}.json").is_file()

    def test_manifest_round_trip_and_ordering(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_query_manifest("b_late", "t", {"queries": [{"digest": "x"}]})
        store.put_query_manifest("a_early", "t", {"queries": []})
        got = store.get_query_manifest("b_late", "t")
        assert got["queries"] == [{"digest": "x"}]
        assert got["bomb"] == "b_late" and got["tool"] == "t"
        # Listing is sorted by (bomb, tool), not directory order.
        assert [m["bomb"] for m in store.query_manifests()] == \
            ["a_early", "b_late"]

    def test_manifest_overwrite_replaces(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_query_manifest("b", "t", {"queries": [{"digest": "old"}]})
        store.put_query_manifest("b", "t", {"queries": [{"digest": "new"}]})
        assert store.get_query_manifest("b", "t")["queries"] == \
            [{"digest": "new"}]

    def test_torn_or_stale_manifests_are_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_query_manifest("good", "t", {"queries": []})
        manifests_dir = tmp_path / "store" / "smtlog" / "manifests"
        (manifests_dir / "torn.json").write_text("{not json")
        stale = json.loads(
            next(p for p in manifests_dir.glob("*.json")
                 if p.name != "torn.json").read_text())
        stale["schema"] = CACHE_SCHEMA + 1
        (manifests_dir / "stale.json").write_text(json.dumps(stale))
        listing = store.query_manifests()
        assert [m["bomb"] for m in listing] == ["good"]
        assert store.get_query_manifest("missing", "t") is None
