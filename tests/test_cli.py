"""Tests for the command-line front end."""

import pytest

from repro.cli import main


@pytest.fixture
def crackme(tmp_path):
    source = tmp_path / "crack.bc"
    source.write_text(
        "int main(int argc, char **argv) {"
        " if (atoi(argv[1]) == 41) { bomb(); }"
        " print_str(\"no\");"
        " return 3; }"
    )
    binary = tmp_path / "crack.rexf"
    assert main(["cc", str(source), "-o", str(binary)]) == 0
    return binary


class TestCompileRun:
    def test_cc_produces_loadable_binary(self, tmp_path, capsys):
        source = tmp_path / "mini.bc"
        source.write_text("int main(int argc, char **argv) { return 0; }")
        binary = tmp_path / "mini.rexf"
        assert main(["cc", str(source), "-o", str(binary)]) == 0
        out = capsys.readouterr().out
        assert "bytes" in out and "entry" in out
        assert binary.exists()

    def test_run_exit_code_and_stdout(self, crackme, capsys):
        code = main(["run", str(crackme), "7"])
        assert code == 3
        assert "no" in capsys.readouterr().out

    def test_run_bomb_marker(self, crackme, capsys):
        code = main(["run", str(crackme), "41"])
        captured = capsys.readouterr()
        assert "BOOM" in captured.out
        assert "[bomb triggered]" in captured.err
        assert code == 42

    def test_run_env(self, tmp_path, capsys):
        source = tmp_path / "t.bc"
        source.write_text(
            "int main(int argc, char **argv) { print_int(time()); return 0; }"
        )
        binary = tmp_path / "t.rexf"
        main(["cc", str(source), "-o", str(binary)])
        capsys.readouterr()
        main(["run", str(binary), "--env", "time=123"])
        assert capsys.readouterr().out == "123"


class TestInspection:
    def test_dis(self, crackme, capsys):
        assert main(["dis", str(crackme), "--no-lib"]) == 0
        out = capsys.readouterr().out
        assert "main:" in out and "call" in out
        assert "; section .text" in out

    def test_nm(self, crackme, capsys):
        assert main(["nm", str(crackme)]) == 0
        out = capsys.readouterr().out
        assert "main" in out and "lib" in out and "_start" in out

    def test_taint(self, crackme, capsys):
        assert main(["taint", str(crackme), "7"]) == 0
        out = capsys.readouterr().out
        assert "tainted instructions" in out
        assert "symbolic branches" in out


class TestSolve:
    def test_solve_finds_password(self, crackme, capsys):
        assert main(["solve", str(crackme), "--tool", "tritonx",
                     "--seed", "70"]) == 0
        assert "SOLVED: ['41']" in capsys.readouterr().out

    def test_solve_reports_diagnostics_on_failure(self, tmp_path, capsys):
        source = tmp_path / "env.bc"
        source.write_text(
            "int main(int argc, char **argv) {"
            " if (getmagic() == 7) { bomb(); } return 0; }"
        )
        binary = tmp_path / "env.rexf"
        main(["cc", str(source), "-o", str(binary)])
        capsys.readouterr()
        assert main(["solve", str(binary), "--tool", "bapx"]) == 1
        assert "diagnostics" in capsys.readouterr().out


class TestMetrics:
    def test_solve_metrics_out(self, crackme, tmp_path, capsys):
        import json

        metrics = tmp_path / "m.jsonl"
        assert main(["solve", str(crackme), "--tool", "tritonx",
                     "--seed", "70", "--metrics-out", str(metrics)]) == 0
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        spans = {e["name"] for e in events if e["t"] == "span"}
        assert {"trace", "lift", "extract", "solve"} <= spans
        counters = {e["name"] for e in events if e["t"] == "counter"}
        assert "taint.instructions_tainted" in counters
        assert "smt.conflicts" in counters

    def test_stats_renders_a_metrics_file(self, crackme, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        main(["solve", str(crackme), "--tool", "tritonx",
              "--seed", "70", "--metrics-out", str(metrics)])
        capsys.readouterr()
        assert main(["stats", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "span" in out and "solve" in out
        assert "smt.queries" in out

    def test_stats_on_empty_file(self, tmp_path, capsys):
        metrics = tmp_path / "empty.jsonl"
        metrics.write_text("")
        assert main(["stats", str(metrics)]) == 1
        assert "no events" in capsys.readouterr().out

    def test_table2_json(self, capsys):
        import json

        assert main(["table2", "--bombs", "cp_stack",
                     "--tools", "tritonx", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        (cell,) = data["cells"]
        assert cell["bomb"] == "cp_stack" and cell["tool"] == "tritonx"
        assert cell["outcome"] == "ok" and cell["matches_paper"] is True
        for stage in ("trace", "solve", "replay"):
            assert stage in cell["timings_s"]
        assert data["solved_counts"]["tritonx"] == 1

    def test_run_metrics_out(self, crackme, tmp_path, capsys):
        import json

        metrics = tmp_path / "m.jsonl"
        assert main(["run", str(crackme), "7",
                     "--metrics-out", str(metrics)]) == 3
        events = [json.loads(line)
                  for line in metrics.read_text().splitlines()]
        counters = {e["name"]: e.get("value") for e in events
                    if e["t"] == "counter"}
        assert counters["vm.instructions"] > 0
        assert any(e["t"] == "span" and e["name"] == "run" for e in events)


class TestDataset:
    def test_bombs_listing(self, capsys):
        assert main(["bombs"]) == 0
        out = capsys.readouterr().out
        assert "sv_time" in out and "ext_loop" in out

    def test_table2_slice(self, capsys):
        assert main(["table2", "--bombs", "sv_time", "--tools", "bapx"]) == 0
        out = capsys.readouterr().out
        assert "Es0" in out and "paper agreement" in out
