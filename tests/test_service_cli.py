"""CLI surface of the campaign service and the table2 cache/check flags.

Every path drives :func:`repro.cli.main` with an argv list, the same
entry point the console script uses — so these tests cover argument
parsing, verb wiring, and exit codes, not just the library API.
"""

import json
import re

import pytest

from repro import cli

BOMBS = ["cp_stack", "sv_time"]


def run_cli(argv):
    return cli.main(argv)


class TestCampaignVerbs:
    def test_submit_run_status_results(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert run_cli(["campaign", "submit", "--root", root,
                        "--bombs", *BOMBS, "--tools", "tritonx",
                        "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"submitted (c[0-9a-f]{8}-\d+): "
                          r"2 bombs x 1 tools = 2 cells", out)
        assert match, out
        cid = match.group(1)

        assert run_cli(["campaign", "status", cid, "--root", root]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["states"]["pending"] == 2

        assert run_cli(["campaign", "run", cid, "--root", root]) == 0
        out = capsys.readouterr().out
        assert f"campaign {cid}: cells=2" in out
        assert "computed=2" in out

        assert run_cli(["campaign", "results", cid, "--root", root,
                        "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {c["bomb"] for c in doc["cells"]} == set(BOMBS)

    def test_submit_with_run_hits_cache_on_resubmission(
            self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        argv = ["campaign", "submit", "--root", root,
                "--bombs", *BOMBS, "--tools", "tritonx", "--run"]
        assert run_cli(argv) == 0
        assert "computed=2" in capsys.readouterr().out
        assert run_cli(argv) == 0
        out = capsys.readouterr().out
        assert "cache_hits=2" in out and "computed=0" in out

    def test_status_without_cid_lists_campaigns(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert run_cli(["campaign", "status", "--root", root]) == 0
        assert "no campaigns" in capsys.readouterr().out
        run_cli(["campaign", "submit", "--root", root,
                 "--bombs", "cp_stack", "--tools", "tritonx"])
        capsys.readouterr()
        assert run_cli(["campaign", "status", "--root", root]) == 0
        listing = capsys.readouterr().out
        assert "pending=   1" in listing

    def test_submit_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(["campaign", "submit", "--root", str(tmp_path),
                     "--jobs", "0"])


class TestTable2Flags:
    def test_check_passes_on_agreement(self, tmp_path, capsys):
        rc = run_cli(["table2", "--bombs", *BOMBS, "--tools", "tritonx",
                      "--cache", str(tmp_path / "store"), "--check"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "check: all labelled cells match the paper" in captured.err

    def test_check_fails_on_timeout_mismatch(self, capsys):
        # A 50 ms budget turns cf_aes (paper label Es2, a slow cell)
        # into E, which deviates from the paper — the CI gate must
        # catch that.
        rc = run_cli(["table2", "--bombs", "cf_aes", "--tools", "tritonx",
                      "--timeout", "0.05", "--check"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "observed E" in captured.err
        assert "deviate from the paper" in captured.err

    def test_cache_dir_round_trip_is_byte_identical(self, tmp_path, capsys):
        argv = ["table2", "--bombs", *BOMBS, "--tools", "tritonx",
                "--cache", str(tmp_path / "store"), "--json"]
        assert run_cli(argv) == 0
        first = capsys.readouterr().out
        assert run_cli(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_timeout_validation(self):
        with pytest.raises(SystemExit):
            run_cli(["table2", "--timeout", "0"])
