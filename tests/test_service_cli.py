"""CLI surface of the campaign service and the table2 cache/check flags.

Every path drives :func:`repro.cli.main` with an argv list, the same
entry point the console script uses — so these tests cover argument
parsing, verb wiring, and exit codes, not just the library API.
"""

import json
import re

import pytest

from repro import cli

BOMBS = ["cp_stack", "sv_time"]


def run_cli(argv):
    return cli.main(argv)


class TestCampaignVerbs:
    def test_submit_run_status_results(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert run_cli(["campaign", "submit", "--root", root,
                        "--bombs", *BOMBS, "--tools", "tritonx",
                        "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"submitted (c[0-9a-f]{8}-\d+): "
                          r"2 bombs x 1 tools = 2 cells", out)
        assert match, out
        cid = match.group(1)

        assert run_cli(["campaign", "status", cid, "--root", root]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["states"]["pending"] == 2

        assert run_cli(["campaign", "run", cid, "--root", root]) == 0
        out = capsys.readouterr().out
        assert f"campaign {cid}: cells=2" in out
        assert "computed=2" in out

        assert run_cli(["campaign", "results", cid, "--root", root,
                        "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {c["bomb"] for c in doc["cells"]} == set(BOMBS)

    def test_submit_with_run_hits_cache_on_resubmission(
            self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        argv = ["campaign", "submit", "--root", root,
                "--bombs", *BOMBS, "--tools", "tritonx", "--run"]
        assert run_cli(argv) == 0
        assert "computed=2" in capsys.readouterr().out
        assert run_cli(argv) == 0
        out = capsys.readouterr().out
        assert "cache_hits=2" in out and "computed=0" in out

    def test_status_without_cid_lists_campaigns(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert run_cli(["campaign", "status", "--root", root]) == 0
        assert "no campaigns" in capsys.readouterr().out
        run_cli(["campaign", "submit", "--root", root,
                 "--bombs", "cp_stack", "--tools", "tritonx"])
        capsys.readouterr()
        assert run_cli(["campaign", "status", "--root", root]) == 0
        listing = capsys.readouterr().out
        assert "pending=   1" in listing

    def test_submit_rejects_bad_jobs(self, tmp_path):
        with pytest.raises(SystemExit):
            run_cli(["campaign", "submit", "--root", str(tmp_path),
                     "--jobs", "0"])


class TestSpecSubmit:
    def test_spec_file_submission_json_and_toml(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        spec = tmp_path / "run.json"
        spec.write_text(json.dumps({"name": "nightly", "bombs": BOMBS,
                                    "tools": ["tritonx"]}))
        assert run_cli(["campaign", "submit", "--root", root,
                        "--spec", str(spec)]) == 0
        assert "2 bombs x 1 tools = 2 cells" in capsys.readouterr().out

        toml = tmp_path / "run.toml"
        toml.write_text('bombs = ["cp_stack"]\ntools = ["tritonx"]\n')
        assert run_cli(["campaign", "submit", "--root", root,
                        "--spec", str(toml)]) == 0
        assert "1 bombs x 1 tools = 1 cells" in capsys.readouterr().out

    def test_spec_conflicts_with_matrix_flags(self, tmp_path):
        spec = tmp_path / "run.json"
        spec.write_text(json.dumps({"bombs": ["cp_stack"],
                                    "tools": ["tritonx"]}))
        with pytest.raises(SystemExit, match="drop --bombs"):
            run_cli(["campaign", "submit", "--root", str(tmp_path / "svc"),
                     "--spec", str(spec), "--bombs", "sv_time"])

    def test_invalid_spec_is_a_clean_exit_not_a_traceback(self, tmp_path):
        spec = tmp_path / "run.json"
        spec.write_text(json.dumps({"bmobs": ["cp_stack"]}))
        with pytest.raises(SystemExit, match="bmobs"):
            run_cli(["campaign", "submit", "--root", str(tmp_path / "svc"),
                     "--spec", str(spec)])

    def test_over_quota_submit_exits_3(self, tmp_path, capsys):
        root = tmp_path / "svc"
        root.mkdir()
        (root / "quotas.json").write_text(json.dumps(
            {"default": {"max_pending_cells": 1}}))
        argv = ["campaign", "submit", "--root", str(root),
                "--bombs", *BOMBS, "--tools", "tritonx"]
        assert run_cli(argv) == 3
        assert "quota rejected" in capsys.readouterr().err


class TestWatchExitCodes:
    def submit_and_run(self, root, capsys, retries="1"):
        assert run_cli(["campaign", "submit", "--root", root,
                        "--bombs", "cp_stack", "--tools", "tritonx",
                        "--retries", retries, "--run"]) == 0
        out = capsys.readouterr().out
        return re.search(r"submitted (c[0-9a-f]{8}-\d+):", out).group(1)

    def test_watch_exits_0_when_all_cells_complete(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        cid = self.submit_and_run(root, capsys)
        assert run_cli(["campaign", "status", cid, "--root", root,
                        "--watch", "--interval", "0.01"]) == 0

    def test_watch_exits_1_when_cells_exhausted(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.service import KILL_CELL_ENV

        monkeypatch.setenv(KILL_CELL_ENV, "cp_stack:tritonx")
        root = str(tmp_path / "svc")
        cid = self.submit_and_run(root, capsys, retries="0")
        assert run_cli(["campaign", "status", cid, "--root", root,
                        "--watch", "--interval", "0.01"]) == 1
        err = capsys.readouterr().err
        assert "1 exhausted cell(s)" in err


class TestFleetVerbs:
    def test_worker_drains_a_submitted_campaign(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert run_cli(["campaign", "submit", "--root", root,
                        "--bombs", "cp_stack", "--tools", "tritonx"]) == 0
        capsys.readouterr()
        assert run_cli(["worker", "--root", root, "--drain",
                        "--poll", "0.01"]) == 0
        assert "1 loop(s) exited" in capsys.readouterr().out
        assert run_cli(["campaign", "status", "--root", root]) == 0
        assert "done=   1" in capsys.readouterr().out

    def test_worker_metrics_out_streams_jsonl(self, tmp_path, capsys):
        from repro.obs import aggregate_events, read_events

        root = str(tmp_path / "svc")
        metrics = tmp_path / "worker.jsonl"
        assert run_cli(["campaign", "submit", "--root", root,
                        "--bombs", "cp_stack", "--tools", "tritonx"]) == 0
        capsys.readouterr()
        assert run_cli(["worker", "--root", root, "--drain",
                        "--poll", "0.01",
                        "--metrics-out", str(metrics)]) == 0
        events = read_events(metrics)  # strict: the stream must be clean
        assert events, "worker --metrics-out produced no events"
        agg = aggregate_events(events)
        assert agg.counters.get("service.jobs_completed") == 1
        # The stream feeds `repro stats` directly.
        assert run_cli(["stats", str(metrics)]) == 0
        assert "service" in capsys.readouterr().out

    def test_worker_multi_loop_metrics_out_is_per_loop(self, tmp_path,
                                                       capsys):
        root = str(tmp_path / "svc")
        metrics = tmp_path / "fleet.jsonl"
        assert run_cli(["campaign", "submit", "--root", root,
                        "--bombs", "cp_stack", "--tools", "tritonx"]) == 0
        capsys.readouterr()
        assert run_cli(["worker", "--root", root, "--drain", "--jobs", "2",
                        "--poll", "0.01",
                        "--metrics-out", str(metrics)]) == 0
        # With --jobs N each forked loop writes FILE.<i>, not FILE.
        assert not metrics.exists()
        streams = sorted(tmp_path.glob("fleet.jsonl.*"))
        assert [p.name for p in streams] == ["fleet.jsonl.0",
                                             "fleet.jsonl.1"]
        from repro.obs import read_events

        assert all(isinstance(e, dict)
                   for p in streams for e in read_events(p))

    def test_worker_store_alias_and_validation(self, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert run_cli(["worker", "--store", root, "--drain",
                        "--poll", "0.01"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="--jobs"):
            run_cli(["worker", "--root", root, "--jobs", "-1"])
        with pytest.raises(SystemExit, match="--lease"):
            run_cli(["worker", "--root", root, "--lease", "0"])

    def test_serve_rejects_bad_poll(self, tmp_path):
        with pytest.raises(SystemExit, match="--poll"):
            run_cli(["serve", "--root", str(tmp_path), "--poll", "0"])


class TestTable2Flags:
    def test_check_passes_on_agreement(self, tmp_path, capsys):
        rc = run_cli(["table2", "--bombs", *BOMBS, "--tools", "tritonx",
                      "--cache", str(tmp_path / "store"), "--check"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "check: all labelled cells match the paper" in captured.err

    def test_check_fails_on_timeout_mismatch(self, capsys):
        # A 50 ms budget turns cf_aes (paper label Es2, a slow cell)
        # into E, which deviates from the paper — the CI gate must
        # catch that.
        rc = run_cli(["table2", "--bombs", "cf_aes", "--tools", "tritonx",
                      "--timeout", "0.05", "--check"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "observed E" in captured.err
        assert "deviate from the paper" in captured.err

    def test_cache_dir_round_trip_is_byte_identical(self, tmp_path, capsys):
        argv = ["table2", "--bombs", *BOMBS, "--tools", "tritonx",
                "--cache", str(tmp_path / "store"), "--json"]
        assert run_cli(argv) == 0
        first = capsys.readouterr().out
        assert run_cli(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_timeout_validation(self):
        with pytest.raises(SystemExit):
            run_cli(["table2", "--timeout", "0"])

    def test_jobs_zero_auto_detects(self, tmp_path, capsys):
        assert run_cli(["table2", "--bombs", "cp_stack",
                        "--tools", "tritonx", "--jobs", "0"]) == 0
        assert "cp_stack" in capsys.readouterr().out
        with pytest.raises(SystemExit, match="auto-detect"):
            run_cli(["table2", "--jobs", "-1"])
