"""Tests for the tracer (the Pin role) and taint accounting."""

from repro.bombs import get_bomb
from repro.lang import compile_single
from repro.trace import SignalEvent, StepEvent, SyscallEvent, record_trace, taint_summary
from repro.vm import Environment
from repro.vm.syscalls import Sys


def _image(src):
    return compile_single(src)


class TestRecording:
    def test_step_events_in_order(self):
        image = _image("int main(int argc, char **argv) { return 3; }")
        trace = record_trace(image, [b"t"])
        steps = list(trace.steps())
        assert steps, "no instructions recorded"
        assert steps[0].instr.addr == image.entry
        assert trace.exit_code == 3
        assert trace.instruction_count == len(steps)

    def test_syscall_events_capture_reads(self):
        image = _image(r'''
        int main(int argc, char **argv) {
            int fd = open("f", 0x42);
            write(fd, "xyz", 3);
            close(fd);
            fd = open("f", 0);
            char b[4];
            read(fd, b, 3);
            return b[0];
        }
        ''')
        trace = record_trace(image, [b"t"])
        reads = [e for e in trace.events
                 if isinstance(e, SyscallEvent) and e.nr == Sys.READ]
        assert reads and reads[0].writes[0][1] == b"xyz"
        assert trace.exit_code == ord("x")

    def test_child_process_not_traced(self):
        image = _image(r'''
        int main(int argc, char **argv) {
            int pid = fork();
            if (pid == 0) {
                int i = 0;
                while (i < 100) { i = i + 1; }
                exit(0);
            }
            waitpid(pid, 0);
            return 0;
        }
        ''')
        trace = record_trace(image, [b"t"])
        assert trace.forked
        pids = {e.pid for e in trace.events}
        assert len(pids) == 1  # only the root process

    def test_signal_event_recorded(self):
        image = _image(r'''
        int h(int s) { return 0; }
        int main(int argc, char **argv) {
            signal(8, h);
            return 1 / 0;
        }
        ''')
        trace = record_trace(image, [b"t"])
        signals = [e for e in trace.events if isinstance(e, SignalEvent)]
        assert len(signals) == 1
        assert signals[0].signo == 8

    def test_argv_regions(self):
        image = _image("int main(int argc, char **argv) { return 0; }")
        trace = record_trace(image, [b"prog", b"hello"])
        assert trace.argv_regions[1][1] == 5

    def test_bomb_flag(self):
        bomb = get_bomb("cp_stack")
        trace = record_trace(bomb.image, [b"x", b"49"], bomb.base_env())
        assert trace.bomb_triggered

    def test_event_budget(self):
        image = _image(
            "int main(int argc, char **argv) {"
            " int i = 0; while (i < 100000) { i = i + 1; } return 0; }"
        )
        trace = record_trace(image, [b"t"], max_events=500)
        assert len(trace.events) == 500


class TestTaintSummary:
    def test_untainted_program(self):
        image = _image("int main(int argc, char **argv) { return 42; }")
        summary = taint_summary(image, [b"t"])
        assert summary.tainted_instructions == 0
        assert summary.symbolic_branches == 0

    def test_tainted_fraction(self):
        image = _image(
            "int main(int argc, char **argv) {"
            " if (atoi(argv[1]) == 5) { return 1; } return 0; }"
        )
        summary = taint_summary(image, [b"t", b"3"])
        assert 0 < summary.tainted_instructions < summary.total_instructions
        assert summary.symbolic_branches >= 1
        assert 0 < summary.tainted_fraction < 1

    def test_figure3_shape(self):
        on = get_bomb("fig3_printf_on")
        off = get_bomb("fig3_printf_off")
        s_on = taint_summary(on.image, [b"x", b"77"], on.base_env())
        s_off = taint_summary(off.image, [b"x", b"77"], off.base_env())
        assert s_on.tainted_instructions > 2 * s_off.tainted_instructions
        assert s_on.symbolic_branches > s_off.symbolic_branches
