"""Unit tests for the static engine's syscall model and simprocedures."""

import pytest

from repro.errors import DiagnosticKind
from repro.lang import compile_single
from repro.symex import AngrEngine, SymexPolicy
from repro.vm import Machine


def _explore(src, seed=(b"1",), **policy_kw):
    defaults = dict(name="t", with_libs=True, max_states=256,
                    max_total_steps=60_000, max_queries=300, time_limit=50.0)
    defaults.update(policy_kw)
    image = compile_single(src)
    engine = AngrEngine(image, SymexPolicy(**defaults))
    report = engine.explore(list(seed), argv0=b"x")
    return image, engine, report


def _validated(image, report, env=None):
    for claim in report.claimed_inputs:
        if Machine(image, [b"x"] + claim, env).run().bomb_triggered:
            return claim
    return None


class TestPipeModel:
    def test_pipe_preserves_symbolic_data(self):
        image, _, report = _explore(r'''
        int main(int argc, char **argv) {
            int fds[2];
            pipe(fds);
            write_u64(fds[1], atoi(argv[1]) * 2);
            int w = read_u64(fds[0]);
            if (w == 86) { bomb(); }
            return 0;
        }
        ''', seed=(b"11",))
        claim = _validated(image, report)
        assert claim is not None
        assert int(claim[0]) == 43  # leading zeros allowed

    def test_empty_pipe_reads_zero_bytes(self):
        image, _, report = _explore(r'''
        int main(int argc, char **argv) {
            int fds[2];
            pipe(fds);
            char b[4];
            if (read(fds[0], b, 4) == 0) { bomb(); }
            return 0;
        }
        ''')
        assert report.goal_claimed


class TestFileModel:
    def test_files_concretize_symbolic_writes(self):
        _, engine, report = _explore(r'''
        int main(int argc, char **argv) {
            int fd = open("x.dat", 0x42);
            write_u64(fd, atoi(argv[1]) + 1);
            close(fd);
            fd = open("x.dat", 0);
            int w = read_u64(fd);
            if (w == 58) { bomb(); }
            return 0;
        }
        ''', seed=(b"11",))
        assert engine.diags.has(DiagnosticKind.CONCRETIZED_ENV)
        assert not report.goal_claimed  # 12 (the seed's value+1) != 58

    def test_missing_file_open_fails(self):
        _, _, report = _explore(r'''
        int main(int argc, char **argv) {
            if (open("/no/such", 0) < 0) { bomb(); }
            return 0;
        }
        ''')
        assert report.goal_claimed


class TestSimulatedReturns:
    def test_getpid_flagged(self):
        _, engine, report = _explore(
            "int main(int argc, char **argv) {"
            " if (getpid() == 5) { bomb(); } return 0; }"
        )
        assert report.goal_claimed  # claims, but the value is invented
        assert engine.diags.has(DiagnosticKind.SIMULATED_SYSCALL_VALUE)

    def test_time_is_concrete(self):
        _, engine, report = _explore(
            "int main(int argc, char **argv) {"
            " if (time() == 5) { bomb(); } return 0; }"
        )
        assert not report.goal_claimed
        assert not engine.diags.has(DiagnosticKind.SIMULATED_SYSCALL_VALUE)

    def test_fork_unsupported_at_syscall_level(self):
        _, engine, report = _explore(
            "int main(int argc, char **argv) {"
            " if (fork() == 0) { bomb(); } return 0; }"
        )
        assert not report.goal_claimed  # with-libs: fork returns -1
        assert engine.diags.has(DiagnosticKind.CROSS_PROCESS_LOST)

    def test_nolib_fork_follows_child(self):
        image, _, report = _explore(
            "int main(int argc, char **argv) {"
            " if (fork() == 0) { bomb(); } return 0; }",
            with_libs=False,
        )
        assert _validated(image, report) is not None


class TestAborts:
    @pytest.mark.parametrize("src,expected", [
        ("int main(int argc, char **argv) { signal(8, 0); return 0; }",
         DiagnosticKind.UNSUPPORTED_SYSCALL),
        ("int main(int argc, char **argv) { char *p = malloc(8); return 0; }",
         DiagnosticKind.UNSUPPORTED_SYSCALL),  # brk
    ])
    def test_unmodeled_syscalls_abort(self, src, expected):
        _, engine, report = _explore(src)
        assert report.aborted is not None
        assert engine.diags.has(expected)

    def test_nolib_malloc_is_hooked(self):
        image, _, report = _explore(r'''
        int main(int argc, char **argv) {
            char *p = malloc(16);
            p[0] = 'A';
            if (p[0] == 'A') { bomb(); }
            return 0;
        }
        ''', with_libs=False)
        assert _validated(image, report) is not None


class TestThreadModel:
    def test_thread_body_never_runs(self):
        _, engine, report = _explore(r'''
        int g = 5;
        int w(int *p) { *p = 6; return 0; }
        int main(int argc, char **argv) {
            int t = pthread_create(w, (int)&g);
            pthread_join(t);
            if (g == 6) { bomb(); }
            return 0;
        }
        ''')
        assert not report.goal_claimed  # g stays 5 in the engine's model
        assert engine.diags.has(DiagnosticKind.CROSS_THREAD_LOST)

    def test_rexx_inlines_thread(self):
        from repro.tools.rexx import REXX
        import dataclasses

        image = compile_single(r'''
        int g = 5;
        int w(int *p) { *p = 6; return 0; }
        int main(int argc, char **argv) {
            int t = pthread_create(w, (int)&g);
            pthread_join(t);
            if (g == 6) { bomb(); }
            return 0;
        }
        ''')
        policy = dataclasses.replace(REXX, time_limit=60.0)
        engine = AngrEngine(image, policy)
        report = engine.explore([b"1"], argv0=b"x")
        assert _validated(image, report) is not None
