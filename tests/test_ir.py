"""Tests for the lifter: IL coverage and flag-condition semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import apply_binop, flag_condition, il, lift
from repro.isa import FReg, Imm, Instruction, Mem, Op, OPSPEC, Reg, Target
from repro.smt import eval_expr, mk_const, mk_var
from repro.vm import Flags, alu, u64
from repro.vm.cpu import bits_to_f32, bits_to_f64


def _instr(op: Op, addr=0x1000) -> Instruction:
    operands = []
    for kind in OPSPEC[op]:
        operands.append({
            "R": Reg(2), "F": FReg(1), "I": Imm(7),
            "M": Mem(3, 16), "J": Target(addr + 64),
        }[kind])
    return Instruction(op, tuple(operands), addr)


class TestLiftCoverage:
    @pytest.mark.parametrize("op", list(Op))
    def test_every_opcode_lifts(self, op):
        stmts = lift(_instr(op))
        assert isinstance(stmts, list)
        if op is not Op.NOP:
            assert stmts, f"{op.name} lifted to nothing"

    def test_load_shape(self):
        stmts = lift(_instr(Op.LD4S))
        assert isinstance(stmts[0], il.Lea)
        assert isinstance(stmts[1], il.Load)
        assert stmts[1].width == 4 and stmts[1].signed

    def test_store_shape(self):
        stmts = lift(_instr(Op.ST2))
        assert isinstance(stmts[1], il.Store) and stmts[1].width == 2

    def test_division_emits_guard(self):
        stmts = lift(_instr(Op.SDIV))
        assert isinstance(stmts[0], il.DivGuard)
        assert isinstance(stmts[1], il.BinOp) and stmts[1].op == "sdiv"

    def test_branch_carries_cc_and_target(self):
        stmts = lift(_instr(Op.JLE))
        (branch,) = stmts
        assert isinstance(branch, il.CondBranch)
        assert branch.cc == "jle" and branch.target == 0x1040

    def test_call_records_return_address(self):
        instr = _instr(Op.CALL)
        (call,) = lift(instr)
        assert call.return_addr == instr.next_addr

    def test_fp_ops_isolated_in_fpop_nodes(self):
        for op in (Op.FADDS, Op.FMULD, Op.CVTIFD, Op.CVTFIS, Op.CVTDS):
            stmts = lift(_instr(op))
            assert any(isinstance(s, il.FpOp) for s in stmts), op.name

    def test_stmt_str_forms(self):
        for op in (Op.MOV, Op.LD, Op.ST, Op.JZ, Op.CALL, Op.PUSH, Op.SYSCALL):
            for stmt in lift(_instr(op)):
                assert str(stmt)


_CCS = ["jz", "jnz", "jl", "jle", "jg", "jge", "jb", "jbe", "ja", "jae"]
u64s = st.integers(min_value=0, max_value=2**64 - 1)


class TestFlagConditions:
    @given(a=u64s, b=u64s, cc=st.sampled_from(_CCS))
    @settings(max_examples=120, deadline=None)
    def test_sub_kind_matches_concrete_flags(self, a, b, cc):
        flags = Flags()
        alu("sub", a, b, flags)
        expected = flags.condition(cc)
        node = flag_condition("sub", mk_const(a, 64), mk_const(b, 64), cc)
        assert bool(eval_expr(node, {})) == expected

    @given(a=u64s, b=u64s, cc=st.sampled_from(_CCS))
    @settings(max_examples=80, deadline=None)
    def test_test_kind_matches_concrete_flags(self, a, b, cc):
        flags = Flags()
        flags.set_logic(a & b)
        expected = flags.condition(cc)
        node = flag_condition("test", mk_const(a, 64), mk_const(b, 64), cc)
        assert bool(eval_expr(node, {})) == expected

    @given(r=u64s, cc=st.sampled_from(_CCS))
    @settings(max_examples=80, deadline=None)
    def test_logic_kind_matches_concrete_flags(self, r, cc):
        flags = Flags()
        flags.set_logic(r)
        expected = flags.condition(cc)
        node = flag_condition("logic", mk_const(r, 64), None, cc)
        assert bool(eval_expr(node, {})) == expected

    @given(a=st.floats(allow_nan=False, allow_infinity=False, width=32),
           b=st.floats(allow_nan=False, allow_infinity=False, width=32),
           cc=st.sampled_from(["jz", "jnz", "jb", "jbe", "ja", "jae"]))
    @settings(max_examples=60, deadline=None)
    def test_fcmp32_matches_concrete_flags(self, a, b, cc):
        from repro.vm.cpu import f32_to_bits

        flags = Flags()
        flags.set_fcmp(a, b)
        expected = flags.condition(cc)
        node = flag_condition(
            "fcmp32",
            mk_const(f32_to_bits(a), 64), mk_const(f32_to_bits(b), 64), cc,
        )
        assert bool(eval_expr(node, {})) == expected


class TestApplyBinop:
    @given(a=st.integers(-(2**40), 2**40),
           b=st.integers(-(2**20), 2**20).filter(lambda v: v != 0))
    @settings(max_examples=80, deadline=None)
    def test_sdiv_srem_match_alu(self, a, b):
        for op in ("sdiv", "srem"):
            node = apply_binop(op, mk_var("ab_x", 64), mk_const(u64(b), 64))
            got = eval_expr(node, {"ab_x": u64(a)})
            assert got == alu(op, u64(a), u64(b)), (op, a, b)

    def test_symbolic_divisor_raises(self):
        from repro.errors import SolverError

        with pytest.raises(SolverError):
            apply_binop("sdiv", mk_var("ab_y", 64), mk_var("ab_z", 64))

    @given(a=u64s, b=u64s)
    @settings(max_examples=40, deadline=None)
    def test_plain_ops_delegate(self, a, b):
        node = apply_binop("xor", mk_const(a, 64), mk_const(b, 64))
        assert node.value == a ^ b
