"""Durable job queue: journal replay, claim/complete, crash recovery.

The journal contract: every transition is one appended record, opening
a queue replays the journal, and a job whose driver died after ``claim``
but before ``done`` reverts to pending with its attempt count intact —
so a cell is re-run after a crash, never lost, never duplicated.
"""

from repro.service import JobQueue
from repro.service.queue import CLAIMED, DONE, EXHAUSTED, PENDING

CELLS = [("cp_stack", "tritonx"), ("cp_stack", "bapx"), ("sv_time", "tritonx")]


def test_submit_claim_complete_lifecycle(tmp_path):
    with JobQueue(tmp_path / "q.jsonl") as queue:
        jobs = queue.submit(CELLS)
        assert [j.cell for j in jobs] == CELLS
        assert queue.depth() == 3

        first = queue.claim("w0")
        assert first.cell == CELLS[0] and first.status == CLAIMED
        assert first.attempts == 1
        queue.complete(first.job_id, result="computed")
        assert queue.jobs[first.job_id].status == DONE
        assert queue.counts() == {PENDING: 2, CLAIMED: 0, DONE: 1,
                                  EXHAUSTED: 0}


def test_fifo_order_and_exhaustion(tmp_path):
    with JobQueue(tmp_path / "q.jsonl") as queue:
        queue.submit(CELLS)
        a = queue.claim("w0")
        b = queue.claim("w1")
        assert (a.cell, b.cell) == (CELLS[0], CELLS[1])
        queue.exhaust(a.job_id, reason="worker crashed")
        assert queue.jobs[a.job_id].status == EXHAUSTED
        assert queue.jobs[a.job_id].reason == "worker crashed"


def test_journal_replay_reconstructs_state(tmp_path):
    path = tmp_path / "q.jsonl"
    with JobQueue(path) as queue:
        queue.submit(CELLS)
        done = queue.claim("w0")
        queue.complete(done.job_id, result="cached")

    with JobQueue(path) as reopened:
        assert reopened.counts() == {PENDING: 2, CLAIMED: 0, DONE: 1,
                                     EXHAUSTED: 0}
        assert reopened.jobs[done.job_id].result == "cached"
        # Remaining jobs are claimable in the original order.
        nxt = reopened.claim("w0")
        assert nxt.cell == CELLS[1]


def test_crashed_claim_reverts_to_pending_with_attempts(tmp_path):
    path = tmp_path / "q.jsonl"
    with JobQueue(path) as queue:
        queue.submit(CELLS)
        victim = queue.claim("w0")
        victim_id = victim.job_id
        # Driver "dies" here: no done/requeue record is ever written.

    with JobQueue(path) as recovered:
        job = recovered.jobs[victim_id]
        assert job.status == PENDING
        assert job.attempts == 1  # the lost attempt still counts
        again = recovered.claim("w0")
        assert again.job_id == victim_id and again.attempts == 2


def test_requeue_backoff_gates_claims(tmp_path):
    with JobQueue(tmp_path / "q.jsonl") as queue:
        queue.submit(CELLS[:1])
        job = queue.claim("w0")
        queue.requeue(job.job_id, reason="worker died", not_before=1000.0)
        assert queue.claim("w0", now=999.0) is None
        ready = queue.claim("w0", now=1000.5)
        assert ready.job_id == job.job_id and ready.attempts == 2


def test_torn_trailing_line_is_ignored(tmp_path):
    path = tmp_path / "q.jsonl"
    with JobQueue(path) as queue:
        queue.submit(CELLS)
    with path.open("a", encoding="utf-8") as fp:
        fp.write('{"t": "claim", "id": "job-00')  # torn write
    with JobQueue(path) as reopened:
        assert reopened.counts()[PENDING] == 3


def test_memory_only_queue_without_journal():
    queue = JobQueue(None)
    queue.submit(CELLS)
    assert queue.depth() == 3
    job = queue.claim("w0")
    queue.complete(job.job_id)
    assert queue.counts()[DONE] == 1
