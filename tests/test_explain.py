"""Tests for per-cell failure forensics (`repro explain`, table2 --explain).

Uses real cells from the Table II matrix: cp_stack/tritonx solves,
sa_l1_array/tritonx is the canonical Es3 cell (symbolic array index),
sv_time/tritonx the canonical Es0 cell (no symbolic source).
"""

import json

import pytest

from repro.bombs import get_bomb
from repro.cli import main
from repro.eval import CellDiagnosis, EvidenceItem, explain_cell, explain_matrix
from repro.obs import provenance
from repro.service import ResultStore, cell_key


@pytest.fixture(scope="module")
def solved_cell():
    return explain_cell(get_bomb("cp_stack"), "tritonx")


@pytest.fixture(scope="module")
def es3_cell():
    return explain_cell(get_bomb("sa_l1_array"), "tritonx")


class TestExplainCell:
    def test_solved_cell(self, solved_cell):
        diag = solved_cell
        assert diag.outcome == "ok" and diag.solved
        assert diag.expected == "ok"
        assert diag.evidence, "even a solved cell shows its taint flow"
        assert diag.taint_pcs > 0
        assert diag.taint_instances >= diag.taint_pcs
        assert "solved" in diag.summary
        assert "trace" in diag.timings_s and "solve" in diag.timings_s

    def test_es3_cell_names_the_guilty_guard(self, es3_cell):
        diag = es3_cell
        assert diag.outcome == "Es3" and not diag.solved
        assert "constraint-modeling gap" in diag.summary
        kinds = {e.kind for e in diag.evidence}
        assert {"introduce", "drop", "unsat-core", "taint"} <= kinds
        cores = [e for e in diag.evidence if e.kind == "unsat-core"]
        assert cores and all(e.pc is not None for e in cores)
        # Root-cause drop (matching the classified stage) precedes the
        # unrelated drops in the evidence ordering.
        drops = [e for e in diag.evidence if e.kind == "drop"]
        assert "[Es3]" in drops[0].detail

    def test_es0_cell_still_has_evidence(self):
        diag = explain_cell(get_bomb("sv_time"), "tritonx")
        assert diag.outcome == "Es0"
        assert diag.evidence, "non-solved cells always carry evidence"
        assert any(e.kind == "drop" for e in diag.evidence)

    def test_no_collector_leaks(self, solved_cell):
        assert provenance.active() is None

    def test_repeated_events_aggregate(self, es3_cell):
        # One concolic run re-replays per round; identical drops fold
        # into a single item with a count instead of repeating.
        details = [(e.kind, e.detail, e.pc) for e in es3_cell.evidence]
        assert len(details) == len(set(details))
        assert any(e.count > 1 for e in es3_cell.evidence)


class TestDiagnosisSerialization:
    def test_json_round_trip(self, es3_cell):
        doc = es3_cell.to_json()
        back = CellDiagnosis.from_json(json.loads(json.dumps(doc)))
        assert back.to_json() == doc
        assert back.bomb_id == "sa_l1_array" and back.tool == "tritonx"

    def test_render_mentions_outcome_and_evidence(self, es3_cell):
        text = es3_cell.render()
        assert "## sa_l1_array x tritonx: Es3" in text
        assert "Evidence:" in text
        assert "unsat-core" in text

    def test_evidence_item_render(self):
        item = EvidenceItem("drop", "taint lost", pc=0x2f0, count=3)
        assert item.render() == "[drop] @0x2f0 taint lost (x3)"

    def test_store_round_trip(self, tmp_path, es3_cell):
        store = ResultStore(tmp_path)
        key = cell_key(get_bomb("sa_l1_array"), "tritonx")
        assert store.get_diagnosis(key) is None
        store.put_diagnosis(key, es3_cell)
        back = store.get_diagnosis(key)
        assert back is not None
        assert back.to_json() == es3_cell.to_json()


class TestExplainMatrix:
    def test_persists_one_diagnosis_per_cell(self, tmp_path):
        store = ResultStore(tmp_path)
        diagnoses = explain_matrix(("cp_stack", "sv_time"), ("tritonx",),
                                   store=store)
        assert len(diagnoses) == 2
        for diag in diagnoses:
            key = cell_key(get_bomb(diag.bomb_id), "tritonx")
            assert store.get_diagnosis(key) is not None


class TestCli:
    def test_explain_json(self, capsys):
        assert main(["explain", "cp_stack", "tritonx", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["bomb"] == "cp_stack" and doc["outcome"] == "ok"
        assert doc["evidence"]

    def test_explain_render_and_store(self, tmp_path, capsys):
        assert main(["explain", "sv_time", "tritonx",
                     "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## sv_time x tritonx: Es0" in out
        key = cell_key(get_bomb("sv_time"), "tritonx")
        assert ResultStore(tmp_path).get_diagnosis(key) is not None

    def test_explain_rejects_unknown_names(self):
        with pytest.raises(SystemExit, match="unknown bomb"):
            main(["explain", "no_such_bomb", "tritonx"])
        with pytest.raises(SystemExit, match="unknown tool"):
            main(["explain", "cp_stack", "no_such_tool"])

    def test_table2_json_carries_diagnosis(self, capsys):
        assert main(["table2", "--bombs", "sv_time",
                     "--tools", "tritonx", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (cell,) = doc["cells"]
        assert cell["outcome"] == "Es0"
        assert cell["diagnosis"].startswith("declaration gap (Es0)")

    def test_table2_explain(self, capsys):
        assert main(["table2", "--explain", "--bombs", "cp_stack",
                     "--tools", "tritonx", "--json"]) == 0
        docs = json.loads(capsys.readouterr().out)
        assert len(docs) == 1 and docs[0]["outcome"] == "ok"
