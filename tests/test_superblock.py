"""Tests for the shared execution cache: lifted IL, superblocks, SMC
invalidation, store persistence, and the cache's invisibility in
engine outcomes (cold vs warm, merging on vs off)."""

import dataclasses

import pytest

from repro import obs
from repro.bombs import get_bomb
from repro.ir import il, superblock
from repro.ir.superblock import LiftCache, decode_stmt, encode_stmt
from repro.isa import Instruction, Op, OPSPEC, FReg, Imm, Mem, Reg, Target
from repro.lang import compile_single
from repro.symex import AngrEngine, SymexPolicy


def _instr(op: Op, addr=0x1000) -> Instruction:
    operands = []
    for kind in OPSPEC[op]:
        operands.append({
            "R": Reg(2), "F": FReg(1), "I": Imm(7),
            "M": Mem(3, 16), "J": Target(addr + 64),
        }[kind])
    return Instruction(op, tuple(operands), addr)


def _fast_policy(**kw):
    defaults = dict(name="t", with_libs=True, max_states=256,
                    max_total_steps=80_000, max_queries=400, time_limit=60.0)
    defaults.update(kw)
    return SymexPolicy(**defaults)


@pytest.fixture(autouse=True)
def _isolated_cache():
    """The cache registry is process-wide state; isolate every test."""
    superblock.reset()
    yield
    superblock.reset()


def _image():
    return compile_single("int main(int argc, char **argv) { return 0; }")


# -- IL (de)serialization ---------------------------------------------------

class TestILCodec:
    @pytest.mark.parametrize("op", list(Op))
    def test_round_trip_every_opcode(self, op):
        from repro.ir.lifter import lift

        for stmt in lift(_instr(op)):
            decoded = decode_stmt(encode_stmt(stmt))
            assert decoded == stmt

    def test_round_trip_survives_json(self):
        import json

        from repro.ir.lifter import lift

        stmts = lift(_instr(Op.ST4))
        wire = json.loads(json.dumps([encode_stmt(s) for s in stmts]))
        assert [decode_stmt(e) for e in wire] == stmts

    def test_unknown_record_raises(self):
        with pytest.raises(ValueError):
            decode_stmt(["nope"])


# -- lift cache semantics ---------------------------------------------------

class TestLiftCache:
    def test_lift_for_lifts_once(self):
        cache = LiftCache("d", _image())
        instr = _instr(Op.ADD)
        stmts, fresh = cache.lift_for(instr)
        assert fresh and cache.fresh_lifts == 1
        again, fresh2 = cache.lift_for(instr)
        assert again is stmts and not fresh2 and cache.fresh_lifts == 1

    def test_lift_for_detects_rewritten_pc(self):
        cache = LiftCache("d", _image())
        cache.lift_for(_instr(Op.ADD))
        # Same pc, different instruction: self-modifying code replayed.
        stmts, fresh = cache.lift_for(_instr(Op.SUB))
        assert fresh and isinstance(stmts[0], il.BinOp)
        assert stmts[0].op == "sub"
        assert 0x1000 in cache.smc_pcs

    def test_block_at_groups_straight_line_runs(self):
        cache = LiftCache("d", _image())
        program = {0x1000: _instr(Op.ADD, 0x1000)}
        program[0x1000 + program[0x1000].size] = \
            _instr(Op.MOV, 0x1000 + program[0x1000].size)
        block = cache.block_at(0x1000, program.get)
        assert block is not None and len(block) == 2
        assert block.lo == 0x1000 and block.hi > block.lo
        # Cached verdicts (including None) are served without fetching.
        assert cache.block_at(0x1000, lambda pc: None) is block

    def test_block_at_stops_at_terminator(self):
        cache = LiftCache("d", _image())
        assert cache.block_at(0x1000, {0x1000: _instr(Op.JMP)}.get) is None

    def test_invalidate_range_evicts_overlap_only(self):
        cache = LiftCache("d", _image())
        lo, hi = cache.code_lo, cache.code_hi
        instr = _instr(Op.ADD, lo)
        cache.lift_for(instr)
        block = cache.block_at(lo, {lo: instr}.get)
        assert block is not None
        # A write far outside executable sections is a two-compare no-op.
        cache.invalidate_range(hi + 0x10000, 8)
        assert lo in cache.stmts and cache.blocks[lo] is block
        # A write into the cached instruction evicts stmts and blocks.
        cache.invalidate_range(lo + 1, 1)
        assert lo not in cache.stmts and lo not in cache.blocks
        assert lo in cache.smc_pcs

    def test_serialize_load_round_trip(self):
        cache = LiftCache("d", _image())
        instr = _instr(Op.ADD)
        stmts, _ = cache.lift_for(instr)
        restored = LiftCache("d", _image())
        assert restored.load(cache.serialize()) == 1
        entry = restored.stmts[instr.addr]
        assert entry[0] is None and entry[2] == stmts
        # lift_for verifies and adopts the restored entry without lifting.
        again, fresh = restored.lift_for(instr)
        assert again == stmts and not fresh and restored.fresh_lifts == 0

    def test_serialize_excludes_smc_pcs(self):
        cache = LiftCache("d", _image())
        cache.lift_for(_instr(Op.ADD))
        cache.lift_for(_instr(Op.SUB))  # rewrites pc 0x1000
        assert cache.serialize()["entries"] == []

    def test_load_rejects_wrong_schema_and_image(self):
        cache = LiftCache("d", _image())
        assert cache.load({"schema": -1, "image": "d", "entries": []}) == 0
        assert cache.load({"schema": superblock.LIFT_SCHEMA,
                           "image": "other", "entries": []}) == 0


# -- store persistence ------------------------------------------------------

class TestStorePersistence:
    def test_warm_process_skips_lifting(self, tmp_path):
        from repro.service.store import ResultStore

        store = ResultStore(tmp_path)
        superblock.attach_store(store)
        image = _image()
        cache = superblock.cache_for(image)
        stmts, _ = cache.lift_for(_instr(Op.ADD, image.entry))
        assert superblock.persist(cache)
        assert not cache.dirty

        # A "new process": fresh registry, same store.
        superblock.reset()
        superblock.attach_store(store)
        warm = superblock.cache_for(image)
        assert warm.loaded == 1
        restored, fresh = warm.lift_for(_instr(Op.ADD, image.entry))
        assert restored == stmts and not fresh and warm.fresh_lifts == 0

    def test_persist_without_store_is_noop(self):
        cache = superblock.cache_for(_image())
        cache.lift_for(_instr(Op.ADD))
        assert not superblock.persist(cache)
        assert cache.dirty


# -- cache invisibility in engine outcomes ----------------------------------

class TestColdWarmIdentity:
    def test_cold_and_warm_exploration_agree(self):
        bomb = get_bomb("sa_l1_array")

        def run():
            return AngrEngine(bomb.image, _fast_policy()).explore(
                bomb.seed_argv, argv0=b"x")

        cold, warm = run(), run()
        assert cold.claimed_inputs == warm.claimed_inputs == [[b"6"]]
        assert cold.goal_claimed == warm.goal_claimed
        assert cold.steps == warm.steps
        assert cold.states_explored == warm.states_explored

    def test_superblock_counters_flow_to_obs(self):
        bomb = get_bomb("sa_l1_array")
        recorder = obs.Recorder()
        with obs.recording(recorder):
            AngrEngine(bomb.image, _fast_policy()).explore(
                bomb.seed_argv, argv0=b"x")
        counters = recorder.snapshot()["counters"]
        assert counters.get("cache.superblock_hits", 0) > 0
        assert counters.get("lift.instructions", 0) > 0
        # Warm engine in the same process: nothing left to lift.
        recorder2 = obs.Recorder()
        with obs.recording(recorder2):
            AngrEngine(bomb.image, _fast_policy()).explore(
                bomb.seed_argv, argv0=b"x")
        warm = recorder2.snapshot()["counters"]
        assert warm.get("lift.instructions", 0) == 0
        assert warm.get("cache.superblock_misses", 0) == 0


class TestStateMerging:
    @pytest.mark.parametrize("bomb_id", ["sa_l1_array", "sa_l2_array"])
    def test_merging_preserves_outcomes(self, bomb_id):
        bomb = get_bomb(bomb_id)
        plain = AngrEngine(bomb.image, _fast_policy()).explore(
            bomb.seed_argv, argv0=b"x")
        superblock.reset()
        merged = AngrEngine(
            bomb.image, _fast_policy(merge_states=True),
        ).explore(bomb.seed_argv, argv0=b"x")
        assert plain.claimed_inputs == merged.claimed_inputs
        assert plain.goal_claimed == merged.goal_claimed

    def test_merge_states_changes_fingerprint(self):
        base = _fast_policy()
        merged = dataclasses.replace(base, merge_states=True)
        assert base.fingerprint() != merged.fingerprint()


# -- enumeration front-end --------------------------------------------------

class TestPathSolver:
    def test_enumeration_matches_and_memoizes(self):
        from repro.smt import mk_cmp, mk_const, mk_var, mk_zext
        from repro.symex.cache import PathSolver

        x = mk_var("tsb_x", 8)
        addr = mk_zext(x, 64)
        constraints = [mk_cmp("ule", addr, mk_const(2, 64))]
        ps = PathSolver(_fast_policy())
        values = ps.enumerate_values(constraints, addr, limit=8)
        assert sorted(values) == [0, 1, 2]
        assert ps.enumerate_values(constraints, addr, limit=8) == values
        assert len(ps._enum_memo) == 1

    def test_slicing_ignores_disjoint_constraints(self):
        from repro.smt import mk_cmp, mk_const, mk_eq, mk_var, mk_zext
        from repro.symex.cache import PathSolver

        x, y = mk_var("tsb_sx", 8), mk_var("tsb_sy", 8)
        addr = mk_zext(x, 64)
        base = [mk_cmp("ule", addr, mk_const(1, 64))]
        ps = PathSolver(_fast_policy())
        first = ps.enumerate_values(base, addr, limit=8)
        # A sibling state's extra constraint over an unrelated variable
        # must not change the enumeration (memo key is the slice).
        extra = base + [mk_eq(mk_zext(y, 64), mk_const(7, 64))]
        assert ps.enumerate_values(extra, addr, limit=8) == first
        assert len(ps._enum_memo) == 1

    def test_limit_overflow_returns_none(self):
        from repro.smt import mk_var, mk_zext
        from repro.symex.cache import PathSolver

        x = mk_var("tsb_ov", 8)
        addr = mk_zext(x, 64)
        assert PathSolver(_fast_policy()).enumerate_values(
            [], addr, limit=4) is None


# -- VM decode-cache invalidation -------------------------------------------

class TestVMDecodeCacheSMC:
    def test_store_into_code_evicts_decodes(self):
        from repro.vm import Environment, Machine

        image = _image()
        machine = Machine(image, [b"x"], Environment())
        proc = machine.processes[machine.main_pid]
        entry = image.entry
        machine._fetch(proc, entry)
        assert entry in machine._decode_cache
        machine._evict_decoded(entry, 1)
        assert entry not in machine._decode_cache
        # Re-fetch decodes afresh from current memory bytes.
        assert machine._fetch(proc, entry).addr == entry
