"""Unit tests for the RX64 ISA: encoding, decoding, operand model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VMError
from repro.isa import (
    FLOAT_OPS,
    LOAD_INFO,
    OPSPEC,
    STORE_INFO,
    FReg,
    Imm,
    Instruction,
    Mem,
    Op,
    Reg,
    Target,
    decode,
    encode,
    gpr_name,
    instruction_size,
    parse_fpr,
    parse_gpr,
)


def _sample_operand(kind: str, addr: int):
    return {
        "R": Reg(3),
        "F": FReg(2),
        "I": Imm(0x1122334455667788),
        "M": Mem(5, -72),
        "J": Target(addr + 100),
    }[kind]


def _sample_instruction(op: Op, addr: int = 0x1000) -> Instruction:
    operands = tuple(_sample_operand(k, addr) for k in OPSPEC[op])
    return Instruction(op, operands, addr)


class TestEncodeDecode:
    @pytest.mark.parametrize("op", list(Op))
    def test_roundtrip_every_opcode(self, op):
        instr = _sample_instruction(op)
        blob = encode(instr)
        assert len(blob) == instruction_size(op)
        back = decode(blob, instr.addr)
        assert back == instr

    def test_rel32_is_relative_to_instruction_end(self):
        instr = Instruction(Op.JMP, (Target(0x1000),), addr=0x2000)
        blob = encode(instr)
        # Same bytes decoded at a different address yield a shifted target.
        moved = decode(blob, 0x3000)
        assert moved.operands[0].addr == 0x1000 + 0x1000

    def test_decode_invalid_opcode(self):
        with pytest.raises(VMError):
            decode(b"\xff\x00\x00\x00\x00\x00\x00\x00\x00\x00", 0)

    def test_decode_truncated(self):
        blob = encode(_sample_instruction(Op.MOVI))
        with pytest.raises(VMError):
            decode(blob[:4], 0)

    def test_decode_bad_register(self):
        blob = bytearray(encode(_sample_instruction(Op.MOV)))
        blob[1] = 200
        with pytest.raises(VMError):
            decode(bytes(blob), 0)

    @given(value=st.integers(min_value=0, max_value=2**64 - 1))
    def test_imm_roundtrip(self, value):
        instr = Instruction(Op.MOVI, (Reg(1), Imm(value)), 0)
        assert decode(encode(instr), 0).operands[1].value == value

    @given(disp=st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_mem_disp_roundtrip(self, disp):
        instr = Instruction(Op.LD, (Reg(1), Mem(2, disp)), 0)
        assert decode(encode(instr), 0).operands[1].disp == disp


class TestOperandModel:
    def test_imm_signed_view(self):
        assert Imm(2**64 - 1).signed == -1
        assert Imm(5).signed == 5

    def test_validate_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Instruction(Op.MOV, (Reg(1),)).validate()

    def test_validate_rejects_wrong_kind(self):
        with pytest.raises(ValueError):
            Instruction(Op.MOV, (Reg(1), Imm(3))).validate()

    def test_str_forms(self):
        instr = Instruction(Op.LD, (Reg(1), Mem(15, -8)), 0)
        assert str(instr) == "ld r1, [sp-8]"
        assert str(Instruction(Op.RET, (), 0)) == "ret"

    def test_next_addr(self):
        instr = _sample_instruction(Op.MOVI, addr=0x40)
        assert instr.next_addr == 0x40 + 10


class TestRegisters:
    def test_parse_gpr_aliases(self):
        assert parse_gpr("sp") == 15
        assert parse_gpr("fp") == 14
        assert parse_gpr("r0") == 0
        assert parse_gpr("R12") == 12

    def test_parse_gpr_rejects(self):
        for bad in ("r16", "x3", "f1", ""):
            with pytest.raises(ValueError):
                parse_gpr(bad)

    def test_parse_fpr(self):
        assert parse_fpr("f7") == 7
        with pytest.raises(ValueError):
            parse_fpr("f8")

    def test_gpr_name(self):
        assert gpr_name(15) == "sp"
        assert gpr_name(14) == "fp"
        assert gpr_name(3) == "r3"


class TestOpcodeTables:
    def test_load_store_tables_consistent(self):
        for op in LOAD_INFO:
            assert OPSPEC[op] == "RM"
        for op in STORE_INFO:
            assert OPSPEC[op] == "MR"

    def test_float_ops_have_fp_operands_or_are_moves(self):
        for op in FLOAT_OPS:
            assert "F" in OPSPEC[op] or op in (Op.FMOVR, Op.RMOVF)

    def test_unique_opcodes(self):
        codes = [int(op) for op in Op]
        assert len(codes) == len(set(codes))
