"""Unit tests for the outcome classifier's precedence rules."""

from repro.errors import Diagnostic, DiagnosticKind as K, DiagnosticLog, ErrorStage
from repro.eval import CONCRETIZATION_THRESHOLD, classify
from repro.tools.api import ToolReport


def _report(kinds=(), solved=False, claimed=False, aborted=None, counts=None):
    log = DiagnosticLog()
    for kind in kinds:
        log.emit(kind)
    for kind, n in (counts or {}).items():
        for _ in range(n):
            log.emit(kind)
    return ToolReport(tool="t", bomb_id="b", solved=solved,
                      goal_claimed=claimed, diagnostics=log, aborted=aborted)


class TestPrecedence:
    def test_solved_wins_over_everything(self):
        report = _report([K.LIFT_UNSUPPORTED, K.TAINT_LOST], solved=True)
        assert classify(report) is ErrorStage.OK

    def test_abort_is_E(self):
        assert classify(_report(aborted="timeout")) is ErrorStage.E
        assert classify(_report([K.RESOURCE_EXHAUSTED])) is ErrorStage.E
        assert classify(_report([K.UNSUPPORTED_SYSCALL])) is ErrorStage.E
        assert classify(_report([K.ENGINE_CRASH])) is ErrorStage.E

    def test_partial_success_requires_claim(self):
        assert classify(
            _report([K.SIMULATED_SYSCALL_VALUE], claimed=True)
        ) is ErrorStage.P
        # Without a claim the SIM diag alone is not P.
        assert classify(_report([K.SIMULATED_SYSCALL_VALUE])) is not ErrorStage.P

    def test_lifting_gaps_dominate(self):
        report = _report([K.LIFT_UNSUPPORTED, K.TAINT_LOST, K.MEM_ADDR_CONCRETIZED])
        assert classify(report) is ErrorStage.ES1
        report = _report([K.LIFT_INCOMPLETE, K.FIXED_WORD_ARGV])
        assert classify(report) is ErrorStage.ES1

    def test_modeling_gap_is_es3(self):
        assert classify(_report([K.MEM_ADDR_CONCRETIZED])) is ErrorStage.ES3
        assert classify(_report([K.SYMBOLIC_JUMP_UNMODELED])) is ErrorStage.ES3
        assert classify(_report([K.UNSUPPORTED_THEORY])) is ErrorStage.ES3
        assert classify(_report([K.UNMODELED_MEMORY_REF])) is ErrorStage.ES3

    def test_systematic_concretization_becomes_es2(self):
        report = _report(counts={K.MEM_ADDR_CONCRETIZED: CONCRETIZATION_THRESHOLD + 1})
        assert classify(report) is ErrorStage.ES2
        report = _report(counts={K.MEM_ADDR_CONCRETIZED: 3})
        assert classify(report) is ErrorStage.ES3

    def test_propagation_is_es2(self):
        for kind in (K.TAINT_LOST, K.CONCRETIZED_ENV, K.CROSS_THREAD_LOST,
                     K.CROSS_PROCESS_LOST, K.CONCRETIZED_JUMP):
            assert classify(_report([kind])) is ErrorStage.ES2, kind

    def test_fixed_word_argv_is_es2(self):
        assert classify(_report([K.FIXED_WORD_ARGV])) is ErrorStage.ES2

    def test_declaration_is_es0(self):
        assert classify(_report([K.CONCRETE_LENGTH])) is ErrorStage.ES0
        assert classify(_report([K.NO_SYMBOLIC_SOURCE])) is ErrorStage.ES0
        assert classify(_report([])) is ErrorStage.ES0

    def test_claimed_wrong_without_sim_falls_through(self):
        report = _report([K.CONCRETIZED_ENV], claimed=True)
        assert classify(report) is ErrorStage.ES2


class TestDiagnosticTaxonomy:
    def test_every_kind_has_a_stage(self):
        from repro.errors import DIAGNOSTIC_STAGE, DiagnosticKind

        assert set(DIAGNOSTIC_STAGE) == set(DiagnosticKind)

    def test_diagnostic_str(self):
        d = Diagnostic(K.TAINT_LOST, "detail here", pc=0x1234)
        assert "taint-lost" in str(d) and "0x1234" in str(d)

    def test_log_accumulates(self):
        log = DiagnosticLog()
        log.emit(K.TAINT_LOST, "a")
        log.emit(K.CONCRETE_LENGTH, "b")
        assert len(log) == 2
        assert log.has(K.TAINT_LOST)
        assert {s.value for s in log.stages()} == {"Es2", "Es0"}
