"""Differential tests of ALU/flag semantics: helper functions vs the
machine executing real instructions, and both vs Python reference
arithmetic (hypothesis-driven)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import VMError
from repro.vm import Flags, alu, s64, sext, u64
from repro.vm.cpu import bits_to_f32, bits_to_f64, f32_round, f32_to_bits, f64_to_bits

from .helpers import run_asm

u64s = st.integers(min_value=0, max_value=2**64 - 1)


class TestScalarHelpers:
    @given(a=u64s)
    def test_s64_u64_roundtrip(self, a):
        assert u64(s64(a)) == a

    def test_sext(self):
        assert sext(0xFF, 8) == 2**64 - 1
        assert sext(0x7F, 8) == 0x7F
        assert sext(0x8000, 16) == u64(-0x8000)

    @given(a=u64s, b=u64s)
    def test_add_sub_inverse(self, a, b):
        assert alu("sub", alu("add", a, b), b) == a

    @given(a=u64s, b=u64s)
    def test_reference_semantics(self, a, b):
        assert alu("add", a, b) == (a + b) % 2**64
        assert alu("mul", a, b) == (a * b) % 2**64
        assert alu("and", a, b) == a & b
        assert alu("or", a, b) == a | b
        assert alu("xor", a, b) == a ^ b

    @given(a=u64s, b=st.integers(min_value=0, max_value=63))
    def test_shift_semantics(self, a, b):
        assert alu("shl", a, b) == (a << b) % 2**64
        assert alu("shr", a, b) == a >> b
        assert alu("sar", a, b) == u64(s64(a) >> b)

    @given(a=u64s, b=u64s.filter(lambda v: v != 0))
    def test_udiv_urem_identity(self, a, b):
        q, r = alu("udiv", a, b), alu("urem", a, b)
        assert q * b + r == a and r < b

    @given(a=st.integers(min_value=-(2**62), max_value=2**62),
           b=st.integers(min_value=-(2**62), max_value=2**62).filter(lambda v: v != 0))
    def test_sdiv_truncates_toward_zero(self, a, b):
        q = s64(alu("sdiv", u64(a), u64(b)))
        r = s64(alu("srem", u64(a), u64(b)))
        expected_q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected_q = -expected_q
        assert q == expected_q
        assert q * b + r == a
        assert r == 0 or (r < 0) == (a < 0)  # remainder follows the dividend

    def test_division_by_zero_faults(self):
        for op in ("udiv", "sdiv", "urem", "srem"):
            with pytest.raises(VMError) as err:
                alu(op, 5, 0)
            assert err.value.signo == 8


class TestFlags:
    def test_sub_flags_equal(self):
        flags = Flags()
        alu("sub", 5, 5, flags)
        assert flags.zf and not flags.cf

    def test_sub_flags_borrow(self):
        flags = Flags()
        alu("sub", 3, 5, flags)
        assert flags.cf and not flags.zf

    def test_signed_overflow(self):
        flags = Flags()
        alu("sub", u64(-2**63), 1, flags)
        assert flags.of

    @given(a=u64s, b=u64s)
    def test_conditions_match_comparisons(self, a, b):
        flags = Flags()
        alu("sub", a, b, flags)
        sa, sb = s64(a), s64(b)
        assert flags.condition("jz") == (a == b)
        assert flags.condition("jnz") == (a != b)
        assert flags.condition("jb") == (a < b)
        assert flags.condition("jbe") == (a <= b)
        assert flags.condition("ja") == (a > b)
        assert flags.condition("jae") == (a >= b)
        assert flags.condition("jl") == (sa < sb)
        assert flags.condition("jle") == (sa <= sb)
        assert flags.condition("jg") == (sa > sb)
        assert flags.condition("jge") == (sa >= sb)


_JCC_CASES = [
    ("jl", -3, 2, True), ("jl", 2, -3, False),
    ("jg", 7, 7, False), ("jge", 7, 7, True),
    ("jb", 1, 2, True), ("ja", 2, 1, True),
]


class TestMachineBranches:
    @pytest.mark.parametrize("cc,a,b,taken", _JCC_CASES)
    def test_branch_taken_in_machine(self, cc, a, b, taken):
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {a}
            movi r2, {b}
            cmp r1, r2
            {cc} .Ltaken
            movi r1, 0
            jmp .Lend
        .Ltaken:
            movi r1, 1
        .Lend:
            movi r0, 0
            syscall
            hlt
        """)
        assert result.exit_code == (1 if taken else 0)

    @given(a=st.integers(min_value=0, max_value=2**32), b=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_machine_alu_matches_helper(self, a, b):
        result = run_asm(f"""
        .text
        .global _start
        _start:
            movi r1, {a}
            movi r2, {b}
            add r1, r2
            xori r1, {b}
            mov r3, r1
            andi r3, 0xff
            mov r1, r3
            movi r0, 0
            syscall
            hlt
        """)
        expected = (((a + b) % 2**64) ^ b) & 0xFF
        assert result.exit_code == expected


class TestFloatHelpers:
    def test_f32_rounding_at_1024(self):
        # The fp_float bomb's arithmetic fact.
        assert f32_round(1024.0 + 1e-5) == 1024.0
        assert f32_round(1024.0 + 1e-3) != 1024.0

    @given(bits=st.integers(min_value=0, max_value=2**32 - 1))
    def test_f32_bits_roundtrip(self, bits):
        value = bits_to_f32(bits)
        if value == value:  # skip NaNs (payloads are not preserved)
            assert bits_to_f32(f32_to_bits(value)) == value

    @given(value=st.floats(allow_nan=False, allow_infinity=False))
    def test_f64_bits_roundtrip(self, value):
        assert bits_to_f64(f64_to_bits(value)) == value
