"""Tests for the benchmark regression gate (benchmarks/bench_check.py).

The gate lives outside the package (it is a CI script over benchmark
artifacts, not library code), so it is imported by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_check",
    Path(__file__).resolve().parent.parent / "benchmarks" / "bench_check.py")
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


BASELINE = {
    "wall_s": 100.0,
    "solved_counts": {"bapx": 2, "tritonx": 1},
    "agreement": {"matched": 87, "labelled": 88},
    "solver": {"queries": 1000, "prefix_reuse": 700},
    "stage_wall_s": {"explore": 60.0, "solve": 30.0, "trace": 5.0},
}


def candidate(**overrides):
    doc = json.loads(json.dumps(BASELINE))
    for key, value in overrides.items():
        section, _, leaf = key.partition("__")
        if leaf:
            doc[section][leaf] = value
        else:
            doc[section] = value
    return doc


class TestCompare:
    def test_identical_passes(self):
        assert bench_check.compare(BASELINE, candidate()) == []

    def test_within_tolerance_passes(self):
        cand = candidate(wall_s=115.0, solver__queries=1150,
                         solver__prefix_reuse=600)
        assert bench_check.compare(BASELINE, cand) == []

    def test_query_growth_fails(self):
        problems = bench_check.compare(BASELINE,
                                       candidate(solver__queries=1300))
        assert any("solver.queries" in p for p in problems)

    def test_prefix_reuse_shrink_fails(self):
        problems = bench_check.compare(BASELINE,
                                       candidate(solver__prefix_reuse=500))
        assert any("solver.prefix_reuse" in p for p in problems)

    def test_improvements_never_fail(self):
        cand = candidate(wall_s=10.0, solver__queries=100,
                         solver__prefix_reuse=5000)
        assert bench_check.compare(BASELINE, cand) == []

    def test_wall_regression_fails(self):
        problems = bench_check.compare(BASELINE, candidate(wall_s=130.0))
        assert any("wall_s" in p for p in problems)

    def test_wall_tolerance_is_separate(self):
        cand = candidate(wall_s=180.0)
        assert bench_check.compare(BASELINE, cand, wall_tolerance=1.0) == []
        assert bench_check.compare(BASELINE, cand) != []

    def test_solved_counts_change_fails(self):
        problems = bench_check.compare(
            BASELINE, candidate(solved_counts={"bapx": 3, "tritonx": 1}))
        assert any("solved_counts" in p for p in problems)

    def test_agreement_change_fails(self):
        problems = bench_check.compare(
            BASELINE, candidate(agreement={"matched": 80, "labelled": 88}))
        assert any("agreement" in p for p in problems)

    def test_missing_counters_are_skipped(self):
        assert bench_check.compare(BASELINE, candidate(solver={})) == []

    def test_stage_wall_regression_fails(self):
        problems = bench_check.compare(
            BASELINE, candidate(stage_wall_s__explore=80.0))
        assert any("stage_wall_s.explore" in p for p in problems)
        problems = bench_check.compare(
            BASELINE, candidate(stage_wall_s__solve=40.0))
        assert any("stage_wall_s.solve" in p for p in problems)

    def test_stage_wall_uses_the_wall_tolerance(self):
        cand = candidate(stage_wall_s__explore=90.0)
        assert bench_check.compare(BASELINE, cand, wall_tolerance=1.0) == []
        assert bench_check.compare(BASELINE, cand) != []

    def test_ungated_stage_growth_passes(self):
        # trace/lift/extract are tiny and noisy; only explore/solve gate.
        assert bench_check.compare(
            BASELINE, candidate(stage_wall_s__trace=50.0)) == []

    def test_missing_stage_walls_are_skipped(self):
        assert bench_check.compare(BASELINE,
                                   candidate(stage_wall_s={})) == []
        stageless = {k: v for k, v in BASELINE.items()
                     if k != "stage_wall_s"}
        assert bench_check.compare(stageless, candidate()) == []


FUZZ_BASELINE = {
    "wall_s": 100.0,
    "fuzz": {
        "coverage_solved": ["cf_sha1", "cp_stack"],
        "executions_to_trigger": {"cf_sha1": 100, "cp_stack": 40},
    },
}


class TestFuzzGates:
    def _cand(self, **fuzz_overrides):
        doc = json.loads(json.dumps(FUZZ_BASELINE))
        doc["fuzz"].update(fuzz_overrides)
        return doc

    def test_identical_fuzz_record_passes(self):
        assert bench_check.compare(FUZZ_BASELINE, self._cand()) == []

    def test_lost_coverage_bomb_fails(self):
        problems = bench_check.compare(
            FUZZ_BASELINE, self._cand(coverage_solved=["cp_stack"]))
        assert any("coverage_solved lost" in p and "cf_sha1" in p
                   for p in problems)

    def test_new_coverage_bomb_passes(self):
        cand = self._cand(
            coverage_solved=["cf_sha1", "cp_stack", "sj_jump"],
            executions_to_trigger={"cf_sha1": 100, "cp_stack": 40,
                                   "sj_jump": 9},
        )
        assert bench_check.compare(FUZZ_BASELINE, cand) == []

    def test_executions_to_trigger_growth_fails(self):
        problems = bench_check.compare(
            FUZZ_BASELINE,
            self._cand(executions_to_trigger={"cf_sha1": 200,
                                              "cp_stack": 40}))
        assert any("executions_to_trigger[cf_sha1]" in p
                   for p in problems)

    def test_faster_trigger_passes(self):
        cand = self._cand(executions_to_trigger={"cf_sha1": 10,
                                                 "cp_stack": 40})
        assert bench_check.compare(FUZZ_BASELINE, cand) == []

    def test_fuzzless_records_skip_the_fuzz_gates(self):
        assert bench_check.compare(BASELINE, candidate()) == []

    def test_committed_fuzz_baseline_is_self_consistent(self):
        committed = str(Path(__file__).resolve().parent.parent
                        / "BENCH_fuzz.json")
        assert bench_check.main([committed, committed]) == 0


SOLVERLAB_BASELINE = {
    "wall_s": 10.0,
    "solverlab": {
        "queries": 320,
        "distinct": 190,
        "dedup_ratio": 0.4,
        "attributed_wall_fraction": 1.0,
        "class_queries": {"small-linear": 173, "bitvector-mix": 144},
        "class_wall_s": {"small-linear": 0.3, "bitvector-mix": 3.5},
    },
}


class TestSolverlabGates:
    def _cand(self, **lab_overrides):
        doc = json.loads(json.dumps(SOLVERLAB_BASELINE))
        doc["solverlab"].update(lab_overrides)
        return doc

    def test_identical_record_passes(self):
        assert bench_check.compare(SOLVERLAB_BASELINE, self._cand()) == []

    def test_query_count_growth_fails(self):
        problems = bench_check.compare(SOLVERLAB_BASELINE,
                                       self._cand(queries=400))
        assert any("solverlab.queries regressed" in p for p in problems)

    def test_query_count_within_tolerance_passes(self):
        assert bench_check.compare(SOLVERLAB_BASELINE,
                                   self._cand(queries=350)) == []

    def test_fewer_queries_pass(self):
        assert bench_check.compare(SOLVERLAB_BASELINE,
                                   self._cand(queries=100)) == []

    def test_per_class_wall_growth_fails(self):
        problems = bench_check.compare(
            SOLVERLAB_BASELINE,
            self._cand(class_wall_s={"small-linear": 0.3,
                                     "bitvector-mix": 9.0}))
        assert any("class_wall_s[bitvector-mix] regressed" in p
                   for p in problems)

    def test_per_class_wall_uses_wall_tolerance(self):
        cand = self._cand(class_wall_s={"small-linear": 0.3,
                                        "bitvector-mix": 6.0})
        assert bench_check.compare(SOLVERLAB_BASELINE, cand,
                                   wall_tolerance=1.0) == []

    def test_class_only_on_one_side_is_skipped(self):
        cand = self._cand(class_wall_s={"small-linear": 0.3,
                                        "deep-serial": 50.0})
        assert bench_check.compare(SOLVERLAB_BASELINE, cand) == []

    def test_lab_less_records_skip_the_gates(self):
        assert bench_check.compare(BASELINE, candidate()) == []

    def test_committed_solverlab_baseline_is_self_consistent(self):
        committed = str(Path(__file__).resolve().parent.parent
                        / "BENCH_solverlab.json")
        assert bench_check.main([committed, committed]) == 0


class TestMain:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_ok_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        cand = self._write(tmp_path, "cand.json", candidate())
        assert bench_check.main([base, cand]) == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        cand = self._write(tmp_path, "cand.json", candidate(wall_s=200.0))
        assert bench_check.main([base, cand]) == 1
        assert "wall_s regressed" in capsys.readouterr().err

    def test_wall_tolerance_flag(self, tmp_path):
        base = self._write(tmp_path, "base.json", BASELINE)
        cand = self._write(tmp_path, "cand.json", candidate(wall_s=180.0))
        assert bench_check.main([base, cand, "--wall-tolerance", "1.0"]) == 0

    def test_unreadable_input_exit_one(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", BASELINE)
        assert bench_check.main([base, str(tmp_path / "missing.json")]) == 1

    def test_committed_baseline_is_self_consistent(self, capsys):
        committed = str(Path(__file__).resolve().parent.parent
                        / "BENCH_table2.json")
        assert bench_check.main([committed, committed]) == 0
